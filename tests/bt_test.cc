#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/bt.h"
#include "query/query_parser.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

GroundAtom MustGround(const ParsedUnit& unit, std::string_view text) {
  auto atom = ParseGroundAtom(text, unit.program.vocab());
  EXPECT_TRUE(atom.ok()) << atom.status();
  return std::move(atom).value();
}

TEST(BtTest, EvenQueries) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  BtOptions options;
  options.range = 2;  // range(Z ∧ D) for `even`: two distinct states
  for (int64_t h = 0; h <= 20; ++h) {
    auto result = RunBt(unit.program, unit.database,
                        MustGround(unit, "even(" + std::to_string(h) + ")"),
                        options);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->answer, h % 2 == 0) << "h=" << h;
    // m = max(c, h) + range as in Theorem 4.1.
    EXPECT_EQ(result->m, std::max<int64_t>(0, h) + 2);
  }
}

TEST(BtTest, HorizonOverrideIsUsed) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  BtOptions options;
  options.horizon = 50;
  auto result =
      RunBt(unit.program, unit.database, MustGround(unit, "even(40)"), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answer);
  EXPECT_EQ(result->m, 50);
}

TEST(BtTest, ExactlyOneOfRangeHorizonRequired) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  GroundAtom q = MustGround(unit, "even(0)");
  BtOptions neither;
  EXPECT_EQ(RunBt(unit.program, unit.database, q, neither).status().code(),
            StatusCode::kFailedPrecondition);
  BtOptions both;
  both.range = 2;
  both.horizon = 10;
  EXPECT_EQ(RunBt(unit.program, unit.database, q, both).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BtTest, SemiNaiveAndNaiveAgree) {
  std::mt19937 rng(99);
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::RandomGraphFactsSource(5, 8, &rng));
  GroundAtom q = MustGround(unit, "path(4, n0, n1)");
  BtOptions naive;
  naive.range = 10;
  naive.semi_naive = false;  // explicitly reach the reference oracle
  BtOptions semi = naive;
  semi.semi_naive = true;
  auto r1 = RunBt(unit.program, unit.database, q, naive);
  auto r2 = RunBt(unit.program, unit.database, q, semi);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->answer, r2->answer);
  EXPECT_TRUE(r1->model == r2->model);
}

TEST(BtTest, PathReachabilityOnCycle) {
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::CycleGraphFactsSource(4));
  BtOptions options;
  options.range = 8;  // inflationary: states saturate after ~4 steps
  // n0 -> n1 -> n2 -> n3 -> n0; "path of length at most K".
  EXPECT_TRUE(
      RunBt(unit.program, unit.database, MustGround(unit, "path(1, n0, n1)"),
            options)
          ->answer);
  EXPECT_FALSE(
      RunBt(unit.program, unit.database, MustGround(unit, "path(1, n0, n2)"),
            options)
          ->answer);
  EXPECT_TRUE(
      RunBt(unit.program, unit.database, MustGround(unit, "path(2, n0, n2)"),
            options)
          ->answer);
  EXPECT_TRUE(
      RunBt(unit.program, unit.database, MustGround(unit, "path(3, n0, n3)"),
            options)
          ->answer);
  // Inflationary: once true, stays true at deeper K.
  EXPECT_TRUE(
      RunBt(unit.program, unit.database, MustGround(unit, "path(30, n0, n3)"),
            options)
          ->answer);
  // Self-paths of length 0 exist.
  EXPECT_TRUE(
      RunBt(unit.program, unit.database, MustGround(unit, "path(0, n2, n2)"),
            options)
          ->answer);
}

TEST(BtTest, NonTemporalQueriesWork) {
  ParsedUnit unit = MustParse(workload::TransitiveClosureDatalogSource() +
                              "edge(a, b). edge(b, c).");
  BtOptions options;
  options.range = 1;
  auto yes = RunBt(unit.program, unit.database, MustGround(unit, "tc(a, c)"),
                   options);
  ASSERT_TRUE(yes.ok());
  EXPECT_TRUE(yes->answer);
  auto no = RunBt(unit.program, unit.database, MustGround(unit, "tc(c, a)"),
                  options);
  ASSERT_TRUE(no.ok());
  EXPECT_FALSE(no->answer);
}

TEST(BtTest, UnknownPredicateInQueryFails) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  GroundAtom bogus;
  bogus.pred = 999;
  BtOptions options;
  options.range = 2;
  EXPECT_EQ(
      RunBt(unit.program, unit.database, bogus, options).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(BtTest, ModelIsReusableForFurtherQueries) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  BtOptions options;
  options.range = 2;
  auto result =
      RunBt(unit.program, unit.database, MustGround(unit, "even(10)"), options);
  ASSERT_TRUE(result.ok());
  // Any query of depth <= m can be answered from the same model.
  for (int64_t h = 0; h <= result->m; ++h) {
    EXPECT_EQ(result->model.Contains(
                  MustGround(unit, "even(" + std::to_string(h) + ")")),
              h % 2 == 0);
  }
}

}  // namespace
}  // namespace chronolog
