// Join-planner tests: deterministic plan orders, selectivity-driven atom
// ordering on the skewed workload, drift-triggered re-planning, sharded
// enumeration under a shared plan, and the `join.*` metrics family.

#include <gtest/gtest.h>

#include <random>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "eval/rule_eval.h"
#include "storage/interpretation.h"
#include "util/metrics.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

// Splits the parsed database into the full interpretation and a delta
// holding only the temporal facts (the shape of a semi-naive round).
void LoadSkewed(const ParsedUnit& unit, Interpretation* full,
                Interpretation* delta) {
  full->InsertDatabase(unit.database);
  for (const GroundAtom& f : unit.database.facts()) {
    if (unit.program.vocab().predicate(f.pred).is_temporal) {
      delta->Insert(f);
    }
  }
}

// SkewedJoinSource rule: hit(T+1,X) :- hit(T,X)[0], wide(X,Y)[1], narrow(Y)[2].
// With `wide` fan-out 64 and a single `narrow` row, the planner must place
// narrow before wide: probing narrow first keeps the frontier at one binding
// instead of enumerating every wide row.
TEST(JoinPlanTest, SkewedWorkloadOrdersNarrowBeforeWide) {
  ParsedUnit unit = MustParse(workload::SkewedJoinSource(64));
  ASSERT_EQ(unit.program.rules().size(), 1u);
  Interpretation full(unit.program.vocab_ptr());
  Interpretation delta(unit.program.vocab_ptr());
  LoadSkewed(unit, &full, &delta);

  RuleEvaluator ev(unit.program.rules()[0], unit.program.vocab());
  EXPECT_TRUE(ev.PlanOrderForTest(0, false).empty());  // nothing cached yet
  ev.EnsurePlan(full, &delta, /*delta_pos=*/0, /*time_bound=*/false);
  const std::vector<uint32_t> order = ev.PlanOrderForTest(0, false);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0u);  // the one-row delta atom leads
  EXPECT_EQ(order[1], 2u);  // narrow before...
  EXPECT_EQ(order[2], 1u);  // ...the wide fan-out relation
}

TEST(JoinPlanTest, PlanOrderIsDeterministic) {
  // Two independently parsed and loaded copies of the same workload must
  // plan identically, for every (delta_pos, time_bound) configuration —
  // the property that makes the parallel pre-pass sound.
  std::vector<std::vector<uint32_t>> runs[2];
  for (int run = 0; run < 2; ++run) {
    ParsedUnit unit = MustParse(workload::SkewedJoinSource(32));
    Interpretation full(unit.program.vocab_ptr());
    Interpretation delta(unit.program.vocab_ptr());
    LoadSkewed(unit, &full, &delta);
    RuleEvaluator ev(unit.program.rules()[0], unit.program.vocab());
    for (int delta_pos = -1; delta_pos < 3; ++delta_pos) {
      const Interpretation* d = delta_pos < 0 ? nullptr : &delta;
      for (bool time_bound : {false, true}) {
        ev.EnsurePlan(full, d, delta_pos, time_bound);
        runs[run].push_back(ev.PlanOrderForTest(delta_pos, time_bound));
        EXPECT_FALSE(runs[run].back().empty());
      }
    }
  }
  EXPECT_EQ(runs[0], runs[1]);
}

TEST(JoinPlanTest, ShardedEnumerationMatchesUnsharded) {
  // All shards of one task share the cached plan; the union of sharded
  // emissions must equal the unsharded emission set (the parallel
  // evaluator's correctness contract).
  ParsedUnit unit = MustParse(workload::SkewedJoinSource(16));
  Interpretation full(unit.program.vocab_ptr());
  Interpretation delta(unit.program.vocab_ptr());
  LoadSkewed(unit, &full, &delta);
  RuleEvaluator ev(unit.program.rules()[0], unit.program.vocab());
  ev.EnsurePlan(full, &delta, 0, false);

  using Fact = std::tuple<PredicateId, int64_t, Tuple>;
  std::set<Fact> unsharded;
  EvalStats stats;
  ev.Evaluate(full, &delta, 0, std::nullopt, &stats,
              [&](GroundAtom&& g) {
                unsharded.insert({g.pred, g.time, g.args});
              });
  std::set<Fact> sharded;
  for (uint32_t shard = 0; shard < 4; ++shard) {
    ev.Evaluate(full, &delta, 0, std::nullopt, &stats,
                [&](GroundAtom&& g) {
                  sharded.insert({g.pred, g.time, g.args});
                },
                shard, 4);
  }
  EXPECT_FALSE(unsharded.empty());
  EXPECT_EQ(unsharded, sharded);
}

TEST(JoinPlanTest, ReplanTriggersOnObservedDrift) {
  // Build a plan while both relations are tiny, then grow `r` with rows
  // that never join: observed steps-per-emission drifts far above the
  // estimate, which must trigger a re-plan (and here also an order change:
  // the one-row `s` moves to the front).
  ParsedUnit unit = MustParse("q(X) :- r(X), s(X).\nr(c0).\ns(c0).\n");
  ASSERT_EQ(unit.program.rules().size(), 1u);
  MetricsRegistry metrics;
  RuleEvaluator ev(unit.program.rules()[0], unit.program.vocab(),
                   /*use_index=*/true, &metrics);
  Interpretation full(unit.program.vocab_ptr());
  full.InsertDatabase(unit.database);

  EvalStats stats;
  auto sink = [](GroundAtom&&) {};
  ev.Evaluate(full, nullptr, -1, std::nullopt, &stats, sink);
  EXPECT_EQ(metrics.counter("join.plans")->value(), 1u);
  EXPECT_EQ(metrics.counter("join.replans")->value(), 0u);

  const PredicateId r = unit.program.vocab().FindPredicate("r");
  ASSERT_NE(r, kInvalidPredicate);
  for (int i = 0; i < 4000; ++i) {
    const SymbolId fresh = unit.program.vocab_ptr()->InternConstant(
        "drift" + std::to_string(i));
    full.Insert(r, 0, {fresh});
  }
  // First post-growth pass records the drifted observation; the next pass
  // notices it and rebuilds the plan against current statistics.
  ev.Evaluate(full, nullptr, -1, std::nullopt, &stats, sink);
  ev.Evaluate(full, nullptr, -1, std::nullopt, &stats, sink);
  EXPECT_GE(metrics.counter("join.replans")->value(), 1u);
  const std::vector<uint32_t> order = ev.PlanOrderForTest(-1, false);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1u);  // s (one row) now leads
  EXPECT_EQ(order[1], 0u);
}

TEST(JoinPlanTest, PlannerAvoidsWideScanOnSkewedWorkload) {
  // End-to-end work bound: with fan-out 256 over 50 timesteps, source-order
  // evaluation enumerates ~wide rows per step (>12k match steps); the
  // planned order stays constant per step.
  ParsedUnit unit = MustParse(workload::SkewedJoinSource(256));
  FixpointOptions options;
  options.max_time = 50;
  EvalStats stats;
  auto model =
      SemiNaiveFixpoint(unit.program, unit.database, options, &stats);
  ASSERT_TRUE(model.ok()) << model.status();
  // 51 hit facts derived, one per timestep.
  EXPECT_EQ(model->Timeline(
                    unit.program.vocab().FindPredicate("hit"))
                .size(),
            51u);
  EXPECT_LT(stats.match_steps, 256u * 50u / 2u);
}

TEST(JoinPlanTest, ExportPlansReportsBuiltSlots) {
  ParsedUnit unit = MustParse(workload::SkewedJoinSource(64));
  Interpretation full(unit.program.vocab_ptr());
  Interpretation delta(unit.program.vocab_ptr());
  LoadSkewed(unit, &full, &delta);
  RuleEvaluator ev(unit.program.rules()[0], unit.program.vocab());

  std::vector<PlanSlotReport> report;
  ev.ExportPlans(&report);
  EXPECT_TRUE(report.empty());  // nothing planned yet

  ev.EnsurePlan(full, &delta, /*delta_pos=*/0, /*time_bound=*/false);
  ev.EnsurePlan(full, nullptr, /*delta_pos=*/-1, /*time_bound=*/true);
  ev.ExportPlans(&report);
  ASSERT_EQ(report.size(), 2u);
  // The report round-trips each slot's configuration and its chosen order.
  bool saw_delta = false, saw_full = false;
  for (const PlanSlotReport& slot : report) {
    ASSERT_EQ(slot.order.size(), 3u);
    ASSERT_EQ(slot.probe_cols.size(), 3u);
    EXPECT_GT(slot.est_steps_per_emit, 0.0);
    if (slot.delta_pos == 0 && !slot.time_bound) {
      saw_delta = true;
      // Matches the directly inspected plan order for the same slot.
      EXPECT_EQ(slot.order, ev.PlanOrderForTest(0, false));
    }
    if (slot.delta_pos == -1 && slot.time_bound) saw_full = true;
  }
  EXPECT_TRUE(saw_delta);
  EXPECT_TRUE(saw_full);

  // Observed counters flow into a later export after real evaluation work.
  EvalStats stats;
  ev.Evaluate(full, &delta, 0, std::nullopt, &stats, [](GroundAtom&&) {});
  std::vector<PlanSlotReport> after;
  ev.ExportPlans(&after);
  uint64_t observed = 0;
  for (const PlanSlotReport& slot : after) observed += slot.observed_steps;
  EXPECT_GT(observed, 0u);
}

TEST(JoinPlanTest, FixpointExportsPlanReportPerRule) {
  ParsedUnit unit = MustParse(workload::SkewedJoinSource(32));
  FixpointOptions options;
  options.max_time = 10;
  RulePlanReport report;
  options.plan_report = &report;
  EvalStats stats;
  auto model =
      SemiNaiveFixpoint(unit.program, unit.database, options, &stats);
  ASSERT_TRUE(model.ok()) << model.status();
  ASSERT_EQ(report.size(), unit.program.rules().size());
  // The recursive rule drove joins, so its report carries at least one
  // slot whose work was observed.
  bool any_slot = false;
  for (const auto& rule_slots : report) {
    for (const PlanSlotReport& slot : rule_slots) {
      any_slot = true;
      EXPECT_FALSE(slot.order.empty());
    }
  }
  EXPECT_TRUE(any_slot);
}

TEST(JoinPlanTest, JoinMetricsPopulatedThroughFixpoint) {
  ParsedUnit unit = MustParse(workload::SkewedJoinSource(32));
  MetricsRegistry metrics;
  FixpointOptions options;
  options.max_time = 10;
  options.metrics = &metrics;
  EvalStats stats;
  auto model =
      SemiNaiveFixpoint(unit.program, unit.database, options, &stats);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_GE(metrics.counter("join.plans")->value(), 1u);
  EXPECT_GE(metrics.counter("join.plan_cache_hits")->value(), 1u);
  ASSERT_TRUE(metrics.has_histogram("join.est_steps_per_emit"));
  ASSERT_TRUE(metrics.has_histogram("join.actual_steps_per_emit"));
  EXPECT_GE(metrics.histogram("join.est_steps_per_emit")->count(), 1u);
  EXPECT_GE(metrics.histogram("join.actual_steps_per_emit")->count(), 1u);
}

}  // namespace
}  // namespace chronolog
