// Property-based sweeps over randomly generated temporal programs: the
// invariants of DESIGN.md Section 4, each checked across many seeds.

#include <gtest/gtest.h>

#include <random>

#include "analysis/inflationary.h"
#include "analysis/normalize.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "eval/bt.h"
#include "eval/fixpoint.h"
#include "eval/forward.h"
#include "query/query_eval.h"
#include "query/query_parser.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(const std::string& src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status() << "\nsource:\n" << src;
  return std::move(unit).value();
}

std::string RandomSource(uint32_t seed, bool progressive) {
  std::mt19937 rng(seed);
  workload::RandomProgramOptions options;
  options.progressive_only = progressive;
  options.num_rules = 5;
  options.num_facts = 8;
  return workload::RandomProgramSource(options, &rng);
}

class SeededTest : public ::testing::TestWithParam<uint32_t> {};

// --------------------------------------------------------------------------
// Invariant 1: naive, semi-naive (and forward, when applicable) agree.
// --------------------------------------------------------------------------

using FixpointAgreement = SeededTest;

TEST_P(FixpointAgreement, NaiveEqualsSemiNaiveProgressive) {
  std::string src = RandomSource(GetParam(), /*progressive=*/true);
  SCOPED_TRACE(src);
  ParsedUnit unit = MustParse(src);
  FixpointOptions options;
  options.max_time = 14;
  auto naive = NaiveFixpoint(unit.program, unit.database, options);
  auto semi = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(semi.ok()) << semi.status();
  EXPECT_TRUE(*naive == *semi);
}

TEST_P(FixpointAgreement, NaiveEqualsSemiNaiveGeneral) {
  std::string src = RandomSource(GetParam() + 1000, /*progressive=*/false);
  SCOPED_TRACE(src);
  ParsedUnit unit = MustParse(src);
  FixpointOptions options;
  options.max_time = 12;
  auto naive = NaiveFixpoint(unit.program, unit.database, options);
  auto semi = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(semi.ok()) << semi.status();
  EXPECT_TRUE(*naive == *semi);
}

TEST_P(FixpointAgreement, ForwardMatchesFixpointOnSegment) {
  std::string src = RandomSource(GetParam() + 2000, /*progressive=*/true);
  SCOPED_TRACE(src);
  ParsedUnit unit = MustParse(src);
  auto forward = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(forward.ok()) << forward.status();
  FixpointOptions options;
  options.max_time = forward->horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(forward->model.SegmentEquals(*model, forward->horizon));
}

INSTANTIATE_TEST_SUITE_P(Sweep, FixpointAgreement, ::testing::Range(0u, 25u));

// --------------------------------------------------------------------------
// Invariant 2: detected periods are valid far beyond the detection window.
// --------------------------------------------------------------------------

using PeriodValidity = SeededTest;

TEST_P(PeriodValidity, DetectedPeriodHoldsOnExtendedWindow) {
  std::string src = RandomSource(GetParam() + 3000, /*progressive=*/true);
  SCOPED_TRACE(src);
  ParsedUnit unit = MustParse(src);
  auto detection = DetectPeriod(unit.program, unit.database);
  ASSERT_TRUE(detection.ok()) << detection.status();
  const Period period = detection->period;
  const int64_t start = period.b + detection->c;
  const int64_t horizon = start + 4 * period.p + 8;
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  for (int64_t t = start; t + period.p <= horizon; ++t) {
    ASSERT_EQ(State::FromInterpretation(*model, t),
              State::FromInterpretation(*model, t + period.p))
        << "t=" << t << " (b=" << period.b << ", p=" << period.p << ")";
  }
}

TEST_P(PeriodValidity, DetectedPeriodIsMinimal) {
  std::string src = RandomSource(GetParam() + 4000, /*progressive=*/true);
  SCOPED_TRACE(src);
  ParsedUnit unit = MustParse(src);
  auto detection = DetectPeriod(unit.program, unit.database);
  ASSERT_TRUE(detection.ok()) << detection.status();
  const Period period = detection->period;
  if (period.p == 1) return;
  // No smaller period validates on the detection window's states.
  std::vector<State> states =
      ExtractStates(detection->model, 0, detection->horizon);
  const int64_t start = period.b + detection->c;
  for (int64_t p = 1; p < period.p; ++p) {
    bool valid = true;
    for (int64_t t = start; t + p < static_cast<int64_t>(states.size());
         ++t) {
      if (!(states[t] == states[t + p])) {
        valid = false;
        break;
      }
    }
    EXPECT_FALSE(valid) << "smaller period " << p << " validates";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PeriodValidity, ::testing::Range(0u, 25u));

// --------------------------------------------------------------------------
// Invariant 3: specification lookups agree with deep materialisation.
// --------------------------------------------------------------------------

using SpecSoundness = SeededTest;

TEST_P(SpecSoundness, AskMatchesDeepModel) {
  std::string src = RandomSource(GetParam() + 5000, /*progressive=*/true);
  SCOPED_TRACE(src);
  ParsedUnit unit = MustParse(src);
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok()) << spec.status();
  const int64_t horizon =
      spec->num_representatives() + 3 * spec->period().p + 5;
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  // Positive direction: every materialised fact is spec-true.
  model->ForEach([&](PredicateId pred, int64_t t, const Tuple& args) {
    EXPECT_TRUE(spec->Ask(GroundAtom(pred, t, args)))
        << GroundAtomToString(GroundAtom(pred, t, args),
                              unit.program.vocab());
  });
  // Negative direction: random probes agree.
  std::mt19937 rng(GetParam());
  const Vocabulary& vocab = unit.program.vocab();
  for (int probe = 0; probe < 200; ++probe) {
    PredicateId pred = std::uniform_int_distribution<PredicateId>(
        0, static_cast<PredicateId>(vocab.num_predicates() - 1))(rng);
    const PredicateInfo& info = vocab.predicate(pred);
    GroundAtom atom;
    atom.pred = pred;
    atom.time = info.is_temporal
                    ? std::uniform_int_distribution<int64_t>(0, horizon)(rng)
                    : 0;
    for (uint32_t j = 0; j < info.arity; ++j) {
      atom.args.push_back(std::uniform_int_distribution<SymbolId>(
          0, static_cast<SymbolId>(vocab.num_constants() - 1))(rng));
    }
    EXPECT_EQ(spec->Ask(atom), model->Contains(atom))
        << GroundAtomToString(atom, vocab);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpecSoundness, ::testing::Range(0u, 20u));

// --------------------------------------------------------------------------
// Invariant 4: query invariance (Proposition 3.1) on random programs.
// --------------------------------------------------------------------------

using QueryInvariance = SeededTest;

TEST_P(QueryInvariance, SpecAndModelEvaluationAgree) {
  std::string src = RandomSource(GetParam() + 6000, /*progressive=*/true);
  SCOPED_TRACE(src);
  ParsedUnit unit = MustParse(src);
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok()) << spec.status();
  const int64_t horizon =
      spec->num_representatives() + 3 * spec->period().p + 5;
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());

  // Queries whose quantifier semantics stabilise within the horizon: purely
  // existential (a model witness is always within the representatives by
  // periodicity, and vice versa).
  const std::vector<std::string> queries = {
      "exists T (tp0(T, c0))",
      "exists T, X (tp0(T, X))",
      "exists T (tp1(T, c1) & tp0(T, c0))",
      "exists T (tp0(T, c0) & ~tp1(T, c0))",
      "exists X (tp2(0, X) | tp2(1, X))",
      "np0(c0, c1) | exists T (tp1(T, c2))",
  };
  for (const std::string& text : queries) {
    auto q = ParseQuery(text, unit.program.vocab());
    ASSERT_TRUE(q.ok()) << q.status() << " " << text;
    auto via_spec = EvaluateQueryOverSpec(*q, *spec);
    auto via_model = EvaluateQueryOverModel(*q, *model, horizon);
    ASSERT_TRUE(via_spec.ok());
    ASSERT_TRUE(via_model.ok());
    EXPECT_EQ(via_spec->boolean, via_model->boolean) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QueryInvariance, ::testing::Range(0u, 20u));

// --------------------------------------------------------------------------
// Invariant 5: the Theorem 5.2 decision agrees with sampled semantics.
// --------------------------------------------------------------------------

using InflationaryAgreement = SeededTest;

TEST_P(InflationaryAgreement, CopyRulesForceInflationary) {
  // Appending an unconditional copy rule for every derived temporal
  // predicate makes any program inflationary; the checker must agree.
  std::string src = RandomSource(GetParam() + 7000, /*progressive=*/true);
  ParsedUnit probe = MustParse(src);
  std::string copies;
  for (PredicateId pred : probe.program.DerivedPredicates()) {
    const PredicateInfo& info = probe.program.vocab().predicate(pred);
    if (!info.is_temporal) continue;
    copies += info.name + "(T+1";
    for (uint32_t j = 0; j < info.arity; ++j) {
      copies += ", V" + std::to_string(j);
    }
    copies += ") :- " + info.name + "(T";
    for (uint32_t j = 0; j < info.arity; ++j) {
      copies += ", V" + std::to_string(j);
    }
    copies += ").\n";
  }
  std::string full = src + copies;
  SCOPED_TRACE(full);
  ParsedUnit unit = MustParse(full);
  auto report = CheckInflationary(unit.program);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->inflationary)
      << report->ToString(unit.program.vocab());
}

TEST_P(InflationaryAgreement, PositiveVerdictImpliesSemanticPersistence) {
  std::string src = RandomSource(GetParam() + 8000, /*progressive=*/true);
  SCOPED_TRACE(src);
  ParsedUnit unit = MustParse(src);
  auto report = CheckInflationary(unit.program);
  ASSERT_TRUE(report.ok()) << report.status();
  if (!report->inflationary) return;  // nothing claimed
  const int64_t horizon = 16;
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  std::vector<PredicateId> derived = unit.program.DerivedPredicates();
  model->ForEach([&](PredicateId pred, int64_t t, const Tuple& args) {
    if (!unit.program.vocab().predicate(pred).is_temporal) return;
    if (std::find(derived.begin(), derived.end(), pred) == derived.end()) {
      return;
    }
    if (t + 1 > horizon) return;
    EXPECT_TRUE(model->Contains(pred, t + 1, args))
        << GroundAtomToString(GroundAtom(pred, t, args),
                              unit.program.vocab())
        << " holds but not at t+1";
  });
}

TEST_P(InflationaryAgreement, InflationaryProgramsHavePeriodOne) {
  // Theorem 5.1: inflationary => period (poly(n)+1, 1).
  std::string src = RandomSource(GetParam() + 7000, /*progressive=*/true);
  ParsedUnit probe = MustParse(src);
  std::string copies;
  for (PredicateId pred : probe.program.DerivedPredicates()) {
    const PredicateInfo& info = probe.program.vocab().predicate(pred);
    if (!info.is_temporal) continue;
    copies += info.name + "(T+1, V0) :- " + info.name + "(T, V0).\n";
  }
  ParsedUnit unit = MustParse(src + copies);
  auto detection = DetectPeriod(unit.program, unit.database);
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_EQ(detection->period.p, 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, InflationaryAgreement,
                         ::testing::Range(0u, 15u));

// --------------------------------------------------------------------------
// Invariant 7: normalisation preserves least models.
// --------------------------------------------------------------------------

using NormalizeProperty = SeededTest;

TEST_P(NormalizeProperty, NormalizePreservesOriginalVocabularyModel) {
  std::mt19937 rng(GetParam() + 9000);
  workload::RandomProgramOptions options;
  options.progressive_only = true;
  options.max_offset = 3;  // force deep rules
  options.num_rules = 4;
  std::string src = workload::RandomProgramSource(options, &rng);
  SCOPED_TRACE(src);
  ParsedUnit unit = MustParse(src);
  auto normal = Normalize(unit.program);
  ASSERT_TRUE(normal.ok()) << normal.status();
  EXPECT_TRUE(normal->IsNormal());

  const int64_t compare_to = 10;
  const int64_t eval_to = compare_to + 2 * unit.program.MaxTemporalDepth();
  FixpointOptions orig_options;
  orig_options.max_time = compare_to;
  auto original = SemiNaiveFixpoint(unit.program, unit.database, orig_options);
  ASSERT_TRUE(original.ok());
  FixpointOptions norm_options;
  norm_options.max_time = eval_to;
  auto transformed = SemiNaiveFixpoint(*normal, unit.database, norm_options);
  ASSERT_TRUE(transformed.ok());

  const Vocabulary& vocab = unit.program.vocab();
  original->ForEach([&](PredicateId pred, int64_t t, const Tuple& args) {
    EXPECT_TRUE(transformed->Contains(pred, t, args))
        << "missing " << GroundAtomToString(GroundAtom(pred, t, args), vocab);
  });
  transformed->ForEach([&](PredicateId pred, int64_t t, const Tuple& args) {
    if (vocab.predicate(pred).name[0] == '$') return;
    if (t > compare_to) return;
    EXPECT_TRUE(original->Contains(pred, t, args))
        << "extra " << GroundAtomToString(GroundAtom(pred, t, args), vocab);
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, NormalizeProperty, ::testing::Range(0u, 15u));

// --------------------------------------------------------------------------
// Invariant: algorithm BT agrees with specification-based answering.
// --------------------------------------------------------------------------

using BtAgreement = SeededTest;

TEST_P(BtAgreement, BtMatchesSpecOnRandomAtoms) {
  std::string src = RandomSource(GetParam() + 10000, /*progressive=*/true);
  SCOPED_TRACE(src);
  ParsedUnit unit = MustParse(src);
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok()) << spec.status();
  BtOptions bt_options;
  bt_options.range = spec->num_representatives();
  bt_options.semi_naive = true;
  std::mt19937 rng(GetParam());
  const Vocabulary& vocab = unit.program.vocab();
  for (int probe = 0; probe < 20; ++probe) {
    PredicateId pred = std::uniform_int_distribution<PredicateId>(
        0, static_cast<PredicateId>(vocab.num_predicates() - 1))(rng);
    const PredicateInfo& info = vocab.predicate(pred);
    GroundAtom atom;
    atom.pred = pred;
    atom.time = info.is_temporal
                    ? std::uniform_int_distribution<int64_t>(0, 40)(rng)
                    : 0;
    for (uint32_t j = 0; j < info.arity; ++j) {
      atom.args.push_back(std::uniform_int_distribution<SymbolId>(
          0, static_cast<SymbolId>(vocab.num_constants() - 1))(rng));
    }
    auto bt = RunBt(unit.program, unit.database, atom, bt_options);
    ASSERT_TRUE(bt.ok()) << bt.status();
    EXPECT_EQ(bt->answer, spec->Ask(atom))
        << GroundAtomToString(atom, vocab);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BtAgreement, ::testing::Range(0u, 15u));

}  // namespace
}  // namespace chronolog
