#include <gtest/gtest.h>

#include "analysis/slice.h"
#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

PredicateId Pred(const ParsedUnit& unit, std::string_view name) {
  PredicateId id = unit.program.vocab().FindPredicate(name);
  EXPECT_NE(id, kInvalidPredicate);
  return id;
}

TEST(SliceTest, DropsIrrelevantRules) {
  ParsedUnit unit = MustParse(R"(
    a(T+1) :- a(T).
    b(T+1) :- b(T).
    c(T) :- a(T).
    a(0). b(0). c(0).
  )");
  auto slice = SliceForGoals(unit.program, {Pred(unit, "c")});
  ASSERT_TRUE(slice.ok()) << slice.status();
  // c depends on a but not on b.
  EXPECT_EQ(slice->program.rules().size(), 2u);
  EXPECT_EQ(slice->relevant.size(), 2u);
  for (const Rule& rule : slice->program.rules()) {
    EXPECT_NE(unit.program.vocab().predicate(rule.head.pred).name, "b");
  }
}

TEST(SliceTest, ClosureFollowsBodies) {
  ParsedUnit unit = MustParse(R"(
    top(T) :- mid(T).
    mid(T) :- base(T).
    base(T+1) :- base(T).
    other(T+1) :- other(T).
    base(0). other(0). top(0).
  )");
  auto slice = SliceForGoals(unit.program, {Pred(unit, "top")});
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->relevant.size(), 3u);  // top, mid, base
  EXPECT_EQ(slice->program.rules().size(), 3u);
}

TEST(SliceTest, SlicedModelAgreesOnRelevantPredicates) {
  std::mt19937 rng(77);
  ParsedUnit unit = MustParse(
      workload::PathProgramSource() +
      workload::RandomGraphFactsSource(5, 8, &rng) +
      "unrelated(T+1, X) :- unrelated(T, X).\nunrelated(0, z).\n");
  PredicateId path = Pred(unit, "path");
  auto slice = SliceForGoals(unit.program, {path});
  ASSERT_TRUE(slice.ok());
  Database sliced_db = SliceDatabase(unit.database, slice->relevant);
  EXPECT_LT(sliced_db.size(), unit.database.size());

  FixpointOptions options;
  options.max_time = 10;
  auto full_model = SemiNaiveFixpoint(unit.program, unit.database, options);
  auto slice_model =
      SemiNaiveFixpoint(slice->program, sliced_db, options);
  ASSERT_TRUE(full_model.ok());
  ASSERT_TRUE(slice_model.ok());
  // Identical extension for every relevant predicate, in both directions.
  full_model->ForEach([&](PredicateId pred, int64_t t, const Tuple& args) {
    if (!std::binary_search(slice->relevant.begin(), slice->relevant.end(),
                            pred)) {
      return;
    }
    EXPECT_TRUE(slice_model->Contains(pred, t, args));
  });
  slice_model->ForEach([&](PredicateId pred, int64_t t, const Tuple& args) {
    EXPECT_TRUE(full_model->Contains(pred, t, args));
  });
  // And the unrelated predicate is really gone from the slice.
  EXPECT_FALSE(slice_model->Contains(
      GroundAtom(Pred(unit, "unrelated"), 0,
                 {unit.program.vocab().FindConstant("z")})));
}

TEST(SliceTest, GoalWithNoRulesKeepsOnlyEdb) {
  ParsedUnit unit = MustParse("p(T+1) :- p(T).\np(0). q(3).");
  auto slice = SliceForGoals(unit.program, {Pred(unit, "q")});
  ASSERT_TRUE(slice.ok());
  EXPECT_TRUE(slice->program.rules().empty());
  EXPECT_EQ(slice->relevant.size(), 1u);
}

TEST(SliceTest, UnknownGoalFails) {
  ParsedUnit unit = MustParse("p(0).");
  auto slice = SliceForGoals(unit.program, {12345});
  EXPECT_EQ(slice.status().code(), StatusCode::kInvalidArgument);
}

TEST(SliceTest, MultipleGoals) {
  ParsedUnit unit = MustParse(R"(
    a(T) :- x(T).
    b(T) :- y(T).
    c(T) :- z(T).
    x(0). y(0). z(0). a(0). b(0). c(0).
  )");
  auto slice =
      SliceForGoals(unit.program, {Pred(unit, "a"), Pred(unit, "b")});
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->program.rules().size(), 2u);
  EXPECT_EQ(slice->relevant.size(), 4u);  // a, b, x, y
}

}  // namespace
}  // namespace chronolog
