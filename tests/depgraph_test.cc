// DependencyGraph structure tests: self-recursion, rule-less predicates,
// disconnected components and the reverse-topological component numbering
// the SCC-ordered analyses (iperiod, chronolog_flow) rely on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string_view>
#include <vector>

#include "analysis/depgraph.h"
#include "ast/parser.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

PredicateId Pred(const ParsedUnit& unit, std::string_view name) {
  const PredicateId p = unit.program.vocab().FindPredicate(name);
  EXPECT_NE(p, kInvalidPredicate) << name;
  return p;
}

TEST(DepGraphTest, SelfRecursivePredicateIsItsOwnRecursiveComponent) {
  ParsedUnit unit = MustParse(R"(
    even(0).
    even(T+2) :- even(T).
  )");
  DependencyGraph graph(unit.program);
  const PredicateId even = Pred(unit, "even");
  EXPECT_TRUE(graph.IsRecursive(even));
  EXPECT_FALSE(graph.HasMutualRecursion());
  ASSERT_LT(graph.ComponentOf(even), graph.num_components());
  EXPECT_EQ(graph.components()[graph.ComponentOf(even)],
            std::vector<PredicateId>{even});
  // The self-loop is a dependency edge like any other.
  EXPECT_EQ(graph.DependsOn(even), std::vector<PredicateId>{even});
}

TEST(DepGraphTest, PredicateWithNoRulesIsNonRecursiveLeaf) {
  ParsedUnit unit = MustParse(R"(
    edge(a, b).
    path(X, Y) :- edge(X, Y).
  )");
  DependencyGraph graph(unit.program);
  const PredicateId edge = Pred(unit, "edge");
  const PredicateId path = Pred(unit, "path");
  EXPECT_FALSE(graph.IsRecursive(edge));
  EXPECT_TRUE(graph.DependsOn(edge).empty());
  // An EDB-only predicate still owns a (singleton) component, numbered
  // before its consumers: callees first.
  EXPECT_LT(graph.ComponentOf(edge), graph.ComponentOf(path));
}

TEST(DepGraphTest, DisconnectedProgramsGetDisjointComponents) {
  ParsedUnit unit = MustParse(R"(
    a(0).
    a(T+1) :- a(T).
    b(0).
    b(T+3) :- b(T).
  )");
  DependencyGraph graph(unit.program);
  const PredicateId a = Pred(unit, "a");
  const PredicateId b = Pred(unit, "b");
  EXPECT_NE(graph.ComponentOf(a), graph.ComponentOf(b));
  EXPECT_FALSE(graph.HasMutualRecursion());
  // Each component holds exactly its own predicate.
  EXPECT_EQ(graph.components()[graph.ComponentOf(a)],
            std::vector<PredicateId>{a});
  EXPECT_EQ(graph.components()[graph.ComponentOf(b)],
            std::vector<PredicateId>{b});
}

TEST(DepGraphTest, ComponentsAreNumberedReverseTopologically) {
  // A three-layer chain: base <- mid <- top. Increasing component index
  // must visit callees before callers, the order every stratified analysis
  // iterates in.
  ParsedUnit unit = MustParse(R"(
    base(0).
    mid(T) :- base(T).
    top(T) :- mid(T).
  )");
  DependencyGraph graph(unit.program);
  EXPECT_LT(graph.ComponentOf(Pred(unit, "base")),
            graph.ComponentOf(Pred(unit, "mid")));
  EXPECT_LT(graph.ComponentOf(Pred(unit, "mid")),
            graph.ComponentOf(Pred(unit, "top")));

  // TopologicalOrder agrees with the component numbering.
  const std::vector<PredicateId> order = graph.TopologicalOrder();
  ASSERT_EQ(order.size(), graph.num_predicates());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(graph.ComponentOf(order[i - 1]), graph.ComponentOf(order[i]));
  }
}

TEST(DepGraphTest, MutualRecursionMergesIntoOneComponent) {
  ParsedUnit unit = MustParse(R"(
    ping(0).
    pong(T+1) :- ping(T).
    ping(T+1) :- pong(T).
  )");
  DependencyGraph graph(unit.program);
  const PredicateId ping = Pred(unit, "ping");
  const PredicateId pong = Pred(unit, "pong");
  EXPECT_TRUE(graph.HasMutualRecursion());
  EXPECT_TRUE(graph.IsRecursive(ping));
  EXPECT_TRUE(graph.IsRecursive(pong));
  EXPECT_EQ(graph.ComponentOf(ping), graph.ComponentOf(pong));
  const std::set<PredicateId> members(
      graph.components()[graph.ComponentOf(ping)].begin(),
      graph.components()[graph.ComponentOf(ping)].end());
  EXPECT_EQ(members, (std::set<PredicateId>{ping, pong}));
}

TEST(DepGraphTest, EveryPredicateBelongsToExactlyOneComponent) {
  ParsedUnit unit = MustParse(R"(
    e(a, b).
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
    lonely(7).
  )");
  DependencyGraph graph(unit.program);
  std::vector<int> seen(graph.num_components(), 0);
  for (const std::vector<PredicateId>& members : graph.components()) {
    for (PredicateId p : members) {
      ASSERT_LT(graph.ComponentOf(p), graph.num_components());
      EXPECT_EQ(graph.ComponentOf(p),
                static_cast<int>(&members - graph.components().data()));
      ++seen[graph.ComponentOf(p)];
    }
  }
  std::size_t total = 0;
  for (int count : seen) total += static_cast<std::size_t>(count);
  EXPECT_EQ(total, graph.num_predicates());
}

}  // namespace
}  // namespace chronolog
