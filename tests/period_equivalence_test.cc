// The incremental doubling detector (hash-frontier PeriodCandidateTracker,
// resumed across doublings) must return exactly the answer of the reference
// procedure it replaced: recompute the truncated model from scratch at every
// probe horizon, extract all states, and run FindMinimalPeriodInWindow on
// them. This file re-implements that reference loop and sweeps both over
// fixed non-progressive workloads and random programs. The overflow clamp of
// the doubling schedule (NextDoublingHorizon) is unit-tested directly — an
// end-to-end run near INT64_MAX horizons is not representable in memory.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <optional>
#include <random>
#include <string>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "spec/period.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

std::string NonProgressiveSource(uint32_t seed) {
  std::mt19937 rng(seed);
  workload::RandomProgramOptions options;
  options.progressive_only = false;
  options.max_offset = 2;
  options.num_rules = 5;
  options.num_facts = 8;
  return workload::RandomProgramSource(options, &rng);
}

struct ReferenceDetection {
  Period period;
  int64_t horizon = 0;
};

/// The seed implementation of verified doubling, kept as the oracle: a
/// from-scratch fixpoint at every probe horizon, full state extraction, full
/// window scan, acceptance on a (k, p) stable across one doubling.
std::optional<ReferenceDetection> ReferenceDoubling(
    const Program& program, const Database& db,
    const PeriodDetectionOptions& options) {
  const int64_t c = db.MaxTemporalDepth();
  const int64_t g = std::max<int64_t>(1, program.MaxTemporalDepth());
  int64_t m = std::max(options.initial_horizon, c + 4 * g + 4);
  bool have_candidate = false;
  int64_t prev_k = -1;
  int64_t prev_p = -1;
  while (m <= options.max_horizon) {
    FixpointOptions fp;
    fp.max_time = m;
    fp.max_facts = options.max_facts;
    auto model = SemiNaiveFixpoint(program, db, fp);
    EXPECT_TRUE(model.ok()) << model.status();
    std::vector<State> states = ExtractStates(*model, 0, m);
    int64_t k = 0;
    int64_t p = 0;
    if (FindMinimalPeriodInWindow(states, /*min_cycles=*/3, &k, &p)) {
      if (have_candidate && k == prev_k && p == prev_p) {
        return ReferenceDetection{Period{std::max<int64_t>(0, k - c), p}, m};
      }
      have_candidate = true;
      prev_k = k;
      prev_p = p;
    } else {
      have_candidate = false;
    }
    m *= 2;
  }
  return std::nullopt;
}

void ExpectDetectorMatchesReference(const std::string& src,
                                    const PeriodDetectionOptions& options) {
  SCOPED_TRACE(src);
  auto unit = Parser::Parse(src);
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_FALSE(CheckProgressive(unit->program).progressive)
      << "workload must exercise the doubling path";

  auto detection = DetectPeriod(unit->program, unit->database, options);
  std::optional<ReferenceDetection> reference =
      ReferenceDoubling(unit->program, unit->database, options);

  if (!reference.has_value()) {
    EXPECT_EQ(detection.status().code(), StatusCode::kResourceExhausted)
        << detection.status();
    return;
  }
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_EQ(detection->period.b, reference->period.b);
  EXPECT_EQ(detection->period.p, reference->period.p);
  EXPECT_EQ(detection->horizon, reference->horizon);
  EXPECT_FALSE(detection->exact);
}

TEST(PeriodEquivalenceTest, RingWithNonTemporalProjection) {
  // `seen` breaks progressivity (temporal body, non-temporal head), so the
  // lcm(2,3,5) = 30 ring period is found by doubling.
  ExpectDetectorMatchesReference(
      workload::TokenRingSource({2, 3, 5}) + "seen(X) :- tok(T, X).\n",
      PeriodDetectionOptions{});
}

TEST(PeriodEquivalenceTest, BackwardChainWorkload) {
  ExpectDetectorMatchesReference(
      "q(40).\n"
      "p(T) :- q(T+1).\n"
      "p(T) :- p(T+1).\n"
      "r(T+2) :- r(T).\n"
      "r(1).\n",
      PeriodDetectionOptions{});
}

class EquivalenceSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EquivalenceSweep, RandomNonProgressiveProgramsAgree) {
  std::string src = NonProgressiveSource(GetParam() + 700);
  auto unit = Parser::Parse(src);
  ASSERT_TRUE(unit.ok()) << unit.status();
  if (CheckProgressive(unit->program).progressive) {
    GTEST_SKIP() << "random program happens to be progressive";
  }
  PeriodDetectionOptions options;
  options.max_horizon = 1 << 12;
  ExpectDetectorMatchesReference(src, options);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquivalenceSweep, ::testing::Range(0u, 20u));

// ---------------------------------------------------------------------------
// Doubling-schedule overflow clamp
// ---------------------------------------------------------------------------

constexpr int64_t kMax = std::numeric_limits<int64_t>::max();

TEST(NextDoublingHorizonTest, DoublesWithinBudget) {
  EXPECT_EQ(NextDoublingHorizon(64, 1 << 20), 128);
  EXPECT_EQ(NextDoublingHorizon(1 << 19, 1 << 20), 1 << 20);
}

TEST(NextDoublingHorizonTest, StopsWhenDoublingWouldExceedBudget) {
  EXPECT_EQ(NextDoublingHorizon((1 << 19) + 1, 1 << 20), -1);
  EXPECT_EQ(NextDoublingHorizon(1 << 20, 1 << 20), -1);
}

TEST(NextDoublingHorizonTest, NoOverflowAtInt64Extremes) {
  // The unclamped `m *= 2` wrapped negative here and the probe loop spun on
  // a nonsense horizon instead of reporting exhaustion.
  EXPECT_EQ(NextDoublingHorizon(kMax / 2, kMax), 2 * (kMax / 2));
  EXPECT_EQ(NextDoublingHorizon(kMax / 2 + 1, kMax), -1);
  EXPECT_EQ(NextDoublingHorizon(kMax - 1, kMax), -1);
  EXPECT_EQ(NextDoublingHorizon(kMax, kMax), -1);
}

TEST(NextDoublingHorizonTest, ScheduleAlwaysTerminates) {
  // Even with the maximal budget the schedule is finite and stays positive.
  int64_t m = 64;
  int steps = 0;
  while (m > 0) {
    ASSERT_LE(m, kMax);
    m = NextDoublingHorizon(m, kMax);
    ASSERT_LT(++steps, 64);
  }
  EXPECT_EQ(m, -1);
}

}  // namespace
}  // namespace chronolog
