// The incrementally maintained snapshot hashes (Interpretation::SnapshotHash
// and its independent second word SnapshotHash2) must equal the from-scratch
// state hashes State::FromInterpretation(m, t).Hash() / .Hash2()
// after every way a model can be produced or mutated: one-shot fixpoints,
// resumed extension chains (including the backward-rule history-rewrite path
// reported through EvalStats::min_new_time), parallel rounds for every thread
// count, truncation, and copies. The combine is order-independent by
// construction; that too is pinned down here.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "query/query_parser.h"
#include "storage/state.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

struct Workload {
  std::string name;
  std::string source;
};

std::vector<Workload> FixedWorkloads() {
  std::mt19937 rng(4242);
  return {
      {"path_cycle",
       workload::PathProgramSource() + workload::CycleGraphFactsSource(8)},
      {"path_random",
       workload::PathProgramSource() +
           workload::RandomGraphFactsSource(10, 20, &rng)},
      {"ski", workload::SkiScheduleSource(3, /*year_len=*/28,
                                          /*winter_len=*/8, /*holidays=*/2)},
      {"coprime_rings", workload::TokenRingSource({2, 3, 5})},
      {"binary_counter", workload::BinaryCounterSource(4)},
      {"even", workload::EvenSource()},
  };
}

std::string NonProgressiveSource(uint32_t seed) {
  std::mt19937 rng(seed);
  workload::RandomProgramOptions options;
  options.progressive_only = false;
  options.max_offset = 2;
  options.num_rules = 5;
  options.num_facts = 8;
  return workload::RandomProgramSource(options, &rng);
}

ParsedUnit MustParse(const std::string& src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

/// Every snapshot hash on [0, horizon] — for BOTH independent hash
/// functions — equals the hash of the state materialised from scratch (and,
/// past the horizon, the empty-state hash).
void ExpectHashesMatchFromScratch(const Interpretation& model,
                                  int64_t horizon) {
  for (int64_t t = 0; t <= horizon; ++t) {
    const State state = State::FromInterpretation(model, t);
    EXPECT_EQ(model.SnapshotHash(t), state.Hash()) << "t=" << t;
    EXPECT_EQ(model.SnapshotHash2(t), state.Hash2()) << "t=" << t;
  }
  EXPECT_EQ(model.SnapshotHash(horizon + 7), State().Hash());
  EXPECT_EQ(model.SnapshotHash2(horizon + 7), State().Hash2());
}

TEST(SnapshotHashTest, FixpointHashesMatchFromScratch) {
  for (const Workload& w : FixedWorkloads()) {
    SCOPED_TRACE(w.name);
    ParsedUnit unit = MustParse(w.source);
    FixpointOptions fp;
    fp.max_time = 48;
    auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
    ASSERT_TRUE(model.ok()) << model.status();
    ExpectHashesMatchFromScratch(*model, 48);
  }
}

TEST(SnapshotHashTest, RandomNonProgressiveFixpointHashesMatch) {
  for (uint32_t seed = 0; seed < 10; ++seed) {
    std::string src = NonProgressiveSource(seed);
    SCOPED_TRACE(src);
    ParsedUnit unit = MustParse(src);
    FixpointOptions fp;
    fp.max_time = 40;
    auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
    ASSERT_TRUE(model.ok()) << model.status();
    ExpectHashesMatchFromScratch(*model, 40);
  }
}

TEST(SnapshotHashTest, ExtendChainMaintainsHashes) {
  for (const Workload& w : FixedWorkloads()) {
    SCOPED_TRACE(w.name);
    ParsedUnit unit = MustParse(w.source);
    FixpointOptions fp;
    fp.max_time = 16;
    auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
    ASSERT_TRUE(model.ok()) << model.status();

    int64_t prior_m = 16;
    for (int64_t m : {32, 64}) {
      fp.max_time = m;
      auto extended = ExtendFixpoint(unit.program, unit.database,
                                     std::move(*model), prior_m, fp);
      ASSERT_TRUE(extended.ok()) << extended.status();
      ExpectHashesMatchFromScratch(*extended, m);
      model = std::move(extended);
      prior_m = m;
    }
  }
}

// A database fact beyond the old bound feeds a backward rule: the extension
// rewrites history down to time 0 (min_new_time == 0) and every snapshot
// hash — including the rewritten prefix — must track the new states.
TEST(SnapshotHashTest, HistoryRewriteMaintainsHashes) {
  ParsedUnit unit = MustParse(R"(
    q(100).
    p(T) :- q(T+1).
    p(T) :- p(T+1).
  )");
  FixpointOptions fp;
  fp.max_time = 50;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
  ASSERT_TRUE(model.ok()) << model.status();
  ASSERT_EQ(model->size(), 0u);

  fp.max_time = 120;
  EvalStats stats;
  auto extended = ExtendFixpoint(unit.program, unit.database,
                                 std::move(*model), 50, fp, &stats);
  ASSERT_TRUE(extended.ok()) << extended.status();
  ASSERT_EQ(stats.min_new_time, 0);
  ExpectHashesMatchFromScratch(*extended, 120);
}

TEST(SnapshotHashTest, ParallelRoundsMaintainHashes) {
  for (const Workload& w : FixedWorkloads()) {
    SCOPED_TRACE(w.name);
    ParsedUnit unit = MustParse(w.source);
    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      FixpointOptions fp;
      fp.max_time = 48;
      fp.num_threads = threads;
      auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
      ASSERT_TRUE(model.ok()) << model.status();
      ExpectHashesMatchFromScratch(*model, 48);
    }
  }
}

TEST(SnapshotHashTest, TruncationPrunesHashes) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({2, 3, 5}));
  FixpointOptions fp;
  fp.max_time = 40;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
  ASSERT_TRUE(model.ok()) << model.status();

  model->TruncateInPlace(17);
  ExpectHashesMatchFromScratch(*model, 17);
  // Truncated snapshots revert to the empty-state hash.
  EXPECT_EQ(model->SnapshotHash(18), State().Hash());
  EXPECT_EQ(model->SnapshotHash(40), State().Hash());
}

TEST(SnapshotHashTest, CopiesCarryHashes) {
  ParsedUnit unit = MustParse(workload::BinaryCounterSource(3));
  FixpointOptions fp;
  fp.max_time = 30;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
  ASSERT_TRUE(model.ok()) << model.status();

  Interpretation copy = *model;
  for (int64_t t = 0; t <= 30; ++t) {
    EXPECT_EQ(copy.SnapshotHash(t), model->SnapshotHash(t)) << "t=" << t;
  }
  ExpectHashesMatchFromScratch(copy, 30);
}

// The combine is a commutative sum: the hash of a snapshot must not depend
// on the order its facts were inserted in.
TEST(SnapshotHashTest, HashIsInsertionOrderIndependent) {
  ParsedUnit unit = MustParse(
      "tok(0, a). tok(0, b). tok(0, c). tok(1, a).\n"
      "tok(T+1, X) :- tok(T, X).");
  const Vocabulary& vocab = unit.program.vocab();
  std::vector<GroundAtom> facts;
  for (std::string_view text :
       {"tok(5, a)", "tok(5, b)", "tok(5, c)", "tok(6, a)", "tok(6, b)"}) {
    auto atom = ParseGroundAtom(text, vocab);
    ASSERT_TRUE(atom.ok()) << atom.status();
    facts.push_back(*atom);
  }

  Interpretation forward_order(unit.program.vocab_ptr());
  for (const GroundAtom& f : facts) forward_order.Insert(f);

  Interpretation reverse_order(unit.program.vocab_ptr());
  for (auto it = facts.rbegin(); it != facts.rend(); ++it) {
    reverse_order.Insert(*it);
  }

  for (int64_t t = 0; t <= 6; ++t) {
    EXPECT_EQ(forward_order.SnapshotHash(t), reverse_order.SnapshotHash(t))
        << "t=" << t;
  }
  // Distinct states should (for these tiny sets) hash differently.
  EXPECT_NE(forward_order.SnapshotHash(5), forward_order.SnapshotHash(6));
  EXPECT_NE(forward_order.SnapshotHash(5), State().Hash());
}

// The second per-fact hash (different finalizer seed, hash.h Mix64b) must be
// genuinely independent of the first: order-invariant like the first, but
// producing different words, so the (h1, h2) pair behaves like a 128-bit
// fingerprint and VerifyCandidate/SnapshotEquals only pay for an exact
// comparison when BOTH words collide.
TEST(SnapshotHashTest, SecondHashIsIndependentAndOrderInvariant) {
  ParsedUnit unit = MustParse(
      "tok(0, a). tok(0, b). tok(0, c). tok(1, a).\n"
      "tok(T+1, X) :- tok(T, X).");
  const Vocabulary& vocab = unit.program.vocab();
  std::vector<GroundAtom> facts;
  for (std::string_view text :
       {"tok(5, a)", "tok(5, b)", "tok(5, c)", "tok(6, a)", "tok(6, b)"}) {
    auto atom = ParseGroundAtom(text, vocab);
    ASSERT_TRUE(atom.ok()) << atom.status();
    facts.push_back(*atom);
  }

  Interpretation forward_order(unit.program.vocab_ptr());
  for (const GroundAtom& f : facts) forward_order.Insert(f);
  Interpretation reverse_order(unit.program.vocab_ptr());
  for (auto it = facts.rbegin(); it != facts.rend(); ++it) {
    reverse_order.Insert(*it);
  }

  for (int64_t t = 0; t <= 6; ++t) {
    EXPECT_EQ(forward_order.SnapshotHash2(t), reverse_order.SnapshotHash2(t))
        << "t=" << t;
  }
  // Independence: for non-empty snapshots the two hash words disagree (the
  // finalizers differ), and distinct states get distinct second hashes.
  EXPECT_NE(forward_order.SnapshotHash2(5), forward_order.SnapshotHash(5));
  EXPECT_NE(forward_order.SnapshotHash2(6), forward_order.SnapshotHash(6));
  EXPECT_NE(forward_order.SnapshotHash2(5), forward_order.SnapshotHash2(6));
  EXPECT_NE(forward_order.SnapshotHash2(5), State().Hash2());

  // State::Hash2 mirrors the same independence.
  const State s5 = State::FromInterpretation(forward_order, 5);
  EXPECT_NE(s5.Hash2(), s5.Hash());
  EXPECT_EQ(s5.Hash2(), forward_order.SnapshotHash2(5));
}

TEST(SnapshotHashTest, TruncationPrunesSecondHashToo) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({2, 3}));
  FixpointOptions fp;
  fp.max_time = 30;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
  ASSERT_TRUE(model.ok()) << model.status();
  model->TruncateInPlace(11);
  ExpectHashesMatchFromScratch(*model, 11);
  EXPECT_EQ(model->SnapshotHash2(12), State().Hash2());
  EXPECT_EQ(model->SnapshotHash2(30), State().Hash2());
}

TEST(SnapshotHashTest, SnapshotEqualsAgreesWithStateEquality) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({3, 4}));
  FixpointOptions fp;
  fp.max_time = 30;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
  ASSERT_TRUE(model.ok()) << model.status();
  for (int64_t t1 = 0; t1 <= 30; ++t1) {
    for (int64_t t2 = t1; t2 <= 30; ++t2) {
      EXPECT_EQ(model->SnapshotEquals(t1, t2),
                State::FromInterpretation(*model, t1) ==
                    State::FromInterpretation(*model, t2))
          << "t1=" << t1 << " t2=" << t2;
    }
  }
}

}  // namespace
}  // namespace chronolog
