// Shared gtest main for every chronolog test binary. Its one job beyond
// RUN_ALL_TESTS is reading $CHRONOLOG_NUM_THREADS into the process-wide
// fixpoint thread default, so CI can run the *entire* suite against the
// parallel semi-naive evaluator (results are thread-count independent by
// design — see DESIGN.md, "Parallel semi-naive rounds") without any test
// opting in individually. bench/ci.sh runs the suite twice: once plain,
// once with CHRONOLOG_NUM_THREADS=4.

#include <gtest/gtest.h>

#include <cstdlib>

#include "eval/fixpoint.h"

int main(int argc, char** argv) {
  if (const char* env = std::getenv("CHRONOLOG_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) chronolog::SetDefaultFixpointThreads(n);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
