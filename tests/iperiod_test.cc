#include <gtest/gtest.h>

#include "analysis/iperiod.h"
#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "eval/forward.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

/// Checks that (b0, p0) is a valid period of the least model of
/// `program ∧ db`: materialises well past b0 + c and verifies
/// M[t] = M[t+p0] for all t >= b0 + c.
void ExpectValidPeriod(const Program& program, const Database& db,
                       const Period& iperiod, int64_t margin = 3) {
  ForwardOptions options;
  options.max_steps = 1 << 20;
  auto run = ForwardSimulate(program, db);
  ASSERT_TRUE(run.ok()) << run.status();
  // Minimal period must divide the I-period, and the I-period's onset must
  // not precede what the minimal detection found impossible.
  EXPECT_EQ(iperiod.p % run->period.p, 0)
      << "minimal p=" << run->period.p << " does not divide I-period p="
      << iperiod.p;
  EXPECT_GE(iperiod.b, run->period.b);
  // Direct check on materialised states.
  const int64_t c = db.MaxTemporalDepth();
  const int64_t start = iperiod.b + c;
  const int64_t horizon = start + margin * iperiod.p;
  FixpointOptions fp;
  fp.max_time = horizon;
  auto model = SemiNaiveFixpoint(program, db, fp);
  ASSERT_TRUE(model.ok());
  for (int64_t t = start; t + iperiod.p <= horizon; ++t) {
    EXPECT_EQ(State::FromInterpretation(*model, t),
              State::FromInterpretation(*model, t + iperiod.p))
        << "t=" << t;
  }
}

// --------------------------------------------------------------------------
// Exact enumeration (Theorem 6.3 construction)
// --------------------------------------------------------------------------

TEST(IPeriodTest, EvenProgram) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto result = ComputeIPeriod(unit.program);
  ASSERT_TRUE(result.ok()) << result.status();
  // Look-back 2 for one predicate: 4 initial windows.
  EXPECT_EQ(result->simulations, 4u);
  EXPECT_EQ(result->period.p % 2, 0);  // the even cycle must divide p0
  ExpectValidPeriod(unit.program, unit.database, result->period);
}

TEST(IPeriodTest, DelayChains) {
  ParsedUnit unit = MustParse(workload::DelayChainSource({3, 4}));
  auto result = ComputeIPeriod(unit.program);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->period.p % 12, 0);  // lcm(3,4) divides p0
  ExpectValidPeriod(unit.program, unit.database, result->period);
}

TEST(IPeriodTest, IPeriodIsDatabaseIndependent) {
  // Same program, several different databases: the single I-period must be
  // a valid period for each (the defining property of I-periodicity).
  std::string rules = "p(T+3, X) :- p(T, X).\nq(T+2, X) :- q(T, X), p(T, X).\n";
  ParsedUnit reference = MustParse(rules + "p(0, a).");
  auto iperiod = ComputeIPeriod(reference.program);
  ASSERT_TRUE(iperiod.ok()) << iperiod.status();
  for (const std::string& facts :
       {std::string("p(0, a)."), std::string("p(1, a). q(0, a)."),
        std::string("p(0, a). p(2, b). q(1, b)."),
        std::string("q(5, z).")}) {
    ParsedUnit unit = MustParse(rules + facts);
    ExpectValidPeriod(unit.program, unit.database, iperiod->period);
  }
}

TEST(IPeriodTest, RandomTimeOnlyProgramsAreCovered) {
  std::mt19937 rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    std::string src = workload::RandomTimeOnlySource(
        /*num_preds=*/2, /*num_rules=*/3, /*max_delay=*/3, &rng);
    ParsedUnit unit = MustParse(src);
    auto result = ComputeIPeriod(unit.program, {});
    if (!result.ok()) {
      // Over budget is acceptable; unsoundness is not.
      EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
          << src << result.status();
      continue;
    }
    SCOPED_TRACE("source:\n" + src);
    ExpectValidPeriod(unit.program, unit.database, result->period);
  }
}

// --------------------------------------------------------------------------
// Preconditions
// --------------------------------------------------------------------------

TEST(IPeriodTest, NonMultiSeparableIsRejected) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({3}));
  auto result = ComputeIPeriod(unit.program);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IPeriodTest, WideArityIsRejected) {
  ParsedUnit unit = MustParse(
      "@temporal near/3.\nnear(T+1, X, Y) :- near(T, X, Y).");
  auto result = ComputeIPeriod(unit.program);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IPeriodTest, EntityEscapeIsRejected) {
  // q's rule reads p of a different entity: entities interact.
  ParsedUnit unit = MustParse(
      "@temporal p/2. @temporal q/2.\n"
      "q(T+1, X) :- q(T, X), p(T, Y).");
  auto result = ComputeIPeriod(unit.program);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IPeriodTest, BudgetIsEnforced) {
  ParsedUnit unit = MustParse(workload::DelayChainSource({5, 6, 7}));
  IPeriodOptions options;
  options.max_bits = 4;  // 3 predicates x look-back 7 = 21 bits needed
  auto result = ComputeIPeriod(unit.program, options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

// --------------------------------------------------------------------------
// Static upper bound (Theorem 6.5 composition)
// --------------------------------------------------------------------------

TEST(IPeriodBoundTest, SingleDelayIsExactOnP) {
  ParsedUnit unit = MustParse("d(T+5) :- d(T).\nd(0).");
  auto bound = IPeriodUpperBound(unit.program);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_FALSE(bound->saturated);
  EXPECT_EQ(bound->p, 5u);
}

TEST(IPeriodBoundTest, DelayChainsLcm) {
  ParsedUnit unit = MustParse(workload::DelayChainSource({4, 6}));
  auto bound = IPeriodUpperBound(unit.program);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->p, 12u);  // lcm(4, 6)
  // Observed minimal period divides the bound.
  auto run = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(bound->p % run->period.p, 0u);
}

TEST(IPeriodBoundTest, SkiScheduleSaturates) {
  // The driven `plane` stratum (look-back 7, inputs period 12) exceeds any
  // practical lcm bound: the Theorem 6.5 bound is finite but astronomical.
  ParsedUnit unit = MustParse(workload::SkiScheduleSource(2, 12, 4, 1));
  auto bound = IPeriodUpperBound(unit.program);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_TRUE(bound->saturated);
}

TEST(IPeriodBoundTest, NonMultiSeparableIsRejected) {
  ParsedUnit unit = MustParse(workload::BinaryCounterSource(3));
  EXPECT_EQ(IPeriodUpperBound(unit.program).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(IPeriodBoundTest, DataOnlyStratumPassesInputsThrough) {
  ParsedUnit unit = MustParse(R"(
    @temporal season/1. @temporal busy/2.
    season(T+4) :- season(T).
    busy(T, X) :- busy(T, Y), link(X, Y).
    season(0). busy(0, a). link(b, a).
  )");
  auto bound = IPeriodUpperBound(unit.program);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_FALSE(bound->saturated);
  EXPECT_EQ(bound->p % 4, 0u);
}

}  // namespace
}  // namespace chronolog
