#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "query/query_parser.h"
#include "spec/period.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

GroundAtom MustGround(const ParsedUnit& unit, std::string_view text) {
  auto atom = ParseGroundAtom(text, unit.program.vocab());
  EXPECT_TRUE(atom.ok()) << atom.status();
  return std::move(atom).value();
}

// --------------------------------------------------------------------------
// FindMinimalPeriodInWindow
// --------------------------------------------------------------------------

std::vector<State> StatesOf(std::string_view src, int64_t horizon) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok());
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit->program, unit->database, options);
  EXPECT_TRUE(model.ok());
  std::vector<State> states;
  for (int64_t t = 0; t <= horizon; ++t) {
    states.push_back(State::FromInterpretation(*model, t));
  }
  return states;
}

TEST(PeriodWindowTest, FindsEvenPeriod) {
  std::vector<State> states = StatesOf(workload::EvenSource(), 20);
  int64_t k = -1;
  int64_t p = -1;
  ASSERT_TRUE(FindMinimalPeriodInWindow(states, /*min_cycles=*/3, &k, &p));
  EXPECT_EQ(p, 2);
  EXPECT_EQ(k, 0);
}

TEST(PeriodWindowTest, InsufficientEvidenceReturnsFalse) {
  std::vector<State> states = StatesOf(workload::EvenSource(), 3);
  int64_t k = -1;
  int64_t p = -1;
  EXPECT_FALSE(FindMinimalPeriodInWindow(states, /*min_cycles=*/3, &k, &p));
}

TEST(PeriodWindowTest, ConstantSequenceHasPeriodOne) {
  std::vector<State> states = StatesOf("p(0). p(T+1) :- p(T).", 12);
  int64_t k = -1;
  int64_t p = -1;
  ASSERT_TRUE(FindMinimalPeriodInWindow(states, 3, &k, &p));
  EXPECT_EQ(p, 1);
  EXPECT_EQ(k, 0);
}

// --------------------------------------------------------------------------
// DetectPeriod: exact (forward) and verified-doubling paths
// --------------------------------------------------------------------------

TEST(DetectPeriodTest, ProgressiveUsesExactDetector) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto detection = DetectPeriod(unit.program, unit.database);
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_TRUE(detection->exact);
  EXPECT_EQ(detection->period.p, 2);
}

TEST(DetectPeriodTest, NonProgressiveFallsBackToDoubling) {
  // Backward rule: p spreads downward from 6 in steps of 2.
  ParsedUnit unit = MustParse("p(T) :- p(T+2).\np(6).");
  auto detection = DetectPeriod(unit.program, unit.database);
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_FALSE(detection->exact);
  // Model: p at 6, 4, 2, 0 and nothing else -> eventually empty states,
  // period (0, 1) relative to c = 6.
  EXPECT_EQ(detection->period.p, 1);
  EXPECT_TRUE(detection->model.Contains(MustGround(unit, "p(0)")));
  EXPECT_TRUE(detection->model.Contains(MustGround(unit, "p(4)")));
  EXPECT_FALSE(detection->model.Contains(MustGround(unit, "p(1)")));
  EXPECT_FALSE(detection->model.Contains(MustGround(unit, "p(8)")));
}

TEST(DetectPeriodTest, DoublingMatchesForwardOnProgressivePrograms) {
  for (const std::string& src :
       {workload::EvenSource(), workload::TokenRingSource({2, 3}),
        workload::DelayChainSource({3, 5})}) {
    ParsedUnit unit = MustParse(src);
    PeriodDetectionOptions forced;
    auto exact = DetectPeriod(unit.program, unit.database, forced);
    ASSERT_TRUE(exact.ok());
    // Force the doubling path by evaluating a logically equal program that
    // only differs by a harmless backward rule on a scratch predicate.
    ParsedUnit tweaked = MustParse(
        src + "\nscratch(T) :- scratch(T+1).\nscratch(0).");
    auto doubled = DetectPeriod(tweaked.program, tweaked.database, forced);
    ASSERT_TRUE(doubled.ok()) << doubled.status();
    EXPECT_FALSE(doubled->exact);
    EXPECT_EQ(doubled->period.p, exact->period.p) << src;
  }
}

TEST(DetectPeriodTest, GeneralPathDisabledFails) {
  ParsedUnit unit = MustParse("p(T) :- p(T+1).\np(3).");
  PeriodDetectionOptions options;
  options.allow_general = false;
  auto detection = DetectPeriod(unit.program, unit.database, options);
  EXPECT_EQ(detection.status().code(), StatusCode::kFailedPrecondition);
}

TEST(DetectPeriodTest, HorizonBudgetIsEnforced) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({101, 103}));
  PeriodDetectionOptions options;
  options.max_horizon = 512;  // lcm = 10403
  auto detection = DetectPeriod(unit.program, unit.database, options);
  EXPECT_EQ(detection.status().code(), StatusCode::kResourceExhausted);
}

// --------------------------------------------------------------------------
// RelationalSpecification: the paper's `even` example, literally
// --------------------------------------------------------------------------

TEST(SpecificationTest, EvenMatchesPaperSection33) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok()) << spec.status();
  // T = {0, 1}; B = {even(0)}; W = {2 -> 0}.
  EXPECT_EQ(spec->num_representatives(), 2);
  EXPECT_EQ(spec->rewrite_lhs(), 2);
  EXPECT_EQ(spec->period().p, 2);
  EXPECT_EQ(spec->SizeInFacts(), 1u);
  EXPECT_TRUE(spec->primary().Contains(MustGround(unit, "even(0)")));
  // Paper: even(4) rewrites to even(2) then even(0): yes.
  EXPECT_TRUE(spec->Ask(MustGround(unit, "even(4)")));
  // Paper: even(3) rewrites to even(1), not in B: no.
  EXPECT_FALSE(spec->Ask(MustGround(unit, "even(3)")));
  EXPECT_EQ(spec->Canonicalize(4), 0);
  EXPECT_EQ(spec->Canonicalize(3), 1);
  EXPECT_EQ(spec->Canonicalize(1), 1);
  EXPECT_EQ(spec->Canonicalize(0), 0);
}

TEST(SpecificationTest, CanonicalizeIsIdempotentOnRepresentatives) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({3, 4}));
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  for (int64_t t = 0; t < spec->num_representatives(); ++t) {
    EXPECT_TRUE(spec->IsRepresentative(t));
    EXPECT_EQ(spec->Canonicalize(t), t);
  }
  for (int64_t t = spec->num_representatives(); t < 200; ++t) {
    int64_t canonical = spec->Canonicalize(t);
    EXPECT_TRUE(spec->IsRepresentative(canonical)) << t;
    // Rewriting is compatible with stepping by p.
    EXPECT_EQ(spec->Canonicalize(t + spec->period().p), canonical);
  }
}

TEST(SpecificationTest, AskAgreesWithDeepMaterialisation) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({2, 5}));
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  const int64_t horizon = 60;
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  // Every temporal fact up to the horizon must agree between spec-based
  // lookup and explicit materialisation.
  const Vocabulary& vocab = unit.program.vocab();
  PredicateId tok = vocab.FindPredicate("tok");
  for (int64_t t = 0; t <= horizon; ++t) {
    const Relation& rel = model->Snapshot(tok, t);
    for (uint32_t row = 0; row < rel.size(); ++row) {
      EXPECT_TRUE(spec->Ask(GroundAtom(tok, t, rel.Row(row)))) << t;
    }
  }
  // Spot-check negatives: a token can never be at two ring positions at the
  // same time.
  SymbolId r0_0 = vocab.FindConstant("r0_0");
  SymbolId r0_1 = vocab.FindConstant("r0_1");
  ASSERT_NE(r0_0, kInvalidSymbol);
  for (int64_t t = 0; t <= horizon; ++t) {
    EXPECT_NE(spec->Ask(GroundAtom(tok, t, {r0_0})) &&
                  spec->Ask(GroundAtom(tok, t, {r0_1})),
              true)
        << t;
  }
}

TEST(SpecificationTest, NonTemporalFactsLiveInPrimary) {
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::CycleGraphFactsSource(3));
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(spec->Ask(MustGround(unit, "node(n0)")));
  EXPECT_TRUE(spec->Ask(MustGround(unit, "edge(n0, n1)")));
  EXPECT_FALSE(spec->Ask(MustGround(unit, "edge(n1, n0)")));
}

TEST(SpecificationTest, InflationaryPathSpecAnswersDeepQueries) {
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::CycleGraphFactsSource(4));
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->period().p, 1);
  // Once reachable, reachable at every deeper K — including K far beyond
  // the representatives.
  EXPECT_TRUE(spec->Ask(MustGround(unit, "path(1000000, n0, n3)")));
  EXPECT_FALSE(spec->Ask(MustGround(unit, "path(0, n0, n3)")));
}

TEST(SpecificationTest, NegativeTimeAsksAreFalse) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  GroundAtom atom = MustGround(unit, "even(0)");
  atom.time = -5;
  EXPECT_FALSE(spec->Ask(atom));
}

TEST(SpecificationTest, ToStringMentionsAllComponents) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  std::string text = spec->ToString();
  EXPECT_NE(text.find("T = {0, ..., 1}"), std::string::npos) << text;
  EXPECT_NE(text.find("W = {2 -> 0}"), std::string::npos) << text;
  EXPECT_NE(text.find("even(0)"), std::string::npos) << text;
}

TEST(SpecificationTest, BuildInfoReportsDetector) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  SpecificationBuildInfo info;
  auto spec =
      BuildSpecification(unit.program, unit.database, {}, &info);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(info.exact_period);
  EXPECT_GT(info.detection_horizon, 0);
}

}  // namespace
}  // namespace chronolog
