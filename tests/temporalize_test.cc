#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "analysis/inflationary.h"
#include "analysis/temporalize.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "eval/forward.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

ParsedUnit MustTemporalize(std::string_view src) {
  ParsedUnit unit = MustParse(src);
  auto out = TemporalizeDatalog(unit.program, unit.database);
  EXPECT_TRUE(out.ok()) << out.status();
  return std::move(out).value();
}

TEST(TemporalizeTest, StructureMatchesTheorem62) {
  // Paper example: a(X,Z) :- p(X,Y), a(Y,Z).  becomes
  //                a(T+1,X,Z) :- p(T,X,Y), a(T,Y,Z).  plus copy rules.
  ParsedUnit out = MustTemporalize(
      "a(X, Z) :- p(X, Y), a(Y, Z).\np(b, c). a(d1, d2).");
  // 1 counting rule + 2 copy rules (a and p).
  EXPECT_EQ(out.program.rules().size(), 3u);
  const Vocabulary& vocab = out.program.vocab();
  EXPECT_TRUE(vocab.predicate(vocab.FindPredicate("a")).is_temporal);
  EXPECT_TRUE(vocab.predicate(vocab.FindPredicate("p")).is_temporal);
  // All database tuples now carry temporal argument 0.
  for (const GroundAtom& f : out.database.facts()) {
    EXPECT_EQ(f.time, 0);
  }
  // The counting rule reads at T and writes at T+1.
  const Rule& counting = out.program.rules()[0];
  EXPECT_EQ(counting.head.time->offset, 1);
  for (const Atom& atom : counting.body) {
    EXPECT_EQ(atom.time->offset, 0);
  }
}

TEST(TemporalizeTest, CopyRulesMakeItInflationary) {
  ParsedUnit out = MustTemporalize(workload::TransitiveClosureDatalogSource() +
                                   "edge(a, b).");
  auto report = CheckInflationary(out.program);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->inflationary);
}

TEST(TemporalizeTest, TemporalizedIsProgressive) {
  ParsedUnit out = MustTemporalize(workload::BoundedDatalogSource() +
                                   "edge(a, b). edge(b, c).");
  EXPECT_TRUE(CheckProgressive(out.program).progressive);
}

TEST(TemporalizeTest, StateAtKEqualsIterationK) {
  // M[k] of the temporalised program = T_S^k(D) of the original program:
  // tc over a chain converges level by level.
  ParsedUnit out = MustTemporalize(workload::TransitiveClosureDatalogSource() +
                                   "edge(a, b). edge(b, c). edge(c, d).");
  auto run = ForwardSimulate(out.program, out.database);
  ASSERT_TRUE(run.ok()) << run.status();
  const Vocabulary& vocab = out.program.vocab();
  PredicateId tc = vocab.FindPredicate("tc");
  SymbolId a = vocab.FindConstant("a");
  SymbolId c = vocab.FindConstant("c");
  SymbolId d = vocab.FindConstant("d");
  // tc(a,c) needs two iterations; tc(a,d) three.
  EXPECT_FALSE(run->model.Contains(tc, 1, {a, c}));
  EXPECT_TRUE(run->model.Contains(tc, 2, {a, c}));
  EXPECT_FALSE(run->model.Contains(tc, 2, {a, d}));
  EXPECT_TRUE(run->model.Contains(tc, 3, {a, d}));
}

TEST(TemporalizeTest, BoundedDatalogYieldsDatabaseIndependentPeriod) {
  // Strongly bounded S => S' is I-periodic with I-period (k, 1): the
  // detected period is p = 1 with b bounded by a constant, across growing
  // databases.
  for (int n : {3, 6, 12, 24}) {
    std::string edges;
    for (int i = 0; i + 1 < n; ++i) {
      edges += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
               ").\n";
    }
    ParsedUnit out =
        MustTemporalize(workload::BoundedDatalogSource() + edges);
    auto run = ForwardSimulate(out.program, out.database);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->period.p, 1) << n;
    EXPECT_LE(run->period.b, 3) << n;  // 2 iterations + slack, regardless of n
  }
}

TEST(TemporalizeTest, UnboundedDatalogPeriodOnsetGrowsWithDiameter) {
  // Transitive closure over a chain of length n needs ~n iterations: the
  // periodicity onset b grows with the database. (p stays 1 because the
  // copy rules make S' inflationary.)
  int64_t previous_b = -1;
  for (int n : {4, 8, 16}) {
    std::string edges;
    for (int i = 0; i + 1 < n; ++i) {
      edges += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
               ").\n";
    }
    ParsedUnit out = MustTemporalize(
        workload::TransitiveClosureDatalogSource() + edges);
    auto run = ForwardSimulate(out.program, out.database);
    ASSERT_TRUE(run.ok());
    EXPECT_EQ(run->period.p, 1);
    EXPECT_GT(run->period.b, previous_b) << n;
    previous_b = run->period.b;
  }
}

TEST(TemporalizeTest, TemporalInputIsRejected) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto out = TemporalizeDatalog(unit.program, unit.database);
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

TEST(TemporalizeTest, RoundTripThroughPrinterParses) {
  ParsedUnit out = MustTemporalize(workload::TransitiveClosureDatalogSource() +
                                   "edge(a, b).");
  std::string text =
      ProgramToString(out.program) + DatabaseToString(out.database);
  auto reparsed = Parser::Parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << text;
  EXPECT_EQ(reparsed->program.rules().size(), out.program.rules().size());
}

}  // namespace
}  // namespace chronolog
