// Column-index probes of Interpretation and their interaction with the
// rule evaluator (hash joins vs the nested-loop baseline).

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "storage/interpretation.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vocab_ = std::make_shared<Vocabulary>();
    auto e = vocab_->DeclarePredicate("e", 2);
    ASSERT_TRUE(e.ok());
    e_ = *e;
    auto p = vocab_->DeclarePredicate("p", 2);
    ASSERT_TRUE(p.ok());
    p_ = *p;
    vocab_->SetTemporal(p_);
    a_ = vocab_->InternConstant("a");
    b_ = vocab_->InternConstant("b");
    c_ = vocab_->InternConstant("c");
  }

  std::shared_ptr<Vocabulary> vocab_;
  PredicateId e_ = 0;
  PredicateId p_ = 0;
  SymbolId a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(IndexTest, NonTemporalProbeFindsBuckets) {
  Interpretation interp(vocab_);
  interp.Insert(e_, 0, {a_, b_});
  interp.Insert(e_, 0, {a_, c_});
  interp.Insert(e_, 0, {b_, c_});
  const auto* bucket = interp.ProbeNonTemporal(e_, 0, a_);
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 2u);
  const auto* col1 = interp.ProbeNonTemporal(e_, 1, c_);
  ASSERT_NE(col1, nullptr);
  EXPECT_EQ(col1->size(), 2u);
  EXPECT_EQ(interp.ProbeNonTemporal(e_, 0, c_), nullptr);
}

TEST_F(IndexTest, IndexIsMaintainedAcrossInserts) {
  Interpretation interp(vocab_);
  interp.Insert(e_, 0, {a_, b_});
  // Build the index first...
  ASSERT_NE(interp.ProbeNonTemporal(e_, 0, a_), nullptr);
  // ...then keep inserting: the bucket must grow.
  interp.Insert(e_, 0, {a_, c_});
  interp.Insert(e_, 0, {b_, b_});
  const auto* bucket = interp.ProbeNonTemporal(e_, 0, a_);
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 2u);
  EXPECT_EQ(interp.ProbeNonTemporal(e_, 0, b_)->size(), 1u);
}

TEST_F(IndexTest, SnapshotProbe) {
  Interpretation interp(vocab_);
  interp.Insert(p_, 3, {a_});
  interp.Insert(p_, 3, {b_});
  interp.Insert(p_, 5, {a_});
  const auto* bucket = interp.ProbeSnapshot(p_, 3, 0, a_);
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 1u);
  // Buckets hold row ids into the probed snapshot's relation.
  EXPECT_EQ(interp.Snapshot(p_, 3).at((*bucket)[0], 0), a_);
  EXPECT_EQ(interp.ProbeSnapshot(p_, 4, 0, a_), nullptr);  // empty snapshot
  EXPECT_EQ(interp.ProbeSnapshot(p_, 3, 0, c_), nullptr);  // empty bucket
}

TEST_F(IndexTest, SnapshotIndexMaintainedAcrossInserts) {
  Interpretation interp(vocab_);
  interp.Insert(p_, 1, {a_});
  ASSERT_NE(interp.ProbeSnapshot(p_, 1, 0, a_), nullptr);
  interp.Insert(p_, 1, {a_});  // duplicate: no growth
  EXPECT_EQ(interp.ProbeSnapshot(p_, 1, 0, a_)->size(), 1u);
  interp.Insert(p_, 1, {b_});
  EXPECT_EQ(interp.ProbeSnapshot(p_, 1, 0, b_)->size(), 1u);
}

TEST_F(IndexTest, CopyDropsIndexSafely) {
  Interpretation interp(vocab_);
  interp.Insert(e_, 0, {a_, b_});
  ASSERT_NE(interp.ProbeNonTemporal(e_, 0, a_), nullptr);
  Interpretation copy = interp;
  // The copy rebuilds its own index on demand and sees the same facts.
  const auto* bucket = copy.ProbeNonTemporal(e_, 0, a_);
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->size(), 1u);
  // Inserting into the copy must not disturb the original.
  copy.Insert(e_, 0, {a_, c_});
  EXPECT_EQ(interp.ProbeNonTemporal(e_, 0, a_)->size(), 1u);
  EXPECT_EQ(copy.ProbeNonTemporal(e_, 0, a_)->size(), 2u);
}

TEST_F(IndexTest, TruncateInvalidatesSnapshotIndex) {
  Interpretation interp(vocab_);
  interp.Insert(p_, 1, {a_});
  interp.Insert(p_, 9, {a_});
  ASSERT_NE(interp.ProbeSnapshot(p_, 9, 0, a_), nullptr);
  interp.TruncateInPlace(5);
  EXPECT_EQ(interp.ProbeSnapshot(p_, 9, 0, a_), nullptr);
  ASSERT_NE(interp.ProbeSnapshot(p_, 1, 0, a_), nullptr);
}

// The ablation invariant: fixpoints with and without the index produce the
// identical least model on random programs.
class IndexAblation : public ::testing::TestWithParam<uint32_t> {};

TEST_P(IndexAblation, IndexedAndUnindexedFixpointsAgree) {
  std::mt19937 rng(GetParam());
  workload::RandomProgramOptions options;
  options.progressive_only = (GetParam() % 2 == 0);
  std::string src = workload::RandomProgramSource(options, &rng);
  SCOPED_TRACE(src);
  auto unit = Parser::Parse(src);
  ASSERT_TRUE(unit.ok()) << unit.status();
  FixpointOptions with_index;
  with_index.max_time = 12;
  FixpointOptions without_index = with_index;
  without_index.use_index = false;
  auto indexed =
      SemiNaiveFixpoint(unit->program, unit->database, with_index);
  auto scanned =
      SemiNaiveFixpoint(unit->program, unit->database, without_index);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE(*indexed == *scanned);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IndexAblation, ::testing::Range(0u, 20u));

}  // namespace
}  // namespace chronolog
