#include <gtest/gtest.h>

#include <clocale>
#include <limits>
#include <string>

#include "util/hash.h"
#include "util/json.h"
#include "util/result.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/symbol_table.h"

namespace chronolog {
namespace {

// --------------------------------------------------------------------------
// Status
// --------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad rule");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad rule");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad rule");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return NotFoundError("inner"); };
  auto outer = [&]() -> Status {
    CHRONOLOG_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

TEST(StatusTest, StatusCodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
}

// --------------------------------------------------------------------------
// Result<T>
// --------------------------------------------------------------------------

TEST(ResultTest, CarriesValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, CarriesError) {
  Result<int> r(NotFoundError("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r(Status::Ok());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto inner = []() -> Result<int> { return 5; };
  auto outer = [&]() -> Result<int> {
    CHRONOLOG_ASSIGN_OR_RETURN(int x, inner());
    return x + 1;
  };
  ASSERT_TRUE(outer().ok());
  EXPECT_EQ(outer().value(), 6);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> { return OutOfRangeError("deep"); };
  auto outer = [&]() -> Result<int> {
    CHRONOLOG_ASSIGN_OR_RETURN(int x, inner());
    return x + 1;
  };
  EXPECT_EQ(outer().status().code(), StatusCode::kOutOfRange);
}

// --------------------------------------------------------------------------
// SymbolTable
// --------------------------------------------------------------------------

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  SymbolId a = table.Intern("hunter");
  SymbolId b = table.Intern("hunter");
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTableTest, DistinctNamesDistinctIds) {
  SymbolTable table;
  SymbolId a = table.Intern("a");
  SymbolId b = table.Intern("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Name(a), "a");
  EXPECT_EQ(table.Name(b), "b");
}

TEST(SymbolTableTest, FindWithoutInterning) {
  SymbolTable table;
  EXPECT_EQ(table.Find("ghost"), kInvalidSymbol);
  SymbolId a = table.Intern("real");
  EXPECT_EQ(table.Find("real"), a);
  EXPECT_TRUE(table.Contains("real"));
  EXPECT_FALSE(table.Contains("ghost"));
}

TEST(SymbolTableTest, ManySymbolsStayStable) {
  SymbolTable table;
  std::vector<SymbolId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(table.Intern("sym" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(table.Name(ids[i]), "sym" + std::to_string(i));
  }
}

// --------------------------------------------------------------------------
// string_util / hash
// --------------------------------------------------------------------------

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("-1"));
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("x", &v));
}

TEST(HashTest, VectorHashDistinguishesOrder) {
  VectorHash h;
  std::vector<uint32_t> a{1, 2};
  std::vector<uint32_t> b{2, 1};
  EXPECT_NE(h(a), h(b));
}

TEST(HashTest, VectorHashDistinguishesLength) {
  VectorHash h;
  std::vector<uint32_t> a{1};
  std::vector<uint32_t> b{1, 0};
  EXPECT_NE(h(a), h(b));
}

// --------------------------------------------------------------------------
// JSON parser (the POST /query request side)
// --------------------------------------------------------------------------

TEST(JsonParserTest, ScalarsAndWhitespace) {
  auto v = ParseJson("  true ");
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_bool());
  EXPECT_TRUE(v->bool_value);
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_FALSE(ParseJson("false")->bool_value);
}

TEST(JsonParserTest, NumbersKeepIntegralExactness) {
  auto i = ParseJson("42");
  ASSERT_TRUE(i.ok());
  EXPECT_TRUE(i->is_number());
  EXPECT_TRUE(i->is_integer);
  EXPECT_EQ(i->int_value, 42);
  auto neg = ParseJson("-7");
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->int_value, -7);
  auto d = ParseJson("2.5e1");
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->is_integer);
  EXPECT_DOUBLE_EQ(d->number, 25.0);
  // Leading zeros are not JSON.
  EXPECT_FALSE(ParseJson("012").ok());
}

TEST(JsonParserTest, StringsWithEscapes) {
  auto v = ParseJson(R"("a\"b\nAé")");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->string_value, "a\"b\nA\xc3\xa9");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  auto emoji = ParseJson(R"("😀")");
  ASSERT_TRUE(emoji.ok()) << emoji.status();
  EXPECT_EQ(emoji->string_value, "\xf0\x9f\x98\x80");
  // A lone high surrogate is malformed.
  EXPECT_FALSE(ParseJson(R"("\ud83d")").ok());
}

TEST(JsonParserTest, ObjectsArraysAndFind) {
  auto v = ParseJson(
      R"j({"query":"even(T)","max_rows":5,"tags":[1,2,3],"nested":{"a":null}})j");
  ASSERT_TRUE(v.ok()) << v.status();
  ASSERT_TRUE(v->is_object());
  const JsonValue* q = v->Find("query");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->string_value, "even(T)");
  EXPECT_EQ(v->Find("max_rows")->int_value, 5);
  ASSERT_TRUE(v->Find("tags")->is_array());
  EXPECT_EQ(v->Find("tags")->array.size(), 3u);
  EXPECT_TRUE(v->Find("nested")->Find("a")->is_null());
  EXPECT_EQ(v->Find("absent"), nullptr);
}

TEST(JsonParserTest, ErrorsCarryByteOffsets) {
  auto bad = ParseJson("{\"a\": }");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("byte"), std::string::npos);
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1,}").ok());
  EXPECT_FALSE(ParseJson("'single'").ok());
}

TEST(FormatDoubleTest, RoundTripsAndStaysJsonSafe) {
  EXPECT_EQ(FormatDouble(0.0), "0");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(-3.25), "-3.25");
  EXPECT_EQ(FormatDouble(42.0), "42");
  // Shortest-round-trip: parsing the output recovers the exact value.
  const double v = 0.042137;
  auto parsed = ParseJson(FormatDouble(v));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->number, v);
  // Non-finite values cannot appear in JSON; they degrade to "0".
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(FormatDoubleTest, IgnoresCommaDecimalLocale) {
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  const bool have_locale =
      std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
      std::setlocale(LC_NUMERIC, "de_DE.utf8") != nullptr;
  const std::string rendered = FormatDouble(1.5);
  const std::string to_string_rendered = std::to_string(1.5);
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_EQ(rendered, "1.5");
  if (have_locale) {
    // The bug being guarded against: std::to_string picked up the comma.
    EXPECT_NE(to_string_rendered.find(','), std::string::npos)
        << "de_DE locale installed but did not use ',' — check the fixture";
  }
}

TEST(JsonParserTest, DepthIsCapped) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string ok(32, '[');
  ok += std::string(32, ']');
  EXPECT_TRUE(ParseJson(ok).ok());
}

}  // namespace
}  // namespace chronolog
