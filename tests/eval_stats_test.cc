// Regression tests for two EvalStats contract bugs:
//
//  * ApplyTp / NaiveFixpoint used to skip `min_new_time` entirely and never
//    counted database-fact inserts, so naive and semi-naive runs of the
//    same program disagreed on `inserted` and `min_new_time`. Both now
//    count every fact exactly once (in the pass that first derives it), so
//    the totals match the semi-naive evaluator's and equal the model size.
//
//  * The parallel round's overflow check compared `full.size() +
//    buffer.size()` against `max_facts` per worker buffer, so N workers
//    could each buffer up to the cap — ~N x max_facts live facts before
//    the overflow was noticed. A shared running total now bounds the
//    aggregate buffered count regardless of the thread count.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "util/metrics.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

struct Workload {
  std::string name;
  std::string source;
};

std::vector<Workload> StatsWorkloads() {
  std::mt19937 rng(77);
  std::vector<Workload> out = {
      {"path_cycle",
       workload::PathProgramSource() + workload::CycleGraphFactsSource(8)},
      {"ski", workload::SkiScheduleSource(3, /*year_len=*/28,
                                          /*winter_len=*/8, /*holidays=*/2)},
      {"coprime_rings", workload::TokenRingSource({2, 3, 5})},
      {"binary_counter", workload::BinaryCounterSource(4)},
      {"even", workload::EvenSource()},
  };
  workload::RandomProgramOptions options;
  options.progressive_only = false;
  options.max_offset = 2;
  options.num_rules = 5;
  options.num_facts = 8;
  for (uint32_t seed = 0; seed < 6; ++seed) {
    out.push_back({"random_" + std::to_string(seed),
                   workload::RandomProgramSource(options, &rng)});
  }
  return out;
}

ParsedUnit MustParse(const std::string& source) {
  auto unit = Parser::Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(*unit);
}

// The headline parity contract: both evaluators report each fact of the
// truncated least model exactly once, so `inserted` equals the model size
// and `min_new_time` is the earliest temporal fact — for both.
TEST(EvalStatsTest, NaiveAndSemiNaiveReportIdenticalStats) {
  for (const Workload& w : StatsWorkloads()) {
    SCOPED_TRACE(w.name);
    ParsedUnit unit = MustParse(w.source);
    FixpointOptions fp;
    fp.max_time = 48;

    EvalStats naive_stats;
    auto naive = NaiveFixpoint(unit.program, unit.database, fp, &naive_stats);
    ASSERT_TRUE(naive.ok()) << naive.status();

    EvalStats semi_stats;
    auto semi =
        SemiNaiveFixpoint(unit.program, unit.database, fp, &semi_stats);
    ASSERT_TRUE(semi.ok()) << semi.status();

    EXPECT_EQ(naive_stats.inserted, semi_stats.inserted);
    EXPECT_EQ(naive_stats.min_new_time, semi_stats.min_new_time);
    EXPECT_EQ(naive_stats.inserted, naive->size());
    EXPECT_EQ(semi_stats.inserted, semi->size());
  }
}

TEST(EvalStatsTest, MinNewTimeIsEarliestTemporalFact) {
  // p holds from 5 on; the earliest temporal fact either evaluator adds is
  // the database seed at 5.
  ParsedUnit unit = MustParse("p(5). p(T+1) :- p(T).");
  FixpointOptions fp;
  fp.max_time = 20;

  EvalStats naive_stats;
  ASSERT_TRUE(NaiveFixpoint(unit.program, unit.database, fp, &naive_stats)
                  .ok());
  EXPECT_EQ(naive_stats.min_new_time, 5);

  EvalStats semi_stats;
  ASSERT_TRUE(SemiNaiveFixpoint(unit.program, unit.database, fp, &semi_stats)
                  .ok());
  EXPECT_EQ(semi_stats.min_new_time, 5);
}

TEST(EvalStatsTest, MinNewTimeUntouchedWithoutTemporalFacts) {
  ParsedUnit unit = MustParse("n(a). n(b). e(X, Y) :- n(X), n(Y).");
  FixpointOptions fp;
  fp.max_time = 4;

  EvalStats naive_stats;
  ASSERT_TRUE(NaiveFixpoint(unit.program, unit.database, fp, &naive_stats)
                  .ok());
  EXPECT_EQ(naive_stats.min_new_time, std::numeric_limits<int64_t>::max());
  EXPECT_EQ(naive_stats.inserted, 6u);  // 2 seeds + 4 pairs

  EvalStats semi_stats;
  ASSERT_TRUE(SemiNaiveFixpoint(unit.program, unit.database, fp, &semi_stats)
                  .ok());
  EXPECT_EQ(semi_stats.min_new_time, std::numeric_limits<int64_t>::max());
  EXPECT_EQ(semi_stats.inserted, 6u);
}

// Database facts beyond the truncation bound are not admitted and must not
// be counted either.
TEST(EvalStatsTest, TruncatedDatabaseFactsAreNotCounted) {
  ParsedUnit unit = MustParse("q(100). q(2).");
  FixpointOptions fp;
  fp.max_time = 10;

  EvalStats naive_stats;
  auto naive = NaiveFixpoint(unit.program, unit.database, fp, &naive_stats);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(naive->size(), 1u);
  EXPECT_EQ(naive_stats.inserted, 1u);
  EXPECT_EQ(naive_stats.min_new_time, 2);

  EvalStats semi_stats;
  auto semi = SemiNaiveFixpoint(unit.program, unit.database, fp, &semi_stats);
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(semi_stats.inserted, 1u);
  EXPECT_EQ(semi_stats.min_new_time, 2);
}

// Repeated Tp applications partition the model: each pass reports only what
// it adds over its input, so the per-pass contributions sum to the
// from-scratch totals.
TEST(EvalStatsTest, ApplyTpPassesSumToFixpointTotals) {
  ParsedUnit unit = MustParse("p(0). p(T+1) :- p(T).");
  FixpointOptions fp;
  fp.max_time = 6;

  Interpretation current(unit.program.vocab_ptr());
  EvalStats accumulated;
  for (int pass = 0; pass < 10; ++pass) {
    EvalStats pass_stats;
    auto next =
        ApplyTp(unit.program, unit.database, current, fp, &pass_stats);
    ASSERT_TRUE(next.ok()) << next.status();
    accumulated.Add(pass_stats);
    if (*next == current) break;
    current = std::move(*next);
  }
  EXPECT_EQ(accumulated.inserted, current.size());
  EXPECT_EQ(accumulated.min_new_time, 0);
}

// A single wide round (40 delta facts -> 1600 derivations) against a small
// cap: the shared buffered-fact total must stop the workers within a few
// emissions of `max_facts`, not let each of the 4 workers fill its private
// buffer to the cap.
TEST(EvalStatsTest, ParallelOverflowIsBoundedAcrossWorkerBuffers) {
  std::string src;
  for (int i = 0; i < 40; ++i) {
    src += "n(c" + std::to_string(i) + ").\n";
  }
  src += "p(X, Y) :- n(X), n(Y).\n";
  ParsedUnit unit = MustParse(src);

  FixpointOptions fp;
  fp.max_time = 4;
  fp.max_facts = 500;
  fp.num_threads = 4;
  MetricsRegistry metrics;
  fp.metrics = &metrics;

  EvalStats stats;
  auto result = SemiNaiveFixpoint(unit.program, unit.database, fp, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();

  // 40 seeds are in `full`; overflow trips once the shared total passes
  // 500 - 40 = 460. Pre-fix, all ~3100 derivations (both delta positions)
  // were buffered because each worker compared only its own buffer.
  const uint64_t buffered =
      metrics.counter("fixpoint.parallel.buffered_facts")->value();
  EXPECT_GT(buffered, 0u);
  EXPECT_LE(buffered, fp.max_facts + 64);

  // The sequential path trips the identical cap.
  fp.num_threads = 1;
  fp.metrics = nullptr;
  auto sequential = SemiNaiveFixpoint(unit.program, unit.database, fp);
  ASSERT_FALSE(sequential.ok());
  EXPECT_EQ(sequential.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace chronolog
