#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "query/answers.h"
#include "query/query_parser.h"
#include "util/json.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

QueryAnswer MustAnswer(const ParsedUnit& unit,
                       const RelationalSpecification& spec,
                       std::string_view text) {
  auto q = ParseQuery(text, unit.program.vocab());
  EXPECT_TRUE(q.ok()) << q.status();
  auto a = EvaluateQueryOverSpec(*q, spec);
  EXPECT_TRUE(a.ok()) << a.status();
  return std::move(a).value();
}

TEST(AnswersTest, EvenUnfoldsToAllEvens) {
  // The paper's Section 3.3 example: X = 0 with 2 -> 0 represents
  // 0, 2, 4, ...
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  QueryAnswer answer = MustAnswer(unit, *spec, "even(X)");
  auto unfolded = UnfoldAnswers(answer, /*max_time=*/10);
  ASSERT_TRUE(unfolded.ok()) << unfolded.status();
  ASSERT_EQ(unfolded->size(), 6u);
  for (std::size_t i = 0; i < unfolded->size(); ++i) {
    EXPECT_EQ((*unfolded)[i][0].time, static_cast<int64_t>(2 * i));
  }
}

TEST(AnswersTest, UnfoldingMatchesDeepMaterialisation) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({2, 3}));
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  QueryAnswer answer = MustAnswer(unit, *spec, "tok(T, r0_0)");
  const int64_t horizon = 24;
  auto unfolded = UnfoldAnswers(answer, horizon);
  ASSERT_TRUE(unfolded.ok());
  // Cross-check every unfolded time against the materialised model, and
  // the counts against a direct scan.
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  PredicateId tok = unit.program.vocab().FindPredicate("tok");
  SymbolId r00 = unit.program.vocab().FindConstant("r0_0");
  std::size_t expected = 0;
  for (int64_t t = 0; t <= horizon; ++t) {
    if (model->Contains(tok, t, {r00})) ++expected;
  }
  EXPECT_EQ(unfolded->size(), expected);
  for (const auto& row : *unfolded) {
    EXPECT_TRUE(model->Contains(tok, row[0].time, {r00})) << row[0].time;
  }
}

TEST(AnswersTest, AperiodicPrefixRowsDoNotUnfold) {
  // p holds only at times 0 and 1 (dies afterwards): both are prefix
  // representatives and must appear exactly once.
  ParsedUnit unit = MustParse("q(T+1) :- p(T).\np(0). q(5).");
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  QueryAnswer answer = MustAnswer(unit, *spec, "p(X)");
  auto unfolded = UnfoldAnswers(answer, 100);
  ASSERT_TRUE(unfolded.ok());
  ASSERT_EQ(unfolded->size(), 1u);
  EXPECT_EQ((*unfolded)[0][0].time, 0);
}

TEST(AnswersTest, MixedColumnsUnfoldIndependently) {
  ParsedUnit unit = MustParse(
      "plane(T+2, X) :- plane(T, X), resort(X).\n"
      "resort(r1). resort(r2). plane(0, r1). plane(0, r2).");
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  QueryAnswer answer = MustAnswer(unit, *spec, "plane(T, X)");
  auto unfolded = UnfoldAnswers(answer, 6);
  ASSERT_TRUE(unfolded.ok());
  // Times 0, 2, 4, 6 for each of r1, r2: 8 rows.
  EXPECT_EQ(unfolded->size(), 8u);
}

TEST(AnswersTest, ModelAnswersCannotUnfold) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  FixpointOptions options;
  options.max_time = 10;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  auto q = ParseQuery("even(X)", unit.program.vocab());
  ASSERT_TRUE(q.ok());
  auto answer = EvaluateQueryOverModel(*q, *model, 10);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(UnfoldAnswers(*answer, 100).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(AnswersTest, MaxTimeBelowRowTimeYieldsNothing) {
  ParsedUnit unit = MustParse("p(8). p(T+3) :- p(T).");
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  QueryAnswer answer = MustAnswer(unit, *spec, "p(X)");
  auto unfolded = UnfoldAnswers(answer, 5);
  ASSERT_TRUE(unfolded.ok());
  EXPECT_TRUE(unfolded->empty());
}

// --------------------------------------------------------------------------
// Wire JSON rendering (POST /query responses)
// --------------------------------------------------------------------------

TEST(AnswersJsonTest, OpenAnswerRendersRowsAndRewrite) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  QueryAnswer answer = MustAnswer(unit, *spec, "even(X)");
  const std::string json = QueryAnswerToJson(answer, unit.program.vocab());
  // The Section 3.3 example: X = 0 under rewrite 2 -> 0.
  EXPECT_EQ(json,
            "{\"boolean\":true,"
            "\"free_vars\":[{\"name\":\"X\",\"temporal\":true}],"
            "\"rows\":[[0]],"
            "\"rewrite\":{\"lhs\":2,\"p\":2},"
            "\"partial\":false,\"truncated\":false,"
            "\"rows_returned\":1}");
}

TEST(AnswersJsonTest, ClosedAnswerHasEmptyRows) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  QueryAnswer yes = MustAnswer(unit, *spec, "even(4)");
  const std::string json = QueryAnswerToJson(yes, unit.program.vocab());
  EXPECT_NE(json.find("\"boolean\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"free_vars\":[]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows\":[]"), std::string::npos) << json;
}

TEST(AnswersJsonTest, ConstantsRenderAsStrings) {
  ParsedUnit unit = MustParse(workload::SkiScheduleSource(2, 12, 4, 1));
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  QueryAnswer answer = MustAnswer(unit, *spec, "plane(0, X)");
  const std::string json = QueryAnswerToJson(answer, unit.program.vocab());
  EXPECT_NE(json.find("\"resort0\""), std::string::npos) << json;
  // The parse-back property: the wire document is valid JSON.
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(parsed->Find("boolean")->is_bool());
  EXPECT_TRUE(parsed->Find("rows")->is_array());
}

}  // namespace
}  // namespace chronolog
