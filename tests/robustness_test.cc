// Robustness sweeps: malformed and adversarial input must produce Status
// errors, never crashes — the engine is a library, not a REPL toy.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "ast/parser.h"
#include "core/engine.h"
#include "query/query_parser.h"
#include "spec/serialize.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

// --------------------------------------------------------------------------
// Random token soup: the parser must always return (not crash, not hang).
// --------------------------------------------------------------------------

class TokenSoup : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TokenSoup, ParserNeverCrashes) {
  std::mt19937 rng(GetParam());
  static const char* kPieces[] = {
      "p",  "q",  "foo", "X",  "T",  "0",   "7",  "(",  ")",   ",",
      ".",  ":-", "+",   "@",  "/",  "&",   "|",  "~",  "=",   "'a b'",
      "%c", "\n", " ",   "p(", ")(", "T+2", "@t", "exists", "forall"};
  std::uniform_int_distribution<std::size_t> pick(
      0, sizeof(kPieces) / sizeof(kPieces[0]) - 1);
  std::uniform_int_distribution<int> len(1, 60);
  std::string soup;
  int n = len(rng);
  for (int i = 0; i < n; ++i) {
    soup += kPieces[pick(rng)];
    soup += " ";
  }
  // Must return a Status (either way), never crash.
  auto unit = Parser::Parse(soup);
  (void)unit.ok();
}

TEST_P(TokenSoup, QueryParserNeverCrashes) {
  auto base = Parser::Parse(workload::EvenSource());
  ASSERT_TRUE(base.ok());
  std::mt19937 rng(GetParam() + 500);
  static const char* kPieces[] = {"even", "(",  ")",      "0",  "T",  "+",
                                  "1",    "&",  "|",      "~",  "=",  ",",
                                  "exists", "forall", "X", "and", "or"};
  std::uniform_int_distribution<std::size_t> pick(
      0, sizeof(kPieces) / sizeof(kPieces[0]) - 1);
  std::uniform_int_distribution<int> len(1, 30);
  std::string soup;
  int n = len(rng);
  for (int i = 0; i < n; ++i) {
    soup += kPieces[pick(rng)];
    soup += " ";
  }
  auto query = ParseQuery(soup, base->program.vocab());
  (void)query.ok();
}

TEST_P(TokenSoup, DeserializeNeverCrashes) {
  std::mt19937 rng(GetParam() + 900);
  static const char* kPieces[] = {
      "%!chronolog-spec 1\n", "%!period b=0 p=2 c=0\n", "%!period b=x\n",
      "@temporal p/2.\n",     "@predicate q/1.\n",      "p(0, a).\n",
      "garbage",              "%!chronolog-spec 9\n",   "p(T) :- p(T).\n"};
  std::uniform_int_distribution<std::size_t> pick(
      0, sizeof(kPieces) / sizeof(kPieces[0]) - 1);
  std::uniform_int_distribution<int> len(0, 8);
  std::string soup;
  int n = len(rng);
  for (int i = 0; i < n; ++i) soup += kPieces[pick(rng)];
  auto spec = DeserializeSpecification(soup);
  (void)spec.ok();
}

INSTANTIATE_TEST_SUITE_P(Sweep, TokenSoup, ::testing::Range(0u, 50u));

// --------------------------------------------------------------------------
// Deep and degenerate but well-formed inputs.
// --------------------------------------------------------------------------

TEST(RobustnessTest, VeryDeepFactTime) {
  auto tdd = TemporalDatabase::FromSource(
      "even(0). even(T+2) :- even(T).");
  ASSERT_TRUE(tdd.ok());
  // Depth near int64 range: canonicalisation must not overflow en route.
  auto answer = tdd->Ask("even(4611686018427387904)");  // 2^62
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(*answer);
}

TEST(RobustnessTest, EmptySource) {
  auto unit = Parser::Parse("");
  ASSERT_TRUE(unit.ok());
  EXPECT_TRUE(unit->program.rules().empty());
  EXPECT_EQ(unit->database.size(), 0u);
}

TEST(RobustnessTest, CommentsOnly) {
  auto unit = Parser::Parse("% nothing\n// here\n");
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(unit->database.size(), 0u);
}

TEST(RobustnessTest, EmptyProgramSpecification) {
  // No rules at all: the least model is the database; period (0, 1).
  auto tdd = TemporalDatabase::FromSource("p(3, a). q(b).");
  ASSERT_TRUE(tdd.ok());
  auto spec = tdd->specification();
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ((*spec)->period().p, 1);
  EXPECT_TRUE(*tdd->Ask("p(3, a)"));
  EXPECT_FALSE(*tdd->Ask("p(4, a)"));
  EXPECT_TRUE(*tdd->Ask("q(b)"));
}

TEST(RobustnessTest, EmptyDatabaseSpecification) {
  auto tdd = TemporalDatabase::FromSource("p(T+1, X) :- p(T, X), e(X, X).");
  ASSERT_TRUE(tdd.ok());
  auto spec = tdd->specification();
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_FALSE(*tdd->Ask("p(0, z)"));
}

TEST(RobustnessTest, DuplicateFactsAreDeduplicated) {
  auto tdd = TemporalDatabase::FromSource(
      "p(0, a). p(0, a). p(0, a). p(T+1, X) :- p(T, X).");
  ASSERT_TRUE(tdd.ok());
  auto spec = tdd->specification();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->primary().Snapshot(
                tdd->vocab().FindPredicate("p"), 0).size(),
            1u);
}

TEST(RobustnessTest, SelfSatisfyingRule) {
  // p(T) :- p(T). derives nothing new and must terminate.
  auto tdd = TemporalDatabase::FromSource("p(T) :- p(T).\np(0).");
  ASSERT_TRUE(tdd.ok());
  EXPECT_TRUE(*tdd->Ask("p(0)"));
  EXPECT_FALSE(*tdd->Ask("p(1)"));
}

TEST(RobustnessTest, LongChainOfRules) {
  // 200 stacked predicates: stresses SCC, classification and evaluation.
  std::string src = "p0(0).\np0(T+1) :- p0(T).\n";
  for (int i = 1; i < 200; ++i) {
    src += "p" + std::to_string(i) + "(T) :- p" + std::to_string(i - 1) +
           "(T).\n";
  }
  auto tdd = TemporalDatabase::FromSource(src);
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  EXPECT_TRUE(*tdd->Ask("p199(5)"));
  EXPECT_TRUE(tdd->classification().multi_separable);
}

TEST(RobustnessTest, WideFacts) {
  // 2000 facts across 40 time points parse and compile fine.
  std::string src = "p(T+40, X) :- p(T, X).\n";
  for (int i = 0; i < 2000; ++i) {
    src += "p(" + std::to_string(i % 40) + ", c" + std::to_string(i % 50) +
           ").\n";
  }
  auto tdd = TemporalDatabase::FromSource(src);
  ASSERT_TRUE(tdd.ok());
  auto spec = tdd->specification();
  ASSERT_TRUE(spec.ok()) << spec.status();
  // The copy rule's period is 40; the minimal period divides it (the fact
  // pattern is 10-periodic in time).
  EXPECT_EQ(40 % (*spec)->period().p, 0);
}

}  // namespace
}  // namespace chronolog
