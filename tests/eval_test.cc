#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "eval/rule_eval.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

GroundAtom MustAtom(const ParsedUnit& unit, std::string_view pred, int64_t t,
                    std::vector<std::string> args) {
  GroundAtom atom;
  atom.pred = unit.program.vocab().FindPredicate(pred);
  EXPECT_NE(atom.pred, kInvalidPredicate);
  atom.time = t;
  for (const auto& a : args) {
    SymbolId c = unit.program.vocab().FindConstant(a);
    EXPECT_NE(c, kInvalidSymbol) << a;
    atom.args.push_back(c);
  }
  return atom;
}

// --------------------------------------------------------------------------
// RuleEvaluator
// --------------------------------------------------------------------------

TEST(RuleEvalTest, SimpleJoin) {
  ParsedUnit unit = MustParse(R"(
    r(X, Z) :- e(X, Y), e(Y, Z).
    e(a, b). e(b, c).
  )");
  Interpretation interp(unit.program.vocab_ptr());
  interp.InsertDatabase(unit.database);
  RuleEvaluator evaluator(unit.program.rules()[0], unit.program.vocab());
  std::vector<GroundAtom> derived;
  evaluator.Evaluate(interp, nullptr, -1, std::nullopt, nullptr,
                     [&](GroundAtom&& f) { derived.push_back(std::move(f)); });
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0], MustAtom(unit, "r", 0, {"a", "c"}));
}

TEST(RuleEvalTest, TemporalOffsetShiftsHeadTime) {
  ParsedUnit unit = MustParse("p(T+2, X) :- p(T, X).\np(3, a).");
  Interpretation interp(unit.program.vocab_ptr());
  interp.InsertDatabase(unit.database);
  RuleEvaluator evaluator(unit.program.rules()[0], unit.program.vocab());
  std::vector<GroundAtom> derived;
  evaluator.Evaluate(interp, nullptr, -1, std::nullopt, nullptr,
                     [&](GroundAtom&& f) { derived.push_back(std::move(f)); });
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0].time, 5);
}

TEST(RuleEvalTest, BodyOffsetShiftsLookupBackwards) {
  // Body q(T+1): matching q at time 4 binds T = 3, head p(3).
  ParsedUnit unit = MustParse("p(T) :- q(T+1).\nq(4). p(0).");
  Interpretation interp(unit.program.vocab_ptr());
  interp.InsertDatabase(unit.database);
  RuleEvaluator evaluator(unit.program.rules()[0], unit.program.vocab());
  std::vector<GroundAtom> derived;
  evaluator.Evaluate(interp, nullptr, -1, std::nullopt, nullptr,
                     [&](GroundAtom&& f) { derived.push_back(std::move(f)); });
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0].time, 3);
}

TEST(RuleEvalTest, NegativeTimesAreNotGenerated) {
  // q only at time 0: T = -1 would be needed, which is not a ground
  // temporal term.
  ParsedUnit unit = MustParse("p(T) :- q(T+1).\nq(0). p(0).");
  Interpretation interp(unit.program.vocab_ptr());
  interp.InsertDatabase(unit.database);
  RuleEvaluator evaluator(unit.program.rules()[0], unit.program.vocab());
  int count = 0;
  evaluator.Evaluate(interp, nullptr, -1, std::nullopt, nullptr,
                     [&](GroundAtom&&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(RuleEvalTest, RepeatedVariableMustMatch) {
  ParsedUnit unit = MustParse("loop(X) :- e(X, X).\ne(a, a). e(a, b).");
  Interpretation interp(unit.program.vocab_ptr());
  interp.InsertDatabase(unit.database);
  RuleEvaluator evaluator(unit.program.rules()[0], unit.program.vocab());
  std::vector<GroundAtom> derived;
  evaluator.Evaluate(interp, nullptr, -1, std::nullopt, nullptr,
                     [&](GroundAtom&& f) { derived.push_back(std::move(f)); });
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0], MustAtom(unit, "loop", 0, {"a"}));
}

TEST(RuleEvalTest, ConstantInBodyFilters) {
  ParsedUnit unit = MustParse("picked(X) :- e(a, X).\ne(a, b). e(c, d).");
  Interpretation interp(unit.program.vocab_ptr());
  interp.InsertDatabase(unit.database);
  RuleEvaluator evaluator(unit.program.rules()[0], unit.program.vocab());
  std::vector<GroundAtom> derived;
  evaluator.Evaluate(interp, nullptr, -1, std::nullopt, nullptr,
                     [&](GroundAtom&& f) { derived.push_back(std::move(f)); });
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0], MustAtom(unit, "picked", 0, {"b"}));
}

TEST(RuleEvalTest, DeltaPositionRestrictsMatching) {
  ParsedUnit unit = MustParse("r(X, Z) :- e(X, Y), e(Y, Z).\ne(a, b). e(b, c).");
  Interpretation full(unit.program.vocab_ptr());
  full.InsertDatabase(unit.database);
  // Delta contains only e(a, b): with delta at position 0 we derive r(a, c);
  // with delta at position 1 nothing (no fact e(Y=?, ...) matching e(a,b)
  // as the second atom yields r only if first matches e(X, a)... none).
  Interpretation delta(unit.program.vocab_ptr());
  delta.Insert(MustAtom(unit, "e", 0, {"a", "b"}));
  RuleEvaluator evaluator(unit.program.rules()[0], unit.program.vocab());

  std::vector<GroundAtom> at0;
  evaluator.Evaluate(full, &delta, 0, std::nullopt, nullptr,
                     [&](GroundAtom&& f) { at0.push_back(std::move(f)); });
  ASSERT_EQ(at0.size(), 1u);
  EXPECT_EQ(at0[0], MustAtom(unit, "r", 0, {"a", "c"}));

  std::vector<GroundAtom> at1;
  evaluator.Evaluate(full, &delta, 1, std::nullopt, nullptr,
                     [&](GroundAtom&& f) { at1.push_back(std::move(f)); });
  EXPECT_TRUE(at1.empty());
}

TEST(RuleEvalTest, TimeBindingPinsTemporalVariable) {
  ParsedUnit unit = MustParse("p(T+1, X) :- p(T, X).\np(0, a). p(5, a).");
  const Rule& rule = unit.program.rules()[0];
  Interpretation interp(unit.program.vocab_ptr());
  interp.InsertDatabase(unit.database);
  RuleEvaluator evaluator(rule, unit.program.vocab());
  VarId tvar = rule.head.time->var;
  std::vector<GroundAtom> derived;
  evaluator.Evaluate(interp, nullptr, -1, std::make_pair(tvar, int64_t{5}),
                     nullptr,
                     [&](GroundAtom&& f) { derived.push_back(std::move(f)); });
  ASSERT_EQ(derived.size(), 1u);
  EXPECT_EQ(derived[0].time, 6);
}

TEST(RuleEvalTest, StatsAreCounted) {
  ParsedUnit unit = MustParse("r(X) :- e(X, Y).\ne(a, b). e(a, c).");
  Interpretation interp(unit.program.vocab_ptr());
  interp.InsertDatabase(unit.database);
  RuleEvaluator evaluator(unit.program.rules()[0], unit.program.vocab());
  EvalStats stats;
  evaluator.Evaluate(interp, nullptr, -1, std::nullopt, &stats,
                     [](GroundAtom&&) {});
  EXPECT_EQ(stats.derived, 2u);
  EXPECT_GE(stats.match_steps, 2u);
}

// --------------------------------------------------------------------------
// ApplyTp and fixpoints
// --------------------------------------------------------------------------

TEST(FixpointTest, ApplyTpIncludesDatabase) {
  ParsedUnit unit = MustParse("q(T) :- p(T).\np(0). p(4).");
  Interpretation empty(unit.program.vocab_ptr());
  FixpointOptions options;
  options.max_time = 10;
  auto out = ApplyTp(unit.program, unit.database, empty, options);
  ASSERT_TRUE(out.ok()) << out.status();
  // T(∅) = D: rule consequences need p in the *input* interpretation.
  EXPECT_EQ(out->size(), 2u);
  EXPECT_TRUE(out->Contains(MustAtom(unit, "p", 0, {})));
  EXPECT_FALSE(out->Contains(MustAtom(unit, "q", 0, {})));
}

TEST(FixpointTest, ApplyTpTruncates) {
  ParsedUnit unit = MustParse("p(T+1) :- p(T).\np(0).");
  Interpretation interp(unit.program.vocab_ptr());
  interp.InsertDatabase(unit.database);
  FixpointOptions options;
  options.max_time = 0;
  auto out = ApplyTp(unit.program, unit.database, interp, options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);  // p(1) discarded
}

TEST(FixpointTest, NaiveComputesTruncatedLeastModel) {
  ParsedUnit unit = MustParse("even(0). even(T+2) :- even(T).");
  FixpointOptions options;
  options.max_time = 9;
  auto model = NaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok()) << model.status();
  for (int64_t t = 0; t <= 9; ++t) {
    EXPECT_EQ(model->Contains(MustAtom(unit, "even", t, {})), t % 2 == 0)
        << "t=" << t;
  }
  EXPECT_EQ(model->size(), 5u);
}

TEST(FixpointTest, SemiNaiveMatchesNaive) {
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::CycleGraphFactsSource(4));
  FixpointOptions options;
  options.max_time = 12;
  auto naive = NaiveFixpoint(unit.program, unit.database, options);
  auto semi = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(naive.ok()) << naive.status();
  ASSERT_TRUE(semi.ok()) << semi.status();
  EXPECT_TRUE(*naive == *semi);
}

TEST(FixpointTest, SemiNaiveDerivesLessThanNaive) {
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::CycleGraphFactsSource(5));
  FixpointOptions options;
  options.max_time = 16;
  EvalStats naive_stats;
  EvalStats semi_stats;
  ASSERT_TRUE(
      NaiveFixpoint(unit.program, unit.database, options, &naive_stats).ok());
  ASSERT_TRUE(
      SemiNaiveFixpoint(unit.program, unit.database, options, &semi_stats)
          .ok());
  // The ablation claim of experiment E8: semi-naive avoids re-derivation.
  EXPECT_LT(semi_stats.derived, naive_stats.derived);
}

TEST(FixpointTest, NonTemporalDatalogWorks) {
  ParsedUnit unit = MustParse(workload::TransitiveClosureDatalogSource() +
                              "edge(a, b). edge(b, c). edge(c, d).");
  FixpointOptions options;
  options.max_time = 0;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Contains(MustAtom(unit, "tc", 0, {"a", "d"})));
  EXPECT_FALSE(model->Contains(MustAtom(unit, "tc", 0, {"d", "a"})));
  // |tc| = 3+2+1 = 6 plus 3 edges.
  EXPECT_EQ(model->size(), 9u);
}

TEST(FixpointTest, MaxFactsGuardFires) {
  ParsedUnit unit = MustParse("p(T+1) :- p(T).\np(0).");
  FixpointOptions options;
  options.max_time = 1000;
  options.max_facts = 10;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  EXPECT_EQ(model.status().code(), StatusCode::kResourceExhausted);
  auto naive = NaiveFixpoint(unit.program, unit.database, options);
  EXPECT_EQ(naive.status().code(), StatusCode::kResourceExhausted);
}

TEST(FixpointTest, DataOnlyRecursionWithinTimestep) {
  ParsedUnit unit = MustParse(R"(
    @temporal happy/2.
    happy(T, X) :- happy(T, Y), friend(X, Y).
    happy(0, anna).
    friend(bob, anna). friend(carl, bob).
  )");
  FixpointOptions options;
  options.max_time = 2;
  auto model = NaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Contains(MustAtom(unit, "happy", 0, {"bob"})));
  EXPECT_TRUE(model->Contains(MustAtom(unit, "happy", 0, {"carl"})));
  EXPECT_FALSE(model->Contains(MustAtom(unit, "happy", 1, {"anna"})));
}

TEST(FixpointTest, BackwardRulesConverge) {
  // p flows backwards from q(5).
  ParsedUnit unit = MustParse("p(T) :- p(T+1).\np(5). p(0).");
  FixpointOptions options;
  options.max_time = 8;
  auto model = NaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  for (int64_t t = 0; t <= 5; ++t) {
    EXPECT_TRUE(model->Contains(MustAtom(unit, "p", t, {}))) << t;
  }
  EXPECT_FALSE(model->Contains(MustAtom(unit, "p", 6, {})));
}

TEST(FixpointTest, GroundTimeRuleBody) {
  ParsedUnit unit = MustParse(R"(
    alarm(T) :- tick(T), tick(3).
    tick(0). tick(3).
  )");
  FixpointOptions options;
  options.max_time = 5;
  auto model = NaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(model->Contains(MustAtom(unit, "alarm", 0, {})));
  EXPECT_TRUE(model->Contains(MustAtom(unit, "alarm", 3, {})));
  EXPECT_FALSE(model->Contains(MustAtom(unit, "alarm", 1, {})));
}

}  // namespace
}  // namespace chronolog
