// Cross-cutting coverage: quantifier alternations, open queries with
// temporal offsets, engine corner cases, full-size paper scenario.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/engine.h"
#include "eval/fixpoint.h"
#include "query/query_eval.h"
#include "query/query_parser.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

// --------------------------------------------------------------------------
// Quantifier alternation and edge shapes over specifications
// --------------------------------------------------------------------------

class AlternationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two resorts with different schedules: resort0 flies on even days,
    // resort1 on odd days (after day 0 seeding).
    unit_ = MustParse(R"(
      plane(T+2, X) :- plane(T, X), resort(X).
      resort(even_resort). resort(odd_resort).
      plane(0, even_resort). plane(1, odd_resort).
    )");
    auto spec = BuildSpecification(unit_.program, unit_.database);
    ASSERT_TRUE(spec.ok()) << spec.status();
    spec_.emplace(std::move(spec).value());
  }
  QueryAnswer MustEval(std::string_view text) {
    auto q = ParseQuery(text, unit_.program.vocab());
    EXPECT_TRUE(q.ok()) << q.status();
    auto a = EvaluateQueryOverSpec(*q, *spec_);
    EXPECT_TRUE(a.ok()) << a.status();
    return std::move(a).value();
  }
  ParsedUnit unit_{Program(nullptr), Database(nullptr)};
  std::optional<RelationalSpecification> spec_;
};

TEST_F(AlternationTest, ForallExists) {
  // Every day, some resort has a plane (days >= 1).
  EXPECT_TRUE(MustEval("forall T (exists X (plane(T, X) | plane(T+1, X)))")
                  .boolean);
  // Every day, EVERY resort has a plane: false.
  EXPECT_FALSE(MustEval("forall T (forall X (~resort(X) | plane(T, X)))")
                   .boolean);
}

TEST_F(AlternationTest, ExistsForall) {
  // Some resort flies on all even representative days... even_resort does
  // fly at 0 and 2k; the quantified claim "exists X forall T plane(T,X)"
  // is false (no resort flies every day).
  EXPECT_FALSE(MustEval("exists X (forall T (plane(T, X)))").boolean);
  // But: exists X forall T (plane at T or T+1) — each day one of T, T+1 is
  // the right parity... for even_resort: T odd -> T+1 even: true.
  EXPECT_TRUE(
      MustEval("exists X (forall T (plane(T, X) | plane(T+1, X)))").boolean);
}

TEST_F(AlternationTest, OpenQueryWithOffset) {
  // Which X flies at X's... free temporal var under an offset:
  // plane(U+1, odd_resort) holds for even U (1+2k = odd days).
  QueryAnswer answer = MustEval("plane(U+1, odd_resort)");
  ASSERT_FALSE(answer.rows.empty());
  for (const auto& row : answer.rows) {
    EXPECT_TRUE(row[0].temporal);
    EXPECT_EQ(row[0].time % 2, 0) << "U must be even";
  }
}

TEST_F(AlternationTest, DoubleNegation) {
  EXPECT_TRUE(MustEval("~~plane(0, even_resort)").boolean);
  EXPECT_FALSE(MustEval("~~plane(1, even_resort)").boolean);
}

TEST_F(AlternationTest, PrecedenceAndAssociativity) {
  // '&' binds tighter than '|'.
  EXPECT_TRUE(
      MustEval("plane(1, even_resort) & resort(odd_resort) | "
               "plane(0, even_resort)")
          .boolean);
  // With explicit parens forcing the other grouping the result flips.
  EXPECT_FALSE(
      MustEval("plane(1, even_resort) & (resort(odd_resort) | "
               "plane(0, even_resort))")
          .boolean);
}

// --------------------------------------------------------------------------
// Engine corner cases
// --------------------------------------------------------------------------

TEST(EngineCoverageTest, FullYearPaperScenario) {
  // The actual Section 2 parameters: 365-day year. Period = 365 exactly.
  auto tdd = TemporalDatabase::FromSource(
      workload::SkiScheduleSource(2, 365, 91, 13));
  ASSERT_TRUE(tdd.ok());
  auto spec = tdd->specification();
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ((*spec)->period().p, 365);
  // A plane one century out answers the same as one year out.
  EXPECT_EQ(*tdd->Ask("plane(365, resort0)"),
            *tdd->Ask("plane(36865, resort0)"));  // 365 + 365*100
}

TEST(EngineCoverageTest, QueryBeforeSpecificationBuildsLazily) {
  auto tdd = TemporalDatabase::FromSource(workload::EvenSource());
  ASSERT_TRUE(tdd.ok());
  // No explicit specification() call: Query triggers the build.
  auto answer = tdd->Query("even(4)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->boolean);
}

TEST(EngineCoverageTest, ClassificationIsCached) {
  auto tdd = TemporalDatabase::FromSource(workload::EvenSource());
  ASSERT_TRUE(tdd.ok());
  const ProgramClassification& first = tdd->classification();
  const ProgramClassification& second = tdd->classification();
  EXPECT_EQ(&first, &second);
}

TEST(EngineCoverageTest, MalformedQueryTextSurfacesParseError) {
  auto tdd = TemporalDatabase::FromSource(workload::EvenSource());
  ASSERT_TRUE(tdd.ok());
  EXPECT_EQ(tdd->Query("even(").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(tdd->Ask("even(T)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EngineCoverageTest, ZeroArityPredicateEndToEnd) {
  auto tdd = TemporalDatabase::FromSource(R"(
    alarm(T) :- tick(T), armed.
    tick(0..2).
    tick(T+3) :- tick(T).
    armed.
  )");
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  EXPECT_TRUE(*tdd->Ask("alarm(77)"));
  EXPECT_TRUE(*tdd->Ask("armed"));
  auto q = tdd->Query("exists T (alarm(T))");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->boolean);
}

// --------------------------------------------------------------------------
// Specification structure for databases with c > 0
// --------------------------------------------------------------------------

TEST(SpecCoverageTest, LateSeedShiftsRepresentatives) {
  ParsedUnit unit = MustParse("even(10). even(T+2) :- even(T).");
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->c(), 10);
  EXPECT_EQ(spec->period().p, 2);
  // Representatives cover [0, b+c+p): times before the seed are all "no".
  for (int64_t t = 0; t < 10; ++t) {
    EXPECT_FALSE(spec->Ask(GroundAtom(
        unit.program.vocab().FindPredicate("even"), t, {})))
        << t;
  }
  for (int64_t t = 10; t < 60; t += 2) {
    EXPECT_TRUE(spec->Ask(GroundAtom(
        unit.program.vocab().FindPredicate("even"), t, {})))
        << t;
  }
}

TEST(SpecCoverageTest, MultipleSeedsInterleave) {
  ParsedUnit unit = MustParse("p(0). p(1). p(T+4) :- p(T).");
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  PredicateId p = unit.program.vocab().FindPredicate("p");
  FixpointOptions options;
  options.max_time = 40;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  for (int64_t t = 0; t <= 40; ++t) {
    EXPECT_EQ(spec->Ask(GroundAtom(p, t, {})), model->Contains(p, t, {}))
        << t;
  }
}

}  // namespace
}  // namespace chronolog
