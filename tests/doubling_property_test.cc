// Property sweeps aimed at the verified-doubling period detector — the one
// component whose answer is certified empirically rather than proved
// (DESIGN.md key decisions). Random NON-progressive programs (backward
// rules allowed) must still yield sound specifications and periods.

#include <gtest/gtest.h>

#include <random>

#include "ast/parser.h"
#include "ast/printer.h"
#include "eval/fixpoint.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

std::string NonProgressiveSource(uint32_t seed) {
  std::mt19937 rng(seed);
  workload::RandomProgramOptions options;
  options.progressive_only = false;
  options.max_offset = 2;  // both forward and backward information flow
  options.num_rules = 5;
  options.num_facts = 8;
  return workload::RandomProgramSource(options, &rng);
}

class DoublingSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DoublingSweep, SpecificationSoundOnNonProgressivePrograms) {
  std::string src = NonProgressiveSource(GetParam());
  SCOPED_TRACE(src);
  auto unit = Parser::Parse(src);
  ASSERT_TRUE(unit.ok()) << unit.status();

  PeriodDetectionOptions options;
  options.max_horizon = 1 << 14;
  auto spec = BuildSpecification(unit->program, unit->database, options);
  if (!spec.ok()) {
    // A budget miss is acceptable for a random program; unsoundness is not.
    ASSERT_EQ(spec.status().code(), StatusCode::kResourceExhausted)
        << spec.status();
    return;
  }

  // Deep cross-check far beyond the detection window.
  const int64_t horizon =
      spec->num_representatives() + 5 * spec->period().p + 16;
  FixpointOptions fp;
  fp.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit->program, unit->database, fp);
  ASSERT_TRUE(model.ok());

  model->ForEach([&](PredicateId pred, int64_t t, const Tuple& args) {
    // Backward rules consume future facts; near the truncation boundary the
    // deep model itself is incomplete, so compare only safely inside it.
    if (t > horizon - 2 * unit->program.MaxTemporalDepth()) return;
    EXPECT_TRUE(spec->Ask(GroundAtom(pred, t, args)))
        << GroundAtomToString(GroundAtom(pred, t, args),
                              unit->program.vocab());
  });

  std::mt19937 rng(GetParam());
  const Vocabulary& vocab = unit->program.vocab();
  for (int probe = 0; probe < 150; ++probe) {
    PredicateId pred = std::uniform_int_distribution<PredicateId>(
        0, static_cast<PredicateId>(vocab.num_predicates() - 1))(rng);
    const PredicateInfo& info = vocab.predicate(pred);
    GroundAtom atom;
    atom.pred = pred;
    atom.time =
        info.is_temporal
            ? std::uniform_int_distribution<int64_t>(
                  0, horizon - 2 * unit->program.MaxTemporalDepth())(rng)
            : 0;
    if (atom.time < 0) continue;
    for (uint32_t j = 0; j < info.arity; ++j) {
      atom.args.push_back(std::uniform_int_distribution<SymbolId>(
          0, static_cast<SymbolId>(vocab.num_constants() - 1))(rng));
    }
    EXPECT_EQ(spec->Ask(atom), model->Contains(atom))
        << GroundAtomToString(atom, vocab);
  }
}

TEST_P(DoublingSweep, DetectedPeriodHoldsFarBeyondDetectionWindow) {
  std::string src = NonProgressiveSource(GetParam() + 300);
  SCOPED_TRACE(src);
  auto unit = Parser::Parse(src);
  ASSERT_TRUE(unit.ok()) << unit.status();
  PeriodDetectionOptions options;
  options.max_horizon = 1 << 14;
  auto detection = DetectPeriod(unit->program, unit->database, options);
  if (!detection.ok()) {
    ASSERT_EQ(detection.status().code(), StatusCode::kResourceExhausted);
    return;
  }
  const Period period = detection->period;
  const int64_t g = std::max<int64_t>(1, unit->program.MaxTemporalDepth());
  const int64_t start = period.b + detection->c;
  const int64_t horizon = start + 6 * period.p + 8 * g;
  FixpointOptions fp;
  fp.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit->program, unit->database, fp);
  ASSERT_TRUE(model.ok());
  for (int64_t t = start; t + period.p <= horizon - 2 * g; ++t) {
    ASSERT_EQ(State::FromInterpretation(*model, t),
              State::FromInterpretation(*model, t + period.p))
        << "t=" << t << " b=" << period.b << " p=" << period.p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DoublingSweep, ::testing::Range(0u, 30u));

}  // namespace
}  // namespace chronolog
