// End-to-end integrations across modules: transformations composed with
// period detection, engines over transformed programs, printer round-trips
// on random programs.

#include <gtest/gtest.h>

#include <random>

#include "analysis/normalize.h"
#include "analysis/temporalize.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "core/engine.h"
#include "spec/period.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

// --------------------------------------------------------------------------
// Printer round-trip sweep on random programs
// --------------------------------------------------------------------------

class PrinterRoundTrip : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PrinterRoundTrip, PrintParsePrintIsStable) {
  std::mt19937 rng(GetParam());
  workload::RandomProgramOptions options;
  options.progressive_only = (GetParam() % 2 == 0);
  std::string src = workload::RandomProgramSource(options, &rng);
  ParsedUnit unit = MustParse(src);
  // Declarations pin the signatures for the reparse.
  std::string decls;
  for (PredicateId p : unit.program.vocab().AllPredicates()) {
    const PredicateInfo& info = unit.program.vocab().predicate(p);
    decls += (info.is_temporal ? "@temporal " : "@predicate ") + info.name +
             "/" + std::to_string(info.written_arity()) + ".\n";
  }
  std::string printed = decls + ProgramToString(unit.program) +
                        DatabaseToString(unit.database);
  ParsedUnit reparsed = MustParse(printed);
  EXPECT_EQ(ProgramToString(reparsed.program),
            ProgramToString(unit.program));
  EXPECT_EQ(DatabaseToString(reparsed.database),
            DatabaseToString(unit.database));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PrinterRoundTrip, ::testing::Range(0u, 15u));

// --------------------------------------------------------------------------
// Normalisation composed with period detection and the engine
// --------------------------------------------------------------------------

TEST(IntegrationTest, NormalizedProgramKeepsItsPeriodicStructure) {
  // Normalisation preserves least models, so the periodic structure of the
  // original vocabulary survives; the normalized program is not
  // progressive (forward-shift rules look ahead) and exercises the
  // verified-doubling detector.
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto normal = Normalize(unit.program);
  ASSERT_TRUE(normal.ok());
  auto original = DetectPeriod(unit.program, unit.database);
  auto transformed = DetectPeriod(*normal, unit.database);
  ASSERT_TRUE(original.ok()) << original.status();
  ASSERT_TRUE(transformed.ok()) << transformed.status();
  // The transformed model interleaves auxiliary predicates, so only the
  // divisibility relation is guaranteed.
  EXPECT_EQ(transformed->period.p % original->period.p, 0)
      << "normalized period " << transformed->period.p
      << " vs original " << original->period.p;
}

TEST(IntegrationTest, EngineOverNormalizedSkiAgreesOnQueries) {
  ParsedUnit unit = MustParse(workload::SkiScheduleSource(1, 12, 4, 1));
  auto normal = Normalize(unit.program);
  ASSERT_TRUE(normal.ok());
  auto original_engine = TemporalDatabase::FromParsedUnit(
      ParsedUnit{unit.program, unit.database});
  ASSERT_TRUE(original_engine.ok());
  // Database shares the (mutated) vocabulary of the normalized program.
  auto normalized_engine = TemporalDatabase::FromParsedUnit(
      ParsedUnit{*normal, unit.database});
  ASSERT_TRUE(normalized_engine.ok());
  for (int64_t t = 0; t < 40; ++t) {
    std::string q = "plane(" + std::to_string(t) + ", resort0)";
    auto a = original_engine->Ask(q);
    auto b = normalized_engine->Ask(q);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(*a, *b) << q;
  }
}

TEST(IntegrationTest, TemporalizedDatalogThroughTheEngine) {
  ParsedUnit datalog = MustParse(workload::TransitiveClosureDatalogSource() +
                                 "edge(a, b). edge(b, c). edge(c, d).");
  auto temporal = TemporalizeDatalog(datalog.program, datalog.database);
  ASSERT_TRUE(temporal.ok());
  auto tdd = TemporalDatabase::FromParsedUnit(std::move(temporal).value());
  ASSERT_TRUE(tdd.ok());
  // Stage-indexed transitive closure through the whole engine stack.
  EXPECT_FALSE(*tdd->Ask("tc(1, a, d)"));
  EXPECT_TRUE(*tdd->Ask("tc(3, a, d)"));
  EXPECT_TRUE(*tdd->Ask("tc(1000, a, d)"));  // inflationary: stays true
  auto inflat = tdd->inflationary();
  ASSERT_TRUE(inflat.ok());
  EXPECT_TRUE(inflat->inflationary);
  auto proof = tdd->Explain("tc(2, a, c)");
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_NE(proof->find("edge(0, a, b)   [database]"), std::string::npos)
      << *proof;
}

TEST(IntegrationTest, SemiNormalizationThroughDetection) {
  // Two temporal variables -> semi-normalize -> detect.
  ParsedUnit unit = MustParse(R"(
    p(T+2, X) :- p(T, X), q(S, X).
    p(0, a). q(3, a).
  )");
  ASSERT_FALSE(unit.program.IsSemiNormal());
  auto semi = SemiNormalize(unit.program);
  ASSERT_TRUE(semi.ok());
  ASSERT_TRUE(semi->IsSemiNormal());
  auto detection = DetectPeriod(*semi, unit.database);
  ASSERT_TRUE(detection.ok()) << detection.status();
  EXPECT_EQ(detection->period.p, 2);
  // p fires at 0, 2, 4, ... because $sn0_p(a) holds.
  EXPECT_TRUE(detection->model.Contains(
      GroundAtom(unit.program.vocab().FindPredicate("p"), 6,
                 {unit.program.vocab().FindConstant("a")})));
}

TEST(IntegrationTest, BinaryCounterDoublingAgreesWithForward) {
  // Force the doubling detector on the binary counter by adding a
  // backward scratch rule; the detected minimal period must match the
  // exact forward detector's.
  for (int bits = 2; bits <= 4; ++bits) {
    ParsedUnit exact_unit =
        MustParse(workload::BinaryCounterSource(bits));
    auto exact = DetectPeriod(exact_unit.program, exact_unit.database);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(exact->exact);

    ParsedUnit general_unit = MustParse(
        workload::BinaryCounterSource(bits) +
        "scratch(T) :- scratch(T+1).\nscratch(0).");
    PeriodDetectionOptions options;
    options.max_horizon = 1 << 12;
    auto doubled =
        DetectPeriod(general_unit.program, general_unit.database, options);
    ASSERT_TRUE(doubled.ok()) << doubled.status();
    ASSERT_FALSE(doubled->exact);
    EXPECT_EQ(doubled->period.p, exact->period.p) << "bits=" << bits;
  }
}

}  // namespace
}  // namespace chronolog
