#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

Result<ParsedUnit> Parse(std::string_view src) { return Parser::Parse(src); }

const PredicateInfo& Pred(const ParsedUnit& unit, std::string_view name) {
  PredicateId id = unit.program.vocab().FindPredicate(name);
  EXPECT_NE(id, kInvalidPredicate) << "unknown predicate " << name;
  return unit.program.vocab().predicate(id);
}

// --------------------------------------------------------------------------
// Basic structure
// --------------------------------------------------------------------------

TEST(ParserTest, EvenExample) {
  auto unit = Parse("even(0). even(T+2) :- even(T).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->program.rules().size(), 1u);
  EXPECT_EQ(unit->database.size(), 1u);
  const PredicateInfo& even = Pred(*unit, "even");
  EXPECT_TRUE(even.is_temporal);
  EXPECT_EQ(even.arity, 0u);
  EXPECT_EQ(even.written_arity(), 1u);
}

TEST(ParserTest, FactTimeIsParsed) {
  auto unit = Parse("p(7, a).\np(T+1, X) :- p(T, X).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_EQ(unit->database.size(), 1u);
  EXPECT_EQ(unit->database.facts()[0].time, 7);
  EXPECT_EQ(unit->database.MaxTemporalDepth(), 7);
}

TEST(ParserTest, SkiExampleFromPaper) {
  auto unit = Parse(workload::SkiScheduleSource(/*resorts=*/2,
                                                /*year_len=*/12,
                                                /*winter_len=*/4,
                                                /*holidays=*/1));
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->program.rules().size(), 6u);
  EXPECT_TRUE(Pred(*unit, "plane").is_temporal);
  EXPECT_EQ(Pred(*unit, "plane").arity, 1u);
  EXPECT_FALSE(Pred(*unit, "resort").is_temporal);
  EXPECT_TRUE(Pred(*unit, "offseason").is_temporal);
  EXPECT_TRUE(unit->program.IsSemiNormal());
  EXPECT_FALSE(unit->program.IsNormal());  // depth 7 and 12
}

TEST(ParserTest, PathExampleFromPaper) {
  auto unit = Parse(workload::PathProgramSource() +
                    workload::CycleGraphFactsSource(3));
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->program.rules().size(), 3u);
  EXPECT_TRUE(Pred(*unit, "path").is_temporal);
  EXPECT_EQ(Pred(*unit, "path").arity, 2u);
  EXPECT_TRUE(Pred(*unit, "null").is_temporal);
  EXPECT_FALSE(Pred(*unit, "node").is_temporal);
  EXPECT_TRUE(unit->program.IsNormal());
}

TEST(ParserTest, ZeroAryPredicates) {
  auto unit = Parse("go. stop :- go.");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(Pred(*unit, "go").written_arity(), 0u);
  EXPECT_EQ(unit->database.size(), 1u);
  EXPECT_EQ(unit->program.rules().size(), 1u);
}

// --------------------------------------------------------------------------
// Sort inference
// --------------------------------------------------------------------------

TEST(ParserTest, TemporalityPropagatesThroughVariables) {
  // `q` becomes temporal because T is temporal via `p`.
  auto unit = Parse("p(0). p(T+1) :- p(T), q(T).\nq(3).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_TRUE(Pred(*unit, "q").is_temporal);
}

TEST(ParserTest, TemporalityPropagatesAcrossClauses) {
  // `q` is only used with a bare variable; temporality flows from the fact
  // in a *different* clause via p.
  auto unit = Parse(R"(
    q(T, X) :- p(T, X).
    p(0, a).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_TRUE(Pred(*unit, "q").is_temporal);
  EXPECT_TRUE(Pred(*unit, "p").is_temporal);
}

TEST(ParserTest, AmbiguousPredicateDefaultsToNonTemporal) {
  auto unit = Parse("likes(X, Y) :- knows(X, Y).\nknows(a, b).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_FALSE(Pred(*unit, "likes").is_temporal);
  EXPECT_FALSE(Pred(*unit, "knows").is_temporal);
}

TEST(ParserTest, TemporalDirectivePinsSort) {
  auto unit = Parse("@temporal happy/2.\nhappy(T, X) :- happy(T, Y), f(X, Y).\n"
                    "f(a, b). happy(0, b).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_TRUE(Pred(*unit, "happy").is_temporal);
  EXPECT_EQ(Pred(*unit, "happy").arity, 1u);
}

TEST(ParserTest, WithoutDirectiveDataOnlyRuleStaysAmbiguous) {
  // No integer ever appears: defaults to non-temporal (documented).
  auto unit = Parse("happy(T, X) :- happy(T, Y), f(X, Y).\nf(a, b).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_FALSE(Pred(*unit, "happy").is_temporal);
}

TEST(ParserTest, ConstantInTemporalPositionFails) {
  auto unit = Parse("p(0). p(T+1) :- p(T).\np(zero).");
  EXPECT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("temporal argument"),
            std::string::npos);
}

TEST(ParserTest, IntegerInNonTemporalPositionFails) {
  auto unit = Parse("edge(a, 3).");
  EXPECT_FALSE(unit.ok());
}

TEST(ParserTest, OffsetInNonFirstPositionFails) {
  auto unit = Parse("p(T, X+1) :- p(T, X).");
  EXPECT_FALSE(unit.ok());
}

TEST(ParserTest, MixedSortVariableFails) {
  // T used as temporal (first arg of p) and non-temporal (second arg of q).
  auto unit = Parse("p(0, a). q(b, c). r(T) :- p(T, X), q(X, T).");
  EXPECT_FALSE(unit.ok());
}

TEST(ParserTest, ConflictingTemporalityFails) {
  auto unit = Parse("p(0). p(a).");
  EXPECT_FALSE(unit.ok());
}

// --------------------------------------------------------------------------
// Arity and structure errors
// --------------------------------------------------------------------------

TEST(ParserTest, ArityMismatchFails) {
  auto unit = Parse("p(a). p(a, b).");
  EXPECT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("previously with"),
            std::string::npos)
      << unit.status();
}

TEST(ParserTest, NonGroundFactFails) {
  auto unit = Parse("p(X).");
  EXPECT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("variables"), std::string::npos);
}

TEST(ParserTest, NonRangeRestrictedRuleFails) {
  auto unit = Parse("p(X) :- q(Y).\nq(a).");
  EXPECT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("range-restricted"),
            std::string::npos);
}

TEST(ParserTest, TemporalHeadVarMustAppearInBody) {
  auto unit = Parse("p(0). p(T+1) :- q(a).\nq(a).");
  EXPECT_FALSE(unit.ok());
}

TEST(ParserTest, MissingDotFails) {
  auto unit = Parse("p(a)");
  EXPECT_FALSE(unit.ok());
}

TEST(ParserTest, DirectiveArityConflictFails) {
  auto unit = Parse("@temporal p/2.\np(0, a, b).");
  EXPECT_FALSE(unit.ok());
}

TEST(ParserTest, DirectiveOnZeroArityFails) {
  auto unit = Parse("@temporal p/0.");
  EXPECT_FALSE(unit.ok());
}

// --------------------------------------------------------------------------
// Error positions: every parse error names the offending line and column,
// including Finish-time (sort inference / lowering) errors.
// --------------------------------------------------------------------------

TEST(ParserTest, SyntaxErrorCarriesLineAndColumn) {
  auto unit = Parse("p(a).\nq(b)\nr(c).");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("line 3, column 1"),
            std::string::npos)
      << unit.status();
}

TEST(ParserTest, RangeRestrictionErrorCarriesPositionAndVariable) {
  auto unit = Parse("q(a).\np(X) :- q(Y).");
  ASSERT_FALSE(unit.ok());
  const std::string& message = unit.status().message();
  EXPECT_NE(message.find("'X'"), std::string::npos) << unit.status();
  EXPECT_NE(message.find("line 2, column 1"), std::string::npos)
      << unit.status();
}

TEST(ParserTest, SortConflictErrorCarriesPosition) {
  auto unit = Parse("p(0). p(T+1) :- p(T).\np(zero).");
  ASSERT_FALSE(unit.ok());
  // Points at the offending term, not just the clause.
  EXPECT_NE(unit.status().message().find("line 2, column 3"),
            std::string::npos)
      << unit.status();
}

TEST(ParserTest, ArityMismatchErrorCarriesPosition) {
  auto unit = Parse("p(a).\n\np(a, b).");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("line 3, column 1"),
            std::string::npos)
      << unit.status();
}

TEST(ParserTest, NonGroundFactErrorCarriesPosition) {
  auto unit = Parse("q(a).\np(X).\nq(b).");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("line 2, column 1"),
            std::string::npos)
      << unit.status();
}

TEST(ParserTest, FinishErrorNamesTheSourceUnit) {
  Parser parser;
  ASSERT_TRUE(parser.AddSource("q(a).", "good.tdd").ok());
  ASSERT_TRUE(parser.AddSource("p(X) :- q(Y).", "bad.tdd").ok());
  auto unit = parser.Finish();
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("of bad.tdd"), std::string::npos)
      << unit.status();
}

// --------------------------------------------------------------------------
// Source spans on the lowered AST
// --------------------------------------------------------------------------

TEST(ParserTest, RulesAndAtomsCarrySourceLocations) {
  auto unit = Parse("even(0).\neven(T+2) :-\n    even(T).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  const Rule& rule = unit->program.rules()[0];
  EXPECT_EQ(rule.loc.line, 2);
  EXPECT_EQ(rule.loc.column, 1);
  EXPECT_EQ(rule.head.loc.line, 2);
  ASSERT_EQ(rule.body.size(), 1u);
  EXPECT_EQ(rule.body[0].loc.line, 3);
  EXPECT_EQ(rule.body[0].loc.column, 5);
}

TEST(ParserTest, SourceUnitNamesAreRecorded) {
  Parser parser;
  ASSERT_TRUE(parser.AddSource("p(T+1, X) :- p(T, X).", "rules.tdd").ok());
  ASSERT_TRUE(parser.AddSource("p(0, a).", "facts.tdd").ok());
  auto unit = parser.Finish();
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_EQ(unit->program.source_units().size(), 2u);
  EXPECT_EQ(unit->program.source_units()[0], "rules.tdd");
  const Rule& rule = unit->program.rules()[0];
  EXPECT_EQ(unit->program.SourceUnitName(rule.loc.unit), "rules.tdd");
  EXPECT_EQ(unit->program.SourceUnitName(-1), "<input>");
  EXPECT_EQ(unit->program.SourceUnitName(99), "<input>");
}

TEST(ParserTest, FinishTwiceFails) {
  Parser parser;
  ASSERT_TRUE(parser.AddSource("p(a).").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(parser.Finish().status().code(), StatusCode::kFailedPrecondition);
}

TEST(ParserTest, AddSourceAfterFinishFails) {
  Parser parser;
  ASSERT_TRUE(parser.AddSource("p(a).").ok());
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(parser.AddSource("q(b).").code(),
            StatusCode::kFailedPrecondition);
}

// --------------------------------------------------------------------------
// Multi-source parsing and vocabulary reuse
// --------------------------------------------------------------------------

TEST(ParserTest, MultipleSourcesShareInference) {
  Parser parser;
  ASSERT_TRUE(parser.AddSource("p(T+1, X) :- p(T, X).").ok());
  ASSERT_TRUE(parser.AddSource("p(0, a).").ok());
  auto unit = parser.Finish();
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_TRUE(Pred(*unit, "p").is_temporal);
}

TEST(ParserTest, ExistingVocabularySignaturesAreBinding) {
  auto first = Parse("p(0, a). p(T+1, X) :- p(T, X).");
  ASSERT_TRUE(first.ok());
  // Same predicate, now used non-temporally: rejected.
  Parser parser(first->program.vocab_ptr());
  ASSERT_TRUE(parser.AddSource("p(b, c).").ok());
  EXPECT_FALSE(parser.Finish().ok());
}

TEST(ParserTest, ExistingVocabularyAcceptsConsistentUse) {
  auto first = Parse("p(0, a). p(T+1, X) :- p(T, X).");
  ASSERT_TRUE(first.ok());
  Parser parser(first->program.vocab_ptr());
  ASSERT_TRUE(parser.AddSource("p(5, b).").ok());
  auto unit = parser.Finish();
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->database.facts()[0].time, 5);
}

// --------------------------------------------------------------------------
// Rule shape helpers on parsed rules
// --------------------------------------------------------------------------

TEST(ParserTest, SemiNormalAndNormalDetection) {
  auto unit = Parse(R"(
    p(0, a).
    p(T+1, X) :- p(T, X).
    q(0).
    q(T+2) :- q(T).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_TRUE(unit->program.rules()[0].IsNormal());
  EXPECT_TRUE(unit->program.rules()[1].IsSemiNormal());
  EXPECT_FALSE(unit->program.rules()[1].IsNormal());
  EXPECT_EQ(unit->program.MaxTemporalDepth(), 2);
}

TEST(ParserTest, TwoTemporalVariablesIsNotSemiNormal) {
  auto unit = Parse(R"(
    r(0). s(0).
    p(T) :- r(T), s(S).
    p(0).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();
  ASSERT_EQ(unit->program.rules().size(), 1u);
  EXPECT_FALSE(unit->program.rules()[0].IsSemiNormal());
  EXPECT_FALSE(unit->program.IsSemiNormal());
}

TEST(ParserTest, GroundTemporalTermInRuleBody) {
  auto unit = Parse("p(0). q(T) :- p(T), p(3).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  const Rule& rule = unit->program.rules()[0];
  ASSERT_EQ(rule.body.size(), 2u);
  EXPECT_TRUE(rule.body[1].time->ground());
  EXPECT_EQ(rule.body[1].time->offset, 3);
}

// --------------------------------------------------------------------------
// Printer round-trips
// --------------------------------------------------------------------------

TEST(PrinterTest, RuleRoundTrip) {
  auto unit = Parse("plane(T+7, X) :- plane(T, X), resort(X), offseason(T).\n"
                    "plane(0, hunter). resort(hunter). offseason(0).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  std::string printed =
      RuleToString(unit->program.rules()[0], unit->program.vocab());
  EXPECT_EQ(printed,
            "plane(T+7, X) :- plane(T, X), resort(X), offseason(T).");
  // Re-parsing the printed program yields the same structure.
  auto reparsed = Parse(ProgramToString(unit->program) +
                        DatabaseToString(unit->database));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(ProgramToString(reparsed->program),
            ProgramToString(unit->program));
  EXPECT_EQ(DatabaseToString(reparsed->database),
            DatabaseToString(unit->database));
}

TEST(PrinterTest, GroundAtomRendering) {
  auto unit = Parse("p(3, a). q(b). go.");
  ASSERT_TRUE(unit.ok()) << unit.status();
  const Vocabulary& vocab = unit->database.vocab();
  EXPECT_EQ(GroundAtomToString(unit->database.facts()[0], vocab), "p(3, a)");
  EXPECT_EQ(GroundAtomToString(unit->database.facts()[1], vocab), "q(b)");
  EXPECT_EQ(GroundAtomToString(unit->database.facts()[2], vocab), "go");
}

TEST(PrinterTest, WorkloadSourcesAllParse) {
  std::mt19937 rng(7);
  EXPECT_TRUE(Parse(workload::EvenSource()).ok());
  EXPECT_TRUE(Parse(workload::TokenRingSource({2, 3, 5})).ok());
  EXPECT_TRUE(Parse(workload::BinaryCounterSource(4)).ok());
  EXPECT_TRUE(Parse(workload::DelayChainSource({3, 4})).ok());
  EXPECT_TRUE(Parse(workload::PathProgramSource() +
                    workload::RandomGraphFactsSource(5, 10, &rng))
                  .ok());
  EXPECT_TRUE(Parse(workload::BoundedDatalogSource()).ok());
  EXPECT_TRUE(Parse(workload::TransitiveClosureDatalogSource()).ok());
}

}  // namespace
}  // namespace chronolog
