// Soundness gate for the chronolog_flow static analyses (run directly by
// bench/ci.sh as well as through ctest): over every shipped example program
// and the workload-generator programs, the static bounds must be consistent
// with what the dynamic period detector finds —
//
//   (i)  a statically bounded program has minimal period 1, stabilised no
//        later than one step past the static horizon;
//   (ii) the static period divisor divides the detected minimal period;
//  (iii) seeding detection from the hints (initial horizon + join-order
//        priors) produces a bit-identical specification.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "ast/parser.h"
#include "core/engine.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

struct NamedProgram {
  std::string name;
  std::string source;
};

std::vector<NamedProgram> AllPrograms() {
  std::vector<NamedProgram> out;

  // Every shipped example program (CHRONOLOG_SOURCE_DIR points at the
  // source tree; set in tests/CMakeLists.txt).
  const std::filesystem::path dir =
      std::filesystem::path(CHRONOLOG_SOURCE_DIR) / "examples" / "programs";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".tdl") continue;
    std::ifstream file(entry.path());
    EXPECT_TRUE(file.is_open()) << entry.path();
    std::stringstream buffer;
    buffer << file.rdbuf();
    out.push_back({entry.path().filename().string(), buffer.str()});
  }
  std::sort(out.begin(), out.end(),
            [](const NamedProgram& a, const NamedProgram& b) {
              return a.name < b.name;
            });
  EXPECT_FALSE(out.empty()) << "no example programs found under " << dir;

  // The workload generators (src/workload/generators.cc): one bounded, one
  // progressive, several certified-periodic and several
  // exponential-period witnesses.
  out.push_back({"gen:even", workload::EvenSource()});
  out.push_back({"gen:delay_chain_4_6",
                 workload::DelayChainSource({4, 6})});
  out.push_back({"gen:token_ring_3_4", workload::TokenRingSource({3, 4})});
  out.push_back({"gen:binary_counter_3", workload::BinaryCounterSource(3)});
  out.push_back({"gen:path_cycle4", workload::PathProgramSource() +
                                        workload::CycleGraphFactsSource(4)});
  out.push_back({"gen:ski_small",
                 workload::SkiScheduleSource(/*resorts=*/2, /*year_len=*/12,
                                             /*winter_len=*/5,
                                             /*holidays=*/2)});
  out.push_back({"gen:skewed_join_8", workload::SkewedJoinSource(8)});
  out.push_back({"gen:bounded_datalog", workload::BoundedDatalogSource() +
                                            "edge(a, b).\nedge(b, c).\n"});
  out.push_back({"gen:transitive_closure",
                 workload::TransitiveClosureDatalogSource() +
                     "edge(a, b).\nedge(b, c).\nedge(c, a).\n"});
  return out;
}

TEST(FlowSoundnessTest, StaticBoundsAgreeWithTheDynamicDetector) {
  for (const NamedProgram& program : AllPrograms()) {
    SCOPED_TRACE(program.name);
    auto unit = Parser::Parse(program.source);
    ASSERT_TRUE(unit.ok()) << unit.status();

    const FlowAnalysis analysis =
        AnalyzeProgram(unit->program, unit->database);

    Result<RelationalSpecification> baseline =
        BuildSpecification(unit->program, unit->database);
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    const Period period = baseline->period();

    // (i) Statically bounded => the model goes empty past the horizon: the
    // minimal period is 1 and stabilization ends one step after it.
    if (analysis.offsets.bounded) {
      EXPECT_EQ(period.p, 1);
      EXPECT_LE(period.b + baseline->c(),
                analysis.offsets.static_horizon + 1);
    }

    // (ii) The static divisor claim: p is a multiple of it.
    ASSERT_GE(analysis.offsets.period_divisor, 1);
    EXPECT_EQ(period.p % analysis.offsets.period_divisor, 0)
        << "detected p=" << period.p << " static divisor="
        << analysis.offsets.period_divisor;

    // (iii) Hint-seeded detection is bit-identical: the initial-horizon
    // seed and the join-order priors are cost-only steers.
    PeriodDetectionOptions seeded_options;
    SeedPeriodOptions(analysis.hints, &seeded_options);
    seeded_options.plan_priors = &analysis.adornments.priors;
    Result<RelationalSpecification> seeded = BuildSpecification(
        unit->program, unit->database, seeded_options);
    ASSERT_TRUE(seeded.ok()) << seeded.status();
    EXPECT_EQ(seeded->period().b, period.b);
    EXPECT_EQ(seeded->period().p, period.p);
    EXPECT_EQ(seeded->c(), baseline->c());
    EXPECT_EQ(seeded->num_representatives(), baseline->num_representatives());
    EXPECT_TRUE(seeded->primary() == baseline->primary())
        << "seeded and unseeded primary databases differ";
  }
}

TEST(FlowSoundnessTest, EngineAnalyzeFlagPreservesTheSpecification) {
  // End-to-end through the engine facade: EngineOptions::analyze steers the
  // build but must not change the artefact. The delay chain is a certified
  // self-delay workload, so the hint path (divisor > 1) is actually taken.
  const std::string source = workload::DelayChainSource({4, 6});
  auto plain = TemporalDatabase::FromSource(source);
  ASSERT_TRUE(plain.ok()) << plain.status();
  auto plain_spec = plain->specification();
  ASSERT_TRUE(plain_spec.ok()) << plain_spec.status();

  EngineOptions options;
  options.analyze = true;
  auto analyzed = TemporalDatabase::FromSource(source, options);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status();
  auto analyzed_spec = analyzed->specification();
  ASSERT_TRUE(analyzed_spec.ok()) << analyzed_spec.status();

  EXPECT_EQ((*plain_spec)->period().b, (*analyzed_spec)->period().b);
  EXPECT_EQ((*plain_spec)->period().p, (*analyzed_spec)->period().p);
  EXPECT_TRUE((*plain_spec)->primary() == (*analyzed_spec)->primary());
  // The divisor the delay structure implies — lcm(4, 6) = 12 — is visible
  // through the lazily cached analysis accessor and divides the period.
  EXPECT_EQ(analyzed->analysis().hints.period_divisor, 12);
  EXPECT_EQ((*analyzed_spec)->period().p % 12, 0);
}

}  // namespace
}  // namespace chronolog
