#include <gtest/gtest.h>

#include "analysis/boundedness.h"
#include "analysis/temporalize.h"
#include "ast/parser.h"
#include "eval/forward.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

TEST(BoundednessTest, FixpointIterationsOnChain) {
  ParsedUnit unit = MustParse(workload::TransitiveClosureDatalogSource() +
                              "edge(a, b). edge(b, c). edge(c, d).");
  auto iterations = FixpointIterations(unit.program, unit.database);
  ASSERT_TRUE(iterations.ok()) << iterations.status();
  // tc over a 3-edge chain: levels 1, 2, 3 — three productive rounds.
  EXPECT_EQ(*iterations, 3);
}

TEST(BoundednessTest, ClosedDatabaseNeedsZeroIterations) {
  ParsedUnit unit = MustParse("r(X, Y) :- e(X, Y).\ne(a, b). r(a, b).");
  auto iterations = FixpointIterations(unit.program, unit.database);
  ASSERT_TRUE(iterations.ok());
  EXPECT_EQ(*iterations, 0);
}

TEST(BoundednessTest, TemporalProgramIsRejected) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  EXPECT_EQ(FixpointIterations(unit.program, unit.database).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ProbeBoundedness(unit.program).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BoundednessTest, BoundedProgramIsNotRefuted) {
  ParsedUnit unit = MustParse(workload::BoundedDatalogSource());
  auto probe = ProbeBoundedness(unit.program);
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_FALSE(probe->refuted);
  // Non-recursive program: at most 2 strata of derivation.
  EXPECT_LE(probe->max_iterations, 2);
}

TEST(BoundednessTest, TransitiveClosureIsRefuted) {
  ParsedUnit unit = MustParse(workload::TransitiveClosureDatalogSource());
  auto probe = ProbeBoundedness(unit.program);
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_TRUE(probe->refuted);
  EXPECT_GT(probe->max_iterations, 4);
}

TEST(BoundednessTest, ProbeAgreesWithTemporalizedPeriods) {
  // The Theorem 6.2 bridge, exercised in both directions: the probe's
  // verdict on S matches the temporalised S' period behaviour on chains.
  for (bool bounded : {true, false}) {
    std::string src = bounded ? workload::BoundedDatalogSource()
                              : workload::TransitiveClosureDatalogSource();
    ParsedUnit s = MustParse(src);
    auto probe = ProbeBoundedness(s.program);
    ASSERT_TRUE(probe.ok());
    EXPECT_EQ(probe->refuted, !bounded);

    // Temporalise with a concrete chain and look at the onset b.
    std::string edges;
    for (int i = 0; i + 1 < 12; ++i) {
      edges += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
               ").\n";
    }
    ParsedUnit with_db = MustParse(src + edges);
    auto temporal = TemporalizeDatalog(with_db.program, with_db.database);
    ASSERT_TRUE(temporal.ok());
    auto run = ForwardSimulate(temporal->program, temporal->database);
    ASSERT_TRUE(run.ok());
    if (bounded) {
      EXPECT_LE(run->period.b, probe->max_iterations + 1);
    } else {
      EXPECT_GT(run->period.b, 4);  // tracks the chain diameter
    }
  }
}

}  // namespace
}  // namespace chronolog
