// chronolog_serve: the minimal HTTP server, the observability endpoints,
// and their integration with an engine's chronolog_obs sinks. The client
// side is a raw blocking socket — the server is scraped exactly the way
// Prometheus or curl would, with no test-only transport.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/http_server.h"
#include "serve/obs_endpoints.h"

namespace chronolog {
namespace {

/// Sends one raw HTTP request to 127.0.0.1:`port` and returns the full
/// response (status line, headers, body). Empty string on connect failure.
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

TEST(HttpServerTest, ServesRegisteredRouteOnEphemeralPort) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string response = Get(server.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 4"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\npong"), std::string::npos);
  EXPECT_GE(server.requests_served(), 1u);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(HttpServerTest, HandlerSeesQueryString) {
  HttpServer server;
  server.Handle("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.method + " " + request.path + " ?" + request.query;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/echo?a=1&b=2");
  EXPECT_NE(response.find("GET /echo ?a=1&b=2"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, UnknownRouteIs404) {
  HttpServer server;
  server.Handle("/only", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(response.find("/only"), std::string::npos);  // lists routes
  server.Stop();
}

TEST(HttpServerTest, NonGetIs405) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      RawRequest(server.port(), "POST /x HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, HeadGetsHeadersWithoutBody) {
  HttpServer server;
  server.Handle("/h", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "body-text";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      RawRequest(server.port(), "HEAD /h HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  // Content-Length reflects the GET body, but the body is not sent.
  EXPECT_NE(response.find("Content-Length: 9"), std::string::npos);
  EXPECT_EQ(response.find("body-text"), std::string::npos);
  server.Stop();
}

// Matches the TSan ctest filter ('Parallel'): concurrent scrapers against
// the worker pool.
TEST(HttpServerParallelTest, ConcurrentClientsAllServed) {
  HttpServerOptions options;
  options.num_workers = 4;
  HttpServer server(options);
  std::atomic<uint64_t> hits{0};
  server.Handle("/hit", [&hits](const HttpRequest&) {
    hits.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 10;
  std::vector<std::thread> clients;
  std::atomic<int> ok_responses{0};
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&ok_responses, port = server.port()] {
      for (int j = 0; j < kRequestsPerClient; ++j) {
        const std::string response = Get(port, "/hit");
        if (response.find("HTTP/1.1 200 OK") != std::string::npos) {
          ok_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(ok_responses.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(hits.load(), static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_GE(server.requests_served(),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
}

TEST(ObsEndpointsTest, ServesEngineMetricsHealthAndTrace) {
  EngineOptions options;
  options.collect_metrics = true;
  auto tdd = TemporalDatabase::FromSource(R"(
    even(0).
    even(T+2) :- even(T).
  )", options);
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  ASSERT_TRUE(tdd->specification().ok());
  ASSERT_TRUE(tdd->Query("exists T (even(T))").ok());

  HttpServer server;
  RegisterObservabilityEndpoints(server, tdd->metrics(), tdd->trace(),
                                 "serve-test");
  ASSERT_TRUE(server.Start().ok());

  const std::string health = Get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"service\":\"serve-test\""), std::string::npos);

  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE forward_timesteps counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE query_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("query_evaluations 1"), std::string::npos);

  const std::string trace = Get(server.port(), "/trace");
  EXPECT_NE(trace.find("application/json"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("query.eval"), std::string::npos);

  server.Stop();
}

TEST(ObsEndpointsTest, NullSinksDegradeGracefully) {
  HttpServer server;
  RegisterObservabilityEndpoints(server, nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  const std::string trace = Get(server.port(), "/trace");
  EXPECT_NE(trace.find("\"traceEvents\":[]"), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace chronolog
