// chronolog_serve: the minimal HTTP server, the observability endpoints,
// and their integration with an engine's chronolog_obs sinks. The client
// side is a raw blocking socket — the server is scraped exactly the way
// Prometheus or curl would, with no test-only transport.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/http_server.h"
#include "serve/obs_endpoints.h"
#include "serve/query_endpoints.h"
#include "serve/registry.h"
#include "util/json.h"
#include "util/metrics.h"

namespace chronolog {
namespace {

/// Sends one raw HTTP request to 127.0.0.1:`port` and returns the full
/// response (status line, headers, body). Empty string on connect failure.
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

std::string Post(int port, const std::string& path, const std::string& body) {
  return RawRequest(port, "POST " + path + " HTTP/1.1\r\nHost: t\r\n" +
                              "Content-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body);
}

/// Like RawRequest, but half-closes the write side after sending — the
/// server sees EOF instead of waiting out its receive timeout.
std::string RawRequestThenEof(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpServerTest, ServesRegisteredRouteOnEphemeralPort) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string response = Get(server.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 4"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\npong"), std::string::npos);
  EXPECT_GE(server.requests_served(), 1u);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(HttpServerTest, HandlerSeesQueryString) {
  HttpServer server;
  server.Handle("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.method + " " + request.path + " ?" + request.query;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/echo?a=1&b=2");
  EXPECT_NE(response.find("GET /echo ?a=1&b=2"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, UnknownRouteIs404) {
  HttpServer server;
  server.Handle("/only", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(response.find("/only"), std::string::npos);  // lists routes
  server.Stop();
}

TEST(HttpServerTest, NonGetIs405) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      RawRequest(server.port(), "POST /x HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, HeadGetsHeadersWithoutBody) {
  HttpServer server;
  server.Handle("/h", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "body-text";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      RawRequest(server.port(), "HEAD /h HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  // Content-Length reflects the GET body, but the body is not sent.
  EXPECT_NE(response.find("Content-Length: 9"), std::string::npos);
  EXPECT_EQ(response.find("body-text"), std::string::npos);
  server.Stop();
}

// Matches the TSan ctest filter ('Parallel'): concurrent scrapers against
// the worker pool.
TEST(HttpServerParallelTest, ConcurrentClientsAllServed) {
  HttpServerOptions options;
  options.num_workers = 4;
  HttpServer server(options);
  std::atomic<uint64_t> hits{0};
  server.Handle("/hit", [&hits](const HttpRequest&) {
    hits.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 10;
  std::vector<std::thread> clients;
  std::atomic<int> ok_responses{0};
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&ok_responses, port = server.port()] {
      for (int j = 0; j < kRequestsPerClient; ++j) {
        const std::string response = Get(port, "/hit");
        if (response.find("HTTP/1.1 200 OK") != std::string::npos) {
          ok_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(ok_responses.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(hits.load(), static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_GE(server.requests_served(),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
}

TEST(ObsEndpointsTest, ServesEngineMetricsHealthAndTrace) {
  EngineOptions options;
  options.collect_metrics = true;
  auto tdd = TemporalDatabase::FromSource(R"(
    even(0).
    even(T+2) :- even(T).
  )", options);
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  ASSERT_TRUE(tdd->specification().ok());
  ASSERT_TRUE(tdd->Query("exists T (even(T))").ok());

  HttpServer server;
  RegisterObservabilityEndpoints(server, tdd->metrics(), tdd->trace(),
                                 "serve-test");
  ASSERT_TRUE(server.Start().ok());

  const std::string health = Get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"service\":\"serve-test\""), std::string::npos);

  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE forward_timesteps counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE query_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("query_evaluations 1"), std::string::npos);

  const std::string trace = Get(server.port(), "/trace");
  EXPECT_NE(trace.find("application/json"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("query.eval"), std::string::npos);

  server.Stop();
}

TEST(ObsEndpointsTest, NullSinksDegradeGracefully) {
  HttpServer server;
  RegisterObservabilityEndpoints(server, nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  const std::string trace = Get(server.port(), "/trace");
  EXPECT_NE(trace.find("\"traceEvents\":[]"), std::string::npos);
  server.Stop();
}

// --------------------------------------------------------------------------
// Protocol-level status codes (the PR's 431/408/400 and counting fixes)
// --------------------------------------------------------------------------

TEST(HttpProtocolTest, OversizedHeaderBlockIs431) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  // Exactly the 64 KiB read cap, no terminator: the server must refuse the
  // request instead of serving a truncated parse of it. Sending no more
  // than the cap also means the server drains everything we wrote, so the
  // close after the 431 is a clean FIN and the response survives.
  std::string huge = "GET /x HTTP/1.1\r\nX-Filler: ";
  huge.resize(64 * 1024, 'a');
  const std::string response = RawRequest(server.port(), huge);
  EXPECT_NE(response.find("HTTP/1.1 431"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, StalledClientIs408NotBadRequest) {
  HttpServerOptions options;
  options.read_timeout_ms = 200;
  HttpServer server(options);
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  // Send half a request and keep the connection open: the receive timeout
  // fires and the server must say "timeout", not "malformed".
  const std::string response =
      RawRequest(server.port(), "GET /x HTTP/1.1\r\nHost: t\r\n");
  EXPECT_NE(response.find("HTTP/1.1 408"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, TruncatedRequestIs400) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  // Half a request followed by EOF is a malformed request, not a timeout.
  const std::string response =
      RawRequestThenEof(server.port(), "GET /x HTTP/1.1\r\nHost: t\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, ResponsesAreCountedNotConnections) {
  MetricsRegistry metrics;
  HttpServerOptions options;
  options.metrics = &metrics;
  HttpServer server(options);
  server.Handle("/ok", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "fine";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(Get(server.port(), "/ok").find("200"), std::string::npos);
  EXPECT_NE(Get(server.port(), "/nope").find("404"), std::string::npos);
  // A connection that sends nothing must not count as a served request.
  EXPECT_TRUE(RawRequestThenEof(server.port(), "").empty());
  server.Stop();
  EXPECT_EQ(server.requests_served(), 2u);
  EXPECT_EQ(metrics.counter("serve.responses_2xx")->value(), 1u);
  EXPECT_EQ(metrics.counter("serve.responses_4xx")->value(), 1u);
  EXPECT_EQ(metrics.counter("serve.responses_5xx")->value(), 0u);
}

TEST(HttpProtocolTest, PostRequiresContentLength) {
  HttpServer server;
  server.HandlePost("/p", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = RawRequestThenEof(
      server.port(), "POST /p HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 411"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, OversizedBodyIs413) {
  HttpServerOptions options;
  options.max_body_bytes = 64;
  HttpServer server(options);
  server.HandlePost("/p", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      Post(server.port(), "/p", std::string(1000, 'x'));
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, MethodRouteMismatchIs405) {
  HttpServer server;
  server.Handle("/get-only", [](const HttpRequest&) { return HttpResponse{}; });
  server.HandlePost("/post-only",
                    [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string post = Post(server.port(), "/get-only", "{}");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos) << post;
  EXPECT_NE(post.find("GET"), std::string::npos);
  const std::string get = Get(server.port(), "/post-only");
  EXPECT_NE(get.find("HTTP/1.1 405"), std::string::npos) << get;
  EXPECT_NE(get.find("POST"), std::string::npos);
  server.Stop();
}

TEST(HttpProtocolTest, PostBodyReachesHandler) {
  HttpServer server;
  server.HandlePost("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "got:" + request.body;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Post(server.port(), "/echo", "hello body");
  EXPECT_NE(response.find("got:hello body"), std::string::npos) << response;
  server.Stop();
}

// --------------------------------------------------------------------------
// The query protocol: POST /query over a DatabaseRegistry
// --------------------------------------------------------------------------

class QueryEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .AddFromSource("default", R"(
                      tick(0).
                      tick(T+128) :- tick(T).
                    )")
                    .ok());
  }
  /// Starts a server with the query endpoints and returns its port.
  int StartServer(QueryServiceOptions options = {}) {
    server_ = std::make_unique<HttpServer>();
    RegisterQueryEndpoints(*server_, &registry_, options);
    EXPECT_TRUE(server_->Start().ok());
    return server_->port();
  }
  static std::string Body(const std::string& response) {
    const std::size_t split = response.find("\r\n\r\n");
    return split == std::string::npos ? "" : response.substr(split + 4);
  }
  DatabaseRegistry registry_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(QueryEndpointTest, RoundTripReturnsRowsAndRewrite) {
  const int port = StartServer();
  const std::string response =
      Post(port, "/query", R"j({"query":"tick(T)"})j");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << json.status() << "\n" << response;
  EXPECT_EQ(json->Find("database")->string_value, "default");
  EXPECT_TRUE(json->Find("boolean")->bool_value);
  ASSERT_TRUE(json->Find("rows")->is_array());
  ASSERT_EQ(json->Find("rows")->array.size(), 1u);
  EXPECT_EQ(json->Find("rows")->array[0].array[0].int_value, 0);
  EXPECT_EQ(json->Find("rewrite")->Find("p")->int_value, 128);
  EXPECT_FALSE(json->Find("partial")->bool_value);
  EXPECT_FALSE(json->Find("truncated")->bool_value);
  EXPECT_GE(json->Find("eval_ms")->number, 0.0);
}

TEST_F(QueryEndpointTest, MalformedJsonIs400) {
  const int port = StartServer();
  EXPECT_NE(Post(port, "/query", "{oops").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(Post(port, "/query", "[1,2]").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(Post(port, "/query", R"j({"no_query":1})j").find("HTTP/1.1 400"),
            std::string::npos);
  // A well-formed request with an unparseable query is also the client's
  // fault.
  EXPECT_NE(
      Post(port, "/query", R"j({"query":"unknown_pred(T)"})j")
          .find("HTTP/1.1 400"),
      std::string::npos);
}

TEST_F(QueryEndpointTest, UnknownDatabaseIs404AndListsKnownOnes) {
  const int port = StartServer();
  const std::string response =
      Post(port, "/query", R"j({"query":"tick(T)","database":"missing"})j");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos) << response;
  EXPECT_NE(response.find("\"default\""), std::string::npos) << response;
}

TEST_F(QueryEndpointTest, MaxRowsTruncatesAndSaysSo) {
  const int port = StartServer();
  const std::string response = Post(
      port, "/query", R"j({"query":"tick(T) | ~tick(T)","max_rows":2})j");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << response;
  EXPECT_TRUE(json->Find("truncated")->bool_value);
  EXPECT_EQ(json->Find("rows")->array.size(), 2u);
  EXPECT_EQ(json->Find("rows_returned")->int_value, 2);
}

TEST_F(QueryEndpointTest, DeadlineMarksAnswerPartial) {
  // A second database whose representative segment is wide enough that the
  // quantifier product below costs well over a millisecond.
  ASSERT_TRUE(registry_
                  .AddFromSource("slow", R"(
                    tick(0).
                    tick(T+1024) :- tick(T).
                  )")
                  .ok());
  const int port = StartServer();
  // `forall` cannot short-circuit over a tautology, so the evaluation is a
  // full ~1k x ~1k quantifier product — far more than a millisecond.
  const std::string response = Post(
      port, "/query",
      R"j({"query":"forall T (forall S (tick(S) | ~tick(S) | tick(T)))",)j"
      R"j("database":"slow","deadline_ms":1})j");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << response;
  EXPECT_TRUE(json->Find("partial")->bool_value) << Body(response);
}

TEST_F(QueryEndpointTest, InvalidLimitsAre400) {
  const int port = StartServer();
  EXPECT_NE(
      Post(port, "/query", R"j({"query":"tick(T)","deadline_ms":-5})j")
          .find("HTTP/1.1 400"),
      std::string::npos);
  EXPECT_NE(
      Post(port, "/query", R"j({"query":"tick(T)","deadline_ms":"soon"})j")
          .find("HTTP/1.1 400"),
      std::string::npos);
  EXPECT_NE(Post(port, "/query", R"j({"query":"tick(T)","max_rows":-1})j")
                .find("HTTP/1.1 400"),
            std::string::npos);
}

TEST_F(QueryEndpointTest, DatabasesEndpointListsRegistry) {
  ASSERT_TRUE(registry_.AddFromSource("even", "even(0). even(T+2) :- even(T).")
                  .ok());
  const int port = StartServer();
  const std::string response = Get(port, "/databases");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << response;
  const JsonValue* dbs = json->Find("databases");
  ASSERT_NE(dbs, nullptr);
  ASSERT_EQ(dbs->array.size(), 2u);
  EXPECT_EQ(dbs->array[0].Find("name")->string_value, "default");
  EXPECT_EQ(dbs->array[1].Find("name")->string_value, "even");
  EXPECT_EQ(dbs->array[1].Find("period_p")->int_value, 2);
}

TEST_F(QueryEndpointTest, RegistryRejectsDuplicatesAndBadPrograms) {
  EXPECT_EQ(registry_.AddFromSource("default", "p(0).").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry_.AddFromSource("bad", "p(X).").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry_.AddFromFile("missing", "/no/such/file.tdl").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry_.size(), 1u);
  EXPECT_EQ(registry_.Find("bad"), nullptr);
}

// Matches the TSan ctest filter ('Parallel'): a flood of concurrent slow
// queries against a single admission slot must shed load with 429s while
// still serving at least one query, and the rejection must be counted.
TEST(QueryEndpointParallelTest, FloodShedsWith429) {
  DatabaseRegistry registry;
  ASSERT_TRUE(registry
                  .AddFromSource("default", R"(
                    tick(0).
                    tick(T+1024) :- tick(T).
                  )")
                  .ok());
  MetricsRegistry metrics;
  HttpServerOptions server_options;
  server_options.num_workers = 4;
  HttpServer server(server_options);
  QueryServiceOptions options;
  options.max_in_flight = 1;
  options.metrics = &metrics;
  // Each query costs tens of milliseconds (quadratic quantifier product
  // over ~1k representatives), so concurrent requests overlap reliably.
  options.default_timeout = std::chrono::milliseconds(2000);
  RegisterQueryEndpoints(server, &registry, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 6;
  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&ok, &rejected, port = server.port()] {
      const std::string response = Post(
          port, "/query",
          R"j({"query":"forall T (forall S (tick(S) | ~tick(S) | tick(T)))"})j");
      if (response.find("HTTP/1.1 200") != std::string::npos) {
        ok.fetch_add(1, std::memory_order_relaxed);
      } else if (response.find("HTTP/1.1 429") != std::string::npos) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(ok.load() + rejected.load(), kClients);
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(rejected.load(), 1);
  EXPECT_EQ(metrics.counter("query.rejected")->value(),
            static_cast<uint64_t>(rejected.load()));
}

}  // namespace
}  // namespace chronolog
