// chronolog_serve: the minimal HTTP server, the observability endpoints,
// and their integration with an engine's chronolog_obs sinks. The client
// side is a raw blocking socket — the server is scraped exactly the way
// Prometheus or curl would, with no test-only transport.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <clocale>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/http_server.h"
#include "serve/obs_endpoints.h"
#include "serve/query_endpoints.h"
#include "serve/registry.h"
#include "util/json.h"
#include "util/metrics.h"

namespace chronolog {
namespace {

/// Sends one raw HTTP request to 127.0.0.1:`port` and returns the full
/// response (status line, headers, body). Empty string on connect failure.
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

// The one-shot helpers ask for `Connection: close` explicitly: they frame
// the response by reading to EOF, which on a keep-alive connection would
// block until the server's idle timeout.
std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n" +
                              "Connection: close\r\n\r\n");
}

std::string Post(int port, const std::string& path, const std::string& body) {
  return RawRequest(port, "POST " + path + " HTTP/1.1\r\nHost: t\r\n" +
                              "Connection: close\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" + body);
}

/// Like RawRequest, but half-closes the write side after sending — the
/// server sees EOF instead of waiting out its receive timeout.
std::string RawRequestThenEof(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// A client connection held open across requests. Keep-alive responses have
/// no EOF to delimit them, so each one is framed by its Content-Length —
/// exactly what a real reusing client must do.
class KeepAliveClient {
 public:
  ~KeepAliveClient() { Close(); }

  bool Connect(int port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  bool Send(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads exactly one response. `head_only` responses (to HEAD requests)
  /// declare a Content-Length but carry no body bytes.
  std::string ReadResponse(bool head_only = false) {
    std::size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return "";
    }
    std::size_t body_size = 0;
    const std::size_t cl = buffer_.find("Content-Length: ");
    if (!head_only && cl != std::string::npos && cl < header_end) {
      body_size = static_cast<std::size_t>(
          std::strtoull(buffer_.c_str() + cl + 16, nullptr, 10));
    }
    const std::size_t total = header_end + 4 + body_size;
    while (buffer_.size() < total) {
      if (!Fill()) return "";
    }
    std::string response = buffer_.substr(0, total);
    buffer_.erase(0, total);
    return response;
  }

  /// Blocks until the server closes its side; true on a clean EOF with no
  /// stray bytes first.
  bool WaitForEof() {
    char c;
    for (;;) {
      const ssize_t n = ::recv(fd_, &c, 1, 0);
      if (n == 0) return true;
      if (n < 0 && errno == EINTR) continue;
      return false;  // error, or unexpected data
    }
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

 private:
  bool Fill() {
    char buf[4096];
    ssize_t n;
    do {
      n = ::recv(fd_, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;  // over-read bytes of the next response
};

TEST(HttpServerTest, ServesRegisteredRouteOnEphemeralPort) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string response = Get(server.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 4"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\npong"), std::string::npos);
  EXPECT_GE(server.requests_served(), 1u);

  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // idempotent
}

TEST(HttpServerTest, HandlerSeesQueryString) {
  HttpServer server;
  server.Handle("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = request.method + " " + request.path + " ?" + request.query;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/echo?a=1&b=2");
  EXPECT_NE(response.find("GET /echo ?a=1&b=2"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, UnknownRouteIs404) {
  HttpServer server;
  server.Handle("/only", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Get(server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(response.find("/only"), std::string::npos);  // lists routes
  server.Stop();
}

TEST(HttpServerTest, NonGetIs405) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = RawRequest(
      server.port(),
      "POST /x HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, HeadGetsHeadersWithoutBody) {
  HttpServer server;
  server.Handle("/h", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "body-text";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = RawRequest(
      server.port(),
      "HEAD /h HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  // Content-Length reflects the GET body, but the body is not sent.
  EXPECT_NE(response.find("Content-Length: 9"), std::string::npos);
  EXPECT_EQ(response.find("body-text"), std::string::npos);
  server.Stop();
}

// Matches the TSan ctest filter ('Parallel'): concurrent scrapers against
// the worker pool.
TEST(HttpServerParallelTest, ConcurrentClientsAllServed) {
  HttpServerOptions options;
  options.num_workers = 4;
  HttpServer server(options);
  std::atomic<uint64_t> hits{0};
  server.Handle("/hit", [&hits](const HttpRequest&) {
    hits.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 10;
  std::vector<std::thread> clients;
  std::atomic<int> ok_responses{0};
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&ok_responses, port = server.port()] {
      for (int j = 0; j < kRequestsPerClient; ++j) {
        const std::string response = Get(port, "/hit");
        if (response.find("HTTP/1.1 200 OK") != std::string::npos) {
          ok_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(ok_responses.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(hits.load(), static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_GE(server.requests_served(),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
}

TEST(ObsEndpointsTest, ServesEngineMetricsHealthAndTrace) {
  EngineOptions options;
  options.collect_metrics = true;
  auto tdd = TemporalDatabase::FromSource(R"(
    even(0).
    even(T+2) :- even(T).
  )", options);
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  ASSERT_TRUE(tdd->specification().ok());
  ASSERT_TRUE(tdd->Query("exists T (even(T))").ok());

  HttpServer server;
  RegisterObservabilityEndpoints(server, tdd->metrics(), tdd->trace(),
                                 "serve-test");
  ASSERT_TRUE(server.Start().ok());

  const std::string health = Get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"service\":\"serve-test\""), std::string::npos);

  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE forward_timesteps counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("# TYPE query_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("query_evaluations 1"), std::string::npos);

  const std::string trace = Get(server.port(), "/trace");
  EXPECT_NE(trace.find("application/json"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("query.eval"), std::string::npos);

  server.Stop();
}

TEST(ObsEndpointsTest, NullSinksDegradeGracefully) {
  HttpServer server;
  RegisterObservabilityEndpoints(server, nullptr, nullptr);
  ASSERT_TRUE(server.Start().ok());
  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  const std::string trace = Get(server.port(), "/trace");
  EXPECT_NE(trace.find("\"traceEvents\":[]"), std::string::npos);
  server.Stop();
}

// --------------------------------------------------------------------------
// HTTP/1.1 keep-alive: persistent connections, pipelining, idle timeout
// --------------------------------------------------------------------------

TEST(HttpKeepAliveTest, SequentialRequestsReuseOneConnection) {
  MetricsRegistry metrics;
  HttpServerOptions options;
  options.metrics = &metrics;
  HttpServer server(options);
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
    const std::string response = client.ReadResponse();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos)
        << response;
    EXPECT_NE(response.find("pong"), std::string::npos);
  }
  client.Close();
  server.Stop();
  EXPECT_EQ(server.requests_served(), 3u);
  EXPECT_EQ(metrics.counter("serve.connections_opened")->value(), 1u);
  EXPECT_EQ(metrics.counter("serve.connections_reused")->value(), 2u);
}

TEST(HttpKeepAliveTest, PipelinedPostsAnswerInOrder) {
  HttpServer server;
  server.HandlePost("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "got:" + request.body;
    return response;
  });
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  // Two POSTs plus a GET in a single write: the server over-reads the first
  // body together with the following requests and must carry the prefix
  // forward instead of discarding it.
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send(
      "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nfirst"
      "POST /echo HTTP/1.1\r\nHost: t\r\nContent-Length: 6\r\n\r\nsecond"
      "GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string r1 = client.ReadResponse();
  EXPECT_NE(r1.find("got:first"), std::string::npos) << r1;
  const std::string r2 = client.ReadResponse();
  EXPECT_NE(r2.find("got:second"), std::string::npos) << r2;
  const std::string r3 = client.ReadResponse();
  EXPECT_NE(r3.find("pong"), std::string::npos) << r3;
  server.Stop();
  EXPECT_EQ(server.requests_served(), 3u);
}

TEST(HttpKeepAliveTest, ConnectionCloseRequestIsHonored) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send(
      "GET /ping HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos) << response;
  EXPECT_TRUE(client.WaitForEof());
  server.Stop();
}

TEST(HttpKeepAliveTest, Http10AlwaysCloses) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.0\r\nHost: t\r\n\r\n"));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos) << response;
  EXPECT_TRUE(client.WaitForEof());
  server.Stop();
}

TEST(HttpKeepAliveTest, MalformedSecondRequestClosesConnection) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_NE(client.ReadResponse().find("HTTP/1.1 200"), std::string::npos);
  ASSERT_TRUE(client.Send("BOGUS\r\n\r\n"));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos) << response;
  EXPECT_TRUE(client.WaitForEof());
  server.Stop();
}

TEST(HttpKeepAliveTest, IdleConnectionIsClosedAndCounted) {
  MetricsRegistry metrics;
  HttpServerOptions options;
  options.idle_timeout_ms = 150;
  options.metrics = &metrics;
  HttpServer server(options);
  server.Handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_NE(client.ReadResponse().find("Connection: keep-alive"),
            std::string::npos);
  // Send nothing more: the server must hang up, not hold the worker.
  EXPECT_TRUE(client.WaitForEof());
  server.Stop();
  EXPECT_EQ(metrics.counter("serve.connections_idle_closed")->value(), 1u);
}

TEST(HttpKeepAliveTest, MaxRequestsPerConnectionHonored) {
  HttpServerOptions options;
  options.max_requests_per_connection = 2;
  HttpServer server(options);
  server.Handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string first = client.ReadResponse();
  EXPECT_NE(first.find("Connection: keep-alive"), std::string::npos) << first;
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string second = client.ReadResponse();
  EXPECT_NE(second.find("Connection: close"), std::string::npos) << second;
  EXPECT_TRUE(client.WaitForEof());
  server.Stop();
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(HttpKeepAliveTest, HeadResponsesDoNotDesyncFraming) {
  HttpServer server;
  server.Handle("/h", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "body-text";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  // HEAD then GET pipelined: the HEAD response declares Content-Length 9
  // but must not ship the body, or the GET's response starts 9 bytes late.
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send(
      "HEAD /h HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /h HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string head = client.ReadResponse(/*head_only=*/true);
  EXPECT_NE(head.find("Content-Length: 9"), std::string::npos) << head;
  const std::string get = client.ReadResponse();
  EXPECT_NE(get.find("HTTP/1.1 200 OK"), std::string::npos) << get;
  EXPECT_NE(get.find("body-text"), std::string::npos) << get;
  server.Stop();
}

TEST(HttpKeepAliveTest, RouteMissesKeepConnectionAndDrainBody) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "pong";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  // A POST to an unregistered route answers 404 — and must still drain the
  // 5-byte body it never read, or the next request starts mid-body.
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send(
      "POST /nope HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nhello"));
  const std::string miss = client.ReadResponse();
  EXPECT_NE(miss.find("HTTP/1.1 404"), std::string::npos) << miss;
  EXPECT_NE(miss.find("Connection: keep-alive"), std::string::npos) << miss;
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  const std::string hit = client.ReadResponse();
  EXPECT_NE(hit.find("HTTP/1.1 200"), std::string::npos) << hit;
  EXPECT_NE(hit.find("pong"), std::string::npos) << hit;
  server.Stop();
}

TEST(HttpKeepAliveTest, HeaderTerminatorStraddlingRecvChunksIsFound) {
  HttpServer server;
  server.Handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  // Split the request mid-"\r\n\r\n": the resume-offset scan must still see
  // a terminator that straddles two recv chunks.
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nHost: t\r\n\r"));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(client.Send("\n"));
  EXPECT_NE(client.ReadResponse().find("HTTP/1.1 200"), std::string::npos);
  server.Stop();
}

TEST(HttpKeepAliveTest, StopReturnsPromptlyWithIdleConnectionOpen) {
  HttpServer server;  // default 5 s idle timeout: Stop() must not wait it out
  server.Handle("/ping", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send("GET /ping HTTP/1.1\r\nHost: t\r\n\r\n"));
  EXPECT_NE(client.ReadResponse().find("HTTP/1.1 200"), std::string::npos);
  const auto start = std::chrono::steady_clock::now();
  server.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(2));
  EXPECT_TRUE(client.WaitForEof());
}

// Matches the TSan ctest filter ('Parallel'): concurrent clients, each
// reusing one persistent connection for its whole request sequence. The
// client count deliberately equals the worker count — a kept-alive
// connection pins its worker, so more reusing clients than workers would
// starve (that sizing rule is documented in docs/SERVING.md).
TEST(HttpKeepAliveParallelTest, ConcurrentReusingClientsAllServed) {
  MetricsRegistry metrics;
  HttpServerOptions options;
  options.num_workers = 4;
  options.metrics = &metrics;
  HttpServer server(options);
  std::atomic<uint64_t> hits{0};
  server.Handle("/hit", [&hits](const HttpRequest&) {
    hits.fetch_add(1, std::memory_order_relaxed);
    HttpResponse response;
    response.body = "ok";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> ok_responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&ok_responses, port = server.port()] {
      KeepAliveClient client;
      if (!client.Connect(port)) return;
      for (int j = 0; j < kRequestsPerClient; ++j) {
        if (!client.Send("GET /hit HTTP/1.1\r\nHost: t\r\n\r\n")) return;
        if (client.ReadResponse().find("HTTP/1.1 200 OK") !=
            std::string::npos) {
          ok_responses.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(ok_responses.load(), kClients * kRequestsPerClient);
  EXPECT_EQ(hits.load(),
            static_cast<uint64_t>(kClients * kRequestsPerClient));
  EXPECT_EQ(metrics.counter("serve.connections_opened")->value(),
            static_cast<uint64_t>(kClients));
  EXPECT_EQ(metrics.counter("serve.connections_reused")->value(),
            static_cast<uint64_t>(kClients * (kRequestsPerClient - 1)));
}

// --------------------------------------------------------------------------
// Protocol-level status codes (the PR's 431/408/400 and counting fixes)
// --------------------------------------------------------------------------

TEST(HttpProtocolTest, OversizedHeaderBlockIs431) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  // Exactly the 64 KiB read cap, no terminator: the server must refuse the
  // request instead of serving a truncated parse of it. Sending no more
  // than the cap also means the server drains everything we wrote, so the
  // close after the 431 is a clean FIN and the response survives.
  std::string huge = "GET /x HTTP/1.1\r\nX-Filler: ";
  huge.resize(64 * 1024, 'a');
  const std::string response = RawRequest(server.port(), huge);
  EXPECT_NE(response.find("HTTP/1.1 431"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, StalledClientIs408NotBadRequest) {
  HttpServerOptions options;
  options.read_timeout_ms = 200;
  HttpServer server(options);
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  // Send half a request and keep the connection open: the receive timeout
  // fires and the server must say "timeout", not "malformed".
  const std::string response =
      RawRequest(server.port(), "GET /x HTTP/1.1\r\nHost: t\r\n");
  EXPECT_NE(response.find("HTTP/1.1 408"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, TruncatedRequestIs400) {
  HttpServer server;
  server.Handle("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  // Half a request followed by EOF is a malformed request, not a timeout.
  const std::string response =
      RawRequestThenEof(server.port(), "GET /x HTTP/1.1\r\nHost: t\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, ResponsesAreCountedNotConnections) {
  MetricsRegistry metrics;
  HttpServerOptions options;
  options.metrics = &metrics;
  HttpServer server(options);
  server.Handle("/ok", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "fine";
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(Get(server.port(), "/ok").find("200"), std::string::npos);
  EXPECT_NE(Get(server.port(), "/nope").find("404"), std::string::npos);
  // A connection that sends nothing must not count as a served request.
  EXPECT_TRUE(RawRequestThenEof(server.port(), "").empty());
  server.Stop();
  EXPECT_EQ(server.requests_served(), 2u);
  EXPECT_EQ(metrics.counter("serve.responses_2xx")->value(), 1u);
  EXPECT_EQ(metrics.counter("serve.responses_4xx")->value(), 1u);
  EXPECT_EQ(metrics.counter("serve.responses_5xx")->value(), 0u);
}

TEST(HttpProtocolTest, PostRequiresContentLength) {
  HttpServer server;
  server.HandlePost("/p", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = RawRequestThenEof(
      server.port(), "POST /p HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 411"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, OversizedBodyIs413) {
  HttpServerOptions options;
  options.max_body_bytes = 64;
  HttpServer server(options);
  server.HandlePost("/p", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response =
      Post(server.port(), "/p", std::string(1000, 'x'));
  EXPECT_NE(response.find("HTTP/1.1 413"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, MethodRouteMismatchIs405) {
  HttpServer server;
  server.Handle("/get-only", [](const HttpRequest&) { return HttpResponse{}; });
  server.HandlePost("/post-only",
                    [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string post = Post(server.port(), "/get-only", "{}");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos) << post;
  EXPECT_NE(post.find("GET"), std::string::npos);
  const std::string get = Get(server.port(), "/post-only");
  EXPECT_NE(get.find("HTTP/1.1 405"), std::string::npos) << get;
  EXPECT_NE(get.find("POST"), std::string::npos);
  server.Stop();
}

TEST(HttpProtocolTest, PostBodyReachesHandler) {
  HttpServer server;
  server.HandlePost("/echo", [](const HttpRequest& request) {
    HttpResponse response;
    response.body = "got:" + request.body;
    return response;
  });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = Post(server.port(), "/echo", "hello body");
  EXPECT_NE(response.find("got:hello body"), std::string::npos) << response;
  server.Stop();
}

// With connection reuse, ambiguous body framing is a request-smuggling
// vector: whatever the server mis-frames as "beyond the body" would execute
// as a new request. Duplicate/conflicting Content-Length and any
// Transfer-Encoding are therefore rejected outright, and the connection is
// closed so nothing after the poisoned request is ever parsed.
TEST(HttpProtocolTest, DuplicateContentLengthIs400AndCloses) {
  std::atomic<int> hits{0};
  HttpServer server;
  server.HandlePost("/p", [&hits](const HttpRequest&) {
    hits.fetch_add(1, std::memory_order_relaxed);
    return HttpResponse{};
  });
  ASSERT_TRUE(server.Start().ok());
  KeepAliveClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  // Even agreeing duplicates are rejected; the pipelined smuggled request
  // behind them must never run.
  ASSERT_TRUE(client.Send(
      "POST /p HTTP/1.1\r\nHost: t\r\n"
      "Content-Length: 5\r\nContent-Length: 5\r\n\r\nhello"
      "POST /p HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n"));
  const std::string response = client.ReadResponse();
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos) << response;
  EXPECT_TRUE(client.WaitForEof());
  server.Stop();
  EXPECT_EQ(hits.load(), 0);
}

TEST(HttpProtocolTest, ConflictingContentLengthIs400) {
  HttpServer server;
  server.HandlePost("/p", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = RawRequestThenEof(
      server.port(),
      "POST /p HTTP/1.1\r\nHost: t\r\n"
      "Content-Length: 4\r\nContent-Length: 11\r\n\r\nhush");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpProtocolTest, TransferEncodingIs400) {
  std::atomic<int> hits{0};
  HttpServer server;
  server.HandlePost("/p", [&hits](const HttpRequest&) {
    hits.fetch_add(1, std::memory_order_relaxed);
    return HttpResponse{};
  });
  ASSERT_TRUE(server.Start().ok());
  // The classic TE/CL split: a server that honored Content-Length here
  // while an upstream proxy honored Transfer-Encoding would disagree on
  // where the request ends.
  const std::string response = RawRequestThenEof(
      server.port(),
      "POST /p HTTP/1.1\r\nHost: t\r\n"
      "Transfer-Encoding: chunked\r\nContent-Length: 5\r\n\r\n"
      "0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  EXPECT_NE(response.find("Transfer-Encoding"), std::string::npos)
      << response;
  server.Stop();
  EXPECT_EQ(hits.load(), 0);
}

// --------------------------------------------------------------------------
// The query protocol: POST /query over a DatabaseRegistry
// --------------------------------------------------------------------------

class QueryEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .AddFromSource("default", R"(
                      tick(0).
                      tick(T+128) :- tick(T).
                    )")
                    .ok());
  }
  /// Starts a server with the query endpoints and returns its port.
  int StartServer(QueryServiceOptions options = {}) {
    server_ = std::make_unique<HttpServer>();
    RegisterQueryEndpoints(*server_, &registry_, options);
    EXPECT_TRUE(server_->Start().ok());
    return server_->port();
  }
  static std::string Body(const std::string& response) {
    const std::size_t split = response.find("\r\n\r\n");
    return split == std::string::npos ? "" : response.substr(split + 4);
  }
  DatabaseRegistry registry_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(QueryEndpointTest, RoundTripReturnsRowsAndRewrite) {
  const int port = StartServer();
  const std::string response =
      Post(port, "/query", R"j({"query":"tick(T)"})j");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << json.status() << "\n" << response;
  EXPECT_EQ(json->Find("database")->string_value, "default");
  EXPECT_TRUE(json->Find("boolean")->bool_value);
  ASSERT_TRUE(json->Find("rows")->is_array());
  ASSERT_EQ(json->Find("rows")->array.size(), 1u);
  EXPECT_EQ(json->Find("rows")->array[0].array[0].int_value, 0);
  EXPECT_EQ(json->Find("rewrite")->Find("p")->int_value, 128);
  EXPECT_FALSE(json->Find("partial")->bool_value);
  EXPECT_FALSE(json->Find("truncated")->bool_value);
  EXPECT_GE(json->Find("eval_ms")->number, 0.0);
}

TEST_F(QueryEndpointTest, MalformedJsonIs400) {
  const int port = StartServer();
  EXPECT_NE(Post(port, "/query", "{oops").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(Post(port, "/query", "[1,2]").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(Post(port, "/query", R"j({"no_query":1})j").find("HTTP/1.1 400"),
            std::string::npos);
  // A well-formed request with an unparseable query is also the client's
  // fault.
  EXPECT_NE(
      Post(port, "/query", R"j({"query":"unknown_pred(T)"})j")
          .find("HTTP/1.1 400"),
      std::string::npos);
}

TEST_F(QueryEndpointTest, UnknownDatabaseIs404AndListsKnownOnes) {
  const int port = StartServer();
  const std::string response =
      Post(port, "/query", R"j({"query":"tick(T)","database":"missing"})j");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos) << response;
  EXPECT_NE(response.find("\"default\""), std::string::npos) << response;
}

TEST_F(QueryEndpointTest, MaxRowsTruncatesAndSaysSo) {
  const int port = StartServer();
  const std::string response = Post(
      port, "/query", R"j({"query":"tick(T) | ~tick(T)","max_rows":2})j");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << response;
  EXPECT_TRUE(json->Find("truncated")->bool_value);
  EXPECT_EQ(json->Find("rows")->array.size(), 2u);
  EXPECT_EQ(json->Find("rows_returned")->int_value, 2);
}

TEST_F(QueryEndpointTest, DeadlineMarksAnswerPartial) {
  // A second database whose representative segment is wide enough that the
  // quantifier product below costs well over a millisecond.
  ASSERT_TRUE(registry_
                  .AddFromSource("slow", R"(
                    tick(0).
                    tick(T+1024) :- tick(T).
                  )")
                  .ok());
  const int port = StartServer();
  // `forall` cannot short-circuit over a tautology, so the evaluation is a
  // full ~1k x ~1k quantifier product — far more than a millisecond.
  const std::string response = Post(
      port, "/query",
      R"j({"query":"forall T (forall S (tick(S) | ~tick(S) | tick(T)))",)j"
      R"j("database":"slow","deadline_ms":1})j");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << response;
  EXPECT_TRUE(json->Find("partial")->bool_value) << Body(response);
}

TEST_F(QueryEndpointTest, HugeDeadlineDoesNotOverflowIntoThePast) {
  // With no max_timeout cap configured, a deadline_ms of 2^62 used to
  // overflow steady_clock::now() + timeout into the past, turning every
  // answer spuriously partial. The clamp must treat it as unlimited.
  QueryServiceOptions options;
  options.max_timeout = std::chrono::milliseconds(0);
  const int port = StartServer(options);
  const std::string response = Post(
      port, "/query",
      R"j({"query":"tick(T)","deadline_ms":4611686018427387904})j");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << response;
  EXPECT_FALSE(json->Find("partial")->bool_value) << Body(response);
  ASSERT_TRUE(json->Find("rows")->is_array());
  EXPECT_EQ(json->Find("rows")->array.size(), 1u);
}

TEST_F(QueryEndpointTest, EvalMsStaysValidJsonUnderCommaDecimalLocale) {
  // std::to_string(double) honors LC_NUMERIC: under a comma-decimal locale
  // it would render eval_ms as "0,042" and corrupt the JSON document. The
  // endpoint must format locale-independently. When the locale is not
  // installed in the test image, setlocale fails and this still verifies
  // the default-locale rendering parses.
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = previous != nullptr ? previous : "C";
  const bool have_locale =
      std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr ||
      std::setlocale(LC_NUMERIC, "de_DE.utf8") != nullptr;
  const int port = StartServer();
  const std::string response =
      Post(port, "/query", R"j({"query":"tick(T)"})j");
  std::setlocale(LC_NUMERIC, saved.c_str());
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << json.status() << "\n"
                         << response << "\n(comma-decimal locale active: "
                         << (have_locale ? "yes" : "no") << ")";
  EXPECT_GE(json->Find("eval_ms")->number, 0.0);
}

TEST_F(QueryEndpointTest, InvalidLimitsAre400) {
  const int port = StartServer();
  EXPECT_NE(
      Post(port, "/query", R"j({"query":"tick(T)","deadline_ms":-5})j")
          .find("HTTP/1.1 400"),
      std::string::npos);
  EXPECT_NE(
      Post(port, "/query", R"j({"query":"tick(T)","deadline_ms":"soon"})j")
          .find("HTTP/1.1 400"),
      std::string::npos);
  EXPECT_NE(Post(port, "/query", R"j({"query":"tick(T)","max_rows":-1})j")
                .find("HTTP/1.1 400"),
            std::string::npos);
}

TEST_F(QueryEndpointTest, DatabasesEndpointListsRegistry) {
  ASSERT_TRUE(registry_.AddFromSource("even", "even(0). even(T+2) :- even(T).")
                  .ok());
  const int port = StartServer();
  const std::string response = Get(port, "/databases");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << response;
  const JsonValue* dbs = json->Find("databases");
  ASSERT_NE(dbs, nullptr);
  ASSERT_EQ(dbs->array.size(), 2u);
  EXPECT_EQ(dbs->array[0].Find("name")->string_value, "default");
  EXPECT_EQ(dbs->array[1].Find("name")->string_value, "even");
  EXPECT_EQ(dbs->array[1].Find("period_p")->int_value, 2);
}

TEST_F(QueryEndpointTest, AnalyzeEndpointReportsStaticAnalysis) {
  const int port = StartServer();
  // The fixture program `tick(0). tick(T+128) :- tick(T).` is an EDB-seeded
  // self-delay predicate: the flow analysis certifies period divisor 128.
  const std::string response = Get(port, "/analyze?db=default");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << json.status() << "\n" << response;
  EXPECT_EQ(json->Find("database")->string_value, "default");
  EXPECT_FALSE(json->Find("bounded")->bool_value);
  EXPECT_EQ(json->Find("period_divisor")->int_value, 128);
  ASSERT_TRUE(json->Find("predicates")->is_array());
  ASSERT_EQ(json->Find("predicates")->array.size(), 1u);
  EXPECT_EQ(json->Find("predicates")->array[0].Find("name")->string_value,
            "tick");
  ASSERT_TRUE(json->Find("diagnostics")->is_array());
  EXPECT_FALSE(json->Find("diagnostics")->array.empty());
}

TEST_F(QueryEndpointTest, AnalyzeEndpointDefaultsToTheDefaultDatabase) {
  const int port = StartServer();
  const std::string response = Get(port, "/analyze");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << response;
  EXPECT_EQ(json->Find("database")->string_value, "default");
}

TEST_F(QueryEndpointTest, AnalyzeEndpointUnknownDatabaseIs404) {
  const int port = StartServer();
  const std::string response = Get(port, "/analyze?db=nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos) << response;
  // The error lists the registered names, same contract as POST /query.
  EXPECT_NE(response.find("\"default\""), std::string::npos) << response;
}

TEST_F(QueryEndpointTest, RegistryRejectsDuplicatesAndBadPrograms) {
  EXPECT_EQ(registry_.AddFromSource("default", "p(0).").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry_.AddFromSource("bad", "p(X).").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry_.AddFromFile("missing", "/no/such/file.tdl").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry_.size(), 1u);
  EXPECT_EQ(registry_.Find("bad"), nullptr);
}

// Matches the TSan ctest filter ('Parallel'): a flood of concurrent slow
// queries against a single admission slot must shed load with 429s while
// still serving at least one query, and the rejection must be counted.
TEST(QueryEndpointParallelTest, FloodShedsWith429) {
  DatabaseRegistry registry;
  ASSERT_TRUE(registry
                  .AddFromSource("default", R"(
                    tick(0).
                    tick(T+1024) :- tick(T).
                  )")
                  .ok());
  MetricsRegistry metrics;
  HttpServerOptions server_options;
  server_options.num_workers = 4;
  HttpServer server(server_options);
  QueryServiceOptions options;
  options.max_in_flight = 1;
  options.metrics = &metrics;
  // Each query costs tens of milliseconds (quadratic quantifier product
  // over ~1k representatives), so concurrent requests overlap reliably.
  options.default_timeout = std::chrono::milliseconds(2000);
  RegisterQueryEndpoints(server, &registry, options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 6;
  std::atomic<int> ok{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&ok, &rejected, port = server.port()] {
      const std::string response = Post(
          port, "/query",
          R"j({"query":"forall T (forall S (tick(S) | ~tick(S) | tick(T)))"})j");
      if (response.find("HTTP/1.1 200") != std::string::npos) {
        ok.fetch_add(1, std::memory_order_relaxed);
      } else if (response.find("HTTP/1.1 429") != std::string::npos) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  EXPECT_EQ(ok.load() + rejected.load(), kClients);
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(rejected.load(), 1);
  EXPECT_EQ(metrics.counter("query.rejected")->value(),
            static_cast<uint64_t>(rejected.load()));
}

}  // namespace
}  // namespace chronolog
