// Determinism and resumability of the semi-naive fixpoint engine:
//
//  * SemiNaiveFixpoint must produce the SAME model (operator==) for every
//    thread count — the parallel rounds buffer derivations per task and
//    merge them in task order, which reproduces the sequential insertion
//    order exactly (DESIGN.md, "Parallel semi-naive rounds").
//  * ExtendFixpoint(prior at m, 2m) must equal a from-scratch fixpoint at
//    2m — the frontier delta (last g time slices + newly admitted database
//    facts + re-fired ground-temporal-head rules) is a complete seed.
//  * Both must agree with the reference NaiveFixpoint.
//
// The sweep includes the coprime token rings — the exponential-period
// witness of Theorem 3.1 — and random non-progressive programs whose
// backward rules rewrite history when the horizon widens.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "query/query_parser.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

struct Workload {
  std::string name;
  std::string source;
};

std::vector<Workload> FixedWorkloads() {
  std::mt19937 rng(4242);
  return {
      {"path_cycle",
       workload::PathProgramSource() + workload::CycleGraphFactsSource(8)},
      {"path_random",
       workload::PathProgramSource() +
           workload::RandomGraphFactsSource(10, 20, &rng)},
      {"ski", workload::SkiScheduleSource(3, /*year_len=*/28,
                                          /*winter_len=*/8, /*holidays=*/2)},
      // Coprime ring lengths: minimal period lcm(2,3,5) = 30 from 10 facts —
      // the Theorem 3.1 exponential-period construction in miniature.
      {"coprime_rings", workload::TokenRingSource({2, 3, 5})},
      {"binary_counter", workload::BinaryCounterSource(4)},
      {"even", workload::EvenSource()},
  };
}

std::string NonProgressiveSource(uint32_t seed) {
  std::mt19937 rng(seed);
  workload::RandomProgramOptions options;
  options.progressive_only = false;
  options.max_offset = 2;
  options.num_rules = 5;
  options.num_facts = 8;
  return workload::RandomProgramSource(options, &rng);
}

Interpretation MustFixpoint(const ParsedUnit& unit, int64_t max_time,
                            int num_threads) {
  FixpointOptions fp;
  fp.max_time = max_time;
  fp.num_threads = num_threads;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(*model);
}

TEST(ParallelFixpointTest, ThreadCountsProduceIdenticalModels) {
  for (const Workload& w : FixedWorkloads()) {
    SCOPED_TRACE(w.name);
    auto unit = Parser::Parse(w.source);
    ASSERT_TRUE(unit.ok()) << unit.status();

    FixpointOptions fp;
    fp.max_time = 64;
    auto reference = NaiveFixpoint(unit->program, unit->database, fp);
    ASSERT_TRUE(reference.ok()) << reference.status();

    for (int threads : {1, 2, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      Interpretation model = MustFixpoint(*unit, 64, threads);
      EXPECT_TRUE(model == *reference);
    }
  }
}

TEST(ParallelFixpointTest, ThreadCountsAgreeOnRandomNonProgressivePrograms) {
  for (uint32_t seed = 0; seed < 12; ++seed) {
    std::string src = NonProgressiveSource(seed);
    SCOPED_TRACE(src);
    auto unit = Parser::Parse(src);
    ASSERT_TRUE(unit.ok()) << unit.status();
    Interpretation sequential = MustFixpoint(*unit, 48, 1);
    for (int threads : {2, 8}) {
      Interpretation parallel = MustFixpoint(*unit, 48, threads);
      EXPECT_TRUE(parallel == sequential) << "threads=" << threads;
    }
  }
}

// The doubling chain m -> 2m -> 4m, re-using the previous model each step,
// must land on exactly the model a from-scratch evaluation computes.
TEST(ParallelFixpointTest, ExtendChainMatchesFromScratch) {
  for (const Workload& w : FixedWorkloads()) {
    SCOPED_TRACE(w.name);
    auto unit = Parser::Parse(w.source);
    ASSERT_TRUE(unit.ok()) << unit.status();

    for (int threads : {1, 2}) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      FixpointOptions fp;
      fp.max_time = 16;
      fp.num_threads = threads;
      auto model = SemiNaiveFixpoint(unit->program, unit->database, fp);
      ASSERT_TRUE(model.ok()) << model.status();

      int64_t prior_m = 16;
      for (int64_t m : {32, 64}) {
        fp.max_time = m;
        auto extended = ExtendFixpoint(unit->program, unit->database,
                                       std::move(*model), prior_m, fp);
        ASSERT_TRUE(extended.ok()) << extended.status();
        Interpretation scratch = MustFixpoint(*unit, m, 1);
        EXPECT_TRUE(*extended == scratch) << "m=" << m;
        model = std::move(extended);
        prior_m = m;
      }

      // The end of the chain must also agree with the naive reference.
      FixpointOptions naive_fp;
      naive_fp.max_time = prior_m;
      auto reference = NaiveFixpoint(unit->program, unit->database, naive_fp);
      ASSERT_TRUE(reference.ok()) << reference.status();
      EXPECT_TRUE(*model == *reference);
    }
  }
}

TEST(ParallelFixpointTest, ExtendMatchesOnRandomNonProgressivePrograms) {
  for (uint32_t seed = 100; seed < 112; ++seed) {
    std::string src = NonProgressiveSource(seed);
    SCOPED_TRACE(src);
    auto unit = Parser::Parse(src);
    ASSERT_TRUE(unit.ok()) << unit.status();
    FixpointOptions fp;
    fp.max_time = 20;
    auto model = SemiNaiveFixpoint(unit->program, unit->database, fp);
    ASSERT_TRUE(model.ok()) << model.status();
    fp.max_time = 40;
    auto extended = ExtendFixpoint(unit->program, unit->database,
                                   std::move(*model), 20, fp);
    ASSERT_TRUE(extended.ok()) << extended.status();
    Interpretation scratch = MustFixpoint(*unit, 40, 1);
    EXPECT_TRUE(*extended == scratch);
  }
}

// A database fact beyond the old bound is admitted by the wider bound, and a
// backward rule rewrites history all the way down from it. ExtendFixpoint
// must derive the rewritten prefix and report it through min_new_time so
// callers know their cached state suffix is stale.
TEST(ParallelFixpointTest, ExtendAdmitsLateFactAndRewritesHistory) {
  auto unit = Parser::Parse(R"(
    q(100).
    p(T) :- q(T+1).
    p(T) :- p(T+1).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();

  FixpointOptions fp;
  fp.max_time = 50;
  auto model = SemiNaiveFixpoint(unit->program, unit->database, fp);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->size(), 0u);  // q(100) is beyond the bound; nothing holds

  fp.max_time = 120;
  EvalStats stats;
  auto extended = ExtendFixpoint(unit->program, unit->database,
                                 std::move(*model), 50, fp, &stats);
  ASSERT_TRUE(extended.ok()) << extended.status();

  Interpretation scratch = MustFixpoint(*unit, 120, 1);
  EXPECT_TRUE(*extended == scratch);
  const Vocabulary& vocab = unit->program.vocab();
  auto parse_atom = [&](const std::string& text) {
    auto atom = ParseGroundAtom(text, vocab);
    EXPECT_TRUE(atom.ok()) << atom.status();
    return *atom;
  };
  EXPECT_TRUE(extended->Contains(parse_atom("q(100)")));
  EXPECT_TRUE(extended->Contains(parse_atom("p(99)")));
  EXPECT_TRUE(extended->Contains(parse_atom("p(0)")));
  EXPECT_FALSE(extended->Contains(parse_atom("p(100)")));
  // History was rewritten down to time 0: no state below that may be reused.
  EXPECT_EQ(stats.min_new_time, 0);
}

// A rule with a ground temporal head beyond the old bound fires during the
// extension, and its consequences propagate through ordinary rules.
TEST(ParallelFixpointTest, ExtendFiresGroundTemporalHeadRules) {
  auto unit = Parser::Parse(R"(
    s(0).
    s(T+1) :- s(T).
    r(75) :- s(0).
    w(T+1) :- r(T).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status();

  FixpointOptions fp;
  fp.max_time = 50;
  auto model = SemiNaiveFixpoint(unit->program, unit->database, fp);
  ASSERT_TRUE(model.ok()) << model.status();

  fp.max_time = 100;
  auto extended = ExtendFixpoint(unit->program, unit->database,
                                 std::move(*model), 50, fp);
  ASSERT_TRUE(extended.ok()) << extended.status();

  Interpretation scratch = MustFixpoint(*unit, 100, 1);
  EXPECT_TRUE(*extended == scratch);
  const Vocabulary& vocab = unit->program.vocab();
  auto parse_atom = [&](const std::string& text) {
    auto atom = ParseGroundAtom(text, vocab);
    EXPECT_TRUE(atom.ok()) << atom.status();
    return *atom;
  };
  EXPECT_TRUE(extended->Contains(parse_atom("r(75)")));
  EXPECT_TRUE(extended->Contains(parse_atom("w(76)")));
}

// End-to-end: the verified-doubling detector (which now extends its model
// across doublings instead of recomputing) agrees with a deep from-scratch
// model, for every thread count. `seen` makes the ring program
// non-progressive, forcing the doubling path.
TEST(ParallelFixpointTest, IncrementalDoublingSpecificationIsSound) {
  std::string src =
      workload::TokenRingSource({2, 3, 5}) + "seen(X) :- tok(T, X).\n";
  auto unit = Parser::Parse(src);
  ASSERT_TRUE(unit.ok()) << unit.status();

  Period first_period{-1, -1};
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    PeriodDetectionOptions options;
    options.num_threads = threads;
    auto spec = BuildSpecification(unit->program, unit->database, options);
    ASSERT_TRUE(spec.ok()) << spec.status();
    if (threads == 1) {
      first_period = spec->period();
    } else {
      EXPECT_EQ(spec->period().b, first_period.b);
      EXPECT_EQ(spec->period().p, first_period.p);
    }

    const int64_t horizon = spec->num_representatives() + 3 * spec->period().p;
    Interpretation deep = MustFixpoint(*unit, horizon, 1);
    deep.ForEach([&](PredicateId pred, int64_t t, const Tuple& args) {
      EXPECT_TRUE(spec->Ask(GroundAtom(pred, t, args))) << "t=" << t;
    });
  }
}

}  // namespace
}  // namespace chronolog
