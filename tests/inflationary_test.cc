#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/inflationary.h"
#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

bool MustCheck(const ParsedUnit& unit) {
  auto report = CheckInflationary(unit.program);
  EXPECT_TRUE(report.ok()) << report.status();
  return report->inflationary;
}

TEST(InflationaryTest, PathProgramIsInflationary) {
  // The paper's Section 2 graph example "is inflationary, because of the
  // third rule".
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::CycleGraphFactsSource(3));
  EXPECT_TRUE(MustCheck(unit));
}

TEST(InflationaryTest, PathWithoutCopyRuleIsNot) {
  // Dropping the copy rule `path(K+1,X,Y) :- path(K,X,Y)` breaks it.
  ParsedUnit unit = MustParse(R"(
    path(K, X, X)   :- node(X), null(K).
    path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
    node(a). null(0). edge(a, a).
  )");
  EXPECT_FALSE(MustCheck(unit));
}

TEST(InflationaryTest, SkiScheduleIsNotInflationary) {
  // The paper states this at the end of Section 2: with empty season
  // relations the plane relation does not persist.
  ParsedUnit unit = MustParse(workload::SkiScheduleSource(2, 12, 4, 1));
  auto report = CheckInflationary(unit.program);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->inflationary);
  // `plane` is among the failing predicates.
  PredicateId plane = unit.program.vocab().FindPredicate("plane");
  bool found = false;
  for (PredicateId p : report->failing_predicates) found |= (p == plane);
  EXPECT_TRUE(found) << report->ToString(unit.program.vocab());
}

TEST(InflationaryTest, EvenIsNotInflationary) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  EXPECT_FALSE(MustCheck(unit));
}

TEST(InflationaryTest, PureCopyRuleIsInflationary) {
  ParsedUnit unit = MustParse("p(0, a). p(T+1, X) :- p(T, X).");
  EXPECT_TRUE(MustCheck(unit));
}

TEST(InflationaryTest, OnlyDerivedPredicatesMatter) {
  // `seed` is an EDB predicate (not derived); it need not persist. The
  // derived `q` persists via its copy rule.
  ParsedUnit unit = MustParse(R"(
    q(T, X)   :- seed(T, X).
    q(T+1, X) :- q(T, X).
    seed(0, a).
  )");
  EXPECT_TRUE(MustCheck(unit));
}

TEST(InflationaryTest, DataOnlyClosureAlonePersistsNothing) {
  ParsedUnit unit = MustParse(R"(
    @temporal happy/2.
    happy(T, X) :- happy(T, Y), friend(X, Y).
    happy(0, anna). friend(bob, anna).
  )");
  EXPECT_FALSE(MustCheck(unit));
}

TEST(InflationaryTest, MultiPredicateAllMustPersist) {
  // `a` persists but `b` does not: not inflationary.
  ParsedUnit unit = MustParse(R"(
    a(T+1, X) :- a(T, X).
    b(T+1, X) :- b(T, X), gate(X).
    a(0, u). b(0, u).
  )");
  EXPECT_FALSE(MustCheck(unit));
  // Adding an unconditional copy for b fixes it.
  ParsedUnit fixed = MustParse(R"(
    a(T+1, X) :- a(T, X).
    b(T+1, X) :- b(T, X), gate(X).
    b(T+1, X) :- b(T, X).
    a(0, u). b(0, u).
  )");
  EXPECT_TRUE(MustCheck(fixed));
}

TEST(InflationaryTest, IndirectPersistenceCounts) {
  // p persists through a round-trip via q: p -> q -> p one step later.
  ParsedUnit unit = MustParse(R"(
    q(T, X)   :- p(T, X).
    p(T+1, X) :- q(T, X).
    p(0, a).
  )");
  auto report = CheckInflationary(unit.program);
  ASSERT_TRUE(report.ok());
  // p(1,a) holds via q(0,a); q(1,a) holds via p(1,a): both persist.
  EXPECT_TRUE(report->inflationary);
}

// --------------------------------------------------------------------------
// Semantic cross-check: the syntactic verdict of Theorem 5.2 agrees with
// the semantic definition sampled on concrete databases.
// --------------------------------------------------------------------------

void CheckSemanticInflationary(const ParsedUnit& unit, bool expected,
                               int64_t horizon) {
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  std::vector<PredicateId> derived = unit.program.DerivedPredicates();
  bool semantic = true;
  model->ForEach([&](PredicateId pred, int64_t t, const Tuple& args) {
    if (!unit.program.vocab().predicate(pred).is_temporal) return;
    if (std::find(derived.begin(), derived.end(), pred) == derived.end()) {
      return;
    }
    if (t + 1 > horizon) return;  // beyond materialisation
    if (!model->Contains(pred, t + 1, args)) semantic = false;
  });
  EXPECT_EQ(semantic, expected);
}

TEST(InflationaryTest, SemanticAgreementOnPath) {
  std::mt19937 rng(5);
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::RandomGraphFactsSource(5, 8, &rng));
  CheckSemanticInflationary(unit, true, 20);
}

TEST(InflationaryTest, SemanticAgreementOnEven) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  CheckSemanticInflationary(unit, false, 20);
}

// --------------------------------------------------------------------------
// Range bound (Theorem 5.1)
// --------------------------------------------------------------------------

TEST(InflationaryTest, RangeBoundCoversObservedStates) {
  std::mt19937 rng(11);
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::RandomGraphFactsSource(4, 6, &rng));
  int64_t bound = InflationaryRangeBound(unit.program, unit.database);
  // Materialise and count the actually distinct states: must be <= bound.
  FixpointOptions options;
  options.max_time = 30;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  std::set<std::size_t> hashes;
  for (int64_t t = 0; t <= 30; ++t) {
    hashes.insert(State::FromInterpretation(*model, t).Hash());
  }
  EXPECT_LE(static_cast<int64_t>(hashes.size()), bound);
}

TEST(InflationaryTest, RangeBoundSaturatesGracefully) {
  // A wide schema: the bound saturates instead of overflowing.
  std::string src = "@temporal wide/9.\n"
                    "wide(T+1, A, B, C, D, E, F, G, H) :- "
                    "wide(T, A, B, C, D, E, F, G, H).\n";
  for (int i = 0; i < 200; ++i) {
    src += "wide(0, c" + std::to_string(i) + ", c0, c0, c0, c0, c0, c0, c0).\n";
  }
  ParsedUnit unit = MustParse(src);
  int64_t bound = InflationaryRangeBound(unit.program, unit.database);
  EXPECT_GT(bound, 0);
}

}  // namespace
}  // namespace chronolog
