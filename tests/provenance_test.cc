#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/engine.h"
#include "eval/fixpoint.h"
#include "eval/provenance.h"
#include "query/query_parser.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

ProofForest MustForest(const ParsedUnit& unit, int64_t max_time) {
  FixpointOptions options;
  options.max_time = max_time;
  auto forest = MaterializeWithProvenance(unit.program, unit.database,
                                          options);
  EXPECT_TRUE(forest.ok()) << forest.status();
  return std::move(forest).value();
}

GroundAtom MustGround(const ParsedUnit& unit, std::string_view text) {
  auto atom = ParseGroundAtom(text, unit.program.vocab());
  EXPECT_TRUE(atom.ok()) << atom.status();
  return std::move(atom).value();
}

TEST(ProvenanceTest, ForestMatchesFixpoint) {
  std::mt19937 rng(3);
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::RandomGraphFactsSource(5, 9, &rng));
  const int64_t horizon = 10;
  ProofForest forest = MustForest(unit, horizon);
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  // Same set of facts in both directions.
  EXPECT_EQ(forest.size(), model->size());
  model->ForEach([&](PredicateId pred, int64_t t, const Tuple& args) {
    EXPECT_TRUE(forest.Contains(GroundAtom(pred, t, args)));
  });
}

TEST(ProvenanceTest, ProofsAreWellFormed) {
  std::mt19937 rng(4);
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::RandomGraphFactsSource(5, 9, &rng));
  ProofForest forest = MustForest(unit, 8);
  for (std::size_t id = 0; id < forest.nodes().size(); ++id) {
    const ProofNode& node = forest.nodes()[id];
    if (node.rule_index < 0) {
      EXPECT_TRUE(node.premises.empty());
      continue;
    }
    const Rule& rule =
        unit.program.rules()[static_cast<std::size_t>(node.rule_index)];
    // The head predicate matches the rule, one premise per body atom, and
    // premises strictly precede the node (well-foundedness).
    EXPECT_EQ(node.fact.pred, rule.head.pred);
    ASSERT_EQ(node.premises.size(), rule.body.size());
    for (std::size_t b = 0; b < node.premises.size(); ++b) {
      ASSERT_LT(node.premises[b], id);
      EXPECT_EQ(forest.nodes()[node.premises[b]].fact.pred,
                rule.body[b].pred);
    }
  }
}

TEST(ProvenanceTest, DatabaseFactsAreLeaves) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  ProofForest forest = MustForest(unit, 6);
  std::size_t id = forest.Find(MustGround(unit, "even(0)"));
  ASSERT_NE(id, ProofForest::kNotFound);
  EXPECT_EQ(forest.nodes()[id].rule_index, -1);
}

TEST(ProvenanceTest, ExplainRendersChain) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  ProofForest forest = MustForest(unit, 6);
  auto proof = forest.Explain(MustGround(unit, "even(4)"), unit.program);
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_NE(proof->find("even(4)"), std::string::npos) << *proof;
  EXPECT_NE(proof->find("even(2)"), std::string::npos);
  EXPECT_NE(proof->find("even(0)   [database]"), std::string::npos);
  EXPECT_NE(proof->find("by rule: even(T+2) :- even(T)."), std::string::npos);
}

TEST(ProvenanceTest, ExplainUnprovableFactFails) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  ProofForest forest = MustForest(unit, 6);
  auto proof = forest.Explain(MustGround(unit, "even(3)"), unit.program);
  EXPECT_EQ(proof.status().code(), StatusCode::kNotFound);
}

TEST(ProvenanceTest, MaxDepthTruncates) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  ProofForest forest = MustForest(unit, 20);
  auto proof = forest.Explain(MustGround(unit, "even(20)"), unit.program,
                              /*max_depth=*/3);
  ASSERT_TRUE(proof.ok());
  EXPECT_NE(proof->find("..."), std::string::npos);
  EXPECT_EQ(proof->find("even(0)"), std::string::npos);
}

TEST(ProvenanceTest, DataOnlyRulesGetProofsWithinTimestep) {
  ParsedUnit unit = MustParse(R"(
    @temporal happy/2.
    happy(T, X) :- happy(T, Y), friend(X, Y).
    happy(0, anna). friend(bob, anna). friend(carl, bob).
  )");
  ProofForest forest = MustForest(unit, 2);
  auto proof =
      forest.Explain(MustGround(unit, "happy(0, carl)"), unit.program);
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_NE(proof->find("happy(0, bob)"), std::string::npos) << *proof;
  EXPECT_NE(proof->find("happy(0, anna)   [database]"), std::string::npos);
}

TEST(ProvenanceTest, MaxFactsGuard) {
  ParsedUnit unit = MustParse("p(T+1) :- p(T).\np(0).");
  FixpointOptions options;
  options.max_time = 1000;
  options.max_facts = 10;
  auto forest =
      MaterializeWithProvenance(unit.program, unit.database, options);
  EXPECT_EQ(forest.status().code(), StatusCode::kResourceExhausted);
}

// --------------------------------------------------------------------------
// Engine-level Explain
// --------------------------------------------------------------------------

TEST(ExplainTest, EngineExplainsRepresentativeAtom) {
  auto tdd = TemporalDatabase::FromSource(workload::EvenSource());
  ASSERT_TRUE(tdd.ok());
  auto proof = tdd->Explain("even(0)");
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_NE(proof->find("[database]"), std::string::npos);
}

TEST(ExplainTest, EngineRewritesDeepAtomsFirst) {
  auto tdd = TemporalDatabase::FromSource(workload::EvenSource());
  ASSERT_TRUE(tdd.ok());
  auto proof = tdd->Explain("even(1000000)");
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_NE(proof->find("rewrites (W) to its representative"),
            std::string::npos)
      << *proof;
  EXPECT_NE(proof->find("even(0)"), std::string::npos);
}

TEST(ExplainTest, EngineExplainFailsForFalseAtoms) {
  auto tdd = TemporalDatabase::FromSource(workload::EvenSource());
  ASSERT_TRUE(tdd.ok());
  EXPECT_EQ(tdd->Explain("even(3)").status().code(), StatusCode::kNotFound);
}

TEST(ExplainTest, SkiScheduleProofMentionsSeasons) {
  auto tdd = TemporalDatabase::FromSource(
      workload::SkiScheduleSource(1, 12, 4, 1));
  ASSERT_TRUE(tdd.ok());
  ASSERT_TRUE(tdd->Ask("plane(3, resort0)").ok());
  auto proof = tdd->Explain("plane(3, resort0)");
  ASSERT_TRUE(proof.ok()) << proof.status();
  // plane(3) comes from plane(1) via the winter rule; plane(1) from the
  // holiday rule.
  EXPECT_NE(proof->find("winter"), std::string::npos) << *proof;
}

}  // namespace
}  // namespace chronolog
