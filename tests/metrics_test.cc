// chronolog_obs: the metrics registry (counters, gauges, log2-bucketed
// histograms), the RAII trace spans with thread-local nesting, the JSON
// exporters, and the engine-level wiring behind
// EngineOptions::collect_metrics.

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chronolog {
namespace {

TEST(MetricsTest, CounterAccumulatesAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&c] {
      for (int j = 0; j < 1000; ++j) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  c.Add(5);
  EXPECT_EQ(c.value(), 4005u);
}

TEST(MetricsTest, GaugeTracksLastMinMaxMean) {
  Gauge g;
  EXPECT_EQ(g.count(), 0u);
  EXPECT_EQ(g.mean(), 0.0);
  g.Set(4.0);
  g.Set(1.0);
  g.Set(7.0);
  EXPECT_EQ(g.last(), 7.0);
  EXPECT_EQ(g.min(), 1.0);
  EXPECT_EQ(g.max(), 7.0);
  EXPECT_DOUBLE_EQ(g.mean(), 4.0);
  EXPECT_EQ(g.count(), 3u);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  Histogram h;
  h.RecordValue(0);  // bucket 0
  h.RecordValue(1);  // bit_width 1
  h.RecordValue(2);  // bit_width 2
  h.RecordValue(3);  // bit_width 2
  h.RecordValue(4);  // bit_width 3
  h.RecordValue(7);  // bit_width 3
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 17u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_NEAR(h.mean(), 17.0 / 6.0, 1e-9);
}

TEST(MetricsTest, HistogramRecordMsConvertsToNanoseconds) {
  Histogram h;
  h.RecordMs(1.0);  // 1e6 ns -> bit_width 20
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket(20), 1u);
  EXPECT_EQ(h.sum(), 1'000'000u);
}

TEST(MetricsTest, RegistryReturnsStablePointersAndGetOrCreates) {
  MetricsRegistry reg;
  Counter* c1 = reg.counter("a.events");
  Counter* c2 = reg.counter("a.events");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.counter("b.events"), c1);
  EXPECT_FALSE(reg.has_histogram("a.lat_ns"));
  Histogram* h = reg.histogram("a.lat_ns");
  EXPECT_TRUE(reg.has_histogram("a.lat_ns"));
  EXPECT_EQ(reg.histogram("a.lat_ns"), h);
}

TEST(MetricsTest, EmptyRegistryJson) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsTest, JsonContainsAllInstrumentKinds) {
  MetricsRegistry reg;
  reg.counter("x.n")->Add(3);
  reg.gauge("x.g")->Set(2.5);
  reg.histogram("x.h")->RecordValue(5);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"x.n\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"x.g\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"last\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"x.h\""), std::string::npos) << json;
  // Value 5 has bit width 3: one sample in the bucket with le = 2^3.
  EXPECT_NE(json.find("\"buckets\":[{\"le\":8,\"n\":1}]"), std::string::npos)
      << json;
}

TEST(MetricsTest, PhaseTimerWritesFieldAndHistogram) {
  Histogram h;
  double field = 0;
  {
    PhaseTimer t(/*enabled=*/true, &field, &h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(field, 0.0);

  // Disabled timers never touch their sinks (and never read the clock).
  double untouched = 0;
  {
    PhaseTimer t(/*enabled=*/false, &untouched, &h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(untouched, 0.0);

  // Stop is idempotent: the destructor must not double-record.
  {
    PhaseTimer t(/*enabled=*/true, nullptr, &h);
    t.Stop();
    t.Stop();
  }
  EXPECT_EQ(h.count(), 2u);
}

TEST(TraceTest, SpansNestViaThreadLocalDepth) {
  TraceBuffer buf;
  {
    TraceSpan outer(&buf, "outer");
    {
      TraceSpan inner(&buf, "inner");
    }
    {
      TraceSpan inner2(&buf, "inner2");
    }
  }
  const std::vector<TraceEvent> events = buf.events();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: inner spans land before the scope enclosing them.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "inner2");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_LE(events[2].start_us, events[0].start_us);
}

TEST(TraceTest, NullBufferIsANoop) {
  TraceSpan span(nullptr, "nothing");
  // Depth bookkeeping must stay balanced: a following real span is a root.
  TraceBuffer buf;
  {
    TraceSpan real(&buf, "root");
  }
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.events()[0].depth, 0);
}

TEST(TraceTest, CapacityBoundsMemoryAndCountsDrops) {
  TraceBuffer buf(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(&buf, "s");
  }
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.dropped(), 3u);
  const std::string json = buf.ToJson();
  EXPECT_NE(json.find("\"dropped\":3"), std::string::npos) << json;
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
}

// Engine wiring, progressive path: building the specification for a
// progressive program runs ForwardSimulate, which must populate the
// forward.* instruments and emit nested spans.
TEST(EngineMetricsTest, CollectMetricsPopulatesForwardInstruments) {
  EngineOptions options;
  options.collect_metrics = true;
  auto tdd = TemporalDatabase::FromSource(R"(
    even(0).
    even(T+2) :- even(T).
  )", options);
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  auto answer = tdd->Ask("even(1000000)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(*answer);

  ASSERT_NE(tdd->metrics(), nullptr);
  ASSERT_NE(tdd->trace(), nullptr);
  EXPECT_GT(tdd->metrics()->counter("forward.timesteps")->value(), 0u);
  EXPECT_GT(tdd->metrics()->histogram("forward.timestep_ns")->count(), 0u);
  EXPECT_GT(tdd->trace()->size(), 0u);

  const std::string json = tdd->MetricsJson();
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("forward.timesteps"), std::string::npos);
}

// Engine wiring, doubling path: a non-progressive program goes through
// DetectByDoubling, which must count its probes and time its phases.
TEST(EngineMetricsTest, CollectMetricsPopulatesDoublingInstruments) {
  EngineOptions options;
  options.collect_metrics = true;
  auto tdd = TemporalDatabase::FromSource(R"(
    q(100).
    p(T) :- q(T+1).
    p(T) :- p(T+1).
  )", options);
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  auto answer = tdd->Ask("p(99)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(*answer);
  EXPECT_GT(tdd->metrics()->counter("period.doublings")->value(), 0u);
  EXPECT_GT(tdd->metrics()->histogram("period.extend_ns")->count(), 0u);
  EXPECT_GT(tdd->metrics()->counter("fixpoint.rounds")->value(), 0u);
}

// --- PR 5 exporters -------------------------------------------------------

// Every instrument kind must survive the Prometheus text round trip:
// counters as `counter`, gauges as `gauge` (last value plus _min/_max/_mean
// variants), histograms as cumulative `_bucket{le=...}` / `_sum` / `_count`.
TEST(MetricsTest, PrometheusTextCoversAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.counter("query.asks")->Add(3);
  Gauge* g = registry.gauge("fixpoint.parallel.imbalance");
  g->Set(2.0);
  g->Set(4.0);
  Histogram* h = registry.histogram("query.latency_ns");
  h->RecordValue(0);  // bucket 0
  h->RecordValue(3);  // bucket 2: [2, 4)
  h->RecordValue(3);
  const std::string text = registry.ToPrometheusText();

  // Dotted names are sanitised; HELP lines keep the original spelling.
  EXPECT_NE(text.find("# HELP query_asks chronolog instrument query.asks\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE query_asks counter\n"), std::string::npos);
  EXPECT_NE(text.find("query_asks 3\n"), std::string::npos);

  EXPECT_NE(text.find("# TYPE fixpoint_parallel_imbalance gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("fixpoint_parallel_imbalance 4\n"), std::string::npos);
  EXPECT_NE(text.find("fixpoint_parallel_imbalance_min 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("fixpoint_parallel_imbalance_max 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("fixpoint_parallel_imbalance_mean 3\n"),
            std::string::npos);

  EXPECT_NE(text.find("# TYPE query_latency_ns histogram\n"),
            std::string::npos);
  // Cumulative: 1 sample <= 0, still 1 below 2, all 3 below 4, +Inf = 3.
  EXPECT_NE(text.find("query_latency_ns_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("query_latency_ns_bucket{le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("query_latency_ns_bucket{le=\"4\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("query_latency_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("query_latency_ns_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find("query_latency_ns_count 3\n"), std::string::npos);

  // Exposition hygiene: every non-comment line is `name[{labels}] value`.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, space);
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':' || c == '{' || c == '}' || c == '=' || c == '"' ||
                  c == '+' || c == '.' || c == '-')
          << "bad exposition char in: " << line;
    }
    EXPECT_EQ(name.find('.'), std::string::npos)
        << "unsanitised dot in metric name: " << line;
  }
}

TEST(MetricsTest, PrometheusTextEmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.ToPrometheusText(), "");
}

TEST(MetricsTest, HistogramQuantilesClampToObservedRange) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("q");
  EXPECT_EQ(h->Quantile(0.5), 0.0);  // empty histogram
  h->RecordValue(100);
  // One sample: every quantile is that sample (the in-bucket interpolation
  // is clamped to the observed min/max).
  EXPECT_EQ(h->Quantile(0.01), 100.0);
  EXPECT_EQ(h->Quantile(0.5), 100.0);
  EXPECT_EQ(h->Quantile(0.99), 100.0);
}

TEST(MetricsTest, HistogramQuantilesAreMonotoneWithinBucketBounds) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("q");
  for (uint64_t v = 1; v <= 1000; ++v) h->RecordValue(v);
  const double p50 = h->Quantile(0.50);
  const double p90 = h->Quantile(0.90);
  const double p99 = h->Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Log2 buckets bound the error by the bucket the true quantile falls in:
  // the true p50 (500) sits in [256, 512), the true p90/p99 in [512, 1024)
  // clamped at the observed max of 1000.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_GE(p90, 512.0);
  EXPECT_LE(p90, 1000.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);
}

TEST(MetricsTest, PrometheusTextDerivesQuantileGauges) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("query.latency_ns");
  h->RecordValue(100);
  const std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE query_latency_ns_p50 gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("query_latency_ns_p50 100\n"), std::string::npos);
  EXPECT_NE(text.find("query_latency_ns_p90 100\n"), std::string::npos);
  EXPECT_NE(text.find("query_latency_ns_p99 100\n"), std::string::npos);
}

// Request-scope tagging (chronolog_qstats): spans recorded under an open
// TraceScope carry its id, and the Chrome export can slice to one request.
TEST(TraceTest, ChromeTraceJsonFiltersByRequestScope) {
  TraceBuffer buf;
  {
    TraceScope scope(&buf, "req-1");
    TraceSpan span(&buf, "first.query");
  }
  {
    TraceScope scope(&buf, "req-2");
    TraceSpan span(&buf, "second.query");
  }
  { TraceSpan span(&buf, "unscoped.work"); }

  // Unfiltered: everything, with request annotations on scoped spans.
  const std::string all = buf.ToChromeTraceJson();
  EXPECT_NE(all.find("\"name\":\"first.query\""), std::string::npos);
  EXPECT_NE(all.find("\"name\":\"second.query\""), std::string::npos);
  EXPECT_NE(all.find("\"name\":\"unscoped.work\""), std::string::npos);
  EXPECT_NE(all.find("\"request\":\"req-1\""), std::string::npos);

  // Filtered: only the spans recorded under the matching scope.
  const std::string filtered = buf.ToChromeTraceJson("req-1");
  EXPECT_NE(filtered.find("\"name\":\"first.query\""), std::string::npos);
  EXPECT_EQ(filtered.find("\"name\":\"second.query\""), std::string::npos);
  EXPECT_EQ(filtered.find("\"name\":\"unscoped.work\""), std::string::npos);
  EXPECT_NE(filtered.find("\"request\":\"req-1\""), std::string::npos);

  // A filter nothing matches yields a valid, span-free document.
  const std::string none = buf.ToChromeTraceJson("req-404");
  EXPECT_NE(none.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(none.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TraceTest, TraceScopeIsInactiveWithoutBufferOrId) {
  TraceBuffer buf;
  {
    TraceScope no_buffer(nullptr, "req-1");
    TraceScope no_id(&buf, "");
    TraceSpan span(&buf, "work");
  }
  // Neither inert scope tagged the span: a filter on req-1 excludes it.
  const std::string filtered = buf.ToChromeTraceJson("req-1");
  EXPECT_EQ(filtered.find("\"name\":\"work\""), std::string::npos);
}

// Chrome trace export: spans become "ph":"X" complete events whose ts/dur
// keep parent spans containing their children.
TEST(TraceTest, ChromeTraceJsonNestsContainedSpans) {
  TraceBuffer buf;
  {
    TraceSpan outer(&buf, "outer");
    TraceSpan inner(&buf, "inner");
  }
  const std::string json = buf.ToChromeTraceJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // process_name
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);

  // Two complete events, both on the (dense-remapped) tid 1.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);

  // Containment on the raw events the JSON was generated from: the inner
  // span completed first and sits inside [start, start + dur] of the outer.
  const std::vector<TraceEvent> events = buf.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].dur_us,
            events[1].start_us + events[1].dur_us);
}

TEST(TraceTest, ChromeTraceJsonEmptyBuffer) {
  TraceBuffer buf;
  const std::string json = buf.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos);
}

// Satellite (b): concurrent recorders against a bounded buffer. The suite
// name matches the TSan ctest filter ('Parallel'), so this runs under
// ThreadSanitizer in CI; the drop count must be exact, not approximate —
// capacity admission and the dropped counter share one critical section.
TEST(TraceBufferParallelTest, ConcurrentRecordersCountDropsExactly) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kSpansPerThread = 200;
  constexpr std::size_t kCapacity = 64;
  TraceBuffer buf(kCapacity);

  std::vector<std::thread> threads;
  threads.reserve(kThreads + 2);
  std::atomic<bool> stop{false};
  // Concurrent readers: snapshots and exports must be safe mid-recording.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&buf, &stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)buf.events();
        (void)buf.ToJson();
        (void)buf.ToChromeTraceJson();
      }
    });
  }
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&buf] {
      for (std::size_t j = 0; j < kSpansPerThread; ++j) {
        TraceSpan span(&buf, "parallel.span");
      }
    });
  }
  for (std::size_t i = 2; i < threads.size(); ++i) threads[i].join();
  stop.store(true, std::memory_order_relaxed);
  threads[0].join();
  threads[1].join();

  EXPECT_EQ(buf.size(), kCapacity);
  EXPECT_EQ(buf.dropped(), kThreads * kSpansPerThread - kCapacity);
}

TEST(EngineMetricsTest, MetricsOffByDefault) {
  auto tdd = TemporalDatabase::FromSource("even(0). even(T+2) :- even(T).");
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  EXPECT_EQ(tdd->metrics(), nullptr);
  EXPECT_EQ(tdd->trace(), nullptr);
  EXPECT_EQ(tdd->MetricsJson(), "{}");
}

}  // namespace
}  // namespace chronolog
