// chronolog_obs: the metrics registry (counters, gauges, log2-bucketed
// histograms), the RAII trace spans with thread-local nesting, the JSON
// exporters, and the engine-level wiring behind
// EngineOptions::collect_metrics.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chronolog {
namespace {

TEST(MetricsTest, CounterAccumulatesAcrossThreads) {
  Counter c;
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&c] {
      for (int j = 0; j < 1000; ++j) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  c.Add(5);
  EXPECT_EQ(c.value(), 4005u);
}

TEST(MetricsTest, GaugeTracksLastMinMaxMean) {
  Gauge g;
  EXPECT_EQ(g.count(), 0u);
  EXPECT_EQ(g.mean(), 0.0);
  g.Set(4.0);
  g.Set(1.0);
  g.Set(7.0);
  EXPECT_EQ(g.last(), 7.0);
  EXPECT_EQ(g.min(), 1.0);
  EXPECT_EQ(g.max(), 7.0);
  EXPECT_DOUBLE_EQ(g.mean(), 4.0);
  EXPECT_EQ(g.count(), 3u);
}

TEST(MetricsTest, HistogramBucketsByBitWidth) {
  Histogram h;
  h.RecordValue(0);  // bucket 0
  h.RecordValue(1);  // bit_width 1
  h.RecordValue(2);  // bit_width 2
  h.RecordValue(3);  // bit_width 2
  h.RecordValue(4);  // bit_width 3
  h.RecordValue(7);  // bit_width 3
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 17u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 7u);
  EXPECT_NEAR(h.mean(), 17.0 / 6.0, 1e-9);
}

TEST(MetricsTest, HistogramRecordMsConvertsToNanoseconds) {
  Histogram h;
  h.RecordMs(1.0);  // 1e6 ns -> bit_width 20
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.bucket(20), 1u);
  EXPECT_EQ(h.sum(), 1'000'000u);
}

TEST(MetricsTest, RegistryReturnsStablePointersAndGetOrCreates) {
  MetricsRegistry reg;
  Counter* c1 = reg.counter("a.events");
  Counter* c2 = reg.counter("a.events");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.counter("b.events"), c1);
  EXPECT_FALSE(reg.has_histogram("a.lat_ns"));
  Histogram* h = reg.histogram("a.lat_ns");
  EXPECT_TRUE(reg.has_histogram("a.lat_ns"));
  EXPECT_EQ(reg.histogram("a.lat_ns"), h);
}

TEST(MetricsTest, EmptyRegistryJson) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsTest, JsonContainsAllInstrumentKinds) {
  MetricsRegistry reg;
  reg.counter("x.n")->Add(3);
  reg.gauge("x.g")->Set(2.5);
  reg.histogram("x.h")->RecordValue(5);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"x.n\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"x.g\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"last\":2.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"x.h\""), std::string::npos) << json;
  // Value 5 has bit width 3: one sample in the bucket with le = 2^3.
  EXPECT_NE(json.find("\"buckets\":[{\"le\":8,\"n\":1}]"), std::string::npos)
      << json;
}

TEST(MetricsTest, PhaseTimerWritesFieldAndHistogram) {
  Histogram h;
  double field = 0;
  {
    PhaseTimer t(/*enabled=*/true, &field, &h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(field, 0.0);

  // Disabled timers never touch their sinks (and never read the clock).
  double untouched = 0;
  {
    PhaseTimer t(/*enabled=*/false, &untouched, &h);
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(untouched, 0.0);

  // Stop is idempotent: the destructor must not double-record.
  {
    PhaseTimer t(/*enabled=*/true, nullptr, &h);
    t.Stop();
    t.Stop();
  }
  EXPECT_EQ(h.count(), 2u);
}

TEST(TraceTest, SpansNestViaThreadLocalDepth) {
  TraceBuffer buf;
  {
    TraceSpan outer(&buf, "outer");
    {
      TraceSpan inner(&buf, "inner");
    }
    {
      TraceSpan inner2(&buf, "inner2");
    }
  }
  const std::vector<TraceEvent> events = buf.events();
  ASSERT_EQ(events.size(), 3u);
  // Completion order: inner spans land before the scope enclosing them.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "inner2");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  EXPECT_LE(events[2].start_us, events[0].start_us);
}

TEST(TraceTest, NullBufferIsANoop) {
  TraceSpan span(nullptr, "nothing");
  // Depth bookkeeping must stay balanced: a following real span is a root.
  TraceBuffer buf;
  {
    TraceSpan real(&buf, "root");
  }
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.events()[0].depth, 0);
}

TEST(TraceTest, CapacityBoundsMemoryAndCountsDrops) {
  TraceBuffer buf(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span(&buf, "s");
  }
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.dropped(), 3u);
  const std::string json = buf.ToJson();
  EXPECT_NE(json.find("\"dropped\":3"), std::string::npos) << json;
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
}

// Engine wiring, progressive path: building the specification for a
// progressive program runs ForwardSimulate, which must populate the
// forward.* instruments and emit nested spans.
TEST(EngineMetricsTest, CollectMetricsPopulatesForwardInstruments) {
  EngineOptions options;
  options.collect_metrics = true;
  auto tdd = TemporalDatabase::FromSource(R"(
    even(0).
    even(T+2) :- even(T).
  )", options);
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  auto answer = tdd->Ask("even(1000000)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(*answer);

  ASSERT_NE(tdd->metrics(), nullptr);
  ASSERT_NE(tdd->trace(), nullptr);
  EXPECT_GT(tdd->metrics()->counter("forward.timesteps")->value(), 0u);
  EXPECT_GT(tdd->metrics()->histogram("forward.timestep_ns")->count(), 0u);
  EXPECT_GT(tdd->trace()->size(), 0u);

  const std::string json = tdd->MetricsJson();
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("forward.timesteps"), std::string::npos);
}

// Engine wiring, doubling path: a non-progressive program goes through
// DetectByDoubling, which must count its probes and time its phases.
TEST(EngineMetricsTest, CollectMetricsPopulatesDoublingInstruments) {
  EngineOptions options;
  options.collect_metrics = true;
  auto tdd = TemporalDatabase::FromSource(R"(
    q(100).
    p(T) :- q(T+1).
    p(T) :- p(T+1).
  )", options);
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  auto answer = tdd->Ask("p(99)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(*answer);
  EXPECT_GT(tdd->metrics()->counter("period.doublings")->value(), 0u);
  EXPECT_GT(tdd->metrics()->histogram("period.extend_ns")->count(), 0u);
  EXPECT_GT(tdd->metrics()->counter("fixpoint.rounds")->value(), 0u);
}

TEST(EngineMetricsTest, MetricsOffByDefault) {
  auto tdd = TemporalDatabase::FromSource("even(0). even(T+2) :- even(T).");
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  EXPECT_EQ(tdd->metrics(), nullptr);
  EXPECT_EQ(tdd->trace(), nullptr);
  EXPECT_EQ(tdd->MetricsJson(), "{}");
}

}  // namespace
}  // namespace chronolog
