// Equality in queries — the paper's Section 8 discussion: equality is a
// very simple query that is NOT invariant w.r.t. relational specifications,
// because distinct ground temporal terms share a representative. chronolog
// therefore evaluates equality only against materialised models and rejects
// it over specifications; these tests pin both behaviours, including the
// exact Section 8 counterexample.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "query/query_eval.h"
#include "query/query_parser.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

Query MustQuery(std::string_view text, const Vocabulary& vocab) {
  auto q = ParseQuery(text, vocab);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).value();
}

class EqualityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The Section 8 TDD: p(T+1) :- p(T). p(0).  Specification:
    // T = {0}, B = {p(0)}, W = {1 -> 0}.
    unit_ = MustParse("p(T+1) :- p(T).\np(0).");
    auto spec = BuildSpecification(unit_.program, unit_.database);
    ASSERT_TRUE(spec.ok()) << spec.status();
    spec_.emplace(std::move(spec).value());
    FixpointOptions options;
    options.max_time = 10;
    auto model = SemiNaiveFixpoint(unit_.program, unit_.database, options);
    ASSERT_TRUE(model.ok());
    model_.emplace(std::move(model).value());
  }

  ParsedUnit unit_{Program(nullptr), Database(nullptr)};
  std::optional<RelationalSpecification> spec_;
  std::optional<Interpretation> model_;
};

TEST_F(EqualityTest, Section8SpecificationShape) {
  EXPECT_EQ(spec_->num_representatives(), 1);
  EXPECT_EQ(spec_->rewrite_lhs(), 1);
  EXPECT_EQ(spec_->period().p, 1);
}

TEST_F(EqualityTest, GroundEqualityOverModel) {
  Query q_true = MustQuery("3 = 3", unit_.program.vocab());
  Query q_false = MustQuery("0 = 1", unit_.program.vocab());
  auto yes = EvaluateQueryOverModel(q_true, *model_, 10);
  auto no = EvaluateQueryOverModel(q_false, *model_, 10);
  ASSERT_TRUE(yes.ok());
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(yes->boolean);
  EXPECT_FALSE(no->boolean);
}

TEST_F(EqualityTest, Section8CounterexampleOverModel) {
  // Over the (materialised) least model: p holds at distinct time points,
  // so "exists T, S with p at both and T != S" is TRUE.
  Query q = MustQuery("exists T, S (p(T) & p(S) & ~(T = S))",
                      unit_.program.vocab());
  auto answer = EvaluateQueryOverModel(q, *model_, 10);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->boolean);
}

TEST_F(EqualityTest, SpecificationRejectsEquality) {
  // Over the specification the same query would come out FALSE (only one
  // representative, y0 = y1 = 0 — exactly the paper's counterexample), so
  // chronolog refuses to evaluate it there.
  Query q = MustQuery("exists T, S (p(T) & p(S) & ~(T = S))",
                      unit_.program.vocab());
  auto answer = EvaluateQueryOverSpec(q, *spec_);
  EXPECT_EQ(answer.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(answer.status().message().find("Section 8"), std::string::npos);
}

TEST_F(EqualityTest, VariableOffsetEquality) {
  Query q = MustQuery("exists T (T+2 = 5)", unit_.program.vocab());
  auto answer = EvaluateQueryOverModel(q, *model_, 10);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->boolean);  // T = 3
  Query q2 = MustQuery("forall T (T+1 = 4)", unit_.program.vocab());
  auto answer2 = EvaluateQueryOverModel(q2, *model_, 10);
  ASSERT_TRUE(answer2.ok());
  EXPECT_FALSE(answer2->boolean);
}

TEST_F(EqualityTest, ConstantEquality) {
  ParsedUnit unit = MustParse("friend(anna, bob).");
  FixpointOptions options;
  options.max_time = 0;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  Query same = MustQuery("anna = anna", unit.program.vocab());
  Query diff = MustQuery("anna = bob", unit.program.vocab());
  EXPECT_TRUE(EvaluateQueryOverModel(same, *model, 0)->boolean);
  EXPECT_FALSE(EvaluateQueryOverModel(diff, *model, 0)->boolean);
  // Free-variable equality: which X equal anna? Exactly one row.
  Query open = MustQuery("friend(X, Y) & X = anna", unit.program.vocab());
  auto answer = EvaluateQueryOverModel(open, *model, 0);
  ASSERT_TRUE(answer.ok()) << answer.status();
  ASSERT_EQ(answer->rows.size(), 1u);
}

TEST_F(EqualityTest, SortMismatchFails) {
  auto q = ParseQuery("exists T (p(T) & T = anna)", unit_.program.vocab());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EqualityTest, BothSidesUnknownSortFails) {
  auto q = ParseQuery("X = Y", unit_.program.vocab());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(q.status().message().find("sort"), std::string::npos);
}

TEST_F(EqualityTest, SortPropagatesFromAtomUse) {
  // X's sort is settled by the atom before the equality is parsed.
  Query q = MustQuery("exists T (p(T) & T = 0)", unit_.program.vocab());
  auto answer = EvaluateQueryOverModel(q, *model_, 10);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->boolean);
}

}  // namespace
}  // namespace chronolog
