#include <gtest/gtest.h>

#include <chrono>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "query/query_eval.h"
#include "util/metrics.h"
#include "query/query_parser.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

// --------------------------------------------------------------------------
// Query parser
// --------------------------------------------------------------------------

class QueryParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unit_ = MustParse(workload::SkiScheduleSource(2, 12, 4, 1));
  }
  Query MustQuery(std::string_view text) {
    auto q = ParseQuery(text, unit_.program.vocab());
    EXPECT_TRUE(q.ok()) << q.status();
    return std::move(q).value();
  }
  ParsedUnit unit_{Program(nullptr), Database(nullptr)};
};

TEST_F(QueryParserTest, GroundAtomQuery) {
  Query q = MustQuery("plane(5, resort0)");
  EXPECT_EQ(q.root->kind, QueryKind::kAtom);
  EXPECT_TRUE(q.closed());
  EXPECT_TRUE(q.root->atom.time->ground());
  EXPECT_EQ(q.root->atom.time->offset, 5);
}

TEST_F(QueryParserTest, FreeVariablesAreCollected) {
  Query q = MustQuery("plane(T, X)");
  ASSERT_EQ(q.free_vars.size(), 2u);
  EXPECT_EQ(q.var_names[q.free_vars[0]], "T");
  EXPECT_EQ(q.var_names[q.free_vars[1]], "X");
  EXPECT_TRUE(q.temporal_vars[q.free_vars[0]]);
  EXPECT_FALSE(q.temporal_vars[q.free_vars[1]]);
}

TEST_F(QueryParserTest, QuantifiersBindInnermost) {
  Query q = MustQuery("exists T (plane(T, resort0) & winter(T))");
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.root->kind, QueryKind::kExists);
  EXPECT_EQ(q.root->left->kind, QueryKind::kAnd);
}

TEST_F(QueryParserTest, MultiVariableQuantifier) {
  Query q = MustQuery("exists T, X (plane(T, X))");
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.root->kind, QueryKind::kExists);
  EXPECT_EQ(q.root->left->kind, QueryKind::kExists);
  EXPECT_EQ(q.root->left->left->kind, QueryKind::kAtom);
}

TEST_F(QueryParserTest, ShadowingCreatesDistinctVariables) {
  Query q = MustQuery("exists T (plane(T, resort0) & exists T (winter(T)))");
  EXPECT_TRUE(q.closed());
  // Three variables: outer T, inner T.
  EXPECT_EQ(q.var_names.size(), 2u);
  EXPECT_NE(q.root->var, q.root->left->right->var);
}

TEST_F(QueryParserTest, KeywordAndSymbolConnectives) {
  Query a = MustQuery("winter(0) and not holiday(3) or offseason(5)");
  Query b = MustQuery("winter(0) & ~holiday(3) | offseason(5)");
  EXPECT_EQ(a.root->kind, QueryKind::kOr);
  EXPECT_EQ(b.root->kind, QueryKind::kOr);
  EXPECT_EQ(a.root->left->kind, QueryKind::kAnd);
  EXPECT_EQ(a.root->left->right->kind, QueryKind::kNot);
}

TEST_F(QueryParserTest, OffsetInQueryAtom) {
  Query q = MustQuery("forall T (winter(T) | ~winter(T+12))");
  EXPECT_EQ(q.root->kind, QueryKind::kForall);
}

TEST_F(QueryParserTest, UnknownPredicateFails) {
  auto q = ParseQuery("ghost(0)", unit_.program.vocab());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST_F(QueryParserTest, ArityMismatchFails) {
  auto q = ParseQuery("plane(0)", unit_.program.vocab());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryParserTest, MixedSortVariableFails) {
  auto q = ParseQuery("exists T (plane(T, T))", unit_.program.vocab());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryParserTest, ConstantInTemporalPositionFails) {
  auto q = ParseQuery("plane(resort0, resort0)", unit_.program.vocab());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryParserTest, TrailingGarbageFails) {
  auto q = ParseQuery("winter(0) winter(1)", unit_.program.vocab());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(QueryParserTest, ParseGroundAtomAcceptsOnlyGroundAtoms) {
  EXPECT_TRUE(ParseGroundAtom("plane(3, resort1)", unit_.program.vocab()).ok());
  EXPECT_FALSE(ParseGroundAtom("plane(T, resort1)", unit_.program.vocab()).ok());
  EXPECT_FALSE(
      ParseGroundAtom("plane(3, resort1) & winter(3)", unit_.program.vocab())
          .ok());
}

// --------------------------------------------------------------------------
// Evaluation over specifications (Proposition 3.1 semantics)
// --------------------------------------------------------------------------

class QueryEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unit_ = MustParse(workload::EvenSource());
    auto spec = BuildSpecification(unit_.program, unit_.database);
    ASSERT_TRUE(spec.ok()) << spec.status();
    spec_.emplace(std::move(spec).value());
  }
  QueryAnswer MustEval(std::string_view text) {
    auto q = ParseQuery(text, unit_.program.vocab());
    EXPECT_TRUE(q.ok()) << q.status();
    auto a = EvaluateQueryOverSpec(*q, *spec_);
    EXPECT_TRUE(a.ok()) << a.status();
    return std::move(a).value();
  }
  ParsedUnit unit_{Program(nullptr), Database(nullptr)};
  std::optional<RelationalSpecification> spec_;
};

TEST_F(QueryEvalTest, GroundAtoms) {
  EXPECT_TRUE(MustEval("even(0)").boolean);
  EXPECT_FALSE(MustEval("even(1)").boolean);
  EXPECT_TRUE(MustEval("even(123456)").boolean);
  EXPECT_FALSE(MustEval("even(123457)").boolean);
}

TEST_F(QueryEvalTest, CwaNegation) {
  EXPECT_TRUE(MustEval("~even(3)").boolean);
  EXPECT_FALSE(MustEval("~even(4)").boolean);
}

TEST_F(QueryEvalTest, ExistsOverRepresentatives) {
  EXPECT_TRUE(MustEval("exists T (even(T))").boolean);
  EXPECT_FALSE(MustEval("exists T (even(T) & even(T+1))").boolean);
  EXPECT_TRUE(MustEval("exists T (even(T) & even(T+2))").boolean);
}

TEST_F(QueryEvalTest, ForallOverRepresentatives) {
  EXPECT_TRUE(MustEval("forall T (even(T) | even(T+1))").boolean);
  EXPECT_FALSE(MustEval("forall T (even(T))").boolean);
}

TEST_F(QueryEvalTest, OpenQueryReturnsRepresentativesAndRewriteRule) {
  QueryAnswer answer = MustEval("even(X)");
  // The paper's Section 3.3 example: answer X=0 with rewrite rule 2 -> 0.
  ASSERT_EQ(answer.rows.size(), 1u);
  EXPECT_TRUE(answer.rows[0][0].temporal);
  EXPECT_EQ(answer.rows[0][0].time, 0);
  EXPECT_EQ(answer.rewrite_lhs, 2);
  EXPECT_EQ(answer.rewrite_p, 2);
}

TEST_F(QueryEvalTest, AnswerToStringMentionsRewrite) {
  QueryAnswer answer = MustEval("even(X)");
  std::string text = answer.ToString(unit_.program.vocab());
  EXPECT_NE(text.find("X = 0"), std::string::npos) << text;
  EXPECT_NE(text.find("2 -> 0"), std::string::npos) << text;
}

// --------------------------------------------------------------------------
// Per-query limits: deadlines and row caps (QueryEvalOptions)
// --------------------------------------------------------------------------

// A program whose period is large enough that evaluation performs well over
// 64 oracle lookups (the deadline is checked every 64), so an expired
// deadline reliably aborts mid-query.
constexpr char kWidePeriodSource[] = R"(
  tick(0).
  tick(T+128) :- tick(T).
)";

class QueryLimitsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    unit_ = MustParse(kWidePeriodSource);
    auto spec = BuildSpecification(unit_.program, unit_.database);
    ASSERT_TRUE(spec.ok()) << spec.status();
    spec_.emplace(std::move(spec).value());
  }
  QueryAnswer EvalWith(std::string_view text, QueryEvalOptions options) {
    auto q = ParseQuery(text, unit_.program.vocab());
    EXPECT_TRUE(q.ok()) << q.status();
    auto a = EvaluateQueryOverSpec(*q, *spec_, options);
    EXPECT_TRUE(a.ok()) << a.status();
    return std::move(a).value();
  }
  ParsedUnit unit_{Program(nullptr), Database(nullptr)};
  std::optional<RelationalSpecification> spec_;
};

TEST_F(QueryLimitsTest, NoLimitsMeansCompleteAnswers) {
  QueryAnswer answer = EvalWith("exists T (tick(T))", {});
  EXPECT_TRUE(answer.boolean);
  EXPECT_FALSE(answer.partial);
  EXPECT_FALSE(answer.truncated);
}

TEST_F(QueryLimitsTest, ExpiredDeadlineMarksClosedAnswerPartial) {
  QueryEvalOptions options;
  options.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  // A forall over a tautology must visit every representative (no
  // short-circuit), so the 64-lookup deadline check fires mid-evaluation.
  // Without the deadline this is true; the aborted evaluation must not
  // claim a definite answer — `partial` says the boolean is unreliable.
  QueryAnswer answer = EvalWith("forall T (tick(T) | ~tick(T))", options);
  EXPECT_TRUE(answer.partial);
  EXPECT_FALSE(answer.boolean);
}

TEST_F(QueryLimitsTest, ExpiredDeadlineMarksOpenAnswerPartial) {
  QueryEvalOptions options;
  options.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  QueryAnswer answer = EvalWith("tick(T) | ~tick(T)", options);
  EXPECT_TRUE(answer.partial);
  // Whatever rows were collected before the abort are a correct prefix of
  // the unlimited answer (every representative satisfies the tautology).
  QueryAnswer full = EvalWith("tick(T) | ~tick(T)", {});
  EXPECT_FALSE(full.partial);
  EXPECT_LT(answer.rows.size(), full.rows.size());
}

TEST_F(QueryLimitsTest, FutureDeadlineDoesNotFire) {
  QueryEvalOptions options;
  options.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  QueryAnswer answer = EvalWith("forall T (tick(T) | ~tick(T))", options);
  EXPECT_FALSE(answer.partial);
  EXPECT_TRUE(answer.boolean);
}

TEST_F(QueryLimitsTest, MaxRowsTruncatesOpenAnswers) {
  QueryEvalOptions options;
  options.max_rows = 5;
  // The tautology holds at every representative, so the row stream is long
  // enough to hit the cap.
  QueryAnswer answer = EvalWith("tick(T) | ~tick(T)", options);
  EXPECT_TRUE(answer.truncated);
  EXPECT_FALSE(answer.partial);
  EXPECT_EQ(answer.rows.size(), 5u);
  // The truncated rows are a prefix of the full answer.
  QueryAnswer full = EvalWith("tick(T) | ~tick(T)", {});
  ASSERT_GE(full.rows.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(answer.rows[i][0].time, full.rows[i][0].time);
  }
}

TEST_F(QueryLimitsTest, MaxRowsAboveAnswerSizeIsNotTruncation) {
  QueryEvalOptions options;
  options.max_rows = 100000;
  QueryAnswer answer = EvalWith("tick(T)", options);
  EXPECT_FALSE(answer.truncated);
}

TEST_F(QueryLimitsTest, LimitCountersAreRecorded) {
  MetricsRegistry metrics;
  QueryEvalOptions options;
  options.metrics = &metrics;
  options.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  (void)EvalWith("forall T (tick(T) | ~tick(T))", options);
  EXPECT_EQ(metrics.counter("query.deadline_exceeded")->value(), 1u);
  options.deadline.reset();
  options.max_rows = 3;
  (void)EvalWith("tick(T) | ~tick(T)", options);
  EXPECT_EQ(metrics.counter("query.rows_truncated")->value(), 1u);
}

// --------------------------------------------------------------------------
// Invariance (Proposition 3.1): spec evaluation vs deep materialisation
// --------------------------------------------------------------------------

TEST(QueryInvarianceTest, SkiScheduleQueriesAgree) {
  ParsedUnit unit = MustParse(workload::SkiScheduleSource(2, 12, 4, 1));
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok()) << spec.status();
  // Materialise a segment covering several cycles beyond the
  // representatives.
  const int64_t horizon =
      spec->num_representatives() + 4 * spec->period().p;
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());

  const std::vector<std::string> queries = {
      "plane(25, resort0)",
      "plane(26, resort1)",
      "exists X (plane(30, X))",
      "exists T (plane(T, resort0) & winter(T))",
      "exists T (plane(T, resort0) & holiday(T))",
      "forall X (resort(X))",
      "exists T (offseason(T) & ~winter(T))",
      "resort(resort0) & exists T (plane(T, resort0))",
  };
  for (const std::string& text : queries) {
    auto q = ParseQuery(text, unit.program.vocab());
    ASSERT_TRUE(q.ok()) << q.status() << " " << text;
    auto via_spec = EvaluateQueryOverSpec(*q, *spec);
    auto via_model = EvaluateQueryOverModel(*q, *model, horizon);
    ASSERT_TRUE(via_spec.ok());
    ASSERT_TRUE(via_model.ok());
    EXPECT_EQ(via_spec->boolean, via_model->boolean) << text;
  }
}

TEST(QueryInvarianceTest, GroundAtomsAgreeEverywhere) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({2, 3}));
  auto spec = BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(spec.ok());
  const int64_t horizon = 30;
  FixpointOptions options;
  options.max_time = horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  const Vocabulary& vocab = unit.program.vocab();
  PredicateId tok = vocab.FindPredicate("tok");
  for (int64_t t = 0; t <= horizon; ++t) {
    for (int ring = 0; ring < 2; ++ring) {
      int len = ring == 0 ? 2 : 3;
      for (int i = 0; i < len; ++i) {
        std::string name =
            "r" + std::to_string(ring) + "_" + std::to_string(i);
        GroundAtom atom(tok, t, {vocab.FindConstant(name)});
        EXPECT_EQ(spec->Ask(atom), model->Contains(atom))
            << name << "@" << t;
      }
    }
  }
}

TEST(QueryEvalModelTest, FreeVariablesOverModel) {
  ParsedUnit unit = MustParse("p(0, a). p(2, b). p(T+3, X) :- p(T, X).");
  FixpointOptions options;
  options.max_time = 10;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  auto q = ParseQuery("p(4, X)", unit.program.vocab());
  ASSERT_TRUE(q.ok());
  auto answer = EvaluateQueryOverModel(*q, *model, 10);
  ASSERT_TRUE(answer.ok());
  // p(4, ?) does not hold (p(0,a)->3,6,9; p(2,b)->5,8).
  EXPECT_TRUE(answer->rows.empty());
  auto q2 = ParseQuery("p(5, X)", unit.program.vocab());
  ASSERT_TRUE(q2.ok());
  auto answer2 = EvaluateQueryOverModel(*q2, *model, 10);
  ASSERT_TRUE(answer2.ok());
  ASSERT_EQ(answer2->rows.size(), 1u);
  EXPECT_EQ(unit.program.vocab().ConstantName(answer2->rows[0][0].constant),
            "b");
}

}  // namespace
}  // namespace chronolog
