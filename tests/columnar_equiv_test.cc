// Equivalence suite for the columnar storage + join-planner rewrite: the
// semi-naive evaluator (columnar relations, selectivity-ordered joins) must
// agree with the NaiveFixpoint reference oracle — the auditable Figure 1
// transcription — on the least model, the EvalStats contract
// (inserted / min_new_time), and both snapshot-hash families, across every
// workload family the repo generates.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

// Runs both evaluators at the given truncation bound and checks full
// agreement: model equality (Relation set-equality per cell), stats parity,
// and snapshot-hash parity at every time point of the segment.
void ExpectNaiveSemiNaiveAgree(std::string_view src, int64_t max_time) {
  ParsedUnit unit = MustParse(src);
  FixpointOptions options;
  options.max_time = max_time;

  EvalStats naive_stats;
  auto naive = NaiveFixpoint(unit.program, unit.database, options,
                             &naive_stats);
  ASSERT_TRUE(naive.ok()) << naive.status();

  EvalStats semi_stats;
  auto semi = SemiNaiveFixpoint(unit.program, unit.database, options,
                                &semi_stats);
  ASSERT_TRUE(semi.ok()) << semi.status();

  EXPECT_TRUE(*naive == *semi);
  EXPECT_EQ(naive->size(), semi->size());
  EXPECT_EQ(naive_stats.inserted, semi_stats.inserted);
  EXPECT_EQ(naive_stats.min_new_time, semi_stats.min_new_time);
  for (int64_t t = 0; t <= max_time; ++t) {
    EXPECT_EQ(naive->SnapshotHash(t), semi->SnapshotHash(t)) << "t=" << t;
    EXPECT_EQ(naive->SnapshotHash2(t), semi->SnapshotHash2(t)) << "t=" << t;
  }
}

TEST(ColumnarEquivTest, Even) {
  ExpectNaiveSemiNaiveAgree(workload::EvenSource(), 24);
}

TEST(ColumnarEquivTest, TokenRing) {
  ExpectNaiveSemiNaiveAgree(workload::TokenRingSource({3, 5}), 20);
}

TEST(ColumnarEquivTest, BinaryCounter) {
  ExpectNaiveSemiNaiveAgree(workload::BinaryCounterSource(4), 18);
}

TEST(ColumnarEquivTest, SkiSchedule) {
  ExpectNaiveSemiNaiveAgree(workload::SkiScheduleSource(3, 14, 6, 2), 30);
}

TEST(ColumnarEquivTest, PathOnRandomGraph) {
  std::mt19937 rng(42);
  ExpectNaiveSemiNaiveAgree(workload::PathProgramSource() +
                                workload::RandomGraphFactsSource(6, 12, &rng),
                            8);
}

TEST(ColumnarEquivTest, SkewedJoin) {
  ExpectNaiveSemiNaiveAgree(workload::SkewedJoinSource(32), 12);
}

TEST(ColumnarEquivTest, DelayChain) {
  ExpectNaiveSemiNaiveAgree(workload::DelayChainSource({2, 3, 4}), 16);
}

TEST(ColumnarEquivTest, RandomProgramSweep) {
  std::mt19937 rng(2026);
  workload::RandomProgramOptions options;
  for (int i = 0; i < 12; ++i) {
    // Alternate progressive-only and general programs so backward rules
    // (body atoms ahead of the head) go through the planner too.
    options.progressive_only = (i % 2 == 0);
    std::string src = workload::RandomProgramSource(options, &rng);
    SCOPED_TRACE("seed 2026 iteration " + std::to_string(i) + "\n" + src);
    ExpectNaiveSemiNaiveAgree(src, 8);
  }
}

TEST(ColumnarEquivTest, RandomTimeOnlySweep) {
  std::mt19937 rng(7);
  for (int i = 0; i < 6; ++i) {
    std::string src = workload::RandomTimeOnlySource(3, 5, 3, &rng);
    SCOPED_TRACE("seed 7 iteration " + std::to_string(i) + "\n" + src);
    ExpectNaiveSemiNaiveAgree(src, 12);
  }
}

TEST(ColumnarEquivTest, ParallelSemiNaiveMatchesSequential) {
  // The planner pre-pass runs before workers fan out; all thread counts must
  // produce the identical model and stats (merge is task-ordered).
  std::mt19937 rng(11);
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::RandomGraphFactsSource(8, 20, &rng));
  FixpointOptions seq;
  seq.max_time = 8;
  seq.num_threads = 1;
  FixpointOptions par = seq;
  par.num_threads = 4;

  EvalStats seq_stats;
  auto sequential =
      SemiNaiveFixpoint(unit.program, unit.database, seq, &seq_stats);
  ASSERT_TRUE(sequential.ok()) << sequential.status();
  EvalStats par_stats;
  auto parallel =
      SemiNaiveFixpoint(unit.program, unit.database, par, &par_stats);
  ASSERT_TRUE(parallel.ok()) << parallel.status();

  EXPECT_TRUE(*sequential == *parallel);
  EXPECT_EQ(seq_stats.inserted, par_stats.inserted);
  EXPECT_EQ(seq_stats.min_new_time, par_stats.min_new_time);
  for (int64_t t = 0; t <= 8; ++t) {
    EXPECT_EQ(sequential->SnapshotHash(t), parallel->SnapshotHash(t));
    EXPECT_EQ(sequential->SnapshotHash2(t), parallel->SnapshotHash2(t));
  }
}

}  // namespace
}  // namespace chronolog
