// chronolog_flow tests: the SCC-ordered dataflow framework and its three
// analyses (temporal offsets, polynomial degree, binding patterns), the
// exported detection hints, the A-series diagnostics, and the join-order
// prior hook on the RuleEvaluator plan cache.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/depgraph.h"
#include "ast/parser.h"
#include "spec/specification.h"
#include "storage/interpretation.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

FlowAnalysis Analyze(const ParsedUnit& unit, FlowOptions options = {}) {
  return AnalyzeProgram(unit.program, unit.database, options);
}

bool HasCode(const FlowAnalysis& analysis, std::string_view code) {
  for (const Diagnostic& d : analysis.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

PredicateId Pred(const ParsedUnit& unit, std::string_view name) {
  const PredicateId p = unit.program.vocab().FindPredicate(name);
  EXPECT_NE(p, kInvalidPredicate) << name;
  return p;
}

// --------------------------------------------------------------------------
// Temporal-offset analysis
// --------------------------------------------------------------------------

TEST(FlowOffsetTest, BoundedChainGetsFiniteHorizonAndHint) {
  ParsedUnit unit = MustParse(R"(
    seed(0).
    stage(T+3) :- seed(T).
    done(T+2) :- stage(T).
  )");
  FlowAnalysis analysis = Analyze(unit);
  EXPECT_TRUE(analysis.offsets.bounded);
  EXPECT_EQ(analysis.offsets.static_horizon, 5);
  EXPECT_EQ(analysis.offsets.last_time[Pred(unit, "seed")], 0);
  EXPECT_EQ(analysis.offsets.last_time[Pred(unit, "stage")], 3);
  EXPECT_EQ(analysis.offsets.last_time[Pred(unit, "done")], 5);
  EXPECT_EQ(analysis.offsets.period_divisor, 1);
  // Bounded hint: the predicted horizon plus trailing slack.
  EXPECT_TRUE(analysis.hints.bounded);
  EXPECT_EQ(analysis.hints.initial_horizon, 5 + 8);
  EXPECT_TRUE(HasCode(analysis, flow_code::kStaticHorizon));
  EXPECT_FALSE(HasCode(analysis, flow_code::kUnboundedGrowth));
}

TEST(FlowOffsetTest, PredicateWithNoFactsAndNoFiringRuleStaysEmpty) {
  ParsedUnit unit = MustParse(R"(
    ghost(T+1) :- ghost(T).
    real(0).
  )");
  FlowAnalysis analysis = Analyze(unit);
  // `ghost` has no EDB seed: the recursion never fires and the analysis
  // proves it derivably empty (lattice bottom) rather than unbounded.
  EXPECT_EQ(analysis.offsets.last_time[Pred(unit, "ghost")], kTimeBottom);
  EXPECT_TRUE(analysis.offsets.bounded);
}

TEST(FlowOffsetTest, EvenProgramClaimsSelfDelayPeriodTwo) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  FlowAnalysis analysis = Analyze(unit);
  EXPECT_FALSE(analysis.offsets.bounded);
  EXPECT_EQ(analysis.offsets.period_divisor, 2);
  const PredicateId even = Pred(unit, "even");
  bool found = false;
  for (const SccOffsetInfo& scc : analysis.offsets.sccs) {
    if (scc.predicates == std::vector<PredicateId>{even}) {
      found = true;
      EXPECT_EQ(scc.cycle_gcd, 2);
      EXPECT_FALSE(scc.bounded);
      EXPECT_EQ(scc.self_delay_period, 2);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(HasCode(analysis, flow_code::kOffsetCycle));
  EXPECT_TRUE(HasCode(analysis, flow_code::kPeriodDivisor));
  // A certified periodic SCC is not flagged as structureless growth.
  EXPECT_FALSE(HasCode(analysis, flow_code::kUnboundedGrowth));
  // Unbounded-with-divisor hint: c + detector slack for several cycles.
  EXPECT_EQ(analysis.hints.initial_horizon, 0 + 4 * 2 + 8);
}

TEST(FlowOffsetTest, BothParitySeedsCollapseTheDivisorToOne) {
  // Seeds at every residue mod 2: the eventual pattern repeats with period
  // 1, so claiming divisor 2 would be unsound — the residue-invariance scan
  // must find q = 1.
  ParsedUnit unit = MustParse(R"(
    even(0).
    even(1).
    even(T+2) :- even(T).
  )");
  FlowAnalysis analysis = Analyze(unit);
  EXPECT_EQ(analysis.offsets.period_divisor, 1);
  EXPECT_FALSE(HasCode(analysis, flow_code::kPeriodDivisor));
}

TEST(FlowOffsetTest, BackwardDelayIsBoundedNotPeriodic) {
  // p(T) :- p(T+5) only derives *earlier* facts from later ones: the model
  // is finite. The offset lattice must prove boundedness (no divisor claim,
  // no unbounded warning).
  ParsedUnit unit = MustParse(R"(
    p(0).
    p(100).
    p(T) :- p(T+5).
  )");
  FlowAnalysis analysis = Analyze(unit);
  EXPECT_TRUE(analysis.offsets.bounded);
  EXPECT_EQ(analysis.offsets.static_horizon, 100);
  EXPECT_EQ(analysis.offsets.period_divisor, 1);
  EXPECT_FALSE(HasCode(analysis, flow_code::kUnboundedGrowth));
}

TEST(FlowOffsetTest, MultiPredicateRingWarnsWithoutPeriodClaim) {
  ParsedUnit unit = MustParse(R"(
    tok(0, a).
    next(a, b).
    next(b, a).
    tok(T+1, Y) :- tok(T, X), next(X, Y).
  )");
  FlowAnalysis analysis = Analyze(unit);
  EXPECT_FALSE(analysis.offsets.bounded);
  // The join with `next` disqualifies the self-delay claim, but the uniform
  // +1 edge still yields the cycle gcd.
  const PredicateId tok = Pred(unit, "tok");
  for (const SccOffsetInfo& scc : analysis.offsets.sccs) {
    if (scc.predicates == std::vector<PredicateId>{tok}) {
      EXPECT_EQ(scc.cycle_gcd, 1);
      EXPECT_EQ(scc.self_delay_period, 0);
    }
  }
  EXPECT_EQ(analysis.offsets.period_divisor, 1);
  EXPECT_TRUE(HasCode(analysis, flow_code::kUnboundedGrowth));
}

TEST(FlowOffsetTest, DelayChainDivisorIsTheDelayGcd) {
  ParsedUnit unit = MustParse(R"(
    tick(0).
    tick(T+6) :- tick(T).
    tick(T+10) :- tick(T).
  )");
  FlowAnalysis analysis = Analyze(unit);
  // gcd(6, 10) = 2, single seed residue {0}: divisor 2.
  EXPECT_EQ(analysis.offsets.period_divisor, 2);
}

TEST(FlowOffsetTest, UnboundedSccIsWidenedByTheFramework) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  FlowAnalysis analysis = Analyze(unit);
  EXPECT_GE(analysis.stats.widened_sccs, 1);
  EXPECT_GT(analysis.stats.rounds, 0);
}

// --------------------------------------------------------------------------
// Degree analysis
// --------------------------------------------------------------------------

TEST(FlowDegreeTest, TransitiveClosureIsQuadratic) {
  ParsedUnit unit = MustParse(R"(
    e(a, b).
    e(b, c).
    tc(X, Y) :- e(X, Y).
    tc(X, Z) :- tc(X, Y), e(Y, Z).
  )");
  FlowAnalysis analysis = Analyze(unit);
  EXPECT_EQ(analysis.degrees.degree[Pred(unit, "e")], 1);
  EXPECT_EQ(analysis.degrees.degree[Pred(unit, "tc")], 2);
  EXPECT_EQ(analysis.degrees.program_degree, 2);
  EXPECT_TRUE(HasCode(analysis, flow_code::kProgramDegree));
  EXPECT_FALSE(HasCode(analysis, flow_code::kDegreeBudget));

  FlowOptions tight;
  tight.degree_budget = 1;
  FlowAnalysis warned = Analyze(unit, tight);
  EXPECT_TRUE(HasCode(warned, flow_code::kDegreeBudget));
}

TEST(FlowDegreeTest, DegreeIsCappedByTheHeadArity) {
  // The body product would be n^2, but the head can only hold n distinct
  // tuples per timestep (one non-temporal argument).
  ParsedUnit unit = MustParse(R"(
    obs(0, x).
    pick(T, A) :- obs(T, A), obs(T, B).
  )");
  FlowAnalysis analysis = Analyze(unit);
  EXPECT_EQ(analysis.degrees.degree[Pred(unit, "pick")], 1);
}

// --------------------------------------------------------------------------
// Adornment analysis
// --------------------------------------------------------------------------

TEST(FlowAdornTest, ConstantBoundAtomIsOrderedFirst) {
  ParsedUnit unit = MustParse(R"(
    big(a, b).
    key(b, c).
    ans(X) :- big(X, Y), key(Y, c).
  )");
  FlowAnalysis analysis = Analyze(unit);
  // SIPS under an all-free head: key (one constant of two positions) beats
  // big (all free), so the static prior reorders the body.
  ASSERT_EQ(analysis.adornments.priors.size(), unit.program.rules().size());
  EXPECT_EQ(analysis.adornments.priors[0], (std::vector<uint32_t>{1, 0}));
  EXPECT_TRUE(HasCode(analysis, flow_code::kJoinOrderPrior));
}

TEST(FlowAdornTest, SourceOrderBodiesExportNoPrior) {
  ParsedUnit unit = MustParse(workload::TransitiveClosureDatalogSource());
  FlowAnalysis analysis = Analyze(unit);
  for (const std::vector<uint32_t>& prior : analysis.adornments.priors) {
    EXPECT_TRUE(prior.empty());
  }
  EXPECT_FALSE(HasCode(analysis, flow_code::kJoinOrderPrior));
}

TEST(FlowAdornTest, PatternsPropagateFromExplicitRoots) {
  ParsedUnit unit = MustParse(R"(
    edge(a, b).
    mid(X, Y) :- edge(X, Y).
    ans(Y) :- mid(a, Y).
  )");
  FlowOptions options;
  options.roots = {"ans"};
  FlowAnalysis analysis = Analyze(unit, options);
  EXPECT_EQ(analysis.adornments.patterns[Pred(unit, "ans")],
            (std::vector<std::string>{"f"}));
  // `mid` is consumed with its first argument bound to the constant `a`.
  EXPECT_EQ(analysis.adornments.patterns[Pred(unit, "mid")],
            (std::vector<std::string>{"bf"}));
  // EDB predicates are never adorned (no rules to specialise).
  EXPECT_TRUE(analysis.adornments.patterns[Pred(unit, "edge")].empty());
  EXPECT_TRUE(HasCode(analysis, flow_code::kBindingPatterns));
}

TEST(FlowAdornTest, UnknownRootIsIgnoredWithoutPatterns) {
  ParsedUnit unit = MustParse(R"(
    mid(X, Y) :- edge(X, Y).
    edge(a, b).
  )");
  FlowOptions options;
  options.roots = {"no_such_predicate"};
  FlowAnalysis analysis = Analyze(unit, options);
  for (const std::vector<std::string>& patterns :
       analysis.adornments.patterns) {
    EXPECT_TRUE(patterns.empty());
  }
  EXPECT_FALSE(HasCode(analysis, flow_code::kBindingPatterns));
}

// --------------------------------------------------------------------------
// Hints and detection seeding
// --------------------------------------------------------------------------

TEST(FlowHintsTest, SeedingOnlyRaisesTheInitialHorizon) {
  FlowHints hints;
  hints.initial_horizon = 100;
  PeriodDetectionOptions options;  // default initial_horizon = 64
  SeedPeriodOptions(hints, &options);
  EXPECT_EQ(options.initial_horizon, 100);

  hints.initial_horizon = 10;
  SeedPeriodOptions(hints, &options);
  EXPECT_EQ(options.initial_horizon, 100);  // never lowered
}

TEST(FlowHintsTest, HintIsClampedToTheConfiguredCap) {
  ParsedUnit unit = MustParse(R"(
    seed(0).
    far(T+1000000) :- seed(T).
  )");
  FlowOptions options;
  options.max_horizon_hint = 4096;
  FlowAnalysis analysis = Analyze(unit, options);
  EXPECT_TRUE(analysis.offsets.bounded);
  EXPECT_EQ(analysis.hints.initial_horizon, 4096);
}

// --------------------------------------------------------------------------
// Join-order priors on the evaluator
// --------------------------------------------------------------------------

// Loads the skewed-join workload the way a semi-naive round sees it.
void LoadSkewed(const ParsedUnit& unit, Interpretation* full,
                Interpretation* delta) {
  full->InsertDatabase(unit.database);
  for (const GroundAtom& f : unit.database.facts()) {
    if (unit.program.vocab().predicate(f.pred).is_temporal) {
      delta->Insert(f);
    }
  }
}

TEST(FlowPriorTest, FirstPlanFollowsTheInstalledPrior) {
  ParsedUnit unit = MustParse(workload::SkewedJoinSource(64));
  ASSERT_EQ(unit.program.rules().size(), 1u);
  Interpretation full(unit.program.vocab_ptr());
  Interpretation delta(unit.program.vocab_ptr());
  LoadSkewed(unit, &full, &delta);

  const std::vector<uint32_t> prior = {2, 1, 0};
  RuleEvaluator ev(unit.program.rules()[0], unit.program.vocab());
  ev.SetStaticOrderPrior(&prior);
  ev.EnsurePlan(full, &delta, /*delta_pos=*/0, /*time_bound=*/false);
  EXPECT_EQ(ev.PlanOrderForTest(0, false), prior);
}

TEST(FlowPriorTest, InvalidPriorsAreIgnored) {
  ParsedUnit unit = MustParse(workload::SkewedJoinSource(64));
  Interpretation full(unit.program.vocab_ptr());
  Interpretation delta(unit.program.vocab_ptr());
  LoadSkewed(unit, &full, &delta);

  const std::vector<uint32_t> wrong_size = {0, 1};
  const std::vector<uint32_t> not_permutation = {0, 0, 1};
  for (const std::vector<uint32_t>* bad : {&wrong_size, &not_permutation}) {
    RuleEvaluator ev(unit.program.rules()[0], unit.program.vocab());
    ev.SetStaticOrderPrior(bad);
    ev.EnsurePlan(full, &delta, /*delta_pos=*/0, /*time_bound=*/false);
    // Greedy planning on the skewed workload: delta, then the one-row
    // narrow relation, then the fan-out (join_plan_test.cc).
    EXPECT_EQ(ev.PlanOrderForTest(0, false),
              (std::vector<uint32_t>{0, 2, 1}));
  }
}

TEST(FlowPriorTest, AdversarialPriorsNeverChangeTheSpecification) {
  ParsedUnit unit = MustParse(R"(
    tok(0, a).
    next(a, b).
    next(b, c).
    next(c, a).
    tok(T+1, Y) :- tok(T, X), next(X, Y).
  )");
  Result<RelationalSpecification> baseline =
      BuildSpecification(unit.program, unit.database);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  // Reverse every multi-atom body: a deliberately bad prior must cost time
  // at worst, never correctness.
  JoinOrderPriors reversed(unit.program.rules().size());
  for (std::size_t i = 0; i < unit.program.rules().size(); ++i) {
    const std::size_t n = unit.program.rules()[i].body.size();
    if (n < 2) continue;
    for (std::size_t k = n; k > 0; --k) {
      reversed[i].push_back(static_cast<uint32_t>(k - 1));
    }
  }
  PeriodDetectionOptions options;
  options.plan_priors = &reversed;
  Result<RelationalSpecification> seeded =
      BuildSpecification(unit.program, unit.database, options);
  ASSERT_TRUE(seeded.ok()) << seeded.status();

  EXPECT_EQ(baseline->period().b, seeded->period().b);
  EXPECT_EQ(baseline->period().p, seeded->period().p);
  EXPECT_EQ(baseline->c(), seeded->c());
  EXPECT_TRUE(baseline->primary() == seeded->primary());
}

// --------------------------------------------------------------------------
// Report surfaces
// --------------------------------------------------------------------------

TEST(FlowReportTest, SummaryAndJsonNameEveryPredicate) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  FlowAnalysis analysis = Analyze(unit);
  const std::string summary = analysis.Summary(unit.program);
  EXPECT_NE(summary.find("bounded: no"), std::string::npos) << summary;
  EXPECT_NE(summary.find("period divisor: 2"), std::string::npos) << summary;
  EXPECT_NE(summary.find("even"), std::string::npos) << summary;

  const std::string json = analysis.ToJson(unit.program);
  EXPECT_NE(json.find("\"period_divisor\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"self_delay_period\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"even\""), std::string::npos) << json;
}

TEST(FlowReportTest, PassRegistryCoversEveryACode) {
  std::string all_codes;
  for (const LintPassInfo& pass : FlowPassRegistry()) {
    all_codes += std::string(pass.codes) + ",";
  }
  for (const char* code :
       {flow_code::kOffsetCycle, flow_code::kUnboundedGrowth,
        flow_code::kStaticHorizon, flow_code::kPeriodDivisor,
        flow_code::kDegreeBudget, flow_code::kProgramDegree,
        flow_code::kBindingPatterns, flow_code::kJoinOrderPrior}) {
    EXPECT_NE(all_codes.find(code), std::string::npos) << code;
  }
}

}  // namespace
}  // namespace chronolog
