// Unit tests of the columnar Relation (storage/relation.h): dedup table
// behaviour against a reference std::set, row-id stability, arity handling
// (including nullary tuples), set equality, and the sampled distinct-count
// estimator feeding the join planner.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <set>
#include <thread>
#include <vector>

#include "storage/interpretation.h"
#include "storage/relation.h"

namespace chronolog {
namespace {

TEST(ColumnarRelationTest, InsertDedupAndContains) {
  Relation rel;
  EXPECT_TRUE(rel.empty());
  EXPECT_TRUE(rel.Insert({1, 2}));
  EXPECT_TRUE(rel.Insert({1, 3}));
  EXPECT_FALSE(rel.Insert({1, 2}));  // duplicate
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.arity(), 2u);
  EXPECT_TRUE(rel.Contains({1, 2}));
  EXPECT_TRUE(rel.Contains({1, 3}));
  EXPECT_FALSE(rel.Contains({2, 1}));
}

TEST(ColumnarRelationTest, RowIdsAreAppendOrder) {
  Relation rel;
  rel.Insert({7, 8});
  rel.Insert({9, 10});
  EXPECT_EQ(rel.at(0, 0), 7u);
  EXPECT_EQ(rel.at(0, 1), 8u);
  EXPECT_EQ(rel.at(1, 0), 9u);
  EXPECT_EQ(rel.Row(1), (Tuple{9, 10}));
  Tuple scratch{99};
  rel.CopyRow(0, &scratch);
  EXPECT_EQ(scratch, (Tuple{7, 8}));
}

TEST(ColumnarRelationTest, NullaryTuples) {
  // Arity-0 relations back nullary predicates like `even(T)`, whose
  // non-temporal argument tuple is empty: one row at most.
  Relation rel;
  EXPECT_FALSE(rel.Contains(Tuple{}));
  EXPECT_TRUE(rel.Insert(Tuple{}));
  EXPECT_FALSE(rel.Insert(Tuple{}));
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_EQ(rel.arity(), 0u);
  EXPECT_TRUE(rel.Contains(Tuple{}));
  EXPECT_EQ(rel.Row(0), Tuple{});
}

TEST(ColumnarRelationTest, MatchesReferenceSetAcrossGrowth) {
  // Drive the swiss table through many grows and verify every Insert
  // return value and final membership against std::set.
  std::mt19937 rng(7);
  std::uniform_int_distribution<SymbolId> value(0, 99);
  Relation rel;
  std::set<Tuple> reference;
  for (int i = 0; i < 20000; ++i) {
    Tuple t{value(rng), value(rng), value(rng)};
    const bool fresh = reference.insert(t).second;
    EXPECT_EQ(rel.Insert(t), fresh);
  }
  EXPECT_EQ(rel.size(), reference.size());
  for (const Tuple& t : reference) EXPECT_TRUE(rel.Contains(t));
  for (uint32_t row = 0; row < rel.size(); ++row) {
    EXPECT_EQ(reference.count(rel.Row(row)), 1u);
  }
}

TEST(ColumnarRelationTest, SetEqualityIgnoresInsertionOrder) {
  Relation a;
  Relation b;
  a.Insert({1, 2});
  a.Insert({3, 4});
  a.Insert({5, 6});
  b.Insert({5, 6});
  b.Insert({1, 2});
  b.Insert({3, 4});
  EXPECT_TRUE(a == b);
  b.Insert({7, 8});
  EXPECT_TRUE(a != b);
  Relation empty1;
  Relation empty2;
  EXPECT_TRUE(empty1 == empty2);
  EXPECT_TRUE(empty1 != a);
}

TEST(ColumnarRelationTest, DistinctInColumnExactWhenSmall) {
  Relation rel;
  for (SymbolId x = 0; x < 10; ++x) {
    rel.Insert({x, x % 3});
  }
  // Fewer rows than the sample budget: the estimate is exact.
  EXPECT_EQ(rel.DistinctInColumn(0), 10u);
  EXPECT_EQ(rel.DistinctInColumn(1), 3u);
  EXPECT_EQ(rel.DistinctInColumn(7), 1u);  // out of range => neutral
}

TEST(ColumnarRelationTest, DistinctInColumnRefreshesAfterDoubling) {
  Relation rel;
  for (SymbolId x = 0; x < 100; ++x) rel.Insert({x % 2, x});
  EXPECT_EQ(rel.DistinctInColumn(0), 2u);
  // Grow the relation well past 2x; the cached estimate must refresh and
  // see the now-unique column.
  for (SymbolId x = 100; x < 400; ++x) rel.Insert({x, x});
  const std::size_t estimate = rel.DistinctInColumn(0);
  EXPECT_GT(estimate, 100u);
  EXPECT_LE(estimate, rel.size());
}

// Regression: DistinctInColumn lazily resizes and refreshes a mutable cache
// from a const method. Before it took the statistics mutex, two parallel
// planners sampling the same relation raced on that cache (caught by TSan
// under the parallel semi-naive evaluator). Run under TSan via bench/ci.sh.
TEST(ColumnarParallelTest, DistinctInColumnConcurrentReaders) {
  Relation rel;
  for (SymbolId x = 0; x < 4000; ++x) rel.Insert({x, x % 7, 42});
  const Relation& shared = rel;  // readers only see const access

  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&shared, &mismatch] {
      for (int i = 0; i < kIters; ++i) {
        // Rotate over every column so the first calls hit the lazy cache
        // resize from several threads at once. The estimates are sampled,
        // so assert only their ordering (unique > 7-valued > constant).
        const std::size_t d0 = shared.DistinctInColumn(0);
        const std::size_t d1 = shared.DistinctInColumn(1);
        const std::size_t d2 = shared.DistinctInColumn(2);
        if (d0 < d1 || d1 < d2 || d2 == 0 || d2 > 8) mismatch.store(true);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_FALSE(mismatch.load());
  // Sanity on the estimates themselves (sampled: the constant column's
  // extrapolation can land slightly above 1, but far below the others).
  EXPECT_LE(shared.DistinctInColumn(2), 8u);
  EXPECT_GE(shared.DistinctInColumn(0), shared.DistinctInColumn(1));
}

// Copying a relation while other threads sample its statistics must also be
// race-free: the copy constructor snapshots the cache under the same mutex.
TEST(ColumnarParallelTest, CopyWhileSamplingStatistics) {
  Relation rel;
  for (SymbolId x = 0; x < 2000; ++x) rel.Insert({x, x % 3});
  const Relation& shared = rel;

  std::atomic<bool> stop{false};
  std::thread sampler([&shared, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)shared.DistinctInColumn(0);
      (void)shared.DistinctInColumn(1);
    }
  });
  for (int i = 0; i < 100; ++i) {
    Relation copy = shared;
    EXPECT_EQ(copy.size(), shared.size());
    EXPECT_TRUE(copy.Contains({5, 5 % 3}));
  }
  stop.store(true, std::memory_order_release);
  sampler.join();
}

TEST(ColumnarInterpretationTest, ProbeBucketsHoldRowIds) {
  auto vocab = std::make_shared<Vocabulary>();
  auto e = vocab->DeclarePredicate("e", 2);
  ASSERT_TRUE(e.ok());
  const SymbolId a = vocab->InternConstant("a");
  const SymbolId b = vocab->InternConstant("b");
  const SymbolId c = vocab->InternConstant("c");
  Interpretation interp(vocab);
  interp.Insert(*e, 0, {a, b});
  interp.Insert(*e, 0, {a, c});
  interp.Insert(*e, 0, {b, c});
  const std::vector<uint32_t>* bucket = interp.ProbeNonTemporal(*e, 0, a);
  ASSERT_NE(bucket, nullptr);
  ASSERT_EQ(bucket->size(), 2u);
  const Relation& rel = interp.NonTemporal(*e);
  for (uint32_t row : *bucket) {
    ASSERT_LT(row, rel.size());
    EXPECT_EQ(rel.at(row, 0), a);
  }
  // Row ids survive further inserts (positional, append-only).
  interp.Insert(*e, 0, {a, a});
  EXPECT_EQ(interp.ProbeNonTemporal(*e, 0, a)->size(), 3u);
  EXPECT_EQ(rel.at((*bucket)[0], 0), a);
}

TEST(ColumnarInterpretationTest, ForEachEnumeratesEveryFact) {
  auto vocab = std::make_shared<Vocabulary>();
  auto e = vocab->DeclarePredicate("e", 1);
  auto p = vocab->DeclarePredicate("p", 1);
  ASSERT_TRUE(e.ok());
  ASSERT_TRUE(p.ok());
  vocab->SetTemporal(*p);
  const SymbolId a = vocab->InternConstant("a");
  const SymbolId b = vocab->InternConstant("b");
  Interpretation interp(vocab);
  interp.Insert(*e, 0, {a});
  interp.Insert(*p, 3, {a});
  interp.Insert(*p, 3, {b});
  interp.Insert(*p, 5, {a});
  std::set<std::tuple<PredicateId, int64_t, Tuple>> seen;
  interp.ForEach([&](PredicateId pred, int64_t time, const Tuple& args) {
    // The tuple reference is scratch storage: copy, as the contract says.
    seen.insert({pred, time, args});
  });
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen.count({*p, 3, Tuple{b}}), 1u);
  EXPECT_EQ(seen.count({*e, 0, Tuple{a}}), 1u);
}

}  // namespace
}  // namespace chronolog
