#include <gtest/gtest.h>

#include "ast/parser.h"
#include "query/query_parser.h"
#include "spec/serialize.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

RelationalSpecification MustSpec(const ParsedUnit& unit) {
  auto spec = BuildSpecification(unit.program, unit.database);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return std::move(spec).value();
}

TEST(SerializeTest, EvenRoundTrip) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  RelationalSpecification spec = MustSpec(unit);
  std::string text = SerializeSpecification(spec);
  EXPECT_NE(text.find("%!chronolog-spec 1"), std::string::npos) << text;
  EXPECT_NE(text.find("%!period b=0 p=2 c=0"), std::string::npos) << text;
  EXPECT_NE(text.find("@temporal even/1."), std::string::npos);
  EXPECT_NE(text.find("even(0)."), std::string::npos);

  auto loaded = DeserializeSpecification(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->period().p, 2);
  EXPECT_EQ(loaded->period().b, 0);
  EXPECT_EQ(loaded->c(), 0);
  EXPECT_EQ(loaded->num_representatives(), spec.num_representatives());
}

TEST(SerializeTest, LoadedSpecAnswersLikeOriginal) {
  ParsedUnit unit = MustParse(workload::SkiScheduleSource(2, 12, 4, 1));
  RelationalSpecification spec = MustSpec(unit);
  auto loaded = DeserializeSpecification(SerializeSpecification(spec));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // The loaded spec lives in its own vocabulary; compare through text
  // queries.
  for (int64_t t = 0; t < 80; ++t) {
    for (const char* resort : {"resort0", "resort1"}) {
      std::string q =
          "plane(" + std::to_string(t) + ", " + std::string(resort) + ")";
      auto original_atom = ParseGroundAtom(q, spec.primary().vocab());
      auto loaded_atom = ParseGroundAtom(q, loaded->primary().vocab());
      ASSERT_TRUE(original_atom.ok());
      ASSERT_TRUE(loaded_atom.ok());
      EXPECT_EQ(spec.Ask(*original_atom), loaded->Ask(*loaded_atom)) << q;
    }
  }
}

TEST(SerializeTest, EmptyRelationsKeepTheirSchema) {
  // `ghost` never holds but must survive the round trip as a known
  // predicate (queries return "no", not "unknown predicate").
  ParsedUnit unit = MustParse(
      "even(0). even(T+2) :- even(T).\n"
      "@temporal ghost/2.\n"
      "@predicate magic/1.\n");
  RelationalSpecification spec = MustSpec(unit);
  auto loaded = DeserializeSpecification(SerializeSpecification(spec));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  const Vocabulary& vocab = loaded->primary().vocab();
  EXPECT_NE(vocab.FindPredicate("ghost"), kInvalidPredicate);
  EXPECT_NE(vocab.FindPredicate("magic"), kInvalidPredicate);
  EXPECT_TRUE(vocab.predicate(vocab.FindPredicate("ghost")).is_temporal);
  EXPECT_FALSE(vocab.predicate(vocab.FindPredicate("magic")).is_temporal);
  auto atom = ParseGroundAtom("ghost(5, anything)", vocab);
  ASSERT_TRUE(atom.ok());
  EXPECT_FALSE(loaded->Ask(*atom));
}

TEST(SerializeTest, MissingHeaderFails) {
  auto loaded = DeserializeSpecification("even(0).");
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("header"), std::string::npos);
}

TEST(SerializeTest, MissingPeriodFails) {
  auto loaded = DeserializeSpecification("%!chronolog-spec 1\neven(0).");
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, WrongVersionFails) {
  auto loaded = DeserializeSpecification(
      "%!chronolog-spec 99\n%!period b=0 p=1 c=0\n");
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, RulesInBodyFail) {
  auto loaded = DeserializeSpecification(
      "%!chronolog-spec 1\n%!period b=0 p=2 c=0\n"
      "even(0).\neven(T+2) :- even(T).\n");
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("rules"), std::string::npos);
}

TEST(SerializeTest, MalformedPeriodFails) {
  auto loaded = DeserializeSpecification(
      "%!chronolog-spec 1\n%!period b=0 p=0 c=0\neven(0).");
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, TokenRingRoundTripPreservesEverything) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({3, 4}));
  RelationalSpecification spec = MustSpec(unit);
  auto loaded = DeserializeSpecification(SerializeSpecification(spec));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->period().p, spec.period().p);
  EXPECT_EQ(loaded->SizeInFacts(), spec.SizeInFacts());
  // Re-serialising the loaded spec is a fixpoint (stable text).
  EXPECT_EQ(SerializeSpecification(*loaded),
            SerializeSpecification(*loaded));
}

}  // namespace
}  // namespace chronolog
