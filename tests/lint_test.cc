#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostics.h"
#include "analysis/lint.h"
#include "ast/parser.h"
#include "core/engine.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

LintResult LintSource(std::string_view src, LintOptions options = {}) {
  ParsedUnit unit = MustParse(src);
  return LintProgram(unit.program, unit.database, options);
}

std::vector<std::string> Codes(const LintResult& result) {
  std::vector<std::string> codes;
  for (const Diagnostic& d : result.diagnostics) codes.push_back(d.code);
  return codes;
}

bool HasCode(const LintResult& result, std::string_view code) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

const Diagnostic& FirstWithCode(const LintResult& result,
                                std::string_view code) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) return d;
  }
  ADD_FAILURE() << "no diagnostic with code " << code << " in:\n"
                << result.ToString();
  static const Diagnostic kEmpty;
  return kEmpty;
}

// --------------------------------------------------------------------------
// Clean programs produce zero diagnostics.
// --------------------------------------------------------------------------

TEST(LintTest, CleanProgramHasNoDiagnostics) {
  LintResult result = LintSource(R"(
    even(0).
    even(T+2) :- even(T).
  )");
  EXPECT_TRUE(result.diagnostics.empty()) << result.ToString();
  EXPECT_FALSE(result.has_errors());
  EXPECT_EQ(result.ToString(), "");
}

TEST(LintTest, CleanSkiScheduleHasNoDiagnostics) {
  LintResult result = LintSource(R"(
    plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
    plane(T+2, X) :- plane(T, X), resort(X), winter(T).
    offseason(T+10) :- offseason(T).
    winter(T+10) :- winter(T).
    resort(hunter).
    plane(0, hunter).
    winter(0..4).
    offseason(5..9).
  )");
  EXPECT_TRUE(result.diagnostics.empty()) << result.ToString();
}

// --------------------------------------------------------------------------
// L001 safety / L002 sorts: only constructible programmatically — the
// parser rejects such programs at Finish() time.
// --------------------------------------------------------------------------

// p(X) :- q(Y).  — head variable X unbound.
ParsedUnit BuildUnsafeUnit() {
  auto vocab = std::make_shared<Vocabulary>();
  PredicateId p = vocab->DeclarePredicate("p", 1).value();
  PredicateId q = vocab->DeclarePredicate("q", 1).value();
  Rule rule;
  rule.var_names = {"X", "Y"};
  rule.temporal_vars = {false, false};
  rule.head.pred = p;
  rule.head.args = {NtTerm::Variable(0)};
  Atom body;
  body.pred = q;
  body.args = {NtTerm::Variable(1)};
  rule.body.push_back(body);
  ParsedUnit unit{Program(vocab), Database(vocab)};
  unit.program.AddRule(std::move(rule));
  GroundAtom fact;
  fact.pred = q;
  fact.args = {vocab->InternConstant("a")};
  unit.database.AddFact(fact);
  return unit;
}

TEST(LintTest, L001NamesTheUnboundVariable) {
  ParsedUnit unit = BuildUnsafeUnit();
  LintResult result = LintProgram(unit.program, unit.database);
  const Diagnostic& diag = FirstWithCode(result, lint_code::kUnsafeVariable);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_TRUE(result.has_errors());
  EXPECT_NE(diag.message.find("'X'"), std::string::npos) << diag.message;
  EXPECT_NE(diag.message.find("range-restricted"), std::string::npos);
  EXPECT_EQ(diag.rule_index, 0);
  // Synthesised rules have no source position.
  EXPECT_EQ(diag.span.line, 0);
  EXPECT_EQ(diag.span.file, "<input>");
}

// p(T, X) :- p(T, X) with a temporal variable leaking into a data position.
ParsedUnit BuildSortMisuseUnit() {
  auto vocab = std::make_shared<Vocabulary>();
  PredicateId p = vocab->DeclarePredicate("p", 2).value();
  vocab->SetTemporal(p);
  Rule rule;
  rule.var_names = {"T"};
  rule.temporal_vars = {true};
  rule.head.pred = p;
  rule.head.time = TemporalTerm::Var(0);
  rule.head.args = {NtTerm::Variable(0)};  // temporal var as data arg
  Atom body = rule.head;
  rule.body.push_back(body);
  ParsedUnit unit{Program(vocab), Database(vocab)};
  unit.program.AddRule(std::move(rule));
  return unit;
}

TEST(LintTest, L002FlagsTemporalVariableInDataPosition) {
  ParsedUnit unit = BuildSortMisuseUnit();
  LintResult result = LintProgram(unit.program, unit.database);
  const Diagnostic& diag = FirstWithCode(result, lint_code::kSortMisuse);
  EXPECT_EQ(diag.severity, Severity::kError);
  EXPECT_NE(diag.message.find("'T'"), std::string::npos) << diag.message;
  EXPECT_NE(diag.message.find("non-temporal argument position"),
            std::string::npos);
}

TEST(LintTest, L002FlagsArityMismatchInDatabase) {
  auto vocab = std::make_shared<Vocabulary>();
  PredicateId p = vocab->DeclarePredicate("p", 1).value();
  ParsedUnit unit{Program(vocab), Database(vocab)};
  GroundAtom fact;
  fact.pred = p;
  fact.args = {vocab->InternConstant("a"), vocab->InternConstant("b")};
  unit.database.AddFact(fact);
  LintResult result = LintProgram(unit.program, unit.database);
  const Diagnostic& diag = FirstWithCode(result, lint_code::kSortMisuse);
  EXPECT_NE(diag.message.find("database tuple"), std::string::npos)
      << diag.message;
}

// --------------------------------------------------------------------------
// L003 singleton variables.
// --------------------------------------------------------------------------

TEST(LintTest, L003FlagsSingletonVariable) {
  LintResult result = LintSource(R"(
    flagged(X) :- watch(X, Y).
    watch(a, b).
  )");
  const Diagnostic& diag =
      FirstWithCode(result, lint_code::kSingletonVariable);
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_NE(diag.message.find("'Y'"), std::string::npos) << diag.message;
  EXPECT_EQ(diag.rule_index, 0);
  EXPECT_GT(diag.span.line, 0);  // parsed rules carry a position
}

TEST(LintTest, L003IgnoresUnderscorePrefixedVariables) {
  LintResult result = LintSource(R"(
    flagged(X) :- watch(X, _Y).
    watch(a, b).
  )");
  EXPECT_FALSE(HasCode(result, lint_code::kSingletonVariable))
      << result.ToString();
}

// --------------------------------------------------------------------------
// L004 duplicate rules (up to variable renaming).
// --------------------------------------------------------------------------

TEST(LintTest, L004FlagsAlphaEquivalentDuplicate) {
  LintResult result = LintSource(R"(
    flagged(A) :- vip(A).
    flagged(B) :- vip(B).
    vip(a).
  )");
  const Diagnostic& diag = FirstWithCode(result, lint_code::kDuplicateRule);
  EXPECT_EQ(diag.severity, Severity::kWarning);
  EXPECT_EQ(diag.rule_index, 1);  // the later rule is the duplicate
  EXPECT_NE(diag.message.find("duplicates rule 0"), std::string::npos)
      << diag.message;
}

TEST(LintTest, L004DistinguishesDifferentConstants) {
  LintResult result = LintSource(R"(
    flagged(A) :- vip(A, x).
    flagged(B) :- vip(B, y).
    vip(a, x). vip(a, y).
  )");
  EXPECT_FALSE(HasCode(result, lint_code::kDuplicateRule))
      << result.ToString();
}

// --------------------------------------------------------------------------
// L005 trivially subsumed rules.
// --------------------------------------------------------------------------

TEST(LintTest, L005FlagsBodySupersetWithSameHead) {
  LintResult result = LintSource(R"(
    flagged(A) :- vip(A).
    flagged(C) :- vip(C), watch(C, C).
    vip(a). watch(a, a).
  )");
  const Diagnostic& diag = FirstWithCode(result, lint_code::kSubsumedRule);
  EXPECT_EQ(diag.rule_index, 1);  // the more constrained rule is redundant
  EXPECT_NE(diag.message.find("subsumed"), std::string::npos);
  EXPECT_FALSE(HasCode(result, lint_code::kDuplicateRule));
}

// --------------------------------------------------------------------------
// L006 dead rules / L007 underivable predicates.
// --------------------------------------------------------------------------

TEST(LintTest, L006AndL007ExplainDeadRuleAndGhostPredicate) {
  LintResult result = LintSource(R"(
    alerted(X) :- flagged(X), ghost(X).
    flagged(a).
  )");
  const Diagnostic& dead = FirstWithCode(result, lint_code::kDeadRule);
  EXPECT_NE(dead.message.find("'ghost'"), std::string::npos) << dead.message;
  EXPECT_NE(dead.message.find("never fire"), std::string::npos);
  // ghost: no facts, no rules; alerted: underivable because its only rule
  // is dead.
  std::size_t underivable = 0;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == lint_code::kUnderivablePredicate) ++underivable;
  }
  EXPECT_EQ(underivable, 2u) << result.ToString();
}

TEST(LintTest, RecursiveRulesWithBaseFactsAreNotDead) {
  LintResult result = LintSource(R"(
    even(0).
    even(T+2) :- even(T).
  )");
  EXPECT_FALSE(HasCode(result, lint_code::kDeadRule));
  EXPECT_FALSE(HasCode(result, lint_code::kUnderivablePredicate));
}

// --------------------------------------------------------------------------
// L008 unreachable from query roots.
// --------------------------------------------------------------------------

TEST(LintTest, L008FlagsRulesIrrelevantToRoots) {
  LintOptions options;
  options.roots = {"reach"};
  LintResult result = LintSource(R"(
    reach(X, Y) :- edge(X, Y).
    reach(X, Y) :- reach(X, Z), edge(Z, Y).
    other(X) :- edge(X, X).
    edge(a, b). edge(a, a).
  )",
                                 options);
  const Diagnostic& diag =
      FirstWithCode(result, lint_code::kUnreachableFromRoots);
  EXPECT_EQ(diag.severity, Severity::kNote);
  EXPECT_NE(diag.message.find("'other'"), std::string::npos) << diag.message;
  EXPECT_NE(diag.message.find("'reach'"), std::string::npos);
}

TEST(LintTest, L008SilentWithoutRoots) {
  LintResult result = LintSource(R"(
    other(X) :- edge(X, X).
    edge(a, a).
  )");
  EXPECT_FALSE(HasCode(result, lint_code::kUnreachableFromRoots));
}

TEST(LintTest, L013NamesEveryUnknownRoot) {
  // Roots that do not resolve to a predicate used to be dropped silently; a
  // typo in --root then meant the whole program was flagged unreachable
  // with no explanation. Each unknown name now gets its own note.
  LintOptions options;
  options.roots = {"reach", "raech", "also_missing"};
  LintResult result = LintSource(R"(
    reach(X, Y) :- edge(X, Y).
    edge(a, b).
  )",
                                 options);
  const Diagnostic& diag = FirstWithCode(result, lint_code::kUnknownRoot);
  EXPECT_EQ(diag.severity, Severity::kNote);
  EXPECT_NE(diag.message.find("'raech'"), std::string::npos) << diag.message;
  int unknown_notes = 0;
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == lint_code::kUnknownRoot) ++unknown_notes;
  }
  EXPECT_EQ(unknown_notes, 2);
  // The resolvable root still drives reachability as before.
  EXPECT_FALSE(HasCode(result, lint_code::kUnreachableFromRoots));
}

TEST(LintTest, L013SilentWhenAllRootsResolve) {
  LintOptions options;
  options.roots = {"reach"};
  LintResult result = LintSource(R"(
    reach(X, Y) :- edge(X, Y).
    edge(a, b).
  )",
                                 options);
  EXPECT_FALSE(HasCode(result, lint_code::kUnknownRoot));
}

// --------------------------------------------------------------------------
// L009/L010: explained classification failures.
// --------------------------------------------------------------------------

TEST(LintTest, L009ExplainsMutualRecursion) {
  LintResult result = LintSource(R"(
    a(0). b(0).
    a(T+1) :- b(T).
    b(T+1) :- a(T).
  )");
  const Diagnostic& diag = FirstWithCode(result, lint_code::kNotSeparable);
  EXPECT_NE(diag.message.find("mutual recursion"), std::string::npos)
      << diag.message;
  EXPECT_NE(diag.message.find("'a'"), std::string::npos);
  EXPECT_NE(diag.message.find("'b'"), std::string::npos);
}

TEST(LintTest, L009ExplainsMixedRecursionWithRuleText) {
  LintResult result = LintSource(R"(
    tok(0, a).
    tok(T+1, Y) :- tok(T, X), edge(X, Y).
    edge(a, b). edge(b, a).
  )");
  const Diagnostic& diag = FirstWithCode(result, lint_code::kNotSeparable);
  EXPECT_NE(diag.message.find("neither time-only nor data-only"),
            std::string::npos)
      << diag.message;
  // The explanation names the offending literal and the differing temporal
  // terms.
  EXPECT_NE(diag.message.find("tok(T, X)"), std::string::npos);
  EXPECT_NE(diag.message.find("T+1"), std::string::npos);
  EXPECT_GT(diag.span.line, 0);
}

TEST(LintTest, L010ExplainsUnreducedTimeOnlyRule) {
  // Time-only recursion (head args == recursive literal args) with a body
  // variable Y missing from the head: reduced form does not hold.
  LintResult result = LintSource(R"(
    p(0, a).
    q(a, b).
    p(T+1, X) :- p(T, X), q(X, Y), q(Y, X).
  )");
  const Diagnostic& diag =
      FirstWithCode(result, lint_code::kUnreducedTimeOnly);
  EXPECT_EQ(diag.severity, Severity::kNote);
  EXPECT_NE(diag.message.find("'Y'"), std::string::npos) << diag.message;
  EXPECT_NE(diag.message.find("missing from the head"), std::string::npos);
}

// --------------------------------------------------------------------------
// L011: progressivity.
// --------------------------------------------------------------------------

TEST(LintTest, L011NotesNonProgressiveProgram) {
  // The backward rule p(T) :- q(T+1) violates progressivity (the head's
  // temporal depth is below the body's), so period detection cannot use
  // the one-pass forward simulator.
  LintResult result = LintSource(R"(
    q(100).
    p(T) :- q(T+1).
  )");
  const Diagnostic& diag = FirstWithCode(result, lint_code::kNotProgressive);
  EXPECT_EQ(diag.severity, Severity::kNote);
  EXPECT_NE(diag.message.find("not progressive"), std::string::npos)
      << diag.message;
}

TEST(LintTest, L011SilentForProgressivePrograms) {
  LintResult result = LintSource(R"(
    even(0).
    even(T+2) :- even(T).
  )");
  EXPECT_FALSE(HasCode(result, lint_code::kNotProgressive));
}

// --------------------------------------------------------------------------
// L012: inflationary decision procedure (opt-in).
// --------------------------------------------------------------------------

TEST(LintTest, L012NamesNonInflationaryPredicate) {
  LintOptions options;
  options.check_inflationary = true;
  // even is not inflationary: even(1) is not derivable from {even(0)}.
  LintResult result = LintSource(R"(
    even(0).
    even(T+2) :- even(T).
  )",
                                 options);
  const Diagnostic& diag = FirstWithCode(result, lint_code::kNotInflationary);
  EXPECT_NE(diag.message.find("'even'"), std::string::npos) << diag.message;
  EXPECT_NE(diag.message.find("Theorem 5.2"), std::string::npos);
  EXPECT_EQ(diag.rule_index, 0);  // first (only) rule deriving even
}

TEST(LintTest, L012SilentForInflationaryProgram) {
  LintOptions options;
  options.check_inflationary = true;
  LintResult result = LintSource(R"(
    alive(0, a).
    alive(T+1, X) :- alive(T, X).
  )",
                                 options);
  EXPECT_FALSE(HasCode(result, lint_code::kNotInflationary))
      << result.ToString();
}

TEST(LintTest, InflationaryPassIsOptIn) {
  LintResult result = LintSource(R"(
    even(0).
    even(T+2) :- even(T).
  )");
  EXPECT_FALSE(HasCode(result, lint_code::kNotInflationary));
}

// --------------------------------------------------------------------------
// Pass registry, disabling, ordering, JSON.
// --------------------------------------------------------------------------

TEST(LintTest, RegistryListsAllPasses) {
  const std::vector<LintPassInfo>& passes = LintPassRegistry();
  std::vector<std::string_view> names;
  for (const LintPassInfo& p : passes) names.push_back(p.name);
  for (const char* expected :
       {"safety", "sorts", "singleton", "duplicate", "subsumed",
        "reachability", "classification", "inflationary"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing pass " << expected;
  }
}

TEST(LintTest, DisabledPassesAreSkipped) {
  LintOptions options;
  options.disabled_passes = {"singleton"};
  LintResult result = LintSource(R"(
    flagged(X) :- watch(X, Y).
    watch(a, b).
  )",
                                 options);
  EXPECT_FALSE(HasCode(result, lint_code::kSingletonVariable));
}

TEST(LintTest, DiagnosticsAreSortedBySourcePosition) {
  LintResult result = LintSource(R"(
    alerted(X) :- flagged(X), ghost(X).
    flagged(X) :- watch(X, Y).
    watch(a, b).
  )");
  EXPECT_GE(result.diagnostics.size(), 2u);
  for (std::size_t i = 1; i < result.diagnostics.size(); ++i) {
    const SourceSpan& a = result.diagnostics[i - 1].span;
    const SourceSpan& b = result.diagnostics[i].span;
    EXPECT_LE(std::make_tuple(a.file, a.line, a.column),
              std::make_tuple(b.file, b.line, b.column));
  }
}

TEST(LintTest, JsonOutputIsWellFormedish) {
  LintResult result = LintSource(R"(
    flagged(X) :- watch(X, Y).
    watch(a, b).
  )");
  std::string json = result.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"diagnostics\":["), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"code\":\"L003\""), std::string::npos);
}

// --------------------------------------------------------------------------
// Engine integration: EngineOptions::lint_level.
// --------------------------------------------------------------------------

TEST(LintTest, EngineLintOffPreservesBehaviour) {
  auto tdd = TemporalDatabase::FromSource(R"(
    flagged(X) :- watch(X, Y).
    watch(a, b).
  )");
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  EXPECT_TRUE(tdd->lint().diagnostics.empty());
  auto answer = tdd->Ask("flagged(a)");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(*answer);
}

TEST(LintTest, EngineLintWarnRetainsDiagnosticsWithoutRejecting) {
  EngineOptions options;
  options.lint_level = EngineOptions::LintLevel::kWarn;
  auto tdd = TemporalDatabase::FromSource(R"(
    flagged(X) :- watch(X, Y).
    watch(a, b).
  )",
                                          options);
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  EXPECT_TRUE(HasCode(tdd->lint(), lint_code::kSingletonVariable));
  auto answer = tdd->Ask("flagged(a)");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(*answer);
}

TEST(LintTest, EngineLintRejectRefusesUnsafeProgram) {
  EngineOptions options;
  options.lint_level = EngineOptions::LintLevel::kReject;
  auto tdd = TemporalDatabase::FromParsedUnit(BuildUnsafeUnit(), options);
  ASSERT_FALSE(tdd.ok());
  EXPECT_NE(tdd.status().message().find("rejected by chronolog_lint"),
            std::string::npos)
      << tdd.status();
  EXPECT_NE(tdd.status().message().find("[L001]"), std::string::npos);
}

TEST(LintTest, EngineLintRejectAcceptsWarningsOnly) {
  EngineOptions options;
  options.lint_level = EngineOptions::LintLevel::kReject;
  auto tdd = TemporalDatabase::FromSource(R"(
    flagged(X) :- watch(X, Y).
    watch(a, b).
  )",
                                          options);
  ASSERT_TRUE(tdd.ok()) << tdd.status();  // warnings never reject
  EXPECT_TRUE(HasCode(tdd->lint(), lint_code::kSingletonVariable));
}

TEST(LintTest, EngineLintOffByDefaultAcceptsUnsafeUnit) {
  auto tdd = TemporalDatabase::FromParsedUnit(BuildUnsafeUnit());
  ASSERT_TRUE(tdd.ok()) << tdd.status();
}

// --------------------------------------------------------------------------
// Diagnostic formatting.
// --------------------------------------------------------------------------

TEST(LintTest, DiagnosticToStringCarriesSpanSeverityAndCode) {
  LintResult result = LintSource(R"(flagged(X) :- watch(X, Y).
watch(a, b).
)");
  const Diagnostic& diag =
      FirstWithCode(result, lint_code::kSingletonVariable);
  std::string text = diag.ToString();
  EXPECT_NE(text.find("<input>:1:1"), std::string::npos) << text;
  EXPECT_NE(text.find("warning:"), std::string::npos);
  EXPECT_NE(text.find("[L003]"), std::string::npos);
}

TEST(LintTest, SummaryLineCountsSeverities) {
  LintResult result = LintSource(R"(
    flagged(A) :- vip(A).
    flagged(B) :- vip(B).
    vip(a).
  )");
  EXPECT_EQ(Codes(result), std::vector<std::string>{"L004"});
  EXPECT_NE(result.ToString().find("0 error(s), 1 warning(s)"),
            std::string::npos)
      << result.ToString();
}

}  // namespace
}  // namespace chronolog
