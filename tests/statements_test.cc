// chronolog_qstats: query-shape normalization, the statement-statistics
// store (including its concurrency contract — this suite runs under the
// ThreadSanitizer CI configuration), and the /statements + /explain
// endpoints scraped over real sockets.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "query/query_shape.h"
#include "serve/http_server.h"
#include "serve/query_endpoints.h"
#include "serve/registry.h"
#include "serve/statements.h"
#include "util/json.h"

namespace chronolog {
namespace {

TEST(StatementShapeTest, StripsConstantsToPlaceholders) {
  EXPECT_EQ(NormalizeQueryShape("tick(3)"), "tick(N)");
  EXPECT_EQ(NormalizeQueryShape("tick(17)"), "tick(N)");
  EXPECT_EQ(NormalizeQueryShape("tok(3, a0)"), "tok(N, ?)");
  // Different constants, one shape — the aggregation key pg_stat_statements
  // style.
  EXPECT_EQ(NormalizeQueryShape("tok(9, zebra)"),
            NormalizeQueryShape("tok(3, a0)"));
}

TEST(StatementShapeTest, KeepsVariablesAndQuantifiers) {
  EXPECT_EQ(NormalizeQueryShape("exists T (tick(T))"),
            "exists T (tick(T))");
  EXPECT_EQ(NormalizeQueryShape("forall T (tick(T))"),
            "forall T (tick(T))");
  // Variables are part of the shape; only constants are stripped.
  EXPECT_EQ(NormalizeQueryShape("tok(T, X)"), "tok(T, X)");
}

TEST(StatementShapeTest, CanonicalizesConnectivesToSymbols) {
  EXPECT_EQ(NormalizeQueryShape("tick(3) and tick(131)"),
            "tick(N), tick(N)");
  // `&` and `and` are the same connective after normalization.
  EXPECT_EQ(NormalizeQueryShape("tick(3) & tick(4)"),
            NormalizeQueryShape("tick(3) and tick(4)"));
  EXPECT_EQ(NormalizeQueryShape("tick(T) or not tick(T+1)"),
            "tick(T) | ~tick(T+N)");
}

TEST(StatementShapeTest, WhitespaceDoesNotChangeTheShape) {
  EXPECT_EQ(NormalizeQueryShape("  tick( 3 )  "),
            NormalizeQueryShape("tick(3)"));
  EXPECT_EQ(NormalizeQueryShape("tick(3)and tick(4)"),
            NormalizeQueryShape("tick(3)   and   tick(4)"));
}

TEST(StatementShapeTest, UnlexableTextFallsBackToTrimmedRawText) {
  // '^' never lexes; the raw (trimmed) text becomes the shape.
  EXPECT_EQ(NormalizeQueryShape("  ^oops^  "), "^oops^");
  // Comment-only text lexes to nothing — also fall back rather than keying
  // the store on an empty string.
  EXPECT_EQ(NormalizeQueryShape("  % just a comment "), "% just a comment");
}

TEST(StatementStatsTest, AccumulatesUnderOneShapeEntry) {
  StatementStats stats;
  StatementStats::Entry* entry = stats.GetOrCreate("tick(N)");
  ASSERT_NE(entry, nullptr);
  // Same shape resolves to the same stable entry.
  EXPECT_EQ(stats.GetOrCreate("tick(N)"), entry);
  entry->Record(/*row_count=*/3, /*was_partial=*/false,
                /*was_truncated=*/true, /*lookups=*/5, /*rewrites=*/7,
                /*parse_nanos=*/100, /*eval_nanos=*/2000);
  entry->Record(1, true, false, 2, 3, 50, 1000);
  EXPECT_EQ(entry->calls.load(), 2u);
  EXPECT_EQ(entry->rows.load(), 4u);
  EXPECT_EQ(entry->partial.load(), 1u);
  EXPECT_EQ(entry->truncated.load(), 1u);
  EXPECT_EQ(entry->oracle_lookups.load(), 7u);
  EXPECT_EQ(entry->rewrite_steps.load(), 10u);
  EXPECT_EQ(entry->parse_ns.load(), 150u);
  EXPECT_EQ(stats.TotalCalls(), 2u);
}

TEST(StatementStatsTest, ToJsonSortsByTotalEvalTimeDescending) {
  StatementStats stats;
  stats.GetOrCreate("cheap(N)")->Record(0, false, false, 1, 1, 10, 100);
  stats.GetOrCreate("costly(N)")->Record(0, false, false, 1, 1, 10, 9000);
  auto json = ParseJson(stats.ToJson());
  ASSERT_TRUE(json.ok()) << json.status();
  const JsonValue* statements = json->Find("statements");
  ASSERT_NE(statements, nullptr);
  ASSERT_EQ(statements->array.size(), 2u);
  EXPECT_EQ(statements->array[0].Find("shape")->string_value, "costly(N)");
  EXPECT_EQ(statements->array[1].Find("shape")->string_value, "cheap(N)");
  EXPECT_EQ(statements->array[0].Find("eval_ns")->Find("sum")->int_value,
            9000);
  EXPECT_EQ(statements->array[0].Find("eval_ns")->Find("p50")->number,
            statements->array[0].Find("eval_ns")->Find("p99")->number);
}

TEST(StatementStatsTest, ResetStartsAFreshGenerationAndKeepsOldPointers) {
  StatementStats stats;
  StatementStats::Entry* old_entry = stats.GetOrCreate("tick(N)");
  old_entry->Record(1, false, false, 1, 1, 10, 100);
  stats.Reset();
  EXPECT_EQ(stats.TotalCalls(), 0u);
  // A straggler holding the pre-reset pointer may still record safely; its
  // update lands in the retired generation and is simply not reported.
  old_entry->Record(1, false, false, 1, 1, 10, 100);
  EXPECT_EQ(stats.TotalCalls(), 0u);
  StatementStats::Entry* fresh = stats.GetOrCreate("tick(N)");
  EXPECT_NE(fresh, old_entry);
  EXPECT_EQ(fresh->calls.load(), 0u);
}

// The store's core concurrency contract, exercised directly: writers on two
// shapes race a Reset-free reader; counts must come out exact and the
// reader's view monotone. Runs under TSan in CI.
TEST(StatementStatsConcurrencyTest, ParallelRecordsAreExactAndMonotone) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  StatementStats stats;
  std::atomic<bool> done{false};

  std::thread reader([&] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const uint64_t now = stats.TotalCalls();
      EXPECT_GE(now, last);  // totals never go backwards
      last = now;
      // The JSON view must stay well-formed mid-churn.
      auto json = ParseJson(stats.ToJson());
      EXPECT_TRUE(json.ok());
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stats, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        const char* shape = (i % 2 == 0) ? "tick(N)" : "exists T (tick(T))";
        stats.GetOrCreate(shape)->Record(1, false, false, 2, 3,
                                         10 + w, 100 + i);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(stats.TotalCalls(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_EQ(stats.GetOrCreate("tick(N)")->calls.load(),
            static_cast<uint64_t>(kWriters) * (kPerWriter / 2));
  EXPECT_EQ(stats.GetOrCreate("exists T (tick(T))")->calls.load(),
            static_cast<uint64_t>(kWriters) * (kPerWriter / 2));
}

// ---------------------------------------------------------------------------
// Endpoint-level tests: real sockets against a served registry.

/// Sends one raw HTTP request and returns the full response; the request
/// asks for `Connection: close` so EOF frames the response.
std::string RawRequest(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\n" +
                              "Connection: close\r\n\r\n");
}

std::string Post(int port, const std::string& path, const std::string& body,
                 const std::string& request_id = "") {
  std::string request = "POST " + path + " HTTP/1.1\r\nHost: t\r\n";
  if (!request_id.empty()) {
    request += "X-Request-Id: " + request_id + "\r\n";
  }
  request += "Connection: close\r\nContent-Length: " +
             std::to_string(body.size()) + "\r\n\r\n" + body;
  return RawRequest(port, request);
}

std::string Body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

/// A client connection held open across requests, framing each response by
/// its Content-Length — the real keep-alive client contract.
class KeepAliveClient {
 public:
  ~KeepAliveClient() { Close(); }

  bool Connect(int port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Close();
      return false;
    }
    return true;
  }

  bool Send(const std::string& data) {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               0);
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::string ReadResponse() {
    std::size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return "";
    }
    std::size_t body_size = 0;
    const std::size_t cl = buffer_.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      body_size = static_cast<std::size_t>(
          std::strtoull(buffer_.c_str() + cl + 16, nullptr, 10));
    }
    const std::size_t total = header_end + 4 + body_size;
    while (buffer_.size() < total) {
      if (!Fill()) return "";
    }
    std::string response = buffer_.substr(0, total);
    buffer_.erase(0, total);
    return response;
  }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

 private:
  bool Fill() {
    char buf[4096];
    ssize_t n;
    do {
      n = ::recv(fd_, buf, sizeof(buf), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

class StatementEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_
                    .AddFromSource("default", R"(
                      tick(0).
                      tick(T+128) :- tick(T).
                    )")
                    .ok());
  }
  int StartServer(QueryServiceOptions options = {}, int workers = 2) {
    HttpServerOptions server_options;
    server_options.num_workers = workers;
    server_ = std::make_unique<HttpServer>(server_options);
    RegisterQueryEndpoints(*server_, &registry_, options);
    EXPECT_TRUE(server_->Start().ok());
    return server_->port();
  }
  DatabaseRegistry registry_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(StatementEndpointTest, QueriesAccumulateByShapeAndResetClears) {
  const int port = StartServer();
  // Three queries, two shapes: the constants differ but normalize together.
  EXPECT_NE(Post(port, "/query", R"j({"query":"tick(0)"})j")
                .find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_NE(Post(port, "/query", R"j({"query":"tick(128)"})j")
                .find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_NE(Post(port, "/query", R"j({"query":"exists T (tick(T))"})j")
                .find("HTTP/1.1 200"),
            std::string::npos);

  auto json = ParseJson(Body(Get(port, "/statements")));
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_EQ(json->Find("database")->string_value, "default");
  const JsonValue* statements = json->Find("statements");
  ASSERT_NE(statements, nullptr);
  ASSERT_EQ(statements->array.size(), 2u);
  uint64_t ticks = 0, exists = 0;
  for (const JsonValue& s : statements->array) {
    const std::string& shape = s.Find("shape")->string_value;
    const auto calls = static_cast<uint64_t>(s.Find("calls")->int_value);
    if (shape == "tick(N)") ticks = calls;
    if (shape == "exists T (tick(T))") exists = calls;
    EXPECT_GT(s.Find("eval_ns")->Find("count")->int_value, 0);
  }
  EXPECT_EQ(ticks, 2u);
  EXPECT_EQ(exists, 1u);

  // reset=1 renders the window it wipes, then starts fresh.
  auto wiped = ParseJson(Body(Get(port, "/statements?reset=1")));
  ASSERT_TRUE(wiped.ok());
  EXPECT_EQ(wiped->Find("statements")->array.size(), 2u);
  auto after = ParseJson(Body(Get(port, "/statements")));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->Find("statements")->array.size(), 0u);
}

TEST_F(StatementEndpointTest, UnknownDatabaseIs404) {
  const int port = StartServer();
  EXPECT_NE(Get(port, "/statements?db=missing").find("HTTP/1.1 404"),
            std::string::npos);
}

TEST_F(StatementEndpointTest, TrackingOffKeepsTheStoreEmpty) {
  QueryServiceOptions options;
  options.track_statements = false;
  const int port = StartServer(options);
  EXPECT_NE(Post(port, "/query", R"j({"query":"tick(0)"})j")
                .find("HTTP/1.1 200"),
            std::string::npos);
  auto json = ParseJson(Body(Get(port, "/statements")));
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(json->Find("statements")->array.size(), 0u);
}

TEST_F(StatementEndpointTest, RequestIdRoundTripsIntoResponses) {
  const int port = StartServer();
  auto json = ParseJson(
      Body(Post(port, "/query", R"j({"query":"tick(0)"})j", "gate-77")));
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_EQ(json->Find("request_id")->string_value, "gate-77");
  // Without a client id the server generates one.
  auto generated =
      ParseJson(Body(Post(port, "/query", R"j({"query":"tick(0)"})j")));
  ASSERT_TRUE(generated.ok());
  EXPECT_EQ(generated->Find("request_id")->string_value.rfind("q-", 0), 0u);
  // Error responses carry the id too, so failures correlate.
  auto failed = ParseJson(Body(Post(
      port, "/query", R"j({"query":"no_such(T)"})j", "gate-78")));
  ASSERT_TRUE(failed.ok());
  EXPECT_EQ(failed->Find("request_id")->string_value, "gate-78");
}

TEST_F(StatementEndpointTest, ExplainReportsPlanWithoutExecuting) {
  const int port = StartServer();
  const std::string response =
      Post(port, "/explain", R"j({"query":"tick(128)"})j", "exp-1");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  auto json = ParseJson(Body(response));
  ASSERT_TRUE(json.ok()) << json.status();
  EXPECT_EQ(json->Find("request_id")->string_value, "exp-1");
  EXPECT_EQ(json->Find("shape")->string_value, "tick(N)");
  EXPECT_FALSE(json->Find("executed")->bool_value);
  // The rewrite rule matches what /query reports for the same database.
  auto answered =
      ParseJson(Body(Post(port, "/query", R"j({"query":"tick(128)"})j")));
  ASSERT_TRUE(answered.ok());
  EXPECT_EQ(json->Find("rewrite")->Find("lhs")->int_value,
            answered->Find("rewrite")->Find("lhs")->int_value);
  EXPECT_EQ(json->Find("rewrite")->Find("p")->int_value,
            answered->Find("rewrite")->Find("p")->int_value);
  EXPECT_EQ(json->Find("rewrite")->Find("rhs")->int_value,
            json->Find("rewrite")->Find("lhs")->int_value -
                json->Find("rewrite")->Find("p")->int_value);
  // One recursive rule, and its cached plan from the spec build.
  const JsonValue* plans = json->Find("plans");
  ASSERT_NE(plans, nullptr);
  ASSERT_EQ(plans->array.size(), 1u);
  EXPECT_NE(plans->array[0].Find("rule")->string_value.find("tick"),
            std::string::npos);
  EXPECT_GE(plans->array[0].Find("slots")->array.size(), 1u);
  // EXPLAIN itself must not count as a statement call.
  auto stats = ParseJson(Body(Get(port, "/statements")));
  ASSERT_TRUE(stats.ok());
  uint64_t tick_calls = 0;
  for (const JsonValue& s : stats->Find("statements")->array) {
    if (s.Find("shape")->string_value == "tick(N)") {
      tick_calls = static_cast<uint64_t>(s.Find("calls")->int_value);
    }
  }
  EXPECT_EQ(tick_calls, 1u);  // only the /query call, not the /explain
}

TEST_F(StatementEndpointTest, ExplainMalformedRequestsAre400) {
  const int port = StartServer();
  EXPECT_NE(Post(port, "/explain", "{oops").find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(Post(port, "/explain", R"j({"no_query":1})j")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(Post(port, "/explain", R"j({"query":"no_such(T)"})j")
                .find("HTTP/1.1 400"),
            std::string::npos);
  EXPECT_NE(
      Post(port, "/explain", R"j({"query":"tick(0)","database":"nope"})j")
          .find("HTTP/1.1 404"),
      std::string::npos);
}

// The serving-path concurrency gate: keep-alive clients hammer two shapes
// through 4 HTTP workers while a scraper polls /statements; final counts
// must be exact. Runs under TSan in CI.
TEST_F(StatementEndpointTest, KeepAliveClientsYieldExactCountsUnderLoad) {
  QueryServiceOptions options;
  options.max_in_flight = 0;  // no admission control: every request counts
  const int port = StartServer(options, /*workers=*/4);
  constexpr int kClients = 4;
  constexpr int kPerClient = 24;

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto json = ParseJson(Body(Get(port, "/statements")));
      ASSERT_TRUE(json.ok());
      uint64_t total = 0;
      for (const JsonValue& s : json->Find("statements")->array) {
        total += static_cast<uint64_t>(s.Find("calls")->int_value);
      }
      EXPECT_GE(total, last);  // calls only ever accumulate
      last = total;
    }
  });

  std::vector<std::thread> clients;
  std::atomic<int> ok_responses{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      KeepAliveClient client;
      ASSERT_TRUE(client.Connect(port));
      for (int i = 0; i < kPerClient; ++i) {
        // Alternate two shapes; vary the constant so normalization is what
        // merges them, not textual identity.
        const std::string body =
            (i % 2 == 0)
                ? "{\"query\":\"tick(" + std::to_string((i % 4) * 128) +
                      ")\"}"
                : std::string("{\"query\":\"exists T (tick(T))\"}");
        const std::string request =
            "POST /query HTTP/1.1\r\nHost: t\r\nX-Request-Id: c" +
            std::to_string(c) + "-" + std::to_string(i) +
            "\r\nContent-Length: " + std::to_string(body.size()) +
            "\r\n\r\n" + body;
        ASSERT_TRUE(client.Send(request));
        const std::string response = client.ReadResponse();
        ASSERT_NE(response.find("HTTP/1.1 200"), std::string::npos)
            << response;
        ok_responses.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();
  ASSERT_EQ(ok_responses.load(), kClients * kPerClient);

  auto json = ParseJson(Body(Get(port, "/statements")));
  ASSERT_TRUE(json.ok());
  uint64_t ticks = 0, exists = 0;
  for (const JsonValue& s : json->Find("statements")->array) {
    const std::string& shape = s.Find("shape")->string_value;
    if (shape == "tick(N)") {
      ticks = static_cast<uint64_t>(s.Find("calls")->int_value);
    } else if (shape == "exists T (tick(T))") {
      exists = static_cast<uint64_t>(s.Find("calls")->int_value);
    }
  }
  EXPECT_EQ(ticks, static_cast<uint64_t>(kClients) * (kPerClient / 2));
  EXPECT_EQ(exists, static_cast<uint64_t>(kClients) * (kPerClient / 2));
}

}  // namespace
}  // namespace chronolog
