#include <gtest/gtest.h>

#include <numeric>

#include "ast/parser.h"
#include "eval/fixpoint.h"
#include "eval/forward.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

// --------------------------------------------------------------------------
// Progressivity
// --------------------------------------------------------------------------

TEST(ProgressivityTest, PaperExamplesAreProgressive) {
  EXPECT_TRUE(CheckProgressive(
                  MustParse(workload::EvenSource()).program)
                  .progressive);
  EXPECT_TRUE(CheckProgressive(MustParse(workload::SkiScheduleSource(
                                             2, 12, 4, 1))
                                   .program)
                  .progressive);
  EXPECT_TRUE(CheckProgressive(MustParse(workload::PathProgramSource() +
                                         workload::CycleGraphFactsSource(3))
                                   .program)
                  .progressive);
  EXPECT_TRUE(CheckProgressive(
                  MustParse(workload::BinaryCounterSource(3)).program)
                  .progressive);
}

TEST(ProgressivityTest, BackwardRuleIsNotProgressive) {
  ParsedUnit unit = MustParse("p(T) :- p(T+1).\np(0).");
  ProgressivityReport report = CheckProgressive(unit.program);
  EXPECT_FALSE(report.progressive);
  EXPECT_NE(report.reason.find("future"), std::string::npos);
}

TEST(ProgressivityTest, TemporalToNonTemporalFeedbackIsNotProgressive) {
  ParsedUnit unit = MustParse("ever(X) :- p(T, X).\np(0, a).");
  ProgressivityReport report = CheckProgressive(unit.program);
  EXPECT_FALSE(report.progressive);
}

TEST(ProgressivityTest, GroundTemporalTermIsNotProgressive) {
  ParsedUnit unit = MustParse("q(T) :- p(T), p(3).\np(0). p(3). q(0).");
  EXPECT_FALSE(CheckProgressive(unit.program).progressive);
}

TEST(ProgressivityTest, TwoTemporalVariablesAreNotProgressive) {
  ParsedUnit unit = MustParse("r(0). s(0). p(0).\np(T) :- r(T), s(S).");
  EXPECT_FALSE(CheckProgressive(unit.program).progressive);
}

// --------------------------------------------------------------------------
// Forward simulation: exact periods of known workloads
// --------------------------------------------------------------------------

TEST(ForwardTest, EvenHasPeriodTwo) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto result = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->period.p, 2);
  EXPECT_EQ(result->period.b, 0);
  EXPECT_EQ(result->c, 0);
}

TEST(ForwardTest, DyingPredicateHasPeriodOne) {
  // No recursion: everything stops after the database horizon.
  ParsedUnit unit = MustParse("q(T+1) :- p(T).\np(0). p(2). q(0).");
  auto result = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->period.p, 1);
  // All states past c+1 are empty.
  EXPECT_TRUE(State::FromInterpretation(result->model, result->horizon)
                  .empty());
}

TEST(ForwardTest, TokenRingPeriodIsLcm) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({3, 4, 5}));
  auto result = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->period.p, 60);  // lcm(3, 4, 5)
  EXPECT_EQ(result->period.b, 0);
}

TEST(ForwardTest, SingleRingPeriodIsLength) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({7}));
  auto result = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->period.p, 7);
}

TEST(ForwardTest, BinaryCounterPeriodIsPowerOfTwo) {
  for (int bits = 1; bits <= 5; ++bits) {
    ParsedUnit unit = MustParse(workload::BinaryCounterSource(bits));
    auto result = ForwardSimulate(unit.program, unit.database);
    ASSERT_TRUE(result.ok()) << "bits=" << bits << ": " << result.status();
    EXPECT_EQ(result->period.p, int64_t{1} << bits) << "bits=" << bits;
  }
}

TEST(ForwardTest, DelayChainPeriodIsLcmOfDelays) {
  ParsedUnit unit = MustParse(workload::DelayChainSource({4, 6}));
  auto result = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->period.p, 12);  // lcm(4, 6)
}

TEST(ForwardTest, InflationaryPathHasPeriodOne) {
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::CycleGraphFactsSource(5));
  auto result = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->period.p, 1);
  // The path relation saturates after ~diameter steps: b is small but
  // positive.
  EXPECT_GT(result->period.b, 0);
  EXPECT_LE(result->period.b, 6);
}

TEST(ForwardTest, SkiScheduleHasYearPeriod) {
  ParsedUnit unit =
      MustParse(workload::SkiScheduleSource(/*resorts=*/2, /*year_len=*/12,
                                            /*winter_len=*/4, /*holidays=*/1));
  auto result = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(result.ok()) << result.status();
  // Seasons repeat yearly; the plane schedule locks onto some divisor
  // multiple — the minimal period must divide the year length... it must at
  // least be a multiple of 1 and divide lcm(12, steps); assert the sharp
  // property: states repeat with the detected period.
  EXPECT_GT(result->period.p, 0);
  EXPECT_EQ(result->period.p % 1, 0);
  std::vector<State> states = ExtractStates(result->model, 0, result->horizon);
  int64_t start = result->period.b + result->c;
  for (int64_t t = start;
       t + result->period.p < static_cast<int64_t>(states.size()); ++t) {
    EXPECT_EQ(states[t], states[t + result->period.p]) << "t=" << t;
  }
  // And 12 | some small multiple: seasons alone have period 12.
  EXPECT_EQ(result->period.p % 12, 0);
}

// --------------------------------------------------------------------------
// Detected periods are *minimal* and *valid*
// --------------------------------------------------------------------------

TEST(ForwardTest, DetectedPeriodIsValidOnLongerWindow) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({2, 3}));
  auto result = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(result.ok());
  // Re-materialise a much longer segment with the generic fixpoint engine
  // and check periodicity directly.
  FixpointOptions options;
  options.max_time = 40;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  int64_t start = result->period.b + result->c;
  for (int64_t t = start; t + result->period.p <= 40 - result->period.p;
       ++t) {
    EXPECT_EQ(State::FromInterpretation(*model, t),
              State::FromInterpretation(*model, t + result->period.p))
        << "t=" << t;
  }
}

TEST(ForwardTest, MinimalityNoSmallerPeriodWorks) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({6}));
  auto result = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->period.p, 6);
  std::vector<State> states = ExtractStates(result->model, 0, result->horizon);
  int64_t start = result->period.b + result->c;
  for (int64_t p = 1; p < 6; ++p) {
    bool ok_everywhere = true;
    for (int64_t t = start;
         t + p < static_cast<int64_t>(states.size()); ++t) {
      if (!(states[t] == states[t + p])) {
        ok_everywhere = false;
        break;
      }
    }
    EXPECT_FALSE(ok_everywhere) << "period " << p << " should not validate";
  }
}

TEST(ForwardTest, ForwardModelMatchesFixpointOnSegment) {
  std::mt19937 rng(1234);
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::RandomGraphFactsSource(6, 9, &rng));
  auto result = ForwardSimulate(unit.program, unit.database);
  ASSERT_TRUE(result.ok());
  FixpointOptions options;
  options.max_time = result->horizon;
  auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(result->model.SegmentEquals(*model, result->horizon));
}

TEST(ForwardTest, NonProgressiveProgramIsRejected) {
  ParsedUnit unit = MustParse("p(T) :- p(T+1).\np(0).");
  auto result = ForwardSimulate(unit.program, unit.database);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ForwardTest, StepBudgetIsEnforced) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({97, 89}));
  ForwardOptions options;
  options.max_steps = 100;  // far below lcm(97, 89) = 8633
  auto result = ForwardSimulate(unit.program, unit.database, options);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(ForwardTest, DatabaseHorizonShiftsB) {
  // Same program, facts injected later: b stays relative to c.
  ParsedUnit unit1 = MustParse("even(0). even(T+2) :- even(T).");
  ParsedUnit unit2 = MustParse("even(10). even(T+2) :- even(T).");
  auto r1 = ForwardSimulate(unit1.program, unit1.database);
  auto r2 = ForwardSimulate(unit2.program, unit2.database);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->period.p, 2);
  EXPECT_EQ(r2->period.p, 2);
  EXPECT_EQ(r2->c, 10);
}

}  // namespace
}  // namespace chronolog
