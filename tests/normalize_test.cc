#include <gtest/gtest.h>

#include "analysis/depgraph.h"
#include "analysis/normalize.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "eval/fixpoint.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

/// Asserts that `transformed` has the same least model as `original` when
/// restricted to the original vocabulary, on the segment `[0, compare_to]`.
/// `eval_to` gives the transformed program slack for auxiliary look-ahead
/// predicates near the truncation boundary.
void ExpectEquivalent(const Program& original, const Program& transformed,
                      const Database& db, int64_t compare_to,
                      int64_t eval_to) {
  FixpointOptions orig_options;
  orig_options.max_time = compare_to;
  auto original_model = SemiNaiveFixpoint(original, db, orig_options);
  ASSERT_TRUE(original_model.ok()) << original_model.status();

  FixpointOptions trans_options;
  trans_options.max_time = eval_to;
  auto transformed_model = SemiNaiveFixpoint(transformed, db, trans_options);
  ASSERT_TRUE(transformed_model.ok()) << transformed_model.status();

  // Compare per original predicate (auxiliary $-predicates are ignored).
  const Vocabulary& vocab = original.vocab();
  bool same = true;
  original_model->ForEach(
      [&](PredicateId pred, int64_t t, const Tuple& args) {
        if (!transformed_model->Contains(pred, t, args)) {
          same = false;
          ADD_FAILURE() << "missing in transformed: "
                        << GroundAtomToString(GroundAtom(pred, t, args),
                                              vocab);
        }
      });
  transformed_model->ForEach(
      [&](PredicateId pred, int64_t t, const Tuple& args) {
        if (vocab.predicate(pred).name[0] == '$') return;
        if (t > compare_to) return;
        if (!original_model->Contains(pred, t, args)) {
          same = false;
          ADD_FAILURE() << "extra in transformed: "
                        << GroundAtomToString(GroundAtom(pred, t, args),
                                              vocab);
        }
      });
  EXPECT_TRUE(same);
}

// --------------------------------------------------------------------------
// SemiNormalize
// --------------------------------------------------------------------------

TEST(SemiNormalizeTest, AlreadySemiNormalIsUntouched) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  auto semi = SemiNormalize(unit.program);
  ASSERT_TRUE(semi.ok());
  EXPECT_EQ(ProgramToString(*semi), ProgramToString(unit.program));
}

TEST(SemiNormalizeTest, FactorsOutSecondTemporalVariable) {
  // "q was ever true (at depth >= 1) for X" is existential in S.
  ParsedUnit unit = MustParse(R"(
    p(T+1, X) :- p(T, X), q(S+1, X).
    p(0, a). q(3, a). q(0, b). p(0, b).
  )");
  ASSERT_FALSE(unit.program.IsSemiNormal());
  auto semi = SemiNormalize(unit.program);
  ASSERT_TRUE(semi.ok()) << semi.status();
  EXPECT_TRUE(semi->IsSemiNormal());
  // One auxiliary definition rule was added.
  EXPECT_EQ(semi->rules().size(), 2u);
  ExpectEquivalent(unit.program, *semi, unit.database, /*compare_to=*/8,
                   /*eval_to=*/8);
}

TEST(SemiNormalizeTest, PreservesModelWithMultipleClusters) {
  ParsedUnit unit = MustParse(R"(
    r(T, X) :- a(T, X), b(S, X), c(U, X).
    a(0, k). a(1, k). b(2, k). c(5, k).
    r(0, z).
  )");
  ASSERT_FALSE(unit.program.IsSemiNormal());
  auto semi = SemiNormalize(unit.program);
  ASSERT_TRUE(semi.ok()) << semi.status();
  EXPECT_TRUE(semi->IsSemiNormal());
  ExpectEquivalent(unit.program, *semi, unit.database, 8, 8);
}

TEST(SemiNormalizeTest, KeepsHeadTemporalVariable) {
  ParsedUnit unit = MustParse(R"(
    p(T+1) :- p(T), q(S).
    p(0). q(4).
  )");
  auto semi = SemiNormalize(unit.program);
  ASSERT_TRUE(semi.ok());
  EXPECT_TRUE(semi->IsSemiNormal());
  // The rewritten recursive rule still has its original head.
  bool found = false;
  for (const Rule& rule : semi->rules()) {
    if (semi->vocab().predicate(rule.head.pred).name == "p" &&
        rule.head.time->offset == 1) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  ExpectEquivalent(unit.program, *semi, unit.database, 10, 10);
}

// --------------------------------------------------------------------------
// Normalize
// --------------------------------------------------------------------------

TEST(NormalizeTest, EvenBecomesNormal) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  ASSERT_FALSE(unit.program.IsNormal());
  auto normal = Normalize(unit.program);
  ASSERT_TRUE(normal.ok()) << normal.status();
  EXPECT_TRUE(normal->IsNormal());
  ExpectEquivalent(unit.program, *normal, unit.database, /*compare_to=*/12,
                   /*eval_to=*/16);
}

TEST(NormalizeTest, DeepHeadIsStaged) {
  ParsedUnit unit = MustParse("p(T+4, X) :- p(T, X).\np(0, a).");
  auto normal = Normalize(unit.program);
  ASSERT_TRUE(normal.ok()) << normal.status();
  EXPECT_TRUE(normal->IsNormal());
  // Chain predicates $nf...: 4 stages -> 4 extra rules.
  EXPECT_EQ(normal->rules().size(), 5u);
  ExpectEquivalent(unit.program, *normal, unit.database, 16, 24);
}

TEST(NormalizeTest, DeepBodyUsesForwardShifts) {
  ParsedUnit unit = MustParse(R"(
    alarm(T+1) :- tick(T), tick(T+3).
    tick(0). tick(3). tick(6). alarm(0).
  )");
  auto normal = Normalize(unit.program);
  ASSERT_TRUE(normal.ok()) << normal.status();
  EXPECT_TRUE(normal->IsNormal());
  // Forward shifts look ahead, so evaluate with slack before comparing.
  ExpectEquivalent(unit.program, *normal, unit.database, /*compare_to=*/8,
                   /*eval_to=*/14);
}

TEST(NormalizeTest, SkiScheduleNormalizes) {
  ParsedUnit unit = MustParse(workload::SkiScheduleSource(1, 12, 4, 1));
  auto normal = Normalize(unit.program);
  ASSERT_TRUE(normal.ok()) << normal.status();
  EXPECT_TRUE(normal->IsNormal());
  ExpectEquivalent(unit.program, *normal, unit.database, /*compare_to=*/30,
                   /*eval_to=*/60);
}

TEST(NormalizeTest, NormalizationCanIntroduceMutualRecursion) {
  // The paper remarks (Section 6) that normalisation may break
  // multi-separability by introducing mutual recursion.
  ParsedUnit unit = MustParse("p(T+2) :- p(T).\np(0).");
  auto normal = Normalize(unit.program);
  ASSERT_TRUE(normal.ok());
  DependencyGraph graph(*normal);
  EXPECT_TRUE(graph.HasMutualRecursion());
}

TEST(NormalizeTest, NormalInputIsUntouched) {
  ParsedUnit unit = MustParse("p(T+1, X) :- p(T, X).\np(0, a).");
  auto normal = Normalize(unit.program);
  ASSERT_TRUE(normal.ok());
  EXPECT_EQ(ProgramToString(*normal), ProgramToString(unit.program));
}

TEST(NormalizeTest, CombinedSemiNormalizeAndNormalize) {
  // Two temporal variables *and* deep offsets.
  ParsedUnit unit = MustParse(R"(
    p(T+3, X) :- p(T, X), q(S+2, X).
    p(0, a). q(2, a). q(7, b). p(1, b).
  )");
  auto normal = Normalize(unit.program);
  ASSERT_TRUE(normal.ok()) << normal.status();
  EXPECT_TRUE(normal->IsNormal());
  ExpectEquivalent(unit.program, *normal, unit.database, 12, 20);
}

}  // namespace
}  // namespace chronolog
