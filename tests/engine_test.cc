#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

TemporalDatabase MustEngine(std::string_view src) {
  auto tdd = TemporalDatabase::FromSource(src);
  EXPECT_TRUE(tdd.ok()) << tdd.status();
  return std::move(tdd).value();
}

TEST(EngineTest, ParseErrorsPropagate) {
  auto tdd = TemporalDatabase::FromSource("p(X).");
  EXPECT_EQ(tdd.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineTest, EvenEndToEnd) {
  TemporalDatabase tdd = MustEngine(workload::EvenSource());
  EXPECT_TRUE(*tdd.Ask("even(0)"));
  EXPECT_FALSE(*tdd.Ask("even(7)"));
  EXPECT_TRUE(*tdd.Ask("even(100000000)"));
  auto spec = tdd.specification();
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ((*spec)->period().p, 2);
}

TEST(EngineTest, SkiScheduleFromThePaper) {
  // The paper's motivating scenario: "to verify whether a plane leaves to
  // Hunter on a given day t0, check whether plane(t0, hunter) is implied".
  TemporalDatabase tdd = MustEngine(workload::SkiScheduleSource(
      /*resorts=*/2, /*year_len=*/12, /*winter_len=*/4, /*holidays=*/1));
  // Day 0 is a holiday: planes everywhere, and daily flights follow.
  EXPECT_TRUE(*tdd.Ask("plane(0, resort0)"));
  EXPECT_TRUE(*tdd.Ask("plane(1, resort0)"));
  // Classification matches the paper's Section 2 remarks.
  EXPECT_TRUE(tdd.classification().multi_separable);
  EXPECT_FALSE(tdd.classification().separable);
  auto inflat = tdd.inflationary();
  ASSERT_TRUE(inflat.ok());
  EXPECT_FALSE(inflat->inflationary);
  // The same infinite query through the FO interface.
  auto answer = tdd.Query("exists T (plane(T, resort1))");
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(answer->boolean);
}

TEST(EngineTest, PathExampleQueries) {
  TemporalDatabase tdd = MustEngine(workload::PathProgramSource() +
                                    workload::CycleGraphFactsSource(4));
  EXPECT_TRUE(*tdd.Ask("path(3, n0, n3)"));
  EXPECT_FALSE(*tdd.Ask("path(2, n0, n3)"));
  EXPECT_TRUE(*tdd.Ask("path(1000000, n3, n0)"));
  auto inflat = tdd.inflationary();
  ASSERT_TRUE(inflat.ok());
  EXPECT_TRUE(inflat->inflationary);
}

TEST(EngineTest, AskBtAgreesWithSpecAsk) {
  TemporalDatabase tdd = MustEngine(workload::TokenRingSource({2, 3}));
  for (int64_t t : {0, 1, 5, 6, 17, 100}) {
    std::string q = "tok(" + std::to_string(t) + ", r0_0)";
    auto via_spec = tdd.Ask(q);
    auto via_bt = tdd.AskBt(q);
    ASSERT_TRUE(via_spec.ok()) << via_spec.status();
    ASSERT_TRUE(via_bt.ok()) << via_bt.status();
    EXPECT_EQ(*via_spec, *via_bt) << q;
  }
}

TEST(EngineTest, AskBtWithExplicitRange) {
  TemporalDatabase tdd = MustEngine(workload::EvenSource());
  auto answer = tdd.AskBt("even(10)", /*range=*/2);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(*answer);
}

TEST(EngineTest, QueryLimitsFlowThroughTheFacade) {
  TemporalDatabase tdd = MustEngine(R"(
    tick(0).
    tick(T+128) :- tick(T).
  )");
  QueryLimits limits;
  limits.max_rows = 3;
  auto answer = tdd.Query("tick(T) | ~tick(T)", limits);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_TRUE(answer->truncated);
  EXPECT_EQ(answer->rows.size(), 3u);
  // Default limits stay unlimited.
  auto full = tdd.Query("tick(T) | ~tick(T)");
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->truncated);
  EXPECT_GT(full->rows.size(), 3u);
}

TEST(EngineTest, QueryOnUnknownPredicateFails) {
  TemporalDatabase tdd = MustEngine(workload::EvenSource());
  EXPECT_EQ(tdd.Ask("odd(1)").status().code(), StatusCode::kNotFound);
}

TEST(EngineTest, UnknownConstantIsSimplyFalse) {
  TemporalDatabase tdd = MustEngine(workload::SkiScheduleSource(1, 12, 4, 1));
  auto answer = tdd.Ask("plane(0, atlantis)");
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_FALSE(*answer);
}

TEST(EngineTest, DescribeSummarises) {
  TemporalDatabase tdd = MustEngine(workload::EvenSource());
  std::string text = tdd.Describe();
  EXPECT_NE(text.find("period:           (b=0, p=2)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("[exact]"), std::string::npos);
  EXPECT_NE(text.find("not inflationary"), std::string::npos);
}

TEST(EngineTest, SpecificationBudgetErrorSurfaces) {
  EngineOptions options;
  options.period.max_horizon = 64;
  auto tdd = TemporalDatabase::FromSource(
      workload::TokenRingSource({31, 37}), options);
  ASSERT_TRUE(tdd.ok());
  EXPECT_EQ(tdd->Ask("tok(5, r0_0)").status().code(),
            StatusCode::kResourceExhausted);
}

TEST(EngineTest, FromParsedUnitWorks) {
  auto unit = Parser::Parse(workload::EvenSource());
  ASSERT_TRUE(unit.ok());
  auto tdd = TemporalDatabase::FromParsedUnit(std::move(unit).value());
  ASSERT_TRUE(tdd.ok());
  EXPECT_TRUE(*tdd->Ask("even(42)"));
}

TEST(EngineTest, BinaryCounterEngine) {
  TemporalDatabase tdd = MustEngine(workload::BinaryCounterSource(3));
  auto spec = tdd.specification();
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ((*spec)->period().p, 8);  // 2^3
  // bit0 of the counter toggles every step: at t=0 all bits are 0.
  EXPECT_TRUE(*tdd.Ask("bit0(0, b0)"));
  EXPECT_TRUE(*tdd.Ask("bit1(1, b0)"));
  EXPECT_TRUE(*tdd.Ask("bit0(2, b0)"));
  // Counter value at t=5 is 101: bits 0 and 2 set.
  EXPECT_TRUE(*tdd.Ask("bit1(5, b0)"));
  EXPECT_TRUE(*tdd.Ask("bit0(5, b1)"));
  EXPECT_TRUE(*tdd.Ask("bit1(5, b2)"));
  // And 8 steps later the same pattern repeats.
  EXPECT_TRUE(*tdd.Ask("bit1(13, b0)"));
  EXPECT_TRUE(*tdd.Ask("bit0(13, b1)"));
  EXPECT_TRUE(*tdd.Ask("bit1(13, b2)"));
}

TEST(EngineTest, SpecInfoCarriesJoinPlansAfterBuild) {
  TemporalDatabase tdd = MustEngine(workload::EvenSource());
  ASSERT_TRUE(tdd.specification().ok());
  // The spec build exported its per-rule plan report (fed to EXPLAIN):
  // one report per rule, and the recursive even rule planned at least one
  // slot whose join order covers its single body atom.
  const RulePlanReport& plans = tdd.spec_info().plans;
  ASSERT_EQ(plans.size(), tdd.program().rules().size());
  bool any_slot = false;
  for (const auto& rule_slots : plans) {
    for (const PlanSlotReport& slot : rule_slots) {
      any_slot = true;
      EXPECT_EQ(slot.order.size(), 1u);
    }
  }
  EXPECT_TRUE(any_slot);
}

TEST(EngineTest, TraceCapacityOptionBoundsTheBuffer) {
  EngineOptions options;
  options.collect_metrics = true;
  options.trace_capacity = 8;
  auto tdd = TemporalDatabase::FromSource(workload::EvenSource(), options);
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  ASSERT_NE(tdd->trace(), nullptr);
  EXPECT_EQ(tdd->trace()->capacity(), 8u);
  // The spec build alone records more than 8 spans, so the bounded buffer
  // must have wrapped — capacity admission, not silent growth.
  ASSERT_TRUE(tdd->specification().ok());
  EXPECT_LE(tdd->trace()->size(), 8u);
  EXPECT_GT(tdd->trace()->dropped(), 0u);
}

}  // namespace
}  // namespace chronolog
