// The interval fact abbreviation `p(lo..hi, args)` of the paper's
// Section 2, footnote 1.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/engine.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

TEST(IntervalTest, ExpandsToOneFactPerDay) {
  auto unit = Parser::Parse("winter(0..3).\nwinter(T+8) :- winter(T).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->database.size(), 4u);
  for (const GroundAtom& f : unit->database.facts()) {
    EXPECT_GE(f.time, 0);
    EXPECT_LE(f.time, 3);
  }
}

TEST(IntervalTest, SingletonInterval) {
  auto unit = Parser::Parse("p(5..5).\np(T+1) :- p(T).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->database.size(), 1u);
  EXPECT_EQ(unit->database.facts()[0].time, 5);
}

TEST(IntervalTest, WorksWithNonTemporalArguments) {
  auto unit =
      Parser::Parse("open(2..4, shop).\nopen(T+7, X) :- open(T, X).");
  ASSERT_TRUE(unit.ok()) << unit.status();
  EXPECT_EQ(unit->database.size(), 3u);
  for (const GroundAtom& f : unit->database.facts()) {
    EXPECT_EQ(f.args.size(), 1u);
  }
}

TEST(IntervalTest, PaperFootnoteSkiSeasons) {
  // The generator now uses the footnote's abbreviation; semantics are
  // unchanged: plane queries behave as with explicit per-day facts.
  auto tdd = TemporalDatabase::FromSource(
      workload::SkiScheduleSource(1, 12, 4, 1));
  ASSERT_TRUE(tdd.ok()) << tdd.status();
  EXPECT_TRUE(*tdd->Ask("winter(0)"));
  EXPECT_TRUE(*tdd->Ask("winter(3)"));
  EXPECT_FALSE(*tdd->Ask("winter(4)"));
  EXPECT_TRUE(*tdd->Ask("offseason(4)"));
  EXPECT_TRUE(*tdd->Ask("offseason(11)"));
  EXPECT_FALSE(*tdd->Ask("offseason(12)"));  // next year via the rule:
  EXPECT_TRUE(*tdd->Ask("winter(12)"));      // 0 + 12
}

TEST(IntervalTest, EmptyIntervalFails) {
  auto unit = Parser::Parse("p(5..3).");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("empty interval"),
            std::string::npos);
}

TEST(IntervalTest, HugeIntervalFails) {
  auto unit = Parser::Parse("p(0..99999999).");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("1000000"), std::string::npos);
}

TEST(IntervalTest, IntervalInRuleFails) {
  auto unit = Parser::Parse("p(0..3).\nq(T) :- p(T), p(0..2).");
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.status().message().find("fact abbreviations"),
            std::string::npos);
}

TEST(IntervalTest, IntervalInRuleHeadFails) {
  auto unit = Parser::Parse("p(0..3) :- q(a).\nq(a).");
  EXPECT_FALSE(unit.ok());
}

TEST(IntervalTest, IntervalInNonTemporalPositionFails) {
  auto unit = Parser::Parse("edge(a, 0..3).");
  EXPECT_FALSE(unit.ok());
}

TEST(IntervalTest, MissingUpperBoundFails) {
  auto unit = Parser::Parse("p(0..).");
  EXPECT_FALSE(unit.ok());
}

TEST(IntervalTest, DuplicateCoverageIsDeduplicatedDownstream) {
  auto tdd = TemporalDatabase::FromSource(
      "p(0..4).\np(2..6).\np(T+10) :- p(T).");
  ASSERT_TRUE(tdd.ok());
  // 0..6 covered once each.
  auto spec = tdd->specification();
  ASSERT_TRUE(spec.ok());
  for (int64_t t = 0; t <= 6; ++t) {
    EXPECT_TRUE(*tdd->Ask("p(" + std::to_string(t) + ")")) << t;
  }
  EXPECT_FALSE(*tdd->Ask("p(7)"));
}

}  // namespace
}  // namespace chronolog
