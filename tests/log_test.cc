// chronolog_serve structured logging: level parsing, the process-wide
// threshold, sink injection, the JSON-lines schema and its escaping.

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/log.h"

namespace chronolog {
namespace {

/// Captures emitted lines for the duration of a test and restores the
/// stderr sink + prior global level on destruction.
class LogCapture {
 public:
  LogCapture() : saved_level_(GlobalLogLevel()) {
    SetLogSink([this](std::string_view line) {
      std::lock_guard<std::mutex> lock(mu_);
      lines_.emplace_back(line);
    });
  }
  ~LogCapture() {
    SetLogSink(nullptr);
    SetGlobalLogLevel(saved_level_);
  }

  std::vector<std::string> lines() {
    std::lock_guard<std::mutex> lock(mu_);
    return lines_;
  }

 private:
  LogLevel saved_level_;
  std::mutex mu_;
  std::vector<std::string> lines_;
};

TEST(LogTest, ParseLogLevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    auto parsed = ParseLogLevel(LogLevelName(level));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(ParseLogLevel("verbose").has_value());
  EXPECT_FALSE(ParseLogLevel("").has_value());
}

TEST(LogTest, EmitsJsonLineWithAllFieldKinds) {
  LogCapture capture;
  SetGlobalLogLevel(LogLevel::kInfo);
  LogInfo("test.event")
      .Str("name", "value")
      .Int("negative", -3)
      .Uint("big", 42)
      .Num("ratio", 0.5)
      .Bool("flag", true);
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"ts_us\":"), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"event\":\"test.event\""), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"value\""), std::string::npos);
  EXPECT_NE(line.find("\"negative\":-3"), std::string::npos);
  EXPECT_NE(line.find("\"big\":42"), std::string::npos);
  EXPECT_NE(line.find("\"ratio\":0.5"), std::string::npos);
  EXPECT_NE(line.find("\"flag\":true"), std::string::npos);
}

TEST(LogTest, ThresholdFiltersLowerLevels) {
  LogCapture capture;
  SetGlobalLogLevel(LogLevel::kWarn);
  LogDebug("dropped.debug").Str("k", "v");
  LogInfo("dropped.info");
  LogWarn("kept.warn");
  LogError("kept.error");
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("kept.warn"), std::string::npos);
  EXPECT_NE(lines[1].find("kept.error"), std::string::npos);
}

TEST(LogTest, OffSilencesEverything) {
  LogCapture capture;
  SetGlobalLogLevel(LogLevel::kOff);
  LogError("never.emitted");
  EXPECT_TRUE(capture.lines().empty());
}

TEST(LogTest, ExplicitThresholdOverridesGlobal) {
  LogCapture capture;
  SetGlobalLogLevel(LogLevel::kOff);
  // Engine-style per-instance threshold: emitted despite the global "off".
  LogEvent(LogLevel::kInfo, "engine.event", LogLevel::kDebug).Int("n", 1);
  // And the reverse: a permissive global does not rescue a strict override.
  SetGlobalLogLevel(LogLevel::kDebug);
  LogEvent(LogLevel::kInfo, "dropped.event", LogLevel::kError);
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("engine.event"), std::string::npos);
}

TEST(LogTest, EscapesStringsForJson) {
  LogCapture capture;
  SetGlobalLogLevel(LogLevel::kInfo);
  LogInfo("test.escape").Str("path", "a\"b\\c\nd\te");
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("a\\\"b\\\\c\\nd\\te"), std::string::npos);
}

TEST(LogTest, ConcurrentEmittersProduceWholeLines) {
  LogCapture capture;
  SetGlobalLogLevel(LogLevel::kInfo);
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i] {
      for (int j = 0; j < kEventsPerThread; ++j) {
        LogInfo("parallel.event").Int("thread", i).Int("seq", j);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto lines = capture.lines();
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads * kEventsPerThread));
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"event\":\"parallel.event\""), std::string::npos);
  }
}

}  // namespace
}  // namespace chronolog
