#include <gtest/gtest.h>

#include "ast/lexer.h"

namespace chronolog {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> out;
  for (const Token& t : tokens) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ(tokens->front().kind, TokenKind::kEof);
}

TEST(LexerTest, SimpleFact) {
  auto tokens = Tokenize("plane(0, hunter).");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kLParen, TokenKind::kInt,
                TokenKind::kComma, TokenKind::kIdent, TokenKind::kRParen,
                TokenKind::kDot, TokenKind::kEof}));
  EXPECT_EQ((*tokens)[0].text, "plane");
  EXPECT_EQ((*tokens)[2].int_value, 0u);
  EXPECT_EQ((*tokens)[4].text, "hunter");
}

TEST(LexerTest, RuleWithOffset) {
  auto tokens = Tokenize("even(T+2) :- even(T).");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(Kinds(*tokens),
            (std::vector<TokenKind>{
                TokenKind::kIdent, TokenKind::kLParen, TokenKind::kVar,
                TokenKind::kPlus, TokenKind::kInt, TokenKind::kRParen,
                TokenKind::kColonDash, TokenKind::kIdent, TokenKind::kLParen,
                TokenKind::kVar, TokenKind::kRParen, TokenKind::kDot,
                TokenKind::kEof}));
}

TEST(LexerTest, VariablesStartUpperOrUnderscore) {
  auto tokens = Tokenize("T X _x foo Foo");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kVar);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kVar);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kVar);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kVar);
}

TEST(LexerTest, PercentCommentsSkipToEol) {
  auto tokens = Tokenize("a. % comment with stuff :- ,()\nb.");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);  // a . b . eof
  EXPECT_EQ((*tokens)[2].text, "b");
}

TEST(LexerTest, SlashSlashComments) {
  auto tokens = Tokenize("a. // note\nb.");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 5u);
}

TEST(LexerTest, QuotedConstants) {
  auto tokens = Tokenize("resort('Hunter Mountain').");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIdent);
  EXPECT_EQ((*tokens)[2].text, "Hunter Mountain");
}

TEST(LexerTest, UnterminatedQuoteFails) {
  auto tokens = Tokenize("resort('Hunter).");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, DirectiveAndQueryTokens) {
  auto tokens = Tokenize("@temporal p/2. a & b | ~c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kAt);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kSlash);
  std::vector<TokenKind> kinds = Kinds(*tokens);
  std::vector<TokenKind> tail(kinds.end() - 7, kinds.end());
  EXPECT_EQ(tail, (std::vector<TokenKind>{
                      TokenKind::kIdent, TokenKind::kAmp, TokenKind::kIdent,
                      TokenKind::kPipe, TokenKind::kTilde, TokenKind::kIdent,
                      TokenKind::kEof}));
}

TEST(LexerTest, LineAndColumnTracking) {
  auto tokens = Tokenize("a.\n  b.");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[0].column, 1);
  EXPECT_EQ((*tokens)[2].line, 2);
  EXPECT_EQ((*tokens)[2].column, 3);
}

TEST(LexerTest, IntegerOverflowFails) {
  auto tokens = Tokenize("p(99999999999999999999999999).");
  EXPECT_FALSE(tokens.ok());
  EXPECT_EQ(tokens.status().code(), StatusCode::kInvalidArgument);
}

TEST(LexerTest, LoneColonFails) {
  auto tokens = Tokenize("a : b");
  EXPECT_FALSE(tokens.ok());
}

TEST(LexerTest, UnknownCharacterFails) {
  auto tokens = Tokenize("a # b");
  EXPECT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("'#'"), std::string::npos);
}

TEST(LexerTest, TokenKindNamesAreStable) {
  EXPECT_EQ(TokenKindToString(TokenKind::kColonDash), "':-'");
  EXPECT_EQ(TokenKindToString(TokenKind::kEof), "end of input");
}

}  // namespace
}  // namespace chronolog
