#include <gtest/gtest.h>

#include "analysis/classify.h"
#include "analysis/depgraph.h"
#include "ast/parser.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  EXPECT_TRUE(unit.ok()) << unit.status();
  return std::move(unit).value();
}

// --------------------------------------------------------------------------
// DependencyGraph
// --------------------------------------------------------------------------

TEST(DepGraphTest, DirectRecursionIsDetected) {
  ParsedUnit unit = MustParse("even(0). even(T+2) :- even(T).");
  DependencyGraph graph(unit.program);
  PredicateId even = unit.program.vocab().FindPredicate("even");
  EXPECT_TRUE(graph.IsRecursive(even));
  EXPECT_FALSE(graph.HasMutualRecursion());
}

TEST(DepGraphTest, MutualRecursionIsDetected) {
  ParsedUnit unit = MustParse(R"(
    a(0). b(0).
    a(T+1) :- b(T).
    b(T+1) :- a(T).
  )");
  DependencyGraph graph(unit.program);
  EXPECT_TRUE(graph.HasMutualRecursion());
  PredicateId a = unit.program.vocab().FindPredicate("a");
  PredicateId b = unit.program.vocab().FindPredicate("b");
  EXPECT_TRUE(graph.IsRecursive(a));
  EXPECT_TRUE(graph.IsRecursive(b));
  EXPECT_EQ(graph.ComponentOf(a), graph.ComponentOf(b));
}

TEST(DepGraphTest, NonRecursiveChain) {
  ParsedUnit unit = MustParse(R"(
    c(X) :- b(X).
    b(X) :- a(X).
    a(x1).
  )");
  DependencyGraph graph(unit.program);
  const Vocabulary& vocab = unit.program.vocab();
  PredicateId a = vocab.FindPredicate("a");
  PredicateId b = vocab.FindPredicate("b");
  PredicateId c = vocab.FindPredicate("c");
  EXPECT_FALSE(graph.HasMutualRecursion());
  EXPECT_FALSE(graph.IsRecursive(a));
  EXPECT_FALSE(graph.IsRecursive(b));
  EXPECT_FALSE(graph.IsRecursive(c));
  // Components in callee-first order: a before b before c.
  EXPECT_LT(graph.ComponentOf(a), graph.ComponentOf(b));
  EXPECT_LT(graph.ComponentOf(b), graph.ComponentOf(c));
}

TEST(DepGraphTest, TopologicalOrderVisitsLowerStrataFirst) {
  ParsedUnit unit = MustParse(R"(
    c(X) :- b(X).
    b(X) :- a(X).
    a(x1).
  )");
  DependencyGraph graph(unit.program);
  const Vocabulary& vocab = unit.program.vocab();
  std::vector<PredicateId> order = graph.TopologicalOrder();
  auto position = [&order](PredicateId p) {
    return std::find(order.begin(), order.end(), p) - order.begin();
  };
  EXPECT_LT(position(vocab.FindPredicate("a")),
            position(vocab.FindPredicate("b")));
  EXPECT_LT(position(vocab.FindPredicate("b")),
            position(vocab.FindPredicate("c")));
}

TEST(DepGraphTest, BinaryCounterIsMutuallyRecursive) {
  ParsedUnit unit = MustParse(workload::BinaryCounterSource(3));
  DependencyGraph graph(unit.program);
  EXPECT_TRUE(graph.HasMutualRecursion());  // bit0 <-> bit1
}

// --------------------------------------------------------------------------
// Rule classification (Section 6 definitions)
// --------------------------------------------------------------------------

const Rule& OnlyRule(const ParsedUnit& unit) {
  EXPECT_EQ(unit.program.rules().size(), 1u);
  return unit.program.rules()[0];
}

TEST(ClassifyTest, PaperTimeOnlyReducedExample) {
  // "near(T+1,X,Y) :- near(T,X,Y), idle(T,X), idle(T,Y)." — time-only and
  // reduced (Section 6 example).
  ParsedUnit unit = MustParse(
      "@temporal near/3. @temporal idle/2.\n"
      "near(T+1, X, Y) :- near(T, X, Y), idle(T, X), idle(T, Y).");
  const Rule& rule = OnlyRule(unit);
  EXPECT_TRUE(IsRecursiveRule(rule));
  EXPECT_TRUE(IsTimeOnlyRule(rule));
  EXPECT_TRUE(IsReducedTimeOnlyRule(rule));
  EXPECT_FALSE(IsDataOnlyRule(rule));
}

TEST(ClassifyTest, PaperDataOnlyExample) {
  // "happy(T,X) :- happy(T,Y), friend(X,Y)." — data-only (Section 6).
  ParsedUnit unit = MustParse(
      "@temporal happy/2.\n"
      "happy(T, X) :- happy(T, Y), friend(X, Y).");
  const Rule& rule = OnlyRule(unit);
  EXPECT_TRUE(IsRecursiveRule(rule));
  EXPECT_FALSE(IsTimeOnlyRule(rule));
  EXPECT_TRUE(IsDataOnlyRule(rule));
}

TEST(ClassifyTest, NonReducedTimeOnly) {
  // Body variable Z does not appear in the head: time-only but not reduced.
  ParsedUnit unit = MustParse(
      "@temporal p/2. @temporal q/2.\n"
      "p(T+1, X) :- p(T, X), q(T, Z).");
  const Rule& rule = OnlyRule(unit);
  EXPECT_TRUE(IsTimeOnlyRule(rule));
  EXPECT_FALSE(IsReducedTimeOnlyRule(rule));
}

TEST(ClassifyTest, NonRecursiveRuleIsNeither) {
  ParsedUnit unit = MustParse("@temporal p/2. @temporal q/2.\n"
                              "p(T, X) :- q(T, X).");
  const Rule& rule = OnlyRule(unit);
  EXPECT_FALSE(IsRecursiveRule(rule));
  EXPECT_FALSE(IsTimeOnlyRule(rule));
  EXPECT_FALSE(IsDataOnlyRule(rule));
}

TEST(ClassifyTest, RuleBothTimeOnlyAndDataOnly) {
  // Identical temporal argument everywhere and identical non-temporal args:
  // satisfies both definitions.
  ParsedUnit unit = MustParse("@temporal p/2.\n"
                              "p(T, X) :- p(T, X), r(X).");
  const Rule& rule = OnlyRule(unit);
  EXPECT_TRUE(IsTimeOnlyRule(rule));
  EXPECT_TRUE(IsDataOnlyRule(rule));
}

TEST(ClassifyTest, PathRecursiveRuleIsNeitherTimeNorDataOnly) {
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::CycleGraphFactsSource(3));
  // Rule 2: path(K+1,X,Z) :- edge(X,Y), path(K,Y,Z).
  const Rule& rule = unit.program.rules()[1];
  EXPECT_TRUE(IsRecursiveRule(rule));
  EXPECT_FALSE(IsTimeOnlyRule(rule));
  EXPECT_FALSE(IsDataOnlyRule(rule));
}

// --------------------------------------------------------------------------
// Multi-separability and separability (paper Sections 2, 6, 7)
// --------------------------------------------------------------------------

TEST(SeparabilityTest, SkiExampleIsMultiSeparableButNotSeparable) {
  // The paper states this explicitly at the end of Section 2.
  ParsedUnit unit = MustParse(workload::SkiScheduleSource(2, 12, 4, 1));
  DependencyGraph graph(unit.program);
  SeparabilityReport report = CheckSeparability(unit.program, graph);
  EXPECT_TRUE(report.multi_separable) << report.reason;
  EXPECT_FALSE(report.separable);
}

TEST(SeparabilityTest, PathExampleIsNotMultiSeparable) {
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::CycleGraphFactsSource(3));
  DependencyGraph graph(unit.program);
  SeparabilityReport report = CheckSeparability(unit.program, graph);
  EXPECT_FALSE(report.multi_separable);
  EXPECT_NE(report.reason.find("path"), std::string::npos);
}

TEST(SeparabilityTest, MutualRecursionBreaksMultiSeparability) {
  ParsedUnit unit = MustParse(workload::BinaryCounterSource(3));
  DependencyGraph graph(unit.program);
  SeparabilityReport report = CheckSeparability(unit.program, graph);
  EXPECT_FALSE(report.multi_separable);
  EXPECT_NE(report.reason.find("mutually recursive"), std::string::npos);
}

TEST(SeparabilityTest, EvenIsSeparable) {
  ParsedUnit unit = MustParse(workload::EvenSource());
  DependencyGraph graph(unit.program);
  SeparabilityReport report = CheckSeparability(unit.program, graph);
  EXPECT_TRUE(report.multi_separable);
  EXPECT_TRUE(report.separable);
}

TEST(SeparabilityTest, TokenRingIsNotMultiSeparable) {
  ParsedUnit unit = MustParse(workload::TokenRingSource({3}));
  DependencyGraph graph(unit.program);
  EXPECT_FALSE(CheckSeparability(unit.program, graph).multi_separable);
}

TEST(SeparabilityTest, MixedTimeOnlyAndDataOnlyPredicatesAreAccepted) {
  ParsedUnit unit = MustParse(R"(
    @temporal alive/2. @temporal infected/2.
    alive(T+1, X) :- alive(T, X).
    infected(T, X) :- infected(T, Y), contact(X, Y).
    infected(T+1, X) :- infected(T, X).
    alive(0, anna). infected(0, bob). contact(anna, bob).
  )");
  DependencyGraph graph(unit.program);
  SeparabilityReport report = CheckSeparability(unit.program, graph);
  EXPECT_TRUE(report.multi_separable) << report.reason;
}

// --------------------------------------------------------------------------
// ClassifyProgram aggregation
// --------------------------------------------------------------------------

TEST(ClassifyProgramTest, SkiSchedule) {
  ParsedUnit unit = MustParse(workload::SkiScheduleSource(2, 12, 4, 1));
  ProgramClassification c = ClassifyProgram(unit.program);
  EXPECT_TRUE(c.range_restricted);
  EXPECT_TRUE(c.semi_normal);
  EXPECT_FALSE(c.normal);
  EXPECT_TRUE(c.progressive);
  EXPECT_TRUE(c.mutual_recursion_free);
  EXPECT_TRUE(c.multi_separable);
  EXPECT_FALSE(c.separable);
  EXPECT_EQ(c.max_temporal_depth, 12);
}

TEST(ClassifyProgramTest, ToStringIsInformative) {
  ParsedUnit unit = MustParse(workload::PathProgramSource() +
                              workload::CycleGraphFactsSource(3));
  std::string text = ClassifyProgram(unit.program).ToString();
  EXPECT_NE(text.find("multi_separable:       no"), std::string::npos)
      << text;
  EXPECT_NE(text.find("progressive:           yes"), std::string::npos);
}

}  // namespace
}  // namespace chronolog
