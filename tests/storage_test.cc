#include <gtest/gtest.h>

#include <memory>

#include "ast/parser.h"
#include "storage/interpretation.h"
#include "storage/state.h"

namespace chronolog {
namespace {

/// Small fixture: vocabulary with one temporal predicate p/2 (arity 1) and
/// one non-temporal predicate e/2.
class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vocab_ = std::make_shared<Vocabulary>();
    auto p = vocab_->DeclarePredicate("p", 2);
    ASSERT_TRUE(p.ok());
    p_ = *p;
    vocab_->SetTemporal(p_);
    auto e = vocab_->DeclarePredicate("e", 2);
    ASSERT_TRUE(e.ok());
    e_ = *e;
    a_ = vocab_->InternConstant("a");
    b_ = vocab_->InternConstant("b");
  }

  GroundAtom P(int64_t t, SymbolId x) { return GroundAtom(p_, t, {x}); }
  GroundAtom E(SymbolId x, SymbolId y) { return GroundAtom(e_, 0, {x, y}); }

  std::shared_ptr<Vocabulary> vocab_;
  PredicateId p_ = 0;
  PredicateId e_ = 0;
  SymbolId a_ = 0;
  SymbolId b_ = 0;
};

TEST_F(StorageTest, InsertAndContains) {
  Interpretation interp(vocab_);
  EXPECT_TRUE(interp.Insert(P(3, a_)));
  EXPECT_FALSE(interp.Insert(P(3, a_)));  // duplicate
  EXPECT_TRUE(interp.Insert(E(a_, b_)));
  EXPECT_EQ(interp.size(), 2u);
  EXPECT_TRUE(interp.Contains(P(3, a_)));
  EXPECT_FALSE(interp.Contains(P(2, a_)));
  EXPECT_FALSE(interp.Contains(P(3, b_)));
  EXPECT_TRUE(interp.Contains(E(a_, b_)));
  EXPECT_FALSE(interp.Contains(E(b_, a_)));
}

TEST_F(StorageTest, SnapshotAndTimeline) {
  Interpretation interp(vocab_);
  interp.Insert(P(0, a_));
  interp.Insert(P(0, b_));
  interp.Insert(P(5, a_));
  EXPECT_EQ(interp.Snapshot(p_, 0).size(), 2u);
  EXPECT_EQ(interp.Snapshot(p_, 5).size(), 1u);
  EXPECT_EQ(interp.Snapshot(p_, 1).size(), 0u);
  EXPECT_EQ(interp.Timeline(p_).size(), 2u);
  EXPECT_EQ(interp.MaxTime(), 5);
}

TEST_F(StorageTest, MaxTimeEmptyIsMinusOne) {
  Interpretation interp(vocab_);
  EXPECT_EQ(interp.MaxTime(), -1);
  interp.Insert(E(a_, b_));
  EXPECT_EQ(interp.MaxTime(), -1);  // non-temporal facts carry no time
}

TEST_F(StorageTest, TruncateDropsBeyondBound) {
  Interpretation interp(vocab_);
  interp.Insert(P(0, a_));
  interp.Insert(P(7, a_));
  interp.Insert(E(a_, b_));
  Interpretation cut = interp.Truncate(3);
  EXPECT_TRUE(cut.Contains(P(0, a_)));
  EXPECT_FALSE(cut.Contains(P(7, a_)));
  EXPECT_TRUE(cut.Contains(E(a_, b_)));  // non-temporal part survives
  EXPECT_EQ(cut.size(), 2u);
  // Original untouched.
  EXPECT_TRUE(interp.Contains(P(7, a_)));
}

TEST_F(StorageTest, SegmentEquals) {
  Interpretation x(vocab_);
  Interpretation y(vocab_);
  x.Insert(P(1, a_));
  y.Insert(P(1, a_));
  x.Insert(P(9, b_));  // beyond the compared segment
  EXPECT_TRUE(x.SegmentEquals(y, 5));
  EXPECT_FALSE(x.SegmentEquals(y, 9));
  y.Insert(P(2, b_));
  EXPECT_FALSE(x.SegmentEquals(y, 5));
}

TEST_F(StorageTest, SegmentEqualsChecksNonTemporalPart) {
  Interpretation x(vocab_);
  Interpretation y(vocab_);
  x.Insert(E(a_, b_));
  EXPECT_FALSE(x.SegmentEquals(y, 10, /*and_non_temporal=*/true));
  EXPECT_TRUE(x.SegmentEquals(y, 10, /*and_non_temporal=*/false));
  y.Insert(E(a_, b_));
  EXPECT_TRUE(x.SegmentEquals(y, 10));
}

TEST_F(StorageTest, EqualityOperator) {
  Interpretation x(vocab_);
  Interpretation y(vocab_);
  EXPECT_TRUE(x == y);
  x.Insert(P(4, a_));
  EXPECT_FALSE(x == y);
  y.Insert(P(4, a_));
  EXPECT_TRUE(x == y);
}

TEST_F(StorageTest, ForEachVisitsEverything) {
  Interpretation interp(vocab_);
  interp.Insert(P(1, a_));
  interp.Insert(P(2, b_));
  interp.Insert(E(a_, a_));
  int count = 0;
  interp.ForEach([&](PredicateId, int64_t, const Tuple&) { ++count; });
  EXPECT_EQ(count, 3);
}

TEST_F(StorageTest, InsertDatabase) {
  auto unit = Parser::Parse("p(2, x). q(y).");
  ASSERT_TRUE(unit.ok());
  Interpretation interp(unit->database.vocab_ptr());
  interp.InsertDatabase(unit->database);
  EXPECT_EQ(interp.size(), 2u);
}

TEST_F(StorageTest, VocabularyGrowthIsTolerated) {
  Interpretation interp(vocab_);
  // Declare a new predicate after the interpretation exists.
  auto q = vocab_->DeclarePredicate("q", 1);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(interp.Contains(GroundAtom(*q, 0, {a_})));
  EXPECT_TRUE(interp.Insert(GroundAtom(*q, 0, {a_})));
  EXPECT_TRUE(interp.Contains(GroundAtom(*q, 0, {a_})));
}

// --------------------------------------------------------------------------
// States and windows
// --------------------------------------------------------------------------

TEST_F(StorageTest, StateProjectsOutTime) {
  Interpretation interp(vocab_);
  interp.Insert(P(3, a_));
  interp.Insert(P(3, b_));
  interp.Insert(P(8, a_));
  State s3 = State::FromInterpretation(interp, 3);
  State s8 = State::FromInterpretation(interp, 8);
  State s9 = State::FromInterpretation(interp, 9);
  EXPECT_EQ(s3.size(), 2u);
  EXPECT_EQ(s8.size(), 1u);
  EXPECT_TRUE(s9.empty());
  EXPECT_NE(s3, s8);
  // The paper's periodicity comparisons: M[3] vs a time with the same
  // projected tuples.
  interp.Insert(P(11, a_));
  interp.Insert(P(11, b_));
  EXPECT_EQ(s3, State::FromInterpretation(interp, 11));
}

TEST_F(StorageTest, StateHashIsOrderIndependent) {
  Interpretation x(vocab_);
  Interpretation y(vocab_);
  x.Insert(P(0, a_));
  x.Insert(P(0, b_));
  y.Insert(P(0, b_));
  y.Insert(P(0, a_));
  State sx = State::FromInterpretation(x, 0);
  State sy = State::FromInterpretation(y, 0);
  EXPECT_EQ(sx, sy);
  EXPECT_EQ(sx.Hash(), sy.Hash());
}

TEST_F(StorageTest, StateIgnoresNonTemporalFacts) {
  Interpretation interp(vocab_);
  interp.Insert(E(a_, b_));
  EXPECT_TRUE(State::FromInterpretation(interp, 0).empty());
}

TEST_F(StorageTest, StateWindowEqualityAndHash) {
  Interpretation interp(vocab_);
  interp.Insert(P(0, a_));
  interp.Insert(P(1, b_));
  interp.Insert(P(4, a_));
  interp.Insert(P(5, b_));
  StateWindow w0 = StateWindow::FromInterpretation(interp, 0, 2);
  StateWindow w4 = StateWindow::FromInterpretation(interp, 4, 2);
  StateWindow w1 = StateWindow::FromInterpretation(interp, 1, 2);
  EXPECT_EQ(w0, w4);
  EXPECT_EQ(StateWindowHash()(w0), StateWindowHash()(w4));
  EXPECT_FALSE(w0 == w1);
}

TEST_F(StorageTest, StateWindowFromStatesMatchesInterpretation) {
  Interpretation interp(vocab_);
  interp.Insert(P(0, a_));
  interp.Insert(P(2, b_));
  std::vector<State> states;
  for (int64_t t = 0; t <= 3; ++t) {
    states.push_back(State::FromInterpretation(interp, t));
  }
  EXPECT_EQ(StateWindow::FromStates(states, 0, 3),
            StateWindow::FromInterpretation(interp, 0, 3));
  EXPECT_EQ(StateWindow::FromStates(states, 1, 2),
            StateWindow::FromInterpretation(interp, 1, 2));
}

}  // namespace
}  // namespace chronolog
