// Experiment E5 (DESIGN.md): Theorem 5.2 — inflationary-ness is decidable,
// and the decision procedure runs one tiny least-model computation (over a
// single-tuple database) per derived predicate. Measures decision time as
// the program grows; the scaling is polynomial in the program size because
// each per-predicate check is database-size-independent.

#include <benchmark/benchmark.h>

#include <random>

#include "analysis/inflationary.h"
#include "bench/bench_util.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

/// A synthetic inflationary program with `n` predicate layers: each layer
/// feeds the next and persists.
std::string LayeredInflationarySource(int layers) {
  std::string src;
  for (int i = 0; i < layers; ++i) {
    std::string p = "p" + std::to_string(i);
    src += p + "(T+1, X) :- " + p + "(T, X).\n";
    if (i > 0) {
      src += p + "(T, X) :- p" + std::to_string(i - 1) + "(T, X).\n";
    }
  }
  src += "p0(0, seed).\n";
  return src;
}

void BM_InflationaryCheckLayers(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(
      LayeredInflationarySource(static_cast<int>(state.range(0))));
  bool verdict = false;
  for (auto _ : state) {
    auto report = CheckInflationary(unit.program);
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
    verdict = report->inflationary;
  }
  state.counters["inflationary"] = verdict ? 1 : 0;
  state.counters["rules"] = static_cast<double>(unit.program.rules().size());
}
BENCHMARK(BM_InflationaryCheckLayers)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Random programs with appended copy rules (always inflationary): checks
// the procedure across varied rule shapes.
void BM_InflationaryCheckRandom(benchmark::State& state) {
  std::mt19937 rng(static_cast<uint32_t>(state.range(0)));
  workload::RandomProgramOptions options;
  options.progressive_only = true;
  options.num_rules = static_cast<int>(state.range(0));
  std::string src = workload::RandomProgramSource(options, &rng);
  src += "tp0(T+1, X) :- tp0(T, X).\n";
  src += "tp1(T+1, X) :- tp1(T, X).\n";
  src += "tp2(T+1, X) :- tp2(T, X).\n";
  ParsedUnit unit = bench::MustParse(src);
  for (auto _ : state) {
    auto report = CheckInflationary(unit.program);
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
    benchmark::DoNotOptimize(report->inflationary);
  }
}
BENCHMARK(BM_InflationaryCheckRandom)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

// The verdict cost is independent of the *database* size: same program,
// growing database (the procedure substitutes its own one-tuple database).
void BM_InflationaryCheckDatabaseIndependence(benchmark::State& state) {
  std::mt19937 rng(4242);
  std::string src = workload::PathProgramSource() +
                    workload::RandomGraphFactsSource(
                        static_cast<int>(state.range(0)) / 2,
                        static_cast<int>(state.range(0)), &rng);
  ParsedUnit unit = bench::MustParse(src);
  for (auto _ : state) {
    auto report = CheckInflationary(unit.program);
    if (!report.ok()) state.SkipWithError(report.status().ToString().c_str());
    benchmark::DoNotOptimize(report->inflationary);
  }
  state.counters["facts_n"] = static_cast<double>(unit.database.size());
}
BENCHMARK(BM_InflationaryCheckDatabaseIndependence)
    ->Arg(16)->Arg(256)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
