// Experiment E1 (DESIGN.md): Theorem 4.1 / Figure 1 — algorithm BT runs in
// time polynomial in max(n, c, h) when the period is polynomially bounded.
//
// Workloads:
//  * inflationary `path` program (paper Section 2, Example 2) on random
//    graphs of growing size — period (b, 1), b <= diameter;
//  * multi-separable ski schedule with a growing number of resorts —
//    database-independent period.
//
// The paper claims a *shape*: BT time grows polynomially in n. Compare the
// reported times across the argument sweep (roughly quadratic for path:
// O(n) facts per timestep x O(n) timesteps; near-linear for ski).

#include <benchmark/benchmark.h>

#include <random>

#include "bench/bench_util.h"
#include "eval/bt.h"
#include "query/query_parser.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

void BM_BtPathRandomGraph(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const int nodes = edges / 2;
  std::mt19937 rng(12345);
  ParsedUnit unit = bench::MustParse(
      workload::PathProgramSource() +
      workload::RandomGraphFactsSource(nodes, edges, &rng));
  auto query = ParseGroundAtom("path(8, n0, n1)", unit.program.vocab());
  if (!query.ok()) std::abort();
  BtOptions options;
  options.range = nodes + 2;  // inflationary saturation bound
  options.semi_naive = true;

  uint64_t derived = 0;
  for (auto _ : state) {
    auto result = RunBt(unit.program, unit.database, *query, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    derived = result->stats.derived;
    benchmark::DoNotOptimize(result->answer);
  }
  state.counters["facts_n"] = static_cast<double>(unit.database.size());
  state.counters["derived"] = static_cast<double>(derived);
}
BENCHMARK(BM_BtPathRandomGraph)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Same workload, varying FixpointOptions::num_threads through BtOptions.
// Rounds whose delta holds >= 32 facts shard (rule x delta-position) tasks
// across the pool; the deterministic post-round merge keeps the model
// bit-identical to the sequential run (see tests/parallel_fixpoint_test.cc),
// so only wall time may differ. Speedups require actual cores: on a
// single-CPU host every thread count reports the sequential time plus a
// small pool overhead.
void BM_BtPathThreads(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  const int nodes = edges / 2;
  std::mt19937 rng(12345);
  ParsedUnit unit = bench::MustParse(
      workload::PathProgramSource() +
      workload::RandomGraphFactsSource(nodes, edges, &rng));
  auto query = ParseGroundAtom("path(8, n0, n1)", unit.program.vocab());
  if (!query.ok()) std::abort();
  BtOptions options;
  options.range = nodes + 2;
  options.semi_naive = true;
  options.num_threads = static_cast<int>(state.range(1));

  for (auto _ : state) {
    auto result = RunBt(unit.program, unit.database, *query, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->answer);
  }
  // Not "threads": google-benchmark already emits a built-in field of that
  // name (its own per-benchmark thread count) in the JSON output.
  state.counters["num_threads"] = static_cast<double>(options.num_threads);
  state.counters["facts_n"] = static_cast<double>(unit.database.size());
}
BENCHMARK(BM_BtPathThreads)
    ->Args({256, 1})->Args({256, 2})->Args({256, 4})->Args({256, 8})
    ->Unit(benchmark::kMillisecond);

void BM_BtSkiResorts(benchmark::State& state) {
  const int resorts = static_cast<int>(state.range(0));
  ParsedUnit unit = bench::MustParse(workload::SkiScheduleSource(
      resorts, /*year_len=*/28, /*winter_len=*/8, /*holidays=*/2));
  auto query = ParseGroundAtom("plane(40, resort0)", unit.program.vocab());
  if (!query.ok()) std::abort();
  BtOptions options;
  // I-periodic: range is database-independent (b + c + p with p | 28).
  options.range = 28 + 28 + 8;
  options.semi_naive = true;

  for (auto _ : state) {
    auto result = RunBt(unit.program, unit.database, *query, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->answer);
  }
  state.counters["facts_n"] = static_cast<double>(unit.database.size());
}
BENCHMARK(BM_BtSkiResorts)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Selectivity-skew microbench for the join planner: `wide` has state.range(0)
// rows of identical first column while `narrow` has one row. Source-order
// joins enumerate every wide row per timestep (work grows linearly with the
// fan-out); the selectivity-driven plan probes narrow first and keeps the
// per-step work constant, so wall time should stay nearly flat across the
// argument sweep. `match_steps` makes the enumerated work visible.
void BM_BtSkewedJoin(benchmark::State& state) {
  const int wide = static_cast<int>(state.range(0));
  ParsedUnit unit = bench::MustParse(workload::SkewedJoinSource(wide));
  auto query = ParseGroundAtom("hit(200, a)", unit.program.vocab());
  if (!query.ok()) std::abort();
  BtOptions options;
  options.horizon = 200;
  options.semi_naive = true;

  uint64_t match_steps = 0;
  for (auto _ : state) {
    auto result = RunBt(unit.program, unit.database, *query, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    match_steps = result->stats.match_steps;
    benchmark::DoNotOptimize(result->answer);
  }
  state.counters["facts_n"] = static_cast<double>(unit.database.size());
  state.counters["match_steps"] = static_cast<double>(match_steps);
}
BENCHMARK(BM_BtSkewedJoin)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Query depth h enters the bound m = max(c, h) + range linearly: BT time
// grows linearly in h (contrast with experiment E4's O(1) spec lookups).
void BM_BtDepthLinear(benchmark::State& state) {
  const int64_t h = state.range(0);
  ParsedUnit unit = bench::MustParse(workload::EvenSource());
  auto query = ParseGroundAtom("even(" + std::to_string(h) + ")",
                               unit.program.vocab());
  if (!query.ok()) std::abort();
  BtOptions options;
  options.range = 2;
  options.semi_naive = true;
  for (auto _ : state) {
    auto result = RunBt(unit.program, unit.database, *query, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->answer);
  }
}
BENCHMARK(BM_BtDepthLinear)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
