// Experiment E4 (DESIGN.md): Section 3.3 / Proposition 3.1 — once the
// relational specification is built, a ground query of arbitrary temporal
// depth h costs O(rewrite + lookup), *independent of h*; answering the same
// query bottom-up (algorithm BT with horizon >= h) costs Θ(h).
//
// The crossover the paper's machinery buys: spec rows stay flat as h grows
// by 5 orders of magnitude; BT rows grow linearly.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "eval/bt.h"
#include "query/query_eval.h"
#include "query/query_parser.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

struct SkiFixture {
  ParsedUnit unit;
  RelationalSpecification spec;

  static SkiFixture Make() {
    ParsedUnit unit = bench::MustParse(workload::SkiScheduleSource(
        /*resorts=*/2, /*year_len=*/28, /*winter_len=*/8, /*holidays=*/2));
    auto spec = BuildSpecification(unit.program, unit.database);
    if (!spec.ok()) std::abort();
    return SkiFixture{std::move(unit), std::move(spec).value()};
  }
};

SkiFixture& Ski() {
  static SkiFixture* fixture = new SkiFixture(SkiFixture::Make());
  return *fixture;
}

// Spec-based: rewrite + hash lookup, flat in h.
void BM_SpecAskAtDepth(benchmark::State& state) {
  SkiFixture& ski = Ski();
  const int64_t h = state.range(0);
  auto query = ParseGroundAtom("plane(" + std::to_string(h) + ", resort0)",
                               ski.unit.program.vocab());
  if (!query.ok()) std::abort();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ski.spec.Ask(*query));
  }
}
BENCHMARK(BM_SpecAskAtDepth)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)->Arg(1000000);

// Bottom-up contrast: BT must materialise the segment up to h.
void BM_BtAskAtDepth(benchmark::State& state) {
  SkiFixture& ski = Ski();
  const int64_t h = state.range(0);
  auto query = ParseGroundAtom("plane(" + std::to_string(h) + ", resort0)",
                               ski.unit.program.vocab());
  if (!query.ok()) std::abort();
  BtOptions options;
  options.horizon = h;
  options.semi_naive = true;
  for (auto _ : state) {
    auto result = RunBt(ski.unit.program, ski.unit.database, *query, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(result->answer);
  }
}
BENCHMARK(BM_BtAskAtDepth)
    ->Arg(10)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// First-order queries over the specification (Proposition 3.1 evaluation):
// quantifiers range over the finitely many representatives.
void BM_SpecFirstOrderQuery(benchmark::State& state) {
  SkiFixture& ski = Ski();
  auto query = ParseQuery("exists T (plane(T, resort0) & winter(T))",
                          ski.unit.program.vocab());
  if (!query.ok()) std::abort();
  for (auto _ : state) {
    auto answer = EvaluateQueryOverSpec(*query, ski.spec);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer->boolean);
  }
}
BENCHMARK(BM_SpecFirstOrderQuery)->Unit(benchmark::kMicrosecond);

// Open query: enumerate all representative answers (plus rewrite rule).
void BM_SpecOpenQuery(benchmark::State& state) {
  SkiFixture& ski = Ski();
  auto query = ParseQuery("plane(T, X)", ski.unit.program.vocab());
  if (!query.ok()) std::abort();
  std::size_t rows = 0;
  for (auto _ : state) {
    auto answer = EvaluateQueryOverSpec(*query, ski.spec);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    rows = answer->rows.size();
  }
  state.counters["rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_SpecOpenQuery)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
