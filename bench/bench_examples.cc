// Experiment E9 (DESIGN.md): the two motivating scenarios of the paper's
// Section 2, end to end through the engine facade — classification, the
// Theorem 5.2 decision, specification construction, and steady-state query
// throughput once the specification is cached.

#include <benchmark/benchmark.h>

#include <random>

#include "bench/bench_util.h"
#include "core/engine.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

std::string SkiSource() {
  return workload::SkiScheduleSource(/*resorts=*/3, /*year_len=*/28,
                                     /*winter_len=*/8, /*holidays=*/2);
}

std::string PathSource() {
  std::mt19937 rng(9);
  return workload::PathProgramSource() +
         workload::RandomGraphFactsSource(16, 32, &rng);
}

// Cold start: parse + classify + inflationary decision + specification.
void BM_EngineColdStartSki(benchmark::State& state) {
  std::string src = SkiSource();
  for (auto _ : state) {
    auto tdd = TemporalDatabase::FromSource(src);
    if (!tdd.ok()) state.SkipWithError(tdd.status().ToString().c_str());
    benchmark::DoNotOptimize(tdd->classification().multi_separable);
    auto inflationary = tdd->inflationary();
    auto spec = tdd->specification();
    if (!spec.ok()) state.SkipWithError(spec.status().ToString().c_str());
    benchmark::DoNotOptimize(inflationary.ok());
  }
}
BENCHMARK(BM_EngineColdStartSki)->Unit(benchmark::kMillisecond);

void BM_EngineColdStartPath(benchmark::State& state) {
  std::string src = PathSource();
  for (auto _ : state) {
    auto tdd = TemporalDatabase::FromSource(src);
    if (!tdd.ok()) state.SkipWithError(tdd.status().ToString().c_str());
    auto spec = tdd->specification();
    if (!spec.ok()) state.SkipWithError(spec.status().ToString().c_str());
    benchmark::DoNotOptimize((*spec)->period().p);
  }
}
BENCHMARK(BM_EngineColdStartPath)->Unit(benchmark::kMillisecond);

// Warm query throughput: yes-no asks against the cached specification.
void BM_EngineWarmAskSki(benchmark::State& state) {
  auto tdd = TemporalDatabase::FromSource(SkiSource());
  if (!tdd.ok()) std::abort();
  (void)tdd->specification();
  int64_t day = 0;
  for (auto _ : state) {
    std::string q = "plane(" + std::to_string(day) + ", resort1)";
    day = (day + 1009) % 1000000;
    auto answer = tdd->Ask(q);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(*answer);
  }
}
BENCHMARK(BM_EngineWarmAskSki)->Unit(benchmark::kMicrosecond);

void BM_EngineWarmAskPath(benchmark::State& state) {
  auto tdd = TemporalDatabase::FromSource(PathSource());
  if (!tdd.ok()) std::abort();
  (void)tdd->specification();
  int64_t k = 0;
  for (auto _ : state) {
    std::string q = "path(" + std::to_string(k) + ", n0, n7)";
    k = (k + 7) % 100000;
    auto answer = tdd->Ask(q);
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(*answer);
  }
}
BENCHMARK(BM_EngineWarmAskPath)->Unit(benchmark::kMicrosecond);

// First-order query throughput through the engine.
void BM_EngineFirstOrderQuery(benchmark::State& state) {
  auto tdd = TemporalDatabase::FromSource(SkiSource());
  if (!tdd.ok()) std::abort();
  (void)tdd->specification();
  for (auto _ : state) {
    auto answer = tdd->Query("exists T (plane(T, resort2) & ~winter(T))");
    if (!answer.ok()) state.SkipWithError(answer.status().ToString().c_str());
    benchmark::DoNotOptimize(answer->boolean);
  }
}
BENCHMARK(BM_EngineFirstOrderQuery)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
