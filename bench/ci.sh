#!/usr/bin/env bash
# CI entry point: a regular Release build + full ctest run, the same suite
# again with CHRONOLOG_NUM_THREADS=4 (parallel evaluator everywhere), a
# metrics-liveness check of the chronolog_obs instrumentation, and finally an
# AddressSanitizer/UBSan build (CHRONOLOG_SANITIZE, see CMakeLists.txt) of
# the same tree with a full ctest run under the sanitizers.
#
# Usage: bench/ci.sh [build_dir] [sanitizer_build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SAN_BUILD_DIR="${2:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== release build + tests ($BUILD_DIR) =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Second configuration: the full suite against the parallel semi-naive
# evaluator. tests/chronolog_test_main.cc reads the variable into the
# process-wide thread default, so every fixpoint in every test runs with 4
# workers — results are thread-count independent by design, and this run
# enforces it suite-wide.
echo "== release tests, parallel evaluator (CHRONOLOG_NUM_THREADS=4) =="
CHRONOLOG_NUM_THREADS=4 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# chronolog_obs liveness: run the metered spec-build pass and fail if any
# histogram stayed empty. Instruments are created at phase *entry*, so an
# empty histogram after a metered run means an instrumented phase never
# recorded — dead instrumentation, not an idle phase.
echo "== metrics liveness (metered spec-build pass) =="
CHRONOLOG_METRICS_OUT="$BUILD_DIR/spec_metrics.json" \
  "$BUILD_DIR/bench/bench_spec_build" \
  --benchmark_filter='BM_SpecSki/1$' >/dev/null
python3 - "$BUILD_DIR/spec_metrics.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as fh:
    dump = json.load(fh)
histograms = dump["metrics"]["histograms"]
if not histograms:
    sys.exit("metrics liveness: no histograms collected at all")
empty = sorted(name for name, h in histograms.items() if h["count"] == 0)
if empty:
    sys.exit("metrics liveness: empty histograms: " + ", ".join(empty))
print(f"metrics liveness: {len(histograms)} histograms, all non-empty "
      f"(hardware_concurrency={dump['hardware_concurrency']})")
PY

echo "== sanitizer build + tests ($SAN_BUILD_DIR) =="
cmake -B "$SAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DCHRONOLOG_SANITIZE=address;undefined"
cmake --build "$SAN_BUILD_DIR" -j "$JOBS"
# halt_on_error makes UBSan findings fail the run instead of just logging.
ASAN_OPTIONS="detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$SAN_BUILD_DIR" --output-on-failure -j "$JOBS"

echo "ci.sh: all checks passed"
