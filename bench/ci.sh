#!/usr/bin/env bash
# CI entry point: a regular Release build + full ctest run, followed by an
# AddressSanitizer/UBSan build (CHRONOLOG_SANITIZE, see CMakeLists.txt) of
# the same tree and a second full ctest run under the sanitizers.
#
# Usage: bench/ci.sh [build_dir] [sanitizer_build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SAN_BUILD_DIR="${2:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== release build + tests ($BUILD_DIR) =="
cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== sanitizer build + tests ($SAN_BUILD_DIR) =="
cmake -B "$SAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DCHRONOLOG_SANITIZE=address;undefined"
cmake --build "$SAN_BUILD_DIR" -j "$JOBS"
# halt_on_error makes UBSan findings fail the run instead of just logging.
ASAN_OPTIONS="detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$SAN_BUILD_DIR" --output-on-failure -j "$JOBS"

echo "ci.sh: all checks passed"
