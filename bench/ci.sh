#!/usr/bin/env bash
# CI entry point: a regular Release build + full ctest run, the same suite
# again with CHRONOLOG_NUM_THREADS=4 (parallel evaluator everywhere), the
# chronolog-lint gate over every shipped example program, a chronolog_flow
# soundness gate (static period/horizon bounds checked against the dynamic
# detector), a clang-tidy pass (cppcheck fallback; skipped when neither
# binary is present), a metrics-liveness check of the
# chronolog_obs instrumentation, a perf smoke gate comparing two BT hot-path
# benchmarks plus the loopback POST /query round-trips (close-per-request
# and keep-alive) against the committed BENCH_PR10.json baseline, a
# chronolog-serve gate (Prometheus exposition + Chrome trace + POST /query
# answers cross-checked against the tddsh REPL oracle — once over
# close-per-request connections, once over a single persistent HTTP/1.1
# connection with the reuse counters asserted — + request-id round-trip
# into response/slow-log/trace, a /statements scrape with exact shape
# counts, an /explain rewrite cross-check, no-5xx assertion + clean
# SIGINT shutdown), an
# AddressSanitizer/UBSan build
# (CHRONOLOG_SANITIZE, see CMakeLists.txt) with a full ctest run, and a
# ThreadSanitizer build running the concurrency-heavy suites with
# CHRONOLOG_NUM_THREADS=4.
#
# Usage: bench/ci.sh [build_dir] [sanitizer_build_dir] [tsan_build_dir]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
SAN_BUILD_DIR="${2:-build-asan}"
TSAN_BUILD_DIR="${3:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== release build + tests ($BUILD_DIR) =="
cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# Second configuration: the full suite against the parallel semi-naive
# evaluator. tests/chronolog_test_main.cc reads the variable into the
# process-wide thread default, so every fixpoint in every test runs with 4
# workers — results are thread-count independent by design, and this run
# enforces it suite-wide.
echo "== release tests, parallel evaluator (CHRONOLOG_NUM_THREADS=4) =="
CHRONOLOG_NUM_THREADS=4 \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

# chronolog-lint gate: every shipped example program must lint clean
# (exit 0, even with warnings promoted to errors), and the seeded-bad
# fixtures must be rejected — a lint binary that stops finding anything
# fails CI just like one that starts rejecting good programs.
echo "== chronolog-lint gate =="
LINT="$BUILD_DIR/tools/chronolog-lint"
for program in examples/programs/*.tdl; do
  echo "lint: $program"
  "$LINT" --strict "$program"
done
# alarms.tdl is the shipped inflationary witness: the Theorem 5.2 pass must
# accept it (ski_schedule is non-inflationary by design, so no blanket run).
"$LINT" --strict --check-inflationary examples/programs/alarms.tdl
if "$LINT" --strict tests/data/bad_lint.tdl >/dev/null; then
  echo "lint gate: bad_lint.tdl unexpectedly passed --strict" >&2
  exit 1
fi
if "$LINT" tests/data/bad_parse.tdl 2>/dev/null; then
  echo "lint gate: bad_parse.tdl unexpectedly parsed" >&2
  exit 1
fi
echo "lint gate: ok"

# chronolog_flow soundness gate: --analyze must run clean (exit 0 — the
# analyses may warn, e.g. A002 on non-periodic-certified SCCs, but must
# never crash or mis-parse) over every shipped example, and the soundness
# suite (tests/flow_soundness_test.cc) re-checks the static bounds against
# the dynamic detector over the same examples plus the workload-generator
# programs: bounded => detected period 1 within the static horizon, the
# static period divisor divides the detected period, and hint-seeded
# detection produces bit-identical specifications.
echo "== chronolog_flow gate (static bounds vs dynamic detector) =="
for program in examples/programs/*.tdl; do
  echo "analyze: $program"
  "$LINT" --analyze "$program" >/dev/null
done
"$BUILD_DIR/tests/flow_soundness_test"
echo "flow gate: ok"

# clang-tidy over the library and tool sources via the compile database.
# The check set lives in .clang-tidy. When clang-tidy is not installed,
# cppcheck steps in as the fallback analyzer over the same compile database
# (CMAKE_EXPORT_COMPILE_COMMANDS is on unconditionally, see CMakeLists.txt);
# only when neither is present does the stage skip with a warning — the
# g++-only CI image still runs the rest.
echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -p "$BUILD_DIR" "src/.*\.cc" "tools/.*\.cpp"
  else
    find src tools -name '*.cc' -o -name '*.cpp' | \
      xargs clang-tidy -quiet -p "$BUILD_DIR"
  fi
elif command -v cppcheck >/dev/null 2>&1; then
  echo "clang-tidy: not installed, falling back to cppcheck"
  cppcheck --project="$BUILD_DIR/compile_commands.json" \
    --file-filter='src/*' --file-filter='tools/*' \
    --enable=warning,portability --inline-suppr \
    --suppress=missingIncludeSystem \
    --error-exitcode=1 -q
else
  echo "clang-tidy: neither clang-tidy nor cppcheck installed, skipping" \
       "(set up LLVM or cppcheck to enable)"
fi

# chronolog_obs liveness: run the metered spec-build pass and fail if any
# histogram stayed empty. Instruments are created at phase *entry*, so an
# empty histogram after a metered run means an instrumented phase never
# recorded — dead instrumentation, not an idle phase.
echo "== metrics liveness (metered spec-build pass) =="
CHRONOLOG_METRICS_OUT="$BUILD_DIR/spec_metrics.json" \
  "$BUILD_DIR/bench/bench_spec_build" \
  --benchmark_filter='BM_SpecSki/1$' >/dev/null
python3 - "$BUILD_DIR/spec_metrics.json" <<'PY'
import json
import sys

with open(sys.argv[1]) as fh:
    dump = json.load(fh)
histograms = dump["metrics"]["histograms"]
if not histograms:
    sys.exit("metrics liveness: no histograms collected at all")
empty = sorted(name for name, h in histograms.items() if h["count"] == 0)
if empty:
    sys.exit("metrics liveness: empty histograms: " + ", ".join(empty))
print(f"metrics liveness: {len(histograms)} histograms, all non-empty "
      f"(hardware_concurrency={dump['hardware_concurrency']})")
PY

# Perf smoke gate: two representative BT benchmarks (the even-chain depth
# sweep and the random-graph path workload) plus the single-client POST
# /query round-trips — close-per-request and keep-alive at 256 requests per
# connection — against the committed BENCH_PR10.json baseline. A median
# above the per-benchmark limit fails — a cheap tripwire for accidental
# hot-path regressions, not a full bench run. The serve round-trips get a
# wider limit (1.5x) because loopback latency on shared CI hosts is far
# noisier than the in-process BT workloads.
# Set CHRONOLOG_SKIP_PERF_GATE=1 on hosts that are slower than the baseline
# machine (the committed medians are host-specific).
echo "== perf smoke gate (hot paths vs BENCH_PR10.json) =="
if [[ "${CHRONOLOG_SKIP_PERF_GATE:-0}" == 1 ]]; then
  echo "perf gate: skipped (CHRONOLOG_SKIP_PERF_GATE=1)"
else
  "$BUILD_DIR/bench/bench_bt_scaling" \
    --benchmark_filter='BM_BtDepthLinear/100000$|BM_BtPathRandomGraph/256$' \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out="$BUILD_DIR/perf_smoke.json" \
    --benchmark_out_format=json >/dev/null
  "$BUILD_DIR/bench/bench_serve_qps" \
    --benchmark_filter='BM_ServePostQuery/real_time/threads:1$|BM_ServePostQueryKeepAlive/256/real_time/threads:1$' \
    --benchmark_repetitions=3 \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out="$BUILD_DIR/perf_smoke_serve.json" \
    --benchmark_out_format=json >/dev/null
  python3 - "$BUILD_DIR/perf_smoke.json" "$BUILD_DIR/perf_smoke_serve.json" \
    BENCH_PR10.json <<'PY'
import json
import sys

benchmarks = []
for path in sys.argv[1:3]:
    with open(path) as fh:
        benchmarks.extend(json.load(fh)["benchmarks"])
with open(sys.argv[3]) as fh:
    baseline = json.load(fh)

# Loopback HTTP on a shared host jitters much more than in-process evaluation.
LIMITS = {"BM_ServePostQuery/real_time/threads:1": 1.50,
          "BM_ServePostQueryKeepAlive/256/real_time/threads:1": 1.50}

failures = []
checked = 0
for bench in benchmarks:
    if bench.get("aggregate_name") != "median":
        continue
    name = bench["run_name"]
    base = baseline.get(name)
    if base is None:
        sys.exit(f"perf gate: {name} missing from committed baseline")
    assert bench["time_unit"] == "ms", (name, bench["time_unit"])
    measured = bench["real_time"]
    allowed = base["median_wall_ms"] * LIMITS.get(name, 1.10)
    checked += 1
    status = "ok" if measured <= allowed else "REGRESSION"
    print(f"perf gate: {name}: {measured:.2f} ms "
          f"(baseline {base['median_wall_ms']:.2f} ms, limit {allowed:.2f}) "
          f"{status}")
    if measured > allowed:
        failures.append(name)
if checked != 4:
    sys.exit(f"perf gate: expected 4 medians, saw {checked}")
if failures:
    sys.exit("perf gate: regression in " + ", ".join(failures) +
             " (CHRONOLOG_SKIP_PERF_GATE=1 to bypass on slower hosts)")
PY
fi

# chronolog-serve gate: start the server on an ephemeral port against the
# non-progressive token-ring fixture (its spec build routes through the
# doubling detector + semi-naive fixpoint, so the fixpoint.* family is
# live) with a warm-up query (query.* family), scrape /healthz + /metrics +
# /trace, validate the Prometheus exposition (well-formed lines, TYPE
# declarations, monotone cumulative buckets, required families), round-trip
# POST /query and cross-check the answer rows + rewrite rule against what
# the tddsh REPL prints for the same query over the same program, require
# the error statuses (404 unknown database, 400 malformed JSON) and zero
# serve.responses_5xx, then SIGINT and require a clean exit.
echo "== serve gate (chronolog-serve scrape) =="
SERVE="$BUILD_DIR/tools/chronolog-serve"
SERVE_PORT_FILE="$BUILD_DIR/serve_port"
SERVE_LOG="$BUILD_DIR/serve_gate.log"
rm -f "$SERVE_PORT_FILE" "$SERVE_LOG"
# --slow-query-ms=0 turns the slow-query log into an every-query log, so the
# request-id round-trip below can assert its structured line appeared.
"$SERVE" --port=0 --port-file="$SERVE_PORT_FILE" \
  --query='exists T (tok(T, a0))' --slow-query-ms=0 \
  tests/data/token_ring.tdl >/dev/null 2>"$SERVE_LOG" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [[ -s "$SERVE_PORT_FILE" ]] && break
  sleep 0.1
done
if [[ ! -s "$SERVE_PORT_FILE" ]]; then
  echo "serve gate: port file never appeared" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
python3 - "$(cat "$SERVE_PORT_FILE")" <<'PY'
import json
import re
import sys
import urllib.request

port = sys.argv[1]


def get(path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
        return resp.read().decode()


health = json.loads(get("/healthz"))
assert health["status"] == "ok", health

text = get("/metrics")
metric_line = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="[^"]+"\})? -?[0-9][0-9.e+-]*$')
types = {}
buckets = {}  # family -> list of (le, cumulative_count)
for line in text.splitlines():
    if line.startswith("# TYPE "):
        _, _, name, kind = line.split(" ")
        types[name] = kind
        continue
    if line.startswith("#"):
        continue
    if not metric_line.match(line):
        sys.exit(f"serve gate: malformed exposition line: {line!r}")
    name, value = line.split(" ")
    m = re.match(r'^(.*)_bucket\{le="([^"]+)"\}$', name)
    if m:
        buckets.setdefault(m.group(1), []).append(
            (float("inf") if m.group(2) == "+Inf" else float(m.group(2)),
             float(value)))
for family, rows in buckets.items():
    assert types.get(family) == "histogram", f"{family}: no histogram TYPE"
    les = [le for le, _ in rows]
    counts = [c for _, c in rows]
    assert les == sorted(les), f"{family}: le values not sorted"
    assert les[-1] == float("inf"), f"{family}: missing +Inf bucket"
    assert counts == sorted(counts), f"{family}: non-monotone buckets"
for family in ("query_evaluations", "query_latency_ns", "fixpoint_rounds",
               "fixpoint_round_derive_ns"):
    hit = [n for n in types if n == family]
    assert hit, f"serve gate: required family {family} missing"
assert float(
    [l for l in text.splitlines() if l.startswith("query_evaluations ")][0]
    .split(" ")[1]) >= 1, "query.* family empty despite warm-up query"

trace = json.loads(get("/trace"))
assert isinstance(trace["traceEvents"], list) and trace["traceEvents"], \
    "serve gate: /trace returned no events"

print(f"serve gate: {len(types)} families scraped, "
      f"{len(buckets)} histograms monotone, "
      f"{len(trace['traceEvents'])} trace events")
PY

# POST /query round-trip, cross-checked against the tddsh REPL as the
# answer oracle: both paths evaluate the same query over the same compiled
# specification, so the rows and the rewrite rule must agree exactly.
ORACLE_OUT="$BUILD_DIR/serve_oracle.txt"
echo '?- tok(T, a0).' | \
  "$BUILD_DIR/examples/tddsh" tests/data/token_ring.tdl > "$ORACLE_OUT"
python3 - "$(cat "$SERVE_PORT_FILE")" "$ORACLE_OUT" <<'PY'
import json
import re
import sys
import urllib.error
import urllib.request

port, oracle_path = sys.argv[1], sys.argv[2]


def post_query(body):
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}/query", data=body.encode(), method="POST")
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read().decode())


# The oracle: tddsh prints one "T = <t>" line per answer row and a rewrite
# footer "rewrite rule <lhs> -> 0: ... t + <p>k".
with open(oracle_path) as fh:
    oracle_text = fh.read()
oracle_rows = [[int(m)] for m in re.findall(r"T = (\d+)", oracle_text)]
rewrite = re.search(r"rewrite rule (\d+) -> 0:.*t \+ (\d+)k", oracle_text)
assert oracle_rows, f"serve gate: tddsh oracle produced no rows:\n{oracle_text}"
assert rewrite, f"serve gate: tddsh oracle printed no rewrite:\n{oracle_text}"

status, answer = post_query(
    '{"query":"tok(T, a0)","database":"default"}')
assert status == 200, (status, answer)
assert answer["boolean"] is True, answer
assert answer["rows"] == oracle_rows, (answer["rows"], oracle_rows)
assert answer["rewrite"]["lhs"] == int(rewrite.group(1)), answer
assert answer["rewrite"]["p"] == int(rewrite.group(2)), answer
assert answer["partial"] is False and answer["truncated"] is False, answer

status, err = post_query('{"query":"tok(T, a0)","database":"nope"}')
assert status == 404, (status, err)
status, err = post_query('{"query":')
assert status == 400, (status, err)

# No request above (nor any earlier scrape) may have produced a 5xx.
with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics") as resp:
    metrics = resp.read().decode()
for line in metrics.splitlines():
    if line.startswith("serve_responses_5xx "):
        assert float(line.split(" ")[1]) == 0, line
ok_lines = [l for l in metrics.splitlines()
            if l.startswith("serve_responses_2xx ")]
assert ok_lines and float(ok_lines[0].split(" ")[1]) >= 4, ok_lines

print(f"serve gate: POST /query matches tddsh oracle "
      f"({len(oracle_rows)} rows, rewrite {rewrite.group(1)} -> 0 "
      f"mod {rewrite.group(2)}), no 5xx responses")
PY

# Keep-alive leg of the serve gate: the urllib checks above send
# `Connection: close` per request, so they never exercise connection reuse.
# http.client.HTTPConnection holds one HTTP/1.1 socket open across
# requests; run the oracle query several times plus a /metrics scrape over
# a single connection, require every answer to match, and require the
# serve.connections_reused counter to have advanced by at least the number
# of follow-up requests — proof the server actually kept the socket, not
# just that the client asked it to.
python3 - "$(cat "$SERVE_PORT_FILE")" "$ORACLE_OUT" <<'PY'
import http.client
import json
import re
import sys

port, oracle_path = sys.argv[1], sys.argv[2]

with open(oracle_path) as fh:
    oracle_rows = [[int(m)] for m in re.findall(r"T = (\d+)", fh.read())]
assert oracle_rows, "serve gate: tddsh oracle produced no rows"

conn = http.client.HTTPConnection("127.0.0.1", int(port))
body = '{"query":"tok(T, a0)","database":"default"}'
requests_on_conn = 0
for _ in range(5):
    conn.request("POST", "/query", body=body.encode(),
                 headers={"Content-Type": "application/json"})
    resp = conn.getresponse()
    answer = json.loads(resp.read().decode())
    requests_on_conn += 1
    assert resp.status == 200, (resp.status, answer)
    assert answer["rows"] == oracle_rows, (answer["rows"], oracle_rows)

conn.request("GET", "/metrics")
resp = conn.getresponse()
metrics = resp.read().decode()
requests_on_conn += 1
assert resp.status == 200, resp.status
conn.close()


def counter(name):
    lines = [l for l in metrics.splitlines() if l.startswith(name + " ")]
    assert lines, f"serve gate: counter {name} missing from /metrics"
    return float(lines[0].split(" ")[1])


# All requests after the first rode the same socket.
reused = counter("serve_connections_reused")
assert reused >= requests_on_conn - 1, (reused, requests_on_conn)
assert counter("serve_connections_opened") >= 1
assert counter("serve_responses_5xx") == 0

print(f"serve gate: keep-alive connection served {requests_on_conn} "
      f"requests (connections_reused={reused:.0f}), answers stable, "
      f"no 5xx responses")
PY

# chronolog_qstats leg: one query with a client-supplied request id must be
# traceable end-to-end — echoed in the response JSON, sliced out of
# /trace?request=ID, and counted under its normalized shape in /statements
# (reset first, so the counts are exact, not dependent on the earlier
# legs). /explain for the same query must report the same rewrite rule the
# tddsh oracle printed, without executing (its call must NOT appear in the
# statement counts). The structured query.slow log line is asserted after
# shutdown, once the server has flushed and exited.
python3 - "$(cat "$SERVE_PORT_FILE")" "$ORACLE_OUT" <<'PY'
import json
import re
import sys
import urllib.request

port, oracle_path = sys.argv[1], sys.argv[2]
REQUEST_ID = "ci-qstats-1"


def get(path):
    with urllib.request.urlopen(f"http://127.0.0.1:{port}{path}") as resp:
        return resp.read().decode()


def post(path, body, request_id=None):
    headers = {"Content-Type": "application/json"}
    if request_id is not None:
        headers["X-Request-Id"] = request_id
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=body.encode(),
        headers=headers, method="POST")
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read().decode())


with open(oracle_path) as fh:
    oracle_text = fh.read()
rewrite = re.search(r"rewrite rule (\d+) -> 0:.*t \+ (\d+)k", oracle_text)
assert rewrite, "serve gate: tddsh oracle printed no rewrite"

# Fresh statement window, then two tracked queries of known shapes.
get("/statements?reset=1")
answer = post("/query", '{"query":"tok(T, a0)"}', REQUEST_ID)
assert answer["request_id"] == REQUEST_ID, answer
other = post("/query", '{"query":"exists T (tok(T, a1))"}')
assert other["request_id"].startswith("q-"), other  # server-generated id

# The request id slices the trace down to this query's spans.
trace = json.loads(get(f"/trace?request={REQUEST_ID}"))
spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
assert spans, "serve gate: /trace?request= returned no spans"
for span in spans:
    assert span["args"]["request"] == REQUEST_ID, span

# EXPLAIN agrees with the tddsh oracle on the rewrite rule — and does not
# execute, so it must not advance the statement counts.
explain = post("/explain", '{"query":"tok(T, a0)"}', "ci-explain-1")
assert explain["request_id"] == "ci-explain-1", explain
assert explain["executed"] is False, explain
assert explain["shape"] == "tok(T, ?)", explain
assert explain["rewrite"]["lhs"] == int(rewrite.group(1)), explain
assert explain["rewrite"]["p"] == int(rewrite.group(2)), explain
assert explain["plans"], "serve gate: /explain reported no rule plans"

stats = json.loads(get("/statements"))
by_shape = {s["shape"]: s for s in stats["statements"]}
assert set(by_shape) == {"tok(T, ?)", "exists T (tok(T, ?))"}, by_shape
assert by_shape["tok(T, ?)"]["calls"] == 1, by_shape
assert by_shape["exists T (tok(T, ?))"]["calls"] == 1, by_shape
assert by_shape["tok(T, ?)"]["eval_ns"]["count"] == 1, by_shape
assert by_shape["tok(T, ?)"]["eval_ns"]["p50"] > 0, by_shape

print(f"serve gate: request id {REQUEST_ID} round-tripped through "
      f"response JSON, {len(spans)} trace spans, and /statements; "
      f"/explain rewrite matches the tddsh oracle")
PY
kill -INT "$SERVE_PID"
wait "$SERVE_PID"  # non-zero exit (unclean shutdown) fails the gate via set -e

# The structured slow-query log (--slow-query-ms=0 logs every served query):
# exactly one query.slow line carries the client-supplied request id, and it
# names the normalized shape, never the raw query text.
python3 - "$SERVE_LOG" <<'PY'
import json
import sys

with open(sys.argv[1]) as fh:
    lines = [json.loads(l) for l in fh if l.strip().startswith("{")]
slow = [l for l in lines if l.get("event") == "query.slow"]
assert slow, "serve gate: --slow-query-ms=0 produced no query.slow lines"
mine = [l for l in slow if l.get("request_id") == "ci-qstats-1"]
assert len(mine) == 1, f"expected exactly one line for ci-qstats-1: {mine}"
line = mine[0]
assert line["shape"] == "tok(T, ?)", line
assert "a0" not in json.dumps(line), line  # constants stay out of the log
assert line["eval_ms"] >= 0 and line["deadline_ms"] == 1000, line
print(f"serve gate: {len(slow)} query.slow lines, request id present "
      f"with shape {line['shape']!r}")
PY
echo "serve gate: ok"

echo "== sanitizer build + tests ($SAN_BUILD_DIR) =="
cmake -B "$SAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DCHRONOLOG_SANITIZE=address;undefined"
cmake --build "$SAN_BUILD_DIR" -j "$JOBS"
# halt_on_error makes UBSan findings fail the run instead of just logging.
ASAN_OPTIONS="detect_leaks=1" UBSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$SAN_BUILD_DIR" --output-on-failure -j "$JOBS"

# ThreadSanitizer: a separate tree (TSan is incompatible with ASan, the
# CMake cache enforces that) running the concurrency-heavy suites — the
# parallel fixpoint, snapshot hashing, period equivalence and metrics
# tests — with the parallel evaluator forced on suite-wide.
echo "== thread sanitizer build + parallel tests ($TSAN_BUILD_DIR) =="
cmake -B "$TSAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCHRONOLOG_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j "$JOBS"
CHRONOLOG_NUM_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'Parallel|Snapshot|Metrics|EvalStats|PeriodEquivalence|Engine|Lint|Http|Obs|Log|Columnar|JoinPlan|QueryEndpoint|Statement'

echo "ci.sh: all checks passed"
