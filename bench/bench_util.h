#ifndef CHRONOLOG_BENCH_BENCH_UTIL_H_
#define CHRONOLOG_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>
#include <string_view>

#include "ast/parser.h"
#include "util/log.h"

namespace chronolog::bench {

/// Parses or dies — benchmark setup helper.
inline ParsedUnit MustParse(std::string_view src) {
  auto unit = Parser::Parse(src);
  if (!unit.ok()) {
    LogError("bench.setup_parse_failed")
        .Str("status", unit.status().ToString());
    std::abort();
  }
  return std::move(unit).value();
}

/// First `k` primes — coprime ring lengths for the exponential-period
/// witness (experiment E2).
inline std::vector<int> FirstPrimes(int k) {
  std::vector<int> primes;
  for (int candidate = 2; static_cast<int>(primes.size()) < k; ++candidate) {
    bool prime = true;
    for (int p : primes) {
      if (candidate % p == 0) {
        prime = false;
        break;
      }
    }
    if (prime) primes.push_back(candidate);
  }
  return primes;
}

}  // namespace chronolog::bench

#endif  // CHRONOLOG_BENCH_BENCH_UTIL_H_
