// PR 7/8 headline numbers: end-to-end query serving over the wire on
// loopback. Two client modes:
//
//  * close-per-request — connect, POST /query, evaluate, render, tear the
//    connection down. One connect/teardown per query: the PR 7 ceiling,
//    dominated by syscalls rather than evaluation.
//  * keep-alive — one persistent HTTP/1.1 connection carries a run of
//    requests (the Arg is requests-per-connection), reconnecting only when
//    the run ends. This is the PR 8 serving mode; the spread between the
//    two is exactly the per-connection setup cost keep-alive removes.
//
// Suites:
//  * BM_ServePostQuery          — close-mode round-trip latency / QPS, 1
//                                 and 4 client threads against a 4-worker
//                                 server;
//  * BM_ServePostQueryKeepAlive — keep-alive QPS at 16 / 256 requests per
//                                 connection, 1 and 4 client threads (the
//                                 server runs 4 workers, and a kept-alive
//                                 connection pins one — client threads must
//                                 stay <= workers);
//  * BM_ServePostQueryRows      — row-rendering cost as max_rows grows;
//  * BM_ServeRefusedQuery       — the parse-and-refuse path (unknown
//                                 database -> 404), an upper bound on the
//                                 per-request overhead when no evaluation
//                                 happens. Shedding under load must stay
//                                 far cheaper than serving.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "serve/http_server.h"
#include "serve/query_endpoints.h"
#include "serve/registry.h"

namespace chronolog {
namespace {

/// One blocking request/response exchange against 127.0.0.1:`port`.
std::string RoundTrip(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[8192];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string PostQuery(int port, const std::string& body) {
  // Explicit close: this helper frames the response by EOF, and the close
  // mode must keep paying the connect/teardown the keep-alive suite avoids.
  return RoundTrip(port, "POST /query HTTP/1.1\r\nHost: b\r\n"
                         "Connection: close\r\nContent-Length: " +
                             std::to_string(body.size()) + "\r\n\r\n" + body);
}

/// A persistent HTTP/1.1 connection: requests share one socket, responses
/// are framed by Content-Length (no EOF to read to).
class KeepAliveClient {
 public:
  ~KeepAliveClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Connect(int port) {
    Disconnect();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Disconnect();
      return false;
    }
    return true;
  }

  void Disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

  bool connected() const { return fd_ >= 0; }

  /// One request/response exchange on the open connection.
  std::string PostQuery(const std::string& body) {
    const std::string request =
        "POST /query HTTP/1.1\r\nHost: b\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    std::size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n =
          ::send(fd_, request.data() + sent, request.size() - sent, 0);
      if (n <= 0) return "";
      sent += static_cast<std::size_t>(n);
    }
    std::size_t header_end;
    while ((header_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill()) return "";
    }
    std::size_t body_size = 0;
    const std::size_t cl = buffer_.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      body_size = static_cast<std::size_t>(
          std::strtoull(buffer_.c_str() + cl + 16, nullptr, 10));
    }
    const std::size_t total = header_end + 4 + body_size;
    while (buffer_.size() < total) {
      if (!Fill()) return "";
    }
    std::string response = buffer_.substr(0, total);
    buffer_.erase(0, total);
    return response;
  }

 private:
  bool Fill() {
    char buf[8192];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    buffer_.append(buf, static_cast<std::size_t>(n));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

/// The shared server: one registry entry (`tick` mod 128 — a spec with ~129
/// representatives, so open tautology queries yield enough rows to make
/// max_rows sweeps meaningful) behind a 4-worker HttpServer. Built once,
/// reused by every benchmark; leaked teardown is fine for a bench process.
struct ServeHarness {
  DatabaseRegistry registry;
  std::unique_ptr<HttpServer> server;

  ServeHarness() {
    auto added = registry.AddFromSource("default", R"(
      tick(0).
      tick(T+128) :- tick(T).
    )");
    if (!added.ok()) std::abort();
    HttpServerOptions options;
    options.num_workers = 4;
    server = std::make_unique<HttpServer>(options);
    QueryServiceOptions query_options;
    query_options.max_in_flight = 64;  // out of the way for the QPS suites
    RegisterQueryEndpoints(*server, &registry, query_options);
    if (!server->Start().ok()) std::abort();
  }
};

ServeHarness& Harness() {
  static ServeHarness harness;
  return harness;
}

/// Same registry/server shape, statement tracking off — the pair of
/// keep-alive medians (with vs without) is the statement store's measured
/// per-request overhead.
struct ServeHarnessNoStats {
  DatabaseRegistry registry;
  std::unique_ptr<HttpServer> server;

  ServeHarnessNoStats() {
    auto added = registry.AddFromSource("default", R"(
      tick(0).
      tick(T+128) :- tick(T).
    )");
    if (!added.ok()) std::abort();
    HttpServerOptions options;
    options.num_workers = 4;
    server = std::make_unique<HttpServer>(options);
    QueryServiceOptions query_options;
    query_options.max_in_flight = 64;
    query_options.track_statements = false;
    RegisterQueryEndpoints(*server, &registry, query_options);
    if (!server->Start().ok()) std::abort();
  }
};

ServeHarnessNoStats& HarnessNoStats() {
  static ServeHarnessNoStats harness;
  return harness;
}

void BM_ServePostQuery(benchmark::State& state) {
  const int port = Harness().server->port();
  const std::string body = R"j({"query":"tick(T)"})j";
  for (auto _ : state) {
    const std::string response = PostQuery(port, body);
    if (response.find("HTTP/1.1 200") == std::string::npos) {
      state.SkipWithError("non-200 response");
      break;
    }
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());  // items/s == queries/s
}
BENCHMARK(BM_ServePostQuery)->Threads(1)->Threads(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ServePostQueryKeepAlive(benchmark::State& state) {
  const int port = Harness().server->port();
  const std::string body = R"j({"query":"tick(T)"})j";
  const int64_t requests_per_conn = state.range(0);
  // Each client thread owns one persistent connection (a kept-alive
  // connection pins a server worker, so thread counts must stay <= the
  // harness's 4 workers) and reconnects every `requests_per_conn` requests.
  KeepAliveClient client;
  int64_t served_on_conn = 0;
  for (auto _ : state) {
    if (!client.connected() || served_on_conn >= requests_per_conn) {
      if (!client.Connect(port)) {
        state.SkipWithError("connect failed");
        break;
      }
      served_on_conn = 0;
    }
    const std::string response = client.PostQuery(body);
    ++served_on_conn;
    if (response.find("HTTP/1.1 200") == std::string::npos) {
      state.SkipWithError("non-200 response");
      break;
    }
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["reqs_per_conn"] = static_cast<double>(requests_per_conn);
}
BENCHMARK(BM_ServePostQueryKeepAlive)
    ->Arg(16)->Arg(256)
    ->Threads(1)->Threads(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ServePostQueryKeepAliveNoStats(benchmark::State& state) {
  // The control for the statement-statistics store: identical workload to
  // BM_ServePostQueryKeepAlive/256 but with track_statements=false, so the
  // delta between the two medians is the store's shape-normalize +
  // GetOrCreate + Record cost per request.
  const int port = HarnessNoStats().server->port();
  const std::string body = R"j({"query":"tick(T)"})j";
  const int64_t requests_per_conn = state.range(0);
  KeepAliveClient client;
  int64_t served_on_conn = 0;
  for (auto _ : state) {
    if (!client.connected() || served_on_conn >= requests_per_conn) {
      if (!client.Connect(port)) {
        state.SkipWithError("connect failed");
        break;
      }
      served_on_conn = 0;
    }
    const std::string response = client.PostQuery(body);
    ++served_on_conn;
    if (response.find("HTTP/1.1 200") == std::string::npos) {
      state.SkipWithError("non-200 response");
      break;
    }
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["reqs_per_conn"] = static_cast<double>(requests_per_conn);
}
BENCHMARK(BM_ServePostQueryKeepAliveNoStats)
    ->Arg(256)->Threads(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ServePostQueryRows(benchmark::State& state) {
  const int port = Harness().server->port();
  // The tautology holds at every representative: max_rows picks how much of
  // the ~129-row answer gets rendered and shipped.
  const std::string body =
      R"j({"query":"tick(T) | ~tick(T)","max_rows":)j" +
      std::to_string(state.range(0)) + "}";
  for (auto _ : state) {
    const std::string response = PostQuery(port, body);
    if (response.find("HTTP/1.1 200") == std::string::npos) {
      state.SkipWithError("non-200 response");
      break;
    }
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["max_rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ServePostQueryRows)->Arg(1)->Arg(16)->Arg(128)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ServeRefusedQuery(benchmark::State& state) {
  // A request naming an unknown database walks admission, body read, JSON
  // parse and the registry lookup, then refuses — everything a served query
  // does except evaluation and answer rendering. (The 429 shed path is
  // strictly shorter still, but needs a concurrent flood to trigger, which
  // would make the measurement nondeterministic.)
  const int port = Harness().server->port();
  const std::string body = R"j({"query":"tick(T)","database":"nope"})j";
  for (auto _ : state) {
    const std::string response = PostQuery(port, body);
    if (response.find("HTTP/1.1 404") == std::string::npos) {
      state.SkipWithError("expected 404");
      break;
    }
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeRefusedQuery)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
