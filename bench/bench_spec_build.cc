// Experiment E3 (DESIGN.md): Theorem 4.1 — the relational specification
// S_{Z∧D} = (T, B, W) is polynomially sized and polynomially computable iff
// the period is polynomially bounded.
//
// Reports |T| (representatives) and |B| (primary database facts) as
// counters next to the construction wall time: polynomial growth for the
// tractable classes (path, ski), explosive growth for the token rings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <thread>

#include "bench/bench_util.h"
#include "eval/fixpoint.h"
#include "spec/specification.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

void BuildAndReport(benchmark::State& state, const ParsedUnit& unit) {
  int64_t reps = 0;
  std::size_t primary = 0;
  for (auto _ : state) {
    auto spec = BuildSpecification(unit.program, unit.database);
    if (!spec.ok()) {
      state.SkipWithError(spec.status().ToString().c_str());
      return;
    }
    reps = spec->num_representatives();
    primary = spec->SizeInFacts();
  }
  state.counters["T_size"] = static_cast<double>(reps);
  state.counters["B_size"] = static_cast<double>(primary);
  state.counters["facts_n"] = static_cast<double>(unit.database.size());
}

void BM_SpecPath(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  std::mt19937 rng(777);
  ParsedUnit unit = bench::MustParse(
      workload::PathProgramSource() +
      workload::RandomGraphFactsSource(edges / 2, edges, &rng));
  BuildAndReport(state, unit);
}
BENCHMARK(BM_SpecPath)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SpecSki(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(workload::SkiScheduleSource(
      static_cast<int>(state.range(0)), /*year_len=*/28, /*winter_len=*/8,
      /*holidays=*/2));
  BuildAndReport(state, unit);
}
BENCHMARK(BM_SpecSki)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// The intractable contrast: |T| = b + c + p explodes with the lcm.
void BM_SpecTokenRings(benchmark::State& state) {
  std::vector<int> primes =
      bench::FirstPrimes(static_cast<int>(state.range(0)));
  ParsedUnit unit = bench::MustParse(workload::TokenRingSource(primes));
  BuildAndReport(state, unit);
}
BENCHMARK(BM_SpecTokenRings)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

// Full-size paper scenario: the 365-day year with three seasons.
void BM_SpecSkiFullYear(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(workload::SkiScheduleSource(
      static_cast<int>(state.range(0)), /*year_len=*/365, /*winter_len=*/91,
      /*holidays=*/13));
  BuildAndReport(state, unit);
}
BENCHMARK(BM_SpecSkiFullYear)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

// Metered pass behind $CHRONOLOG_METRICS_OUT: re-runs representative
// spec-build workloads with a chronolog_obs registry attached and writes the
// combined dump (plus the host's hardware_concurrency, which the bench JSON
// header records) to that path. Covers every instrumented path:
//
//  * progressive workloads (path, ski, token rings) -> forward.*;
//  * the `seen`-augmented rings are non-progressive -> period.* doubling
//    plus the sequential fixpoint.* instruments;
//  * a wide-delta product workload at num_threads = 4 -> fixpoint.parallel.*
//    (shard timings and the imbalance gauge need real pool tasks).
//
// bench/ci.sh fails the build if any histogram in this dump is empty —
// instruments are created at phase entry, so an empty one is dead
// instrumentation, not an idle phase.
void DumpSpecBuildMetrics(const char* path) {
  MetricsRegistry metrics;
  TraceBuffer trace;

  auto build_spec = [&](const std::string& src, int threads) {
    ParsedUnit unit = bench::MustParse(src);
    PeriodDetectionOptions options;
    options.metrics = &metrics;
    options.trace = &trace;
    options.num_threads = threads;
    auto spec = BuildSpecification(unit.program, unit.database, options);
    if (!spec.ok()) {
      LogError("bench.metered_spec_build_failed")
          .Str("status", spec.status().ToString());
    }
  };

  std::mt19937 rng(777);
  build_spec(workload::PathProgramSource() +
                 workload::RandomGraphFactsSource(32, 64, &rng),
             /*threads=*/1);
  build_spec(workload::SkiScheduleSource(3, /*year_len=*/28, /*winter_len=*/8,
                                         /*holidays=*/2),
             /*threads=*/1);
  build_spec(workload::TokenRingSource({2, 3, 5}), /*threads=*/1);
  build_spec(workload::TokenRingSource({2, 3, 5}) + "seen(X) :- tok(T, X).\n",
             /*threads=*/1);

  // Parallel rounds need a delta of >= 32 facts to leave the sequential
  // fast path; a 48 x 48 product gives every pool worker real shards.
  {
    std::string src;
    for (int i = 0; i < 48; ++i) src += "n(c" + std::to_string(i) + ").\n";
    src += "p(X, Y) :- n(X), n(Y).\n";
    ParsedUnit unit = bench::MustParse(src);
    FixpointOptions fp;
    fp.max_time = 4;
    fp.num_threads = 4;
    fp.metrics = &metrics;
    fp.trace = &trace;
    auto model = SemiNaiveFixpoint(unit.program, unit.database, fp);
    if (!model.ok()) {
      LogError("bench.metered_parallel_fixpoint_failed")
          .Str("status", model.status().ToString());
    }
  }

  std::ofstream out(path);
  out << "{\"hardware_concurrency\":" << std::thread::hardware_concurrency()
      << ",\"metrics\":" << metrics.ToJson()
      << ",\"trace_events\":" << trace.size()
      << ",\"trace_dropped\":" << trace.dropped() << "}\n";
  LogInfo("bench.metrics_dump")
      .Str("path", path)
      .Uint("trace_events", trace.size());
}

// Chrome-trace pass behind $CHRONOLOG_TRACE_OUT: builds the largest
// spec-build configuration in the suite (the full-year ski schedule at four
// resorts) with a fresh TraceBuffer and writes the Perfetto-loadable export.
// run_benches.sh stamps this next to the bench JSON as BENCH_PR5.trace.json.
void DumpSpecBuildTrace(const char* path) {
  MetricsRegistry metrics;
  TraceBuffer trace;
  ParsedUnit unit = bench::MustParse(workload::SkiScheduleSource(
      /*resorts=*/4, /*year_len=*/365, /*winter_len=*/91, /*holidays=*/13));
  PeriodDetectionOptions options;
  options.metrics = &metrics;
  options.trace = &trace;
  auto spec = BuildSpecification(unit.program, unit.database, options);
  if (!spec.ok()) {
    LogError("bench.trace_spec_build_failed")
        .Str("status", spec.status().ToString());
    return;
  }
  std::ofstream out(path);
  out << trace.ToChromeTraceJson();
  LogInfo("bench.trace_dump")
      .Str("path", path)
      .Uint("trace_events", trace.size())
      .Uint("trace_dropped", trace.dropped());
}

}  // namespace chronolog

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("CHRONOLOG_METRICS_OUT")) {
    chronolog::DumpSpecBuildMetrics(path);
  }
  if (const char* path = std::getenv("CHRONOLOG_TRACE_OUT")) {
    chronolog::DumpSpecBuildTrace(path);
  }
  return 0;
}
