// Experiment E3 (DESIGN.md): Theorem 4.1 — the relational specification
// S_{Z∧D} = (T, B, W) is polynomially sized and polynomially computable iff
// the period is polynomially bounded.
//
// Reports |T| (representatives) and |B| (primary database facts) as
// counters next to the construction wall time: polynomial growth for the
// tractable classes (path, ski), explosive growth for the token rings.

#include <benchmark/benchmark.h>

#include <random>

#include "bench/bench_util.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

void BuildAndReport(benchmark::State& state, const ParsedUnit& unit) {
  int64_t reps = 0;
  std::size_t primary = 0;
  for (auto _ : state) {
    auto spec = BuildSpecification(unit.program, unit.database);
    if (!spec.ok()) {
      state.SkipWithError(spec.status().ToString().c_str());
      return;
    }
    reps = spec->num_representatives();
    primary = spec->SizeInFacts();
  }
  state.counters["T_size"] = static_cast<double>(reps);
  state.counters["B_size"] = static_cast<double>(primary);
  state.counters["facts_n"] = static_cast<double>(unit.database.size());
}

void BM_SpecPath(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  std::mt19937 rng(777);
  ParsedUnit unit = bench::MustParse(
      workload::PathProgramSource() +
      workload::RandomGraphFactsSource(edges / 2, edges, &rng));
  BuildAndReport(state, unit);
}
BENCHMARK(BM_SpecPath)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_SpecSki(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(workload::SkiScheduleSource(
      static_cast<int>(state.range(0)), /*year_len=*/28, /*winter_len=*/8,
      /*holidays=*/2));
  BuildAndReport(state, unit);
}
BENCHMARK(BM_SpecSki)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// The intractable contrast: |T| = b + c + p explodes with the lcm.
void BM_SpecTokenRings(benchmark::State& state) {
  std::vector<int> primes =
      bench::FirstPrimes(static_cast<int>(state.range(0)));
  ParsedUnit unit = bench::MustParse(workload::TokenRingSource(primes));
  BuildAndReport(state, unit);
}
BENCHMARK(BM_SpecTokenRings)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

// Full-size paper scenario: the 365-day year with three seasons.
void BM_SpecSkiFullYear(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(workload::SkiScheduleSource(
      static_cast<int>(state.range(0)), /*year_len=*/365, /*winter_len=*/91,
      /*holidays=*/13));
  BuildAndReport(state, unit);
}
BENCHMARK(BM_SpecSkiFullYear)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
