// Experiment E7 (DESIGN.md): the Theorem 6.2 reduction S -> S'. Strongly
// k-bounded Datalog maps to I-periodic temporal programs (I-period (k, 1)),
// unbounded Datalog to programs whose periodicity onset b grows with the
// database:
//
//  * bounded two-hop reachability: detected (b, p) = (const, 1) for every
//    chain length;
//  * transitive closure: p = 1 (the copy rules are inflationary) but b
//    tracks the chain diameter — no database-independent period exists.

#include <benchmark/benchmark.h>

#include <string>

#include "analysis/temporalize.h"
#include "bench/bench_util.h"
#include "spec/period.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

std::string ChainEdges(int n) {
  std::string edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges += "edge(v" + std::to_string(i) + ", v" + std::to_string(i + 1) +
             ").\n";
  }
  return edges;
}

void TemporalizeAndDetect(benchmark::State& state, const std::string& src) {
  ParsedUnit datalog = bench::MustParse(src);
  auto temporal = TemporalizeDatalog(datalog.program, datalog.database);
  if (!temporal.ok()) {
    state.SkipWithError(temporal.status().ToString().c_str());
    return;
  }
  Period period;
  for (auto _ : state) {
    auto detection =
        DetectPeriod(temporal->program, temporal->database);
    if (!detection.ok()) {
      state.SkipWithError(detection.status().ToString().c_str());
      return;
    }
    period = detection->period;
  }
  state.counters["period_b"] = static_cast<double>(period.b);
  state.counters["period_p"] = static_cast<double>(period.p);
}

void BM_TemporalizedBoundedDatalog(benchmark::State& state) {
  TemporalizeAndDetect(state, workload::BoundedDatalogSource() +
                                  ChainEdges(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_TemporalizedBoundedDatalog)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_TemporalizedTransitiveClosure(benchmark::State& state) {
  TemporalizeAndDetect(state, workload::TransitiveClosureDatalogSource() +
                                  ChainEdges(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_TemporalizedTransitiveClosure)
    ->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// The transformation itself is linear in the program + database size.
void BM_TemporalizeTransformOnly(benchmark::State& state) {
  ParsedUnit datalog = bench::MustParse(
      workload::TransitiveClosureDatalogSource() +
      ChainEdges(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto temporal = TemporalizeDatalog(datalog.program, datalog.database);
    if (!temporal.ok()) {
      state.SkipWithError(temporal.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(temporal->program.rules().size());
  }
}
BENCHMARK(BM_TemporalizeTransformOnly)
    ->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
