// Experiment E8 (DESIGN.md): engine ablation. The paper's complexity
// results do not depend on semi-naive evaluation, but a credible engine
// offers it; this bench quantifies the design choices:
//
//  * naive vs semi-naive truncated fixpoints (same least model; semi-naive
//    avoids re-deriving the whole segment every round);
//  * the forward simulator vs the generic fixpoint for progressive
//    programs (per-timestep evaluation plus exact period detection).
//
// The `derived` counter shows the re-derivation gap directly.

#include <benchmark/benchmark.h>

#include <random>

#include "bench/bench_util.h"
#include "eval/fixpoint.h"
#include "eval/forward.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit PathUnit(int edges) {
  std::mt19937 rng(1001);
  return bench::MustParse(
      workload::PathProgramSource() +
      workload::RandomGraphFactsSource(edges / 2, edges, &rng));
}

void BM_NaiveFixpoint(benchmark::State& state) {
  ParsedUnit unit = PathUnit(static_cast<int>(state.range(0)));
  FixpointOptions options;
  options.max_time = state.range(0) / 2 + 4;
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    auto model = NaiveFixpoint(unit.program, unit.database, options, &stats);
    if (!model.ok()) state.SkipWithError(model.status().ToString().c_str());
    benchmark::DoNotOptimize(model->size());
  }
  state.counters["derived"] = static_cast<double>(stats.derived);
}
BENCHMARK(BM_NaiveFixpoint)
    ->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Index ablation: identical semi-naive fixpoint with hash-join column
// indexes disabled (pure nested-loop matching).
void BM_SemiNaiveNoIndex(benchmark::State& state) {
  ParsedUnit unit = PathUnit(static_cast<int>(state.range(0)));
  FixpointOptions options;
  options.max_time = state.range(0) / 2 + 4;
  options.use_index = false;
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    auto model =
        SemiNaiveFixpoint(unit.program, unit.database, options, &stats);
    if (!model.ok()) state.SkipWithError(model.status().ToString().c_str());
    benchmark::DoNotOptimize(model->size());
  }
  state.counters["match_steps"] = static_cast<double>(stats.match_steps);
}
BENCHMARK(BM_SemiNaiveNoIndex)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_SemiNaiveFixpoint(benchmark::State& state) {
  ParsedUnit unit = PathUnit(static_cast<int>(state.range(0)));
  FixpointOptions options;
  options.max_time = state.range(0) / 2 + 4;
  EvalStats stats;
  for (auto _ : state) {
    stats = EvalStats();
    auto model =
        SemiNaiveFixpoint(unit.program, unit.database, options, &stats);
    if (!model.ok()) state.SkipWithError(model.status().ToString().c_str());
    benchmark::DoNotOptimize(model->size());
  }
  state.counters["derived"] = static_cast<double>(stats.derived);
  state.counters["match_steps"] = static_cast<double>(stats.match_steps);
}
BENCHMARK(BM_SemiNaiveFixpoint)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_ForwardSimulator(benchmark::State& state) {
  ParsedUnit unit = PathUnit(static_cast<int>(state.range(0)));
  EvalStats stats;
  for (auto _ : state) {
    auto result = ForwardSimulate(unit.program, unit.database);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    stats = result->stats;
    benchmark::DoNotOptimize(result->period.p);
  }
  state.counters["derived"] = static_cast<double>(stats.derived);
}
BENCHMARK(BM_ForwardSimulator)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
