// Supplementary engine-feature benchmarks (not tied to a paper claim):
//
//  * provenance recording overhead vs the plain semi-naive fixpoint
//    (the cost of keeping one hyperresolution proof per fact);
//  * specification serialisation / deserialisation throughput;
//  * goal-directed slicing: evaluation cost with and without irrelevant
//    rule clusters in the program.

#include <benchmark/benchmark.h>

#include <random>

#include "analysis/slice.h"
#include "bench/bench_util.h"
#include "eval/fixpoint.h"
#include "eval/provenance.h"
#include "spec/serialize.h"
#include "spec/specification.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

ParsedUnit PathUnit(int edges) {
  std::mt19937 rng(555);
  return bench::MustParse(
      workload::PathProgramSource() +
      workload::RandomGraphFactsSource(edges / 2, edges, &rng));
}

void BM_FixpointPlain(benchmark::State& state) {
  ParsedUnit unit = PathUnit(static_cast<int>(state.range(0)));
  FixpointOptions options;
  options.max_time = state.range(0) / 2 + 4;
  for (auto _ : state) {
    auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
    if (!model.ok()) state.SkipWithError(model.status().ToString().c_str());
    benchmark::DoNotOptimize(model->size());
  }
}
BENCHMARK(BM_FixpointPlain)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_FixpointWithProvenance(benchmark::State& state) {
  ParsedUnit unit = PathUnit(static_cast<int>(state.range(0)));
  FixpointOptions options;
  options.max_time = state.range(0) / 2 + 4;
  std::size_t proofs = 0;
  for (auto _ : state) {
    auto forest =
        MaterializeWithProvenance(unit.program, unit.database, options);
    if (!forest.ok()) state.SkipWithError(forest.status().ToString().c_str());
    proofs = forest->size();
  }
  state.counters["proofs"] = static_cast<double>(proofs);
}
BENCHMARK(BM_FixpointWithProvenance)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_SerializeSpec(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(workload::SkiScheduleSource(
      static_cast<int>(state.range(0)), 28, 8, 2));
  auto spec = BuildSpecification(unit.program, unit.database);
  if (!spec.ok()) std::abort();
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::string text = SerializeSpecification(*spec);
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_SerializeSpec)->Arg(4)->Arg(32)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_DeserializeSpec(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(workload::SkiScheduleSource(
      static_cast<int>(state.range(0)), 28, 8, 2));
  auto spec = BuildSpecification(unit.program, unit.database);
  if (!spec.ok()) std::abort();
  std::string text = SerializeSpecification(*spec);
  for (auto _ : state) {
    auto loaded = DeserializeSpecification(text);
    if (!loaded.ok()) state.SkipWithError(loaded.status().ToString().c_str());
    benchmark::DoNotOptimize(loaded->SizeInFacts());
  }
}
BENCHMARK(BM_DeserializeSpec)->Arg(4)->Arg(32)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

/// Path program plus `extra` irrelevant delay-chain clusters: slicing for
/// the `path` goal drops them before evaluation.
std::string PaddedPathSource(int extra) {
  std::mt19937 rng(777);
  std::string src = workload::PathProgramSource() +
                    workload::RandomGraphFactsSource(16, 32, &rng);
  for (int i = 0; i < extra; ++i) {
    src += "noise" + std::to_string(i) + "(T+3, X) :- noise" +
           std::to_string(i) + "(T, X).\n";
    src += "noise" + std::to_string(i) + "(0..2, n" + std::to_string(i % 16) +
           ").\n";
  }
  return src;
}

void BM_EvalUnsliced(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(
      PaddedPathSource(static_cast<int>(state.range(0))));
  FixpointOptions options;
  options.max_time = 24;
  for (auto _ : state) {
    auto model = SemiNaiveFixpoint(unit.program, unit.database, options);
    if (!model.ok()) state.SkipWithError(model.status().ToString().c_str());
    benchmark::DoNotOptimize(model->size());
  }
}
BENCHMARK(BM_EvalUnsliced)->Arg(0)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_EvalSliced(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(
      PaddedPathSource(static_cast<int>(state.range(0))));
  PredicateId path = unit.program.vocab().FindPredicate("path");
  auto slice = SliceForGoals(unit.program, {path});
  if (!slice.ok()) std::abort();
  Database db = SliceDatabase(unit.database, slice->relevant);
  FixpointOptions options;
  options.max_time = 24;
  for (auto _ : state) {
    auto model = SemiNaiveFixpoint(slice->program, db, options);
    if (!model.ok()) state.SkipWithError(model.status().ToString().c_str());
    benchmark::DoNotOptimize(model->size());
  }
  state.counters["kept_rules"] =
      static_cast<double>(slice->program.rules().size());
}
BENCHMARK(BM_EvalSliced)->Arg(0)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
