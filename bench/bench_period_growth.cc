// Experiment E2 (DESIGN.md): Theorem 3.1 vs Theorems 5.1 / 6.1.
//
// With a FIXED program and a growing database:
//  * token rings (not multi-separable, not inflationary): minimal period
//    lcm(ring lengths) — exponential in the unary database size;
//  * ripple-carry binary counter: period 2^bits — exponential with a
//    constant normal program;
//  * the inflationary `path` program: period p = 1 always (Theorem 5.1);
//  * the multi-separable ski schedule: period independent of the number of
//    resorts (Theorem 6.1/6.5).
//
// The `period_p` counter carries the headline number; wall time tracks it.

#include <benchmark/benchmark.h>

#include <random>

#include "bench/bench_util.h"
#include "spec/period.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

void DetectAndReport(benchmark::State& state, const ParsedUnit& unit,
                     int64_t max_horizon = 2'000'000) {
  PeriodDetectionOptions options;
  options.max_horizon = max_horizon;
  Period period;
  for (auto _ : state) {
    auto detection = DetectPeriod(unit.program, unit.database, options);
    if (!detection.ok()) {
      state.SkipWithError(detection.status().ToString().c_str());
      return;
    }
    period = detection->period;
  }
  state.counters["period_b"] = static_cast<double>(period.b);
  state.counters["period_p"] = static_cast<double>(period.p);
  state.counters["facts_n"] = static_cast<double>(unit.database.size());
}

// Database size n = sum of the first k primes; minimal period = their
// product, i.e. exp(Theta(sqrt(n log n))).
void BM_PeriodTokenRings(benchmark::State& state) {
  std::vector<int> primes =
      bench::FirstPrimes(static_cast<int>(state.range(0)));
  ParsedUnit unit = bench::MustParse(workload::TokenRingSource(primes));
  DetectAndReport(state, unit);
}
BENCHMARK(BM_PeriodTokenRings)
    ->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

// Database size n = bits; minimal period 2^n.
void BM_PeriodBinaryCounter(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(
      workload::BinaryCounterSource(static_cast<int>(state.range(0))));
  DetectAndReport(state, unit);
}
BENCHMARK(BM_PeriodBinaryCounter)
    ->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)
    ->Unit(benchmark::kMillisecond);

// Inflationary contrast: p = 1 regardless of database size (Theorem 5.1).
void BM_PeriodInflationaryPath(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  std::mt19937 rng(2222);
  ParsedUnit unit = bench::MustParse(
      workload::PathProgramSource() +
      workload::RandomGraphFactsSource(edges / 2, edges, &rng));
  DetectAndReport(state, unit);
}
BENCHMARK(BM_PeriodInflationaryPath)
    ->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// I-periodic contrast: the ski schedule's period does not grow with the
// number of resorts (Theorem 6.5: the I-period is database-independent).
void BM_PeriodSkiResorts(benchmark::State& state) {
  ParsedUnit unit = bench::MustParse(workload::SkiScheduleSource(
      static_cast<int>(state.range(0)), /*year_len=*/28, /*winter_len=*/8,
      /*holidays=*/2));
  DetectAndReport(state, unit);
}
BENCHMARK(BM_PeriodSkiResorts)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
