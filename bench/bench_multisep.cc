// Experiment E6 (DESIGN.md): Section 6 — multi-separability is a purely
// syntactic, polynomial-time check, and multi-separable programs are
// I-periodic (Theorem 6.5): their minimal period does not grow with the
// database.
//
// Three parts:
//  1. CheckSeparability wall time vs program size (cheap, linear-ish);
//  2. exact I-period computation (Theorem 6.3 skeleton enumeration) vs the
//     look-back bit budget;
//  3. the I-periodicity evidence: detected minimal periods for growing
//     databases under a fixed multi-separable program stay constant
//     (counter `period_p`).

#include <benchmark/benchmark.h>

#include <random>

#include "analysis/classify.h"
#include "analysis/iperiod.h"
#include "bench/bench_util.h"
#include "spec/period.h"
#include "workload/generators.h"

namespace chronolog {
namespace {

void BM_MultiSepCheck(benchmark::State& state) {
  // Growing multi-separable program: one delay chain per predicate.
  std::vector<int> delays;
  for (int i = 0; i < state.range(0); ++i) delays.push_back(2 + i % 5);
  ParsedUnit unit = bench::MustParse(workload::DelayChainSource(delays));
  bool verdict = false;
  for (auto _ : state) {
    DependencyGraph graph(unit.program);
    SeparabilityReport report = CheckSeparability(unit.program, graph);
    verdict = report.multi_separable;
    benchmark::DoNotOptimize(verdict);
  }
  state.counters["multi_separable"] = verdict ? 1 : 0;
  state.counters["rules"] = static_cast<double>(unit.program.rules().size());
}
BENCHMARK(BM_MultiSepCheck)
    ->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

void BM_ExactIPeriod(benchmark::State& state) {
  // 2 predicates x look-back `delay`: 2^(2*delay) skeleton initial windows.
  const int delay = static_cast<int>(state.range(0));
  ParsedUnit unit =
      bench::MustParse(workload::DelayChainSource({delay, delay + 1}));
  IPeriodOptions options;
  options.max_bits = 24;
  uint64_t simulations = 0;
  int64_t p0 = 0;
  for (auto _ : state) {
    auto result = ComputeIPeriod(unit.program, options);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    simulations = result->simulations;
    p0 = result->period.p;
  }
  state.counters["skeletons"] = static_cast<double>(simulations);
  state.counters["iperiod_p"] = static_cast<double>(p0);
}
BENCHMARK(BM_ExactIPeriod)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

// I-periodicity evidence: fixed multi-separable program, database grows by
// seeding facts at more (and later) time points — `period_p` stays put.
void BM_IPeriodicityUnderGrowingDatabase(benchmark::State& state) {
  const int facts = static_cast<int>(state.range(0));
  std::string src = "a(T+6, X) :- a(T, X).\nb(T+4, X) :- b(T, X), a(T, X).\n";
  std::mt19937 rng(31);
  std::uniform_int_distribution<int> time_of(0, facts);
  for (int i = 0; i < facts; ++i) {
    src += (i % 2 == 0 ? "a(" : "b(") + std::to_string(time_of(rng)) +
           ", e" + std::to_string(i % 7) + ").\n";
  }
  ParsedUnit unit = bench::MustParse(src);
  Period period;
  for (auto _ : state) {
    auto detection = DetectPeriod(unit.program, unit.database);
    if (!detection.ok()) {
      state.SkipWithError(detection.status().ToString().c_str());
      return;
    }
    period = detection->period;
  }
  state.counters["period_p"] = static_cast<double>(period.p);
  state.counters["facts_n"] = static_cast<double>(unit.database.size());
}
BENCHMARK(BM_IPeriodicityUnderGrowingDatabase)
    ->Arg(8)->Arg(32)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

// The non-multi-separable contrast under the same harness: token rings'
// period *does* grow with the database (cf. bench_period_growth).
void BM_NonMultiSepContrast(benchmark::State& state) {
  std::vector<int> primes =
      bench::FirstPrimes(static_cast<int>(state.range(0)));
  ParsedUnit unit = bench::MustParse(workload::TokenRingSource(primes));
  Period period;
  for (auto _ : state) {
    auto detection = DetectPeriod(unit.program, unit.database);
    if (!detection.ok()) {
      state.SkipWithError(detection.status().ToString().c_str());
      return;
    }
    period = detection->period;
  }
  state.counters["period_p"] = static_cast<double>(period.p);
  state.counters["facts_n"] = static_cast<double>(unit.database.size());
}
BENCHMARK(BM_NonMultiSepContrast)
    ->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace chronolog

BENCHMARK_MAIN();
