#!/usr/bin/env bash
# Runs the headline benchmark suites (relational-specification builds,
# algorithm-BT scaling, and end-to-end query serving over loopback HTTP) and
# distils their google-benchmark JSON into BENCH_PR<n>.json: one record per
# benchmark with the median wall time in milliseconds, the thread count it
# ran with, and the temporal horizon (|T| representatives) where the
# workload reports one.
#
# Usage: bench/run_benches.sh [build_dir] [output_json]
# The default output name is BENCH_PR${BENCH_PR}.json (BENCH_PR defaults to
# the current PR number below) so successive PRs don't overwrite each
# other's snapshots.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_PR${BENCH_PR:-10}.json}"
REPS="${BENCH_REPETITIONS:-3}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
GIT_COMMIT="$(git rev-parse HEAD 2>/dev/null || echo unknown)"

for bench in bench_spec_build bench_bt_scaling bench_serve_qps; do
  bin="$BUILD_DIR/bench/$bench"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (run: cmake --build $BUILD_DIR --target $bench)" >&2
    exit 1
  fi
  echo "== $bench (repetitions=$REPS) =="
  # bench_spec_build honours CHRONOLOG_METRICS_OUT: after the (unmetered)
  # timing runs it re-runs representative workloads with a chronolog_obs
  # registry attached and dumps the per-phase histograms + parallel
  # imbalance gauges, which get merged into the output below.
  # bench_spec_build also honours CHRONOLOG_TRACE_OUT: a Chrome trace of
  # the largest spec-build configuration, copied next to the output JSON so
  # perf regressions come with an openable Perfetto timeline.
  metrics_env=()
  if [[ "$bench" == bench_spec_build ]]; then
    metrics_env=("CHRONOLOG_METRICS_OUT=$TMP/spec_metrics.json"
                 "CHRONOLOG_TRACE_OUT=$TMP/spec_trace.json")
  fi
  env "${metrics_env[@]}" "$bin" \
    --benchmark_repetitions="$REPS" \
    --benchmark_report_aggregates_only=true \
    --benchmark_format=json \
    --benchmark_out="$TMP/$bench.json" \
    --benchmark_out_format=json >/dev/null
done

if [[ -s "$TMP/spec_trace.json" ]]; then
  TRACE_OUT="${OUT%.json}.trace.json"
  cp "$TMP/spec_trace.json" "$TRACE_OUT"
  echo "wrote $TRACE_OUT (Chrome trace of the largest spec build)"
fi

python3 - "$TMP" "$OUT" "$GIT_COMMIT" <<'PY'
import json
import os
import sys

tmp_dir, out_path, git_commit = sys.argv[1], sys.argv[2], sys.argv[3]
# Host context matters for the threaded variants: on a single-CPU host they
# report sequential time plus pool overhead, not a speedup. The commit hash
# ties the snapshot to the exact tree it measured.
records = {"_host": {"cpus": os.cpu_count(), "git_commit": git_commit}}

# chronolog_obs dump from the metered spec-build pass: the header records
# std::thread::hardware_concurrency() as the engine saw it, and "_metrics"
# carries the per-phase histograms and the parallel-imbalance gauge.
metrics_path = f"{tmp_dir}/spec_metrics.json"
if os.path.exists(metrics_path):
    with open(metrics_path) as fh:
        dump = json.load(fh)
    records["_host"]["hardware_concurrency"] = dump["hardware_concurrency"]
    records["_metrics"] = {
        "histograms": dump["metrics"]["histograms"],
        "gauges": dump["metrics"]["gauges"],
        "counters": dump["metrics"]["counters"],
        "trace_events": dump["trace_events"],
    }
for suite in ("bench_spec_build", "bench_bt_scaling", "bench_serve_qps"):
    with open(f"{tmp_dir}/{suite}.json") as fh:
        report = json.load(fh)
    for bench in report["benchmarks"]:
        # Aggregate-only output: keep the median rows.
        if bench.get("aggregate_name") != "median":
            continue
        name = bench["run_name"]
        assert bench["time_unit"] == "ms", (name, bench["time_unit"])
        # Workload counters (num_threads, T_size) are flattened into the
        # entry by google-benchmark; absent counters mean a sequential run /
        # no reported horizon.
        record = {
            "suite": suite,
            "median_wall_ms": round(bench["real_time"], 3),
            "threads": int(bench.get("num_threads", 1)),
        }
        horizon = bench.get("T_size")
        record["horizon"] = int(horizon) if horizon is not None else None
        records[name] = record

with open(out_path, "w") as fh:
    json.dump(records, fh, indent=2, sort_keys=True)
    fh.write("\n")
print(f"wrote {out_path} ({len(records)} benchmarks)")
PY
