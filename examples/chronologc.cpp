// chronologc — batch compiler for temporal deductive databases.
//
// Reads one or more .tdl source files (rules + facts), prints the
// classification report, compiles the relational specification and
// optionally writes it out as a portable artefact that answers queries
// without re-running period detection (see spec/serialize.h).
//
// Usage:
//   ./build/examples/chronologc input.tdl [more.tdl ...] [-o out.spec]
//
// Exit codes: 0 ok, 1 usage/IO, 2 parse/compile error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "spec/serialize.h"

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string output;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing argument to -o\n");
        return 1;
      }
      output = argv[++i];
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr,
                 "usage: chronologc input.tdl [more.tdl ...] [-o out.spec]\n");
    return 1;
  }

  std::string source;
  for (const std::string& path : inputs) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    source += buffer.str();
    source += "\n";
  }

  auto tdd = chronolog::TemporalDatabase::FromSource(source);
  if (!tdd.ok()) {
    std::fprintf(stderr, "error: %s\n", tdd.status().ToString().c_str());
    return 2;
  }

  std::printf("%s", tdd->Describe().c_str());

  auto spec = tdd->specification();
  if (!spec.ok()) {
    std::fprintf(stderr, "compilation failed: %s\n",
                 spec.status().ToString().c_str());
    return 2;
  }

  if (!output.empty()) {
    std::ofstream out(output);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", output.c_str());
      return 1;
    }
    out << chronolog::SerializeSpecification(**spec);
    std::printf("wrote %s (%zu facts, %lld representatives)\n",
                output.c_str(), (*spec)->SizeInFacts(),
                static_cast<long long>((*spec)->num_representatives()));
  }
  return 0;
}
