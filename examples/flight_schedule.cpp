// The paper's Section 2 travel-agent scenario, end to end:
//
//   "flights to ski resorts are scheduled every seventh day during
//    off-season, every second day during the winter and every day during
//    winter holidays"
//
// Day numbers stand for dates (the paper's 12/20/89-style dates are
// abbreviations for terms (..((0+1)+1)..+1) anyway). Day 0 = Dec 20; winter
// runs for 91 days, the rest of the 365-day year is off-season, and the
// first 13 days are the holiday season.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/flight_schedule

#include <cstdio>

#include "core/engine.h"
#include "workload/generators.h"

int main() {
  using chronolog::TemporalDatabase;

  std::string source = chronolog::workload::SkiScheduleSource(
      /*resorts=*/3, /*year_len=*/365, /*winter_len=*/91, /*holidays=*/13);
  auto tdd = TemporalDatabase::FromSource(source);
  if (!tdd.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 tdd.status().ToString().c_str());
    return 1;
  }

  // Section 2 of the paper: this rule set is multi-separable (hence
  // I-periodic and tractable) but not separable and not inflationary.
  std::printf("classification:\n%s\n",
              tdd->classification().ToString().c_str());
  auto inflationary = tdd->inflationary();
  if (inflationary.ok()) {
    std::printf("inflationary: %s\n\n",
                inflationary->inflationary ? "yes" : "no");
  }

  // "To verify whether a plane leaves to Hunter on a given day t0, check
  // whether plane(t0, 'Hunter') is implied by the rules and the database."
  // Once the relational specification is built, each check is a rewrite
  // plus one lookup — even thousands of years out.
  const char* queries[] = {
      "plane(0, resort0)",      // first holiday: daily flights
      "plane(5, resort0)",      // still holidays
      "plane(14, resort0)",     // holidays over, winter: every 2nd day
      "plane(15, resort0)",
      "plane(100, resort0)",    // off-season: every 7th day
      "plane(101, resort0)",
      "plane(365, resort0)",    // one year later: same as day 0
      "plane(36500, resort0)",  // a century later
      "plane(3650000, resort0)",
  };
  for (const char* q : queries) {
    auto answer = tdd->Ask(q);
    if (!answer.ok()) {
      std::fprintf(stderr, "query %s failed: %s\n", q,
                   answer.status().ToString().c_str());
      return 1;
    }
    std::printf("%-24s -> %s\n", q, *answer ? "yes" : "no");
  }

  // "We might also ask about all days when a plane leaves to Hunter and
  // this query has infinitely many answers": the open query returns the
  // representative days plus the specification's rewrite rule.
  auto spec = tdd->specification();
  if (spec.ok()) {
    std::printf(
        "\nspecification: |T| = %lld representatives, period (b=%lld, "
        "p=%lld), |B| = %zu facts\n",
        static_cast<long long>((*spec)->num_representatives()),
        static_cast<long long>((*spec)->period().b),
        static_cast<long long>((*spec)->period().p), (*spec)->SizeInFacts());
  }

  auto open = tdd->Query("exists T (plane(T, resort1) & holiday(T))");
  if (open.ok()) {
    std::printf("exists T (plane(T, resort1) & holiday(T)) -> %s\n",
                open->boolean ? "yes" : "no");
  }
  return 0;
}
