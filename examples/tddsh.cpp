// tddsh — an interactive shell for temporal deductive databases.
//
// Usage:
//   ./build/examples/tddsh [file.tdl ...]
//
// Files (and interactive clause input) use the chronolog surface syntax.
// At the prompt:
//
//   plane(0, hunter).            adds a fact (rebuilds the engine)
//   p(T+1) :- p(T).              adds a rule
//   ?- plane(7, hunter).         ground yes-no query
//   ?- exists T (plane(T, X)).   first-order query (free vars enumerated)
//   .describe                    classification, period, spec sizes
//   .spec                        prints the relational specification (T,B,W)
//   .explain plane(7, hunter)    renders a derivation (proof tree)
//   .explain ?- plane(T, X)      EXPLAIN: shape, rewrite rule, join plans
//                                for a query — without executing it
//   .save out.spec               serialises the compiled specification
//   .timeline plane              populated snapshots of one predicate
//   .unfold 20 plane(T, X)       concrete answers up to time 20
//   .metrics [json]              chronolog_obs dump (Prometheus text / JSON)
//   .trace out.json              Chrome trace export (open in Perfetto)
//   .quit                        exit
//
// Dot-commands also accept the historical ":" prefix (`:describe` etc.).
// The engine is built with EngineOptions::collect_metrics, so `.metrics`
// and `.trace` always have the current session's instruments — see
// docs/OBSERVABILITY.md for the catalog.
//
// Demonstrates incremental use of the public API: sources accumulate and
// the engine (with its cached specification) is rebuilt on change.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ast/printer.h"
#include "core/engine.h"
#include "query/answers.h"
#include "query/query_parser.h"
#include "query/query_shape.h"
#include "spec/serialize.h"
#include "spec/specification.h"
#include "util/log.h"

namespace {

using chronolog::TemporalDatabase;

/// Rebuilds the engine from the accumulated sources. Every REPL engine
/// carries the chronolog_obs sinks so `.metrics` / `.trace` always reflect
/// the current session.
chronolog::Result<TemporalDatabase> Rebuild(
    const std::vector<std::string>& sources) {
  std::string all;
  for (const std::string& s : sources) {
    all += s;
    all += "\n";
  }
  chronolog::EngineOptions options;
  options.collect_metrics = true;
  return TemporalDatabase::FromSource(all, options);
}

void RunQuery(TemporalDatabase& tdd, const std::string& text) {
  auto answer = tdd.Query(text);
  if (!answer.ok()) {
    std::printf("error: %s\n", answer.status().ToString().c_str());
    return;
  }
  std::printf("%s", answer->ToString(tdd.vocab()).c_str());
  if (answer->free_var_names.empty()) std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> sources;
  for (int i = 1; i < argc; ++i) {
    std::ifstream file(argv[i]);
    if (!file) {
      chronolog::LogError("tddsh.open_failed").Str("path", argv[i]);
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    sources.push_back(buffer.str());
  }

  auto engine = Rebuild(sources);
  if (!engine.ok()) {
    chronolog::LogError("tddsh.load_failed")
        .Str("status", engine.status().ToString());
    return 1;
  }
  std::printf("chronolog tddsh — %zu file(s) loaded. .quit to exit.\n",
              sources.size());

  std::string line;
  while (true) {
    std::printf("tdd> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim.
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.pop_back();
    }
    std::size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    line = line.substr(start);

    // Dot-commands; the historical ":" prefix stays accepted.
    if (line[0] == '.') line[0] = ':';

    if (line == ":quit" || line == ":q") break;
    if (line.rfind(":metrics", 0) == 0) {
      std::string arg = line.substr(8);
      if (arg == " json") {
        std::printf("%s\n", engine->MetricsJson().c_str());
      } else if (arg.empty()) {
        std::printf("%s", engine->metrics() != nullptr
                              ? engine->metrics()->ToPrometheusText().c_str()
                              : "(metrics collection is off)\n");
      } else {
        std::printf("usage: .metrics [json]\n");
      }
      continue;
    }
    if (line.rfind(":trace ", 0) == 0) {
      std::string path = line.substr(7);
      if (engine->trace() == nullptr) {
        std::printf("error: trace collection is off\n");
        continue;
      }
      std::ofstream out(path);
      if (!out) {
        std::printf("error: cannot open %s\n", path.c_str());
        continue;
      }
      out << engine->trace()->ToChromeTraceJson();
      std::printf("wrote %s (%zu spans, %llu dropped) — open in Perfetto\n",
                  path.c_str(), engine->trace()->size(),
                  static_cast<unsigned long long>(engine->trace()->dropped()));
      continue;
    }
    if (line == ":describe" || line == ":d") {
      std::printf("%s", engine->Describe().c_str());
      continue;
    }
    if (line == ":spec") {
      auto spec = engine->specification();
      if (!spec.ok()) {
        std::printf("error: %s\n", spec.status().ToString().c_str());
      } else {
        std::printf("%s", (*spec)->ToString().c_str());
      }
      continue;
    }
    if (line.rfind(":timeline ", 0) == 0) {
      std::string name = line.substr(10);
      auto spec = engine->specification();
      if (!spec.ok()) {
        std::printf("error: %s\n", spec.status().ToString().c_str());
        continue;
      }
      chronolog::PredicateId pred = engine->vocab().FindPredicate(name);
      if (pred == chronolog::kInvalidPredicate) {
        std::printf("error: unknown predicate '%s'\n", name.c_str());
        continue;
      }
      if (!engine->vocab().predicate(pred).is_temporal) {
        std::printf("'%s' is non-temporal (%zu tuples)\n", name.c_str(),
                    (*spec)->primary().NonTemporal(pred).size());
        continue;
      }
      for (const auto& [time, tuples] :
           (*spec)->primary().Timeline(pred)) {
        std::printf("  t=%-6lld %zu tuple(s)\n",
                    static_cast<long long>(time), tuples.size());
      }
      std::printf("(representatives 0..%lld; rewrite %lld -> %lld)\n",
                  static_cast<long long>((*spec)->num_representatives() - 1),
                  static_cast<long long>((*spec)->rewrite_lhs()),
                  static_cast<long long>((*spec)->rewrite_lhs() -
                                         (*spec)->period().p));
      continue;
    }
    if (line.rfind(":unfold ", 0) == 0) {
      std::istringstream in(line.substr(8));
      long long horizon = 0;
      in >> horizon;
      std::string query;
      std::getline(in, query);
      auto answer = engine->Query(query);
      if (!answer.ok()) {
        std::printf("error: %s\n", answer.status().ToString().c_str());
        continue;
      }
      auto unfolded = chronolog::UnfoldAnswers(*answer, horizon);
      if (!unfolded.ok()) {
        std::printf("error: %s\n", unfolded.status().ToString().c_str());
        continue;
      }
      for (const auto& row : *unfolded) {
        for (std::size_t i = 0; i < row.size(); ++i) {
          if (i > 0) std::printf(", ");
          std::printf("%s = ", answer->free_var_names[i].c_str());
          if (row[i].temporal) {
            std::printf("%lld", static_cast<long long>(row[i].time));
          } else {
            std::printf("%s",
                        engine->vocab().ConstantName(row[i].constant).c_str());
          }
        }
        std::printf("\n");
      }
      std::printf("(%zu answers up to t=%lld)\n", unfolded->size(), horizon);
      continue;
    }
    if (line.rfind(":explain ", 0) == 0) {
      std::string arg = line.substr(9);
      std::size_t arg_start = arg.find_first_not_of(' ');
      if (arg_start != std::string::npos && arg_start > 0) {
        arg = arg.substr(arg_start);
      }
      if (arg.rfind("?-", 0) == 0) {
        // Query EXPLAIN (chronolog_qstats): the plan that would answer the
        // query — shape, rewrite rule, join plans — without executing it.
        std::string query = arg.substr(2);
        if (!query.empty() && query.back() == '.') query.pop_back();
        auto spec = engine->specification();
        if (!spec.ok()) {
          std::printf("error: %s\n", spec.status().ToString().c_str());
          continue;
        }
        auto parsed = chronolog::ParseQuery(query, engine->vocab());
        if (!parsed.ok()) {
          std::printf("error: %s\n", parsed.status().ToString().c_str());
          continue;
        }
        std::printf("shape: %s\n",
                    chronolog::NormalizeQueryShape(query).c_str());
        std::printf("rewrite rule %lld -> %lld (period b=%lld p=%lld, "
                    "%lld representatives)\n",
                    static_cast<long long>((*spec)->rewrite_lhs()),
                    static_cast<long long>((*spec)->rewrite_lhs() -
                                           (*spec)->period().p),
                    static_cast<long long>((*spec)->period().b),
                    static_cast<long long>((*spec)->period().p),
                    static_cast<long long>((*spec)->num_representatives()));
        const chronolog::RulePlanReport& plans = engine->spec_info().plans;
        const auto& rules = engine->program().rules();
        for (std::size_t i = 0; i < rules.size(); ++i) {
          std::printf("rule %zu: %s\n", i,
                      chronolog::RuleToString(rules[i], engine->vocab())
                          .c_str());
          if (i >= plans.size() || plans[i].empty()) {
            std::printf("  (no cached plan — rule never drove a join)\n");
            continue;
          }
          for (const auto& slot : plans[i]) {
            std::printf("  delta=%d time_bound=%s order=[", slot.delta_pos,
                        slot.time_bound ? "yes" : "no");
            for (std::size_t k = 0; k < slot.order.size(); ++k) {
              std::printf("%s%u", k > 0 ? " " : "", slot.order[k]);
            }
            std::printf("] est=%.2f steps/emit", slot.est_steps_per_emit);
            if (slot.observed_emits > 0) {
              std::printf(" observed=%.2f",
                          static_cast<double>(slot.observed_steps) /
                              static_cast<double>(slot.observed_emits));
            }
            std::printf("\n");
          }
        }
        continue;
      }
      auto proof = engine->Explain(arg);
      if (!proof.ok()) {
        std::printf("error: %s\n", proof.status().ToString().c_str());
      } else {
        std::printf("%s", proof->c_str());
      }
      continue;
    }
    if (line.rfind(":save ", 0) == 0) {
      auto spec = engine->specification();
      if (!spec.ok()) {
        std::printf("error: %s\n", spec.status().ToString().c_str());
        continue;
      }
      std::string path = line.substr(6);
      std::ofstream out(path);
      if (!out) {
        std::printf("error: cannot open %s\n", path.c_str());
        continue;
      }
      out << chronolog::SerializeSpecification(**spec);
      std::printf("saved %s\n", path.c_str());
      continue;
    }
    if (line.rfind("?-", 0) == 0) {
      std::string query = line.substr(2);
      if (!query.empty() && query.back() == '.') query.pop_back();
      RunQuery(*engine, query);
      continue;
    }
    // Otherwise: clauses. Validate by rebuilding with the addition; on
    // error the addition is rolled back.
    sources.push_back(line);
    auto next = Rebuild(sources);
    if (!next.ok()) {
      std::printf("error: %s\n", next.status().ToString().c_str());
      sources.pop_back();
      continue;
    }
    engine = std::move(next);
    std::printf("ok\n");
  }
  return 0;
}
