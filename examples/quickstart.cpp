// Quickstart: the paper's running `even` example plus a first-order query.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/engine.h"

int main() {
  using chronolog::TemporalDatabase;

  // A temporal deductive database: rules Z and database D (Section 3 of the
  // paper). `even` holds at 0, 2, 4, ... — infinitely many time points.
  auto tdd = TemporalDatabase::FromSource(R"(
    even(0).
    even(T+2) :- even(T).
  )");
  if (!tdd.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 tdd.status().ToString().c_str());
    return 1;
  }

  // The engine classifies the rules, detects the period of the least model
  // and builds the relational specification (T, B, W).
  std::printf("%s\n", tdd->Describe().c_str());

  // Yes-no queries at arbitrary temporal depth: answered by rewriting the
  // query term into its representative and a single lookup, so depth is
  // irrelevant (contrast with bottom-up evaluation to depth 10^9).
  for (const char* q : {"even(0)", "even(1)", "even(1000000000)",
                        "even(999999999)"}) {
    auto answer = tdd->Ask(q);
    if (!answer.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   answer.status().ToString().c_str());
      return 1;
    }
    std::printf("%-20s -> %s\n", q, *answer ? "yes" : "no");
  }

  // An open query: infinitely many answers, finitely represented by the
  // representative substitutions plus the rewrite rule of the
  // specification (paper, Section 3.3).
  auto open = tdd->Query("even(X)");
  if (!open.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 open.status().ToString().c_str());
    return 1;
  }
  std::printf("\neven(X):\n%s", open->ToString(tdd->vocab()).c_str());

  // A closed first-order query: "every time point is even or its successor
  // is even" — true in the least model under the CWA.
  auto closed = tdd->Query("forall T (even(T) | even(T+1))");
  if (!closed.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 closed.status().ToString().c_str());
    return 1;
  }
  std::printf("\nforall T (even(T) | even(T+1)) -> %s\n",
              closed->boolean ? "yes" : "no");
  return 0;
}
