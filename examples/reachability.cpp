// The paper's Section 2 graph example: bounded-length reachability.
//
//   path(K, X, X)   :- node(X), null(K).
//   path(K+1, X, Z) :- edge(X, Y), path(K, Y, Z).
//   path(K+1, X, Y) :- path(K, X, Y).
//
// "path(K, X, Y)" reads "there is a path of length at most K from X to Y".
// The rule set is inflationary (decidable, Theorem 5.2) and therefore
// tractable (Theorem 5.1) — but NOT I-periodic, because path lengths in an
// arbitrary graph are unbounded.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/reachability [nodes] [edges] [seed]

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>

#include "core/engine.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using chronolog::TemporalDatabase;

  const int nodes = argc > 1 ? std::atoi(argv[1]) : 12;
  const int edges = argc > 2 ? std::atoi(argv[2]) : 20;
  const uint32_t seed = argc > 3 ? static_cast<uint32_t>(std::atoi(argv[3]))
                                 : 42u;
  std::mt19937 rng(seed);

  std::string source =
      chronolog::workload::PathProgramSource() +
      chronolog::workload::RandomGraphFactsSource(nodes, edges, &rng);
  auto tdd = TemporalDatabase::FromSource(source);
  if (!tdd.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 tdd.status().ToString().c_str());
    return 1;
  }

  auto inflationary = tdd->inflationary();
  if (!inflationary.ok()) {
    std::fprintf(stderr, "inflationary check failed: %s\n",
                 inflationary.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %d nodes, %d edges (seed %u)\n", nodes, edges, seed);
  std::printf("inflationary: %s (Theorem 5.2 decision procedure)\n",
              inflationary->inflationary ? "yes" : "no");
  std::printf("multi-separable: %s (path lengths are unbounded)\n\n",
              tdd->classification().multi_separable ? "yes" : "no");

  // Inflationary => the least model's period is (b, 1): after b steps the
  // path relation saturates into plain reachability.
  auto spec = tdd->specification();
  if (!spec.ok()) {
    std::fprintf(stderr, "specification failed: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  std::printf("period: (b=%lld, p=%lld) — saturation after %lld steps\n\n",
              static_cast<long long>((*spec)->period().b),
              static_cast<long long>((*spec)->period().p),
              static_cast<long long>((*spec)->period().b));

  // Hop-bounded and unbounded reachability queries.
  for (const std::string& q :
       {std::string("path(1, n0, n1)"), std::string("path(2, n0, n5)"),
        std::string("path(3, n0, n5)"),
        std::string("path(1000000000, n0, n5)")}) {
    auto answer = tdd->Ask(q);
    if (!answer.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   answer.status().ToString().c_str());
      return 1;
    }
    std::printf("%-28s -> %s\n", q.c_str(), *answer ? "yes" : "no");
  }

  // "Which nodes are reachable from n0 in at most 2 hops?" — open query
  // over the specification.
  auto open = tdd->Query("path(2, n0, X)");
  if (open.ok()) {
    std::printf("\npath(2, n0, X):\n%s",
                open->ToString(tdd->vocab()).c_str());
  }
  return 0;
}
