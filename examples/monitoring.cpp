// Infrastructure monitoring as a temporal deductive database: a scenario
// mixing the paper's two tractable rule shapes.
//
//  * *time-only* rules (Section 6) model recurring schedules: maintenance
//    windows repeat weekly, certificate rotations every 90 days;
//  * *data-only* rules (Section 6) model instantaneous propagation: an
//    incident on a service cascades to everything that depends on it within
//    the same tick.
//
// The program is multi-separable, hence I-periodic and tractable: chronolog
// compiles one finite specification and answers questions about ANY future
// day in constant time — including derivation traces via Explain.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/monitoring

#include <cstdio>

#include "core/engine.h"

int main() {
  using chronolog::TemporalDatabase;

  auto tdd = TemporalDatabase::FromSource(R"(
    % Weekly maintenance window (every 7 days from day 2) and a 90-day
    % certificate-rotation cycle: time-only recursion.
    maintenance(T+7, S) :- maintenance(T, S).
    cert_rotation(T+90, S) :- cert_rotation(T, S).

    % Risk propagates instantaneously through the dependency graph:
    % data-only recursion within a single day.
    @temporal at_risk/2.
    at_risk(T, S) :- maintenance(T, S).
    at_risk(T, S) :- cert_rotation(T, S).
    at_risk(T, X) :- at_risk(T, S), depends_on(X, S).

    % Topology (non-temporal).
    depends_on(api, db).
    depends_on(web, api).
    depends_on(billing, db).

    % Seed events.
    maintenance(2, db).
    cert_rotation(10, api).
  )");
  if (!tdd.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 tdd.status().ToString().c_str());
    return 1;
  }

  std::printf("%s\n", tdd->Describe().c_str());

  // Any future day, constant time: day 2 + 7k has db maintenance, which
  // puts api, web and billing at risk too.
  const char* queries[] = {
      "at_risk(2, web)",      // day 2: db maintenance cascades to web
      "at_risk(3, web)",      // day 3: nothing scheduled
      "at_risk(9, billing)",  // 2+7: weekly window again
      "at_risk(100, api)",    // 10+90: certificate rotation
      "at_risk(7002, web)",   // 2 + 7*1000: far future, same answer shape
  };
  for (const char* q : queries) {
    auto answer = tdd->Ask(q);
    if (!answer.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   answer.status().ToString().c_str());
      return 1;
    }
    std::printf("%-22s -> %s\n", q, *answer ? "yes" : "no");
  }

  // Why is web at risk on day 9? — the ground hyperresolution proof.
  auto proof = tdd->Explain("at_risk(9, web)");
  if (proof.ok()) {
    std::printf("\n:explain at_risk(9, web)\n%s", proof->c_str());
  }

  // Planning query: is there a day when both the weekly window and the
  // certificate rotation hit the db's dependents simultaneously?
  auto both = tdd->Query(
      "exists T (maintenance(T, db) & cert_rotation(T, api))");
  if (both.ok()) {
    std::printf("\nmaintenance(db) and cert_rotation(api) collide: %s\n",
                both->boolean ? "yes" : "no");
  }
  return 0;
}
