file(REMOVE_RECURSE
  "CMakeFiles/inflationary_test.dir/inflationary_test.cc.o"
  "CMakeFiles/inflationary_test.dir/inflationary_test.cc.o.d"
  "inflationary_test"
  "inflationary_test.pdb"
  "inflationary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inflationary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
