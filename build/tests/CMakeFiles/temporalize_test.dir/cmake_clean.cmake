file(REMOVE_RECURSE
  "CMakeFiles/temporalize_test.dir/temporalize_test.cc.o"
  "CMakeFiles/temporalize_test.dir/temporalize_test.cc.o.d"
  "temporalize_test"
  "temporalize_test.pdb"
  "temporalize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporalize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
