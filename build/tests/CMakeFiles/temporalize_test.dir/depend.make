# Empty dependencies file for temporalize_test.
# This may be replaced when dependencies are built.
