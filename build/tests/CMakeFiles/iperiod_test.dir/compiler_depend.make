# Empty compiler generated dependencies file for iperiod_test.
# This may be replaced when dependencies are built.
