file(REMOVE_RECURSE
  "CMakeFiles/iperiod_test.dir/iperiod_test.cc.o"
  "CMakeFiles/iperiod_test.dir/iperiod_test.cc.o.d"
  "iperiod_test"
  "iperiod_test.pdb"
  "iperiod_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iperiod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
