
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lexer_test.cc" "tests/CMakeFiles/lexer_test.dir/lexer_test.cc.o" "gcc" "tests/CMakeFiles/lexer_test.dir/lexer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/chronolog_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/chronolog_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/chronolog_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/chronolog_query.dir/DependInfo.cmake"
  "/root/repo/build/src/spec/CMakeFiles/chronolog_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/chronolog_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/chronolog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/chronolog_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chronolog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
