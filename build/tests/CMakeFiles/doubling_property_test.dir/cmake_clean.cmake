file(REMOVE_RECURSE
  "CMakeFiles/doubling_property_test.dir/doubling_property_test.cc.o"
  "CMakeFiles/doubling_property_test.dir/doubling_property_test.cc.o.d"
  "doubling_property_test"
  "doubling_property_test.pdb"
  "doubling_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doubling_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
