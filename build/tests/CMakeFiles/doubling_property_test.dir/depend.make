# Empty dependencies file for doubling_property_test.
# This may be replaced when dependencies are built.
