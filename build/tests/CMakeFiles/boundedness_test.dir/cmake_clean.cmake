file(REMOVE_RECURSE
  "CMakeFiles/boundedness_test.dir/boundedness_test.cc.o"
  "CMakeFiles/boundedness_test.dir/boundedness_test.cc.o.d"
  "boundedness_test"
  "boundedness_test.pdb"
  "boundedness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundedness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
