# Empty dependencies file for boundedness_test.
# This may be replaced when dependencies are built.
