# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/forward_test[1]_include.cmake")
include("/root/repo/build/tests/bt_test[1]_include.cmake")
include("/root/repo/build/tests/spec_test[1]_include.cmake")
include("/root/repo/build/tests/classify_test[1]_include.cmake")
include("/root/repo/build/tests/inflationary_test[1]_include.cmake")
include("/root/repo/build/tests/iperiod_test[1]_include.cmake")
include("/root/repo/build/tests/normalize_test[1]_include.cmake")
include("/root/repo/build/tests/temporalize_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/provenance_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/equality_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/slice_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/interval_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/boundedness_test[1]_include.cmake")
include("/root/repo/build/tests/answers_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/doubling_property_test[1]_include.cmake")
