# Empty compiler generated dependencies file for tddsh.
# This may be replaced when dependencies are built.
