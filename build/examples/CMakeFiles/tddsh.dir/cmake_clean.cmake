file(REMOVE_RECURSE
  "CMakeFiles/tddsh.dir/tddsh.cpp.o"
  "CMakeFiles/tddsh.dir/tddsh.cpp.o.d"
  "tddsh"
  "tddsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tddsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
