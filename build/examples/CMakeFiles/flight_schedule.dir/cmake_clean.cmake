file(REMOVE_RECURSE
  "CMakeFiles/flight_schedule.dir/flight_schedule.cpp.o"
  "CMakeFiles/flight_schedule.dir/flight_schedule.cpp.o.d"
  "flight_schedule"
  "flight_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
