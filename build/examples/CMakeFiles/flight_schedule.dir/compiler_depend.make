# Empty compiler generated dependencies file for flight_schedule.
# This may be replaced when dependencies are built.
