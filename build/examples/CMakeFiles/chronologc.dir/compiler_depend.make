# Empty compiler generated dependencies file for chronologc.
# This may be replaced when dependencies are built.
