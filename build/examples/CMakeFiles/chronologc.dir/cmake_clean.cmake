file(REMOVE_RECURSE
  "CMakeFiles/chronologc.dir/chronologc.cpp.o"
  "CMakeFiles/chronologc.dir/chronologc.cpp.o.d"
  "chronologc"
  "chronologc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronologc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
