# Empty dependencies file for chronolog_storage.
# This may be replaced when dependencies are built.
