file(REMOVE_RECURSE
  "CMakeFiles/chronolog_storage.dir/interpretation.cc.o"
  "CMakeFiles/chronolog_storage.dir/interpretation.cc.o.d"
  "CMakeFiles/chronolog_storage.dir/state.cc.o"
  "CMakeFiles/chronolog_storage.dir/state.cc.o.d"
  "libchronolog_storage.a"
  "libchronolog_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronolog_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
