file(REMOVE_RECURSE
  "libchronolog_storage.a"
)
