file(REMOVE_RECURSE
  "CMakeFiles/chronolog_query.dir/answers.cc.o"
  "CMakeFiles/chronolog_query.dir/answers.cc.o.d"
  "CMakeFiles/chronolog_query.dir/query_eval.cc.o"
  "CMakeFiles/chronolog_query.dir/query_eval.cc.o.d"
  "CMakeFiles/chronolog_query.dir/query_parser.cc.o"
  "CMakeFiles/chronolog_query.dir/query_parser.cc.o.d"
  "libchronolog_query.a"
  "libchronolog_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronolog_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
