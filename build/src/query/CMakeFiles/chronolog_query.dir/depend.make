# Empty dependencies file for chronolog_query.
# This may be replaced when dependencies are built.
