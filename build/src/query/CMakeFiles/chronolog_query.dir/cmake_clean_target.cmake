file(REMOVE_RECURSE
  "libchronolog_query.a"
)
