file(REMOVE_RECURSE
  "libchronolog_util.a"
)
