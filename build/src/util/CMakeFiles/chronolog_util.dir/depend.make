# Empty dependencies file for chronolog_util.
# This may be replaced when dependencies are built.
