file(REMOVE_RECURSE
  "CMakeFiles/chronolog_util.dir/status.cc.o"
  "CMakeFiles/chronolog_util.dir/status.cc.o.d"
  "CMakeFiles/chronolog_util.dir/string_util.cc.o"
  "CMakeFiles/chronolog_util.dir/string_util.cc.o.d"
  "CMakeFiles/chronolog_util.dir/symbol_table.cc.o"
  "CMakeFiles/chronolog_util.dir/symbol_table.cc.o.d"
  "libchronolog_util.a"
  "libchronolog_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronolog_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
