file(REMOVE_RECURSE
  "CMakeFiles/chronolog_core.dir/engine.cc.o"
  "CMakeFiles/chronolog_core.dir/engine.cc.o.d"
  "libchronolog_core.a"
  "libchronolog_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronolog_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
