# Empty compiler generated dependencies file for chronolog_core.
# This may be replaced when dependencies are built.
