file(REMOVE_RECURSE
  "libchronolog_core.a"
)
