file(REMOVE_RECURSE
  "CMakeFiles/chronolog_spec.dir/period.cc.o"
  "CMakeFiles/chronolog_spec.dir/period.cc.o.d"
  "CMakeFiles/chronolog_spec.dir/serialize.cc.o"
  "CMakeFiles/chronolog_spec.dir/serialize.cc.o.d"
  "CMakeFiles/chronolog_spec.dir/specification.cc.o"
  "CMakeFiles/chronolog_spec.dir/specification.cc.o.d"
  "libchronolog_spec.a"
  "libchronolog_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronolog_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
