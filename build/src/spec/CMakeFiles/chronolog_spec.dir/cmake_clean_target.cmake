file(REMOVE_RECURSE
  "libchronolog_spec.a"
)
