# Empty dependencies file for chronolog_spec.
# This may be replaced when dependencies are built.
