# Empty compiler generated dependencies file for chronolog_analysis.
# This may be replaced when dependencies are built.
