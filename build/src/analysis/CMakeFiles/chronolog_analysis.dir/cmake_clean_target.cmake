file(REMOVE_RECURSE
  "libchronolog_analysis.a"
)
