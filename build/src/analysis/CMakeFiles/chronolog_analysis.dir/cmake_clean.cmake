file(REMOVE_RECURSE
  "CMakeFiles/chronolog_analysis.dir/boundedness.cc.o"
  "CMakeFiles/chronolog_analysis.dir/boundedness.cc.o.d"
  "CMakeFiles/chronolog_analysis.dir/classify.cc.o"
  "CMakeFiles/chronolog_analysis.dir/classify.cc.o.d"
  "CMakeFiles/chronolog_analysis.dir/depgraph.cc.o"
  "CMakeFiles/chronolog_analysis.dir/depgraph.cc.o.d"
  "CMakeFiles/chronolog_analysis.dir/inflationary.cc.o"
  "CMakeFiles/chronolog_analysis.dir/inflationary.cc.o.d"
  "CMakeFiles/chronolog_analysis.dir/iperiod.cc.o"
  "CMakeFiles/chronolog_analysis.dir/iperiod.cc.o.d"
  "CMakeFiles/chronolog_analysis.dir/normalize.cc.o"
  "CMakeFiles/chronolog_analysis.dir/normalize.cc.o.d"
  "CMakeFiles/chronolog_analysis.dir/slice.cc.o"
  "CMakeFiles/chronolog_analysis.dir/slice.cc.o.d"
  "CMakeFiles/chronolog_analysis.dir/temporalize.cc.o"
  "CMakeFiles/chronolog_analysis.dir/temporalize.cc.o.d"
  "libchronolog_analysis.a"
  "libchronolog_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronolog_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
