
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/boundedness.cc" "src/analysis/CMakeFiles/chronolog_analysis.dir/boundedness.cc.o" "gcc" "src/analysis/CMakeFiles/chronolog_analysis.dir/boundedness.cc.o.d"
  "/root/repo/src/analysis/classify.cc" "src/analysis/CMakeFiles/chronolog_analysis.dir/classify.cc.o" "gcc" "src/analysis/CMakeFiles/chronolog_analysis.dir/classify.cc.o.d"
  "/root/repo/src/analysis/depgraph.cc" "src/analysis/CMakeFiles/chronolog_analysis.dir/depgraph.cc.o" "gcc" "src/analysis/CMakeFiles/chronolog_analysis.dir/depgraph.cc.o.d"
  "/root/repo/src/analysis/inflationary.cc" "src/analysis/CMakeFiles/chronolog_analysis.dir/inflationary.cc.o" "gcc" "src/analysis/CMakeFiles/chronolog_analysis.dir/inflationary.cc.o.d"
  "/root/repo/src/analysis/iperiod.cc" "src/analysis/CMakeFiles/chronolog_analysis.dir/iperiod.cc.o" "gcc" "src/analysis/CMakeFiles/chronolog_analysis.dir/iperiod.cc.o.d"
  "/root/repo/src/analysis/normalize.cc" "src/analysis/CMakeFiles/chronolog_analysis.dir/normalize.cc.o" "gcc" "src/analysis/CMakeFiles/chronolog_analysis.dir/normalize.cc.o.d"
  "/root/repo/src/analysis/slice.cc" "src/analysis/CMakeFiles/chronolog_analysis.dir/slice.cc.o" "gcc" "src/analysis/CMakeFiles/chronolog_analysis.dir/slice.cc.o.d"
  "/root/repo/src/analysis/temporalize.cc" "src/analysis/CMakeFiles/chronolog_analysis.dir/temporalize.cc.o" "gcc" "src/analysis/CMakeFiles/chronolog_analysis.dir/temporalize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spec/CMakeFiles/chronolog_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/chronolog_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/chronolog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/chronolog_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chronolog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
