# Empty dependencies file for chronolog_ast.
# This may be replaced when dependencies are built.
