
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/lexer.cc" "src/ast/CMakeFiles/chronolog_ast.dir/lexer.cc.o" "gcc" "src/ast/CMakeFiles/chronolog_ast.dir/lexer.cc.o.d"
  "/root/repo/src/ast/parser.cc" "src/ast/CMakeFiles/chronolog_ast.dir/parser.cc.o" "gcc" "src/ast/CMakeFiles/chronolog_ast.dir/parser.cc.o.d"
  "/root/repo/src/ast/printer.cc" "src/ast/CMakeFiles/chronolog_ast.dir/printer.cc.o" "gcc" "src/ast/CMakeFiles/chronolog_ast.dir/printer.cc.o.d"
  "/root/repo/src/ast/program.cc" "src/ast/CMakeFiles/chronolog_ast.dir/program.cc.o" "gcc" "src/ast/CMakeFiles/chronolog_ast.dir/program.cc.o.d"
  "/root/repo/src/ast/rule.cc" "src/ast/CMakeFiles/chronolog_ast.dir/rule.cc.o" "gcc" "src/ast/CMakeFiles/chronolog_ast.dir/rule.cc.o.d"
  "/root/repo/src/ast/vocabulary.cc" "src/ast/CMakeFiles/chronolog_ast.dir/vocabulary.cc.o" "gcc" "src/ast/CMakeFiles/chronolog_ast.dir/vocabulary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/chronolog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
