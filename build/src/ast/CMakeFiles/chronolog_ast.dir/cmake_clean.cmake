file(REMOVE_RECURSE
  "CMakeFiles/chronolog_ast.dir/lexer.cc.o"
  "CMakeFiles/chronolog_ast.dir/lexer.cc.o.d"
  "CMakeFiles/chronolog_ast.dir/parser.cc.o"
  "CMakeFiles/chronolog_ast.dir/parser.cc.o.d"
  "CMakeFiles/chronolog_ast.dir/printer.cc.o"
  "CMakeFiles/chronolog_ast.dir/printer.cc.o.d"
  "CMakeFiles/chronolog_ast.dir/program.cc.o"
  "CMakeFiles/chronolog_ast.dir/program.cc.o.d"
  "CMakeFiles/chronolog_ast.dir/rule.cc.o"
  "CMakeFiles/chronolog_ast.dir/rule.cc.o.d"
  "CMakeFiles/chronolog_ast.dir/vocabulary.cc.o"
  "CMakeFiles/chronolog_ast.dir/vocabulary.cc.o.d"
  "libchronolog_ast.a"
  "libchronolog_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronolog_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
