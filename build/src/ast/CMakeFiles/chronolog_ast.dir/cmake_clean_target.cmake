file(REMOVE_RECURSE
  "libchronolog_ast.a"
)
