# Empty dependencies file for chronolog_eval.
# This may be replaced when dependencies are built.
