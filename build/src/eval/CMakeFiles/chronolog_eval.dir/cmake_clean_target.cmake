file(REMOVE_RECURSE
  "libchronolog_eval.a"
)
