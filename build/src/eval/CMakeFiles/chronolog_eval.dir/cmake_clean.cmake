file(REMOVE_RECURSE
  "CMakeFiles/chronolog_eval.dir/bt.cc.o"
  "CMakeFiles/chronolog_eval.dir/bt.cc.o.d"
  "CMakeFiles/chronolog_eval.dir/fixpoint.cc.o"
  "CMakeFiles/chronolog_eval.dir/fixpoint.cc.o.d"
  "CMakeFiles/chronolog_eval.dir/forward.cc.o"
  "CMakeFiles/chronolog_eval.dir/forward.cc.o.d"
  "CMakeFiles/chronolog_eval.dir/provenance.cc.o"
  "CMakeFiles/chronolog_eval.dir/provenance.cc.o.d"
  "CMakeFiles/chronolog_eval.dir/rule_eval.cc.o"
  "CMakeFiles/chronolog_eval.dir/rule_eval.cc.o.d"
  "libchronolog_eval.a"
  "libchronolog_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronolog_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
