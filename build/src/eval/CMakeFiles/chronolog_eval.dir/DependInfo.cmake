
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/bt.cc" "src/eval/CMakeFiles/chronolog_eval.dir/bt.cc.o" "gcc" "src/eval/CMakeFiles/chronolog_eval.dir/bt.cc.o.d"
  "/root/repo/src/eval/fixpoint.cc" "src/eval/CMakeFiles/chronolog_eval.dir/fixpoint.cc.o" "gcc" "src/eval/CMakeFiles/chronolog_eval.dir/fixpoint.cc.o.d"
  "/root/repo/src/eval/forward.cc" "src/eval/CMakeFiles/chronolog_eval.dir/forward.cc.o" "gcc" "src/eval/CMakeFiles/chronolog_eval.dir/forward.cc.o.d"
  "/root/repo/src/eval/provenance.cc" "src/eval/CMakeFiles/chronolog_eval.dir/provenance.cc.o" "gcc" "src/eval/CMakeFiles/chronolog_eval.dir/provenance.cc.o.d"
  "/root/repo/src/eval/rule_eval.cc" "src/eval/CMakeFiles/chronolog_eval.dir/rule_eval.cc.o" "gcc" "src/eval/CMakeFiles/chronolog_eval.dir/rule_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/chronolog_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/chronolog_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/chronolog_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
