file(REMOVE_RECURSE
  "CMakeFiles/chronolog_workload.dir/generators.cc.o"
  "CMakeFiles/chronolog_workload.dir/generators.cc.o.d"
  "libchronolog_workload.a"
  "libchronolog_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chronolog_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
