file(REMOVE_RECURSE
  "libchronolog_workload.a"
)
