# Empty compiler generated dependencies file for chronolog_workload.
# This may be replaced when dependencies are built.
