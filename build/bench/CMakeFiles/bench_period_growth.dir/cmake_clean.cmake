file(REMOVE_RECURSE
  "CMakeFiles/bench_period_growth.dir/bench_period_growth.cc.o"
  "CMakeFiles/bench_period_growth.dir/bench_period_growth.cc.o.d"
  "bench_period_growth"
  "bench_period_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_period_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
