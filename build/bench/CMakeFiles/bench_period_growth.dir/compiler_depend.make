# Empty compiler generated dependencies file for bench_period_growth.
# This may be replaced when dependencies are built.
