file(REMOVE_RECURSE
  "CMakeFiles/bench_inflationary_check.dir/bench_inflationary_check.cc.o"
  "CMakeFiles/bench_inflationary_check.dir/bench_inflationary_check.cc.o.d"
  "bench_inflationary_check"
  "bench_inflationary_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inflationary_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
