# Empty compiler generated dependencies file for bench_inflationary_check.
# This may be replaced when dependencies are built.
