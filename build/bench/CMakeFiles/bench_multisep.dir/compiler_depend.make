# Empty compiler generated dependencies file for bench_multisep.
# This may be replaced when dependencies are built.
