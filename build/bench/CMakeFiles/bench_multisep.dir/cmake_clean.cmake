file(REMOVE_RECURSE
  "CMakeFiles/bench_multisep.dir/bench_multisep.cc.o"
  "CMakeFiles/bench_multisep.dir/bench_multisep.cc.o.d"
  "bench_multisep"
  "bench_multisep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multisep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
