# Empty compiler generated dependencies file for bench_spec_build.
# This may be replaced when dependencies are built.
