file(REMOVE_RECURSE
  "CMakeFiles/bench_spec_build.dir/bench_spec_build.cc.o"
  "CMakeFiles/bench_spec_build.dir/bench_spec_build.cc.o.d"
  "bench_spec_build"
  "bench_spec_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spec_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
