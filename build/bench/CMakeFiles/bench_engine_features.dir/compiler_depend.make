# Empty compiler generated dependencies file for bench_engine_features.
# This may be replaced when dependencies are built.
