# Empty dependencies file for bench_query_depth.
# This may be replaced when dependencies are built.
