file(REMOVE_RECURSE
  "CMakeFiles/bench_query_depth.dir/bench_query_depth.cc.o"
  "CMakeFiles/bench_query_depth.dir/bench_query_depth.cc.o.d"
  "bench_query_depth"
  "bench_query_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
