file(REMOVE_RECURSE
  "CMakeFiles/bench_bt_scaling.dir/bench_bt_scaling.cc.o"
  "CMakeFiles/bench_bt_scaling.dir/bench_bt_scaling.cc.o.d"
  "bench_bt_scaling"
  "bench_bt_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bt_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
