# Empty dependencies file for bench_bt_scaling.
# This may be replaced when dependencies are built.
