# Empty compiler generated dependencies file for bench_temporalize.
# This may be replaced when dependencies are built.
