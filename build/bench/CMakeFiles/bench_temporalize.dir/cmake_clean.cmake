file(REMOVE_RECURSE
  "CMakeFiles/bench_temporalize.dir/bench_temporalize.cc.o"
  "CMakeFiles/bench_temporalize.dir/bench_temporalize.cc.o.d"
  "bench_temporalize"
  "bench_temporalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temporalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
