// chronolog-serve — loads a program, builds its relational specification,
// and serves the chronolog_obs endpoints over HTTP until SIGINT/SIGTERM.
//
// Usage:
//   chronolog-serve [flags] program.tdl
//
// Flags:
//   --port=N        listen port (default 0 = kernel-assigned ephemeral port;
//                   the chosen port is printed and optionally written to
//                   --port-file so scripts can scrape without racing)
//   --port-file=P   write the bound port (decimal, newline) to file P
//   --query=Q       run first-order query Q once at startup (repeatable) so
//                   the query.* instrument family is populated before the
//                   first scrape
//   --threads=N     engine worker threads (EngineOptions::num_threads)
//   --workers=N     HTTP worker threads (default 2)
//   --log-level=L   debug|info|warn|error|off (default: $CHRONOLOG_LOG_LEVEL)
//
// Endpoints (see docs/OBSERVABILITY.md):
//   GET /metrics    Prometheus text exposition (version 0.0.4)
//   GET /healthz    JSON liveness probe
//   GET /trace      Chrome trace-event JSON (open in Perfetto)
//
// This is the scrape target for the bench/ci.sh serve gate: start with
// --port=0 --port-file, poll the file, scrape, SIGINT, expect exit 0.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "serve/http_server.h"
#include "serve/obs_endpoints.h"
#include "util/log.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

bool ParseIntFlag(const std::string& arg, const char* name, int* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::atoi(arg.c_str() + prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int threads = 1;
  int workers = 2;
  std::string port_file;
  std::string program_path;
  std::vector<std::string> queries;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseIntFlag(arg, "--port", &port) ||
        ParseIntFlag(arg, "--threads", &threads) ||
        ParseIntFlag(arg, "--workers", &workers)) {
      continue;
    }
    if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(12);
      continue;
    }
    if (arg.rfind("--query=", 0) == 0) {
      queries.push_back(arg.substr(8));
      continue;
    }
    if (arg.rfind("--log-level=", 0) == 0) {
      auto level = chronolog::ParseLogLevel(arg.substr(12));
      if (!level.has_value()) {
        chronolog::LogError("serve.bad_flag").Str("flag", arg);
        return 2;
      }
      chronolog::SetGlobalLogLevel(*level);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      chronolog::LogError("serve.bad_flag").Str("flag", arg);
      return 2;
    }
    program_path = arg;
  }
  if (program_path.empty()) {
    std::fprintf(stderr, "usage: chronolog-serve [flags] program.tdl\n");
    return 2;
  }

  std::ifstream file(program_path);
  if (!file) {
    chronolog::LogError("serve.open_failed").Str("path", program_path);
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  chronolog::EngineOptions options;
  options.collect_metrics = true;
  options.num_threads = threads;
  auto tdd = chronolog::TemporalDatabase::FromSource(buffer.str(), options);
  if (!tdd.ok()) {
    chronolog::LogError("serve.load_failed")
        .Str("path", program_path)
        .Str("status", tdd.status().ToString());
    return 1;
  }
  // Build the specification eagerly so fixpoint.* / spec.* instruments are
  // populated before the first scrape.
  auto spec = tdd->specification();
  if (!spec.ok()) {
    chronolog::LogError("serve.spec_failed")
        .Str("status", spec.status().ToString());
    return 1;
  }
  for (const std::string& q : queries) {
    auto answer = tdd->Query(q);
    if (!answer.ok()) {
      chronolog::LogError("serve.query_failed")
          .Str("query", q)
          .Str("status", answer.status().ToString());
      return 1;
    }
  }

  chronolog::HttpServerOptions server_options;
  server_options.port = port;
  server_options.num_workers = workers;
  chronolog::HttpServer server(server_options);
  chronolog::RegisterObservabilityEndpoints(server, tdd->metrics(),
                                            tdd->trace(), "chronolog-serve");
  auto started = server.Start();
  if (!started.ok()) {
    chronolog::LogError("serve.start_failed")
        .Str("status", started.ToString());
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      chronolog::LogError("serve.port_file_failed").Str("path", port_file);
      server.Stop();
      return 1;
    }
    out << server.port() << "\n";
  }
  std::printf("chronolog-serve: listening on 127.0.0.1:%d (%s)\n",
              server.port(), program_path.c_str());
  std::printf("  GET /metrics  GET /healthz  GET /trace — Ctrl-C to stop\n");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  std::printf("chronolog-serve: stopped after %llu request(s)\n",
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}
