// chronolog-serve — the query-serving daemon: loads one or more programs
// into a DatabaseRegistry (compiling each relational specification
// eagerly), and serves the query protocol plus the chronolog_obs endpoints
// over HTTP until SIGINT/SIGTERM.
//
// Usage:
//   chronolog-serve [flags] program.tdl
//
// The positional program registers as database "default"; additional
// databases ride along via --db.
//
// Flags:
//   --port=N          listen port (default 0 = kernel-assigned ephemeral
//                     port; the chosen port is printed and optionally
//                     written to --port-file so scripts can scrape without
//                     racing)
//   --port-file=P     write the bound port (decimal, newline) to file P
//   --db=NAME=PATH    register PATH under database NAME (repeatable)
//   --query=Q         run first-order query Q once at startup against the
//                     default database (repeatable) so the query.*
//                     instrument family is populated before the first scrape
//   --threads=N       engine worker threads (EngineOptions::num_threads)
//   --workers=N       HTTP worker threads (default 2)
//   --idle-timeout-ms=N       close a kept-alive connection idle for N ms
//                             (default 5000)
//   --max-requests-per-conn=N close a connection after N requests
//                             (default 0 = unlimited)
//   --max-inflight=N  concurrent queries admitted before 429 (default 8;
//                     0 disables admission control)
//   --deadline-ms=N   default per-query wall-clock budget (default 1000)
//   --max-rows=N      default per-query row cap (default 1024)
//   --slow-query-ms=N emit one structured `query.slow` warn line per query
//                     whose evaluation takes >= N ms (0 logs every query;
//                     default -1 = off)
//   --trace-capacity=N trace-buffer events per database (default 65536);
//                     a wrap during an admitted query logs `trace.dropped`
//                     (throttled: first drop, then each doubling of the total)
//   --log-level=L     debug|info|warn|error|off (default: $CHRONOLOG_LOG_LEVEL)
//
// Endpoints (see docs/SERVING.md and docs/OBSERVABILITY.md):
//   POST /query      JSON query protocol with per-query deadlines/row limits
//   POST /explain    the plan for a query without executing it
//   GET /databases   registry contents
//   GET /statements  per-shape statement statistics (?db=NAME&reset=1)
//   GET /metrics     Prometheus text exposition (version 0.0.4)
//   GET /healthz     JSON liveness probe
//   GET /trace       Chrome trace-event JSON (?request=ID slices one query)
//
// This is the scrape target for the bench/ci.sh serve gate: start with
// --port=0 --port-file, poll the file, scrape + POST, SIGINT, expect exit 0.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "query/query_eval.h"
#include "query/query_parser.h"
#include "serve/http_server.h"
#include "serve/obs_endpoints.h"
#include "serve/query_endpoints.h"
#include "serve/registry.h"
#include "util/log.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int /*signum*/) { g_stop = 1; }

bool ParseIntFlag(const std::string& arg, const char* name, int* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::atoi(arg.c_str() + prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int threads = 1;
  int workers = 2;
  int idle_timeout_ms = 5000;
  int max_requests_per_conn = 0;
  int max_inflight = 8;
  int deadline_ms = 1000;
  int max_rows = 1024;
  int slow_query_ms = -1;
  int trace_capacity = 1 << 16;
  std::string port_file;
  std::string program_path;
  std::vector<std::string> queries;
  std::vector<std::pair<std::string, std::string>> extra_dbs;  // name, path
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseIntFlag(arg, "--port", &port) ||
        ParseIntFlag(arg, "--threads", &threads) ||
        ParseIntFlag(arg, "--workers", &workers) ||
        ParseIntFlag(arg, "--idle-timeout-ms", &idle_timeout_ms) ||
        ParseIntFlag(arg, "--max-requests-per-conn", &max_requests_per_conn) ||
        ParseIntFlag(arg, "--max-inflight", &max_inflight) ||
        ParseIntFlag(arg, "--deadline-ms", &deadline_ms) ||
        ParseIntFlag(arg, "--max-rows", &max_rows) ||
        ParseIntFlag(arg, "--slow-query-ms", &slow_query_ms) ||
        ParseIntFlag(arg, "--trace-capacity", &trace_capacity)) {
      continue;
    }
    if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(12);
      continue;
    }
    if (arg.rfind("--query=", 0) == 0) {
      queries.push_back(arg.substr(8));
      continue;
    }
    if (arg.rfind("--db=", 0) == 0) {
      const std::string spec = arg.substr(5);
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        chronolog::LogError("serve.bad_flag").Str("flag", arg);
        return 2;
      }
      extra_dbs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      continue;
    }
    if (arg.rfind("--log-level=", 0) == 0) {
      auto level = chronolog::ParseLogLevel(arg.substr(12));
      if (!level.has_value()) {
        chronolog::LogError("serve.bad_flag").Str("flag", arg);
        return 2;
      }
      chronolog::SetGlobalLogLevel(*level);
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      chronolog::LogError("serve.bad_flag").Str("flag", arg);
      return 2;
    }
    program_path = arg;
  }
  if (program_path.empty()) {
    std::fprintf(stderr, "usage: chronolog-serve [flags] program.tdl\n");
    return 2;
  }

  chronolog::EngineOptions options;
  options.collect_metrics = true;
  options.num_threads = threads;
  if (trace_capacity > 0) {
    options.trace_capacity = static_cast<std::size_t>(trace_capacity);
  }

  chronolog::DatabaseRegistry registry;
  // Registration compiles each specification eagerly, so the fixpoint.* /
  // spec.* instruments are populated before the first scrape and the
  // serving hot path never builds state.
  auto added = registry.AddFromFile("default", program_path, options);
  if (!added.ok()) {
    chronolog::LogError("serve.load_failed")
        .Str("path", program_path)
        .Str("status", added.ToString());
    return 1;
  }
  for (const auto& [name, path] : extra_dbs) {
    auto status = registry.AddFromFile(name, path, options);
    if (!status.ok()) {
      chronolog::LogError("serve.load_failed")
          .Str("db", name)
          .Str("path", path)
          .Str("status", status.ToString());
      return 1;
    }
  }

  const chronolog::DatabaseRegistry::Entry* default_db =
      registry.Find("default");
  for (const std::string& q : queries) {
    // Warm-ups go through the same const serving path as POST /query
    // (unbounded: they are operator-issued, not client traffic).
    auto parsed = chronolog::ParseQuery(q, default_db->tdd.vocab());
    if (!parsed.ok()) {
      chronolog::LogError("serve.query_failed")
          .Str("query", q)
          .Str("status", parsed.status().ToString());
      return 1;
    }
    chronolog::QueryEvalOptions eval_options;
    eval_options.metrics = default_db->tdd.metrics();
    eval_options.trace = default_db->tdd.trace();
    auto answer = chronolog::EvaluateQueryOverSpec(
        parsed.value(), *default_db->spec, eval_options);
    if (!answer.ok()) {
      chronolog::LogError("serve.query_failed")
          .Str("query", q)
          .Str("status", answer.status().ToString());
      return 1;
    }
  }

  chronolog::HttpServerOptions server_options;
  server_options.port = port;
  server_options.num_workers = workers;
  server_options.idle_timeout_ms = idle_timeout_ms;
  server_options.max_requests_per_connection = max_requests_per_conn;
  // The default database's registry doubles as the serve-level sink, so one
  // /metrics scrape carries query.*, serve.responses_* and query.rejected.
  server_options.metrics = default_db->tdd.metrics();
  chronolog::HttpServer server(server_options);
  chronolog::RegisterObservabilityEndpoints(server, default_db->tdd.metrics(),
                                            default_db->tdd.trace(),
                                            "chronolog-serve");
  chronolog::QueryServiceOptions query_options;
  query_options.max_in_flight = max_inflight;
  query_options.default_timeout = std::chrono::milliseconds(deadline_ms);
  query_options.default_max_rows =
      max_rows < 0 ? 0 : static_cast<uint64_t>(max_rows);
  query_options.metrics = default_db->tdd.metrics();
  query_options.slow_query_ms = slow_query_ms;
  chronolog::RegisterQueryEndpoints(server, &registry, query_options);

  auto started = server.Start();
  if (!started.ok()) {
    chronolog::LogError("serve.start_failed")
        .Str("status", started.ToString());
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      chronolog::LogError("serve.port_file_failed").Str("path", port_file);
      server.Stop();
      return 1;
    }
    out << server.port() << "\n";
  }
  std::printf("chronolog-serve: listening on 127.0.0.1:%d (%zu database(s))\n",
              server.port(), registry.size());
  std::printf("  POST /query /explain  GET /databases /statements /metrics "
              "/healthz /trace — Ctrl-C to stop\n");
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.Stop();
  std::printf("chronolog-serve: stopped after %llu response(s)\n",
              static_cast<unsigned long long>(server.requests_served()));
  return 0;
}
