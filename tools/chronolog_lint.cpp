// chronolog-lint — static analysis for temporal deductive databases.
//
// Parses one or more .tdl source files and runs every registered lint pass
// (see src/analysis/lint.h): range-restriction/safety, temporal-sort
// misuse, singleton variables, duplicate/subsumed rules, dead rules and
// underivable predicates, and explained tractability-classification
// failures (multi-separability, progressivity, optionally the Theorem 5.2
// inflationary decision procedure). Every diagnostic carries a
// file:line:column span and a stable code (L001..L013, P001).
//
// With --analyze it additionally runs the chronolog_flow static analyses
// (src/analysis/dataflow.h): temporal-offset bounds, polynomial degrees
// and binding-pattern join-order priors, reported as A001..A008
// diagnostics plus a summary block (text) or an "analysis" object (JSON).
//
// Usage:
//   chronolog-lint [flags] input.tdl [more.tdl ...]
//
// Flags:
//   --json                machine-readable output (one JSON object)
//   --strict              promote warnings to errors for the exit code
//   --no-classify         skip the classification passes (L009-L011)
//   --check-inflationary  run the Theorem 5.2 procedure (builds models)
//   --analyze             run the chronolog_flow analyses (A001-A008)
//   --degree-budget=N     degree budget for A005 warnings (default 8)
//   --root=PRED           query root for reachability and adornments
//   --disable=PASS        skip a pass by name (repeatable)
//   --list-passes         print the pass registry and exit
//
// Exit codes: 0 clean (or warnings without --strict), 1 usage/IO error,
// 2 parse error, 3 lint errors (or warnings under --strict).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dataflow.h"
#include "analysis/lint.h"
#include "ast/parser.h"
#include "util/log.h"

namespace {

constexpr int kExitClean = 0;
constexpr int kExitUsage = 1;
constexpr int kExitParseError = 2;
constexpr int kExitLintError = 3;

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: chronolog-lint [flags] input.tdl [more.tdl ...]\n"
      "  --json                machine-readable output\n"
      "  --strict              promote warnings to errors (exit code)\n"
      "  --no-classify         skip classification passes (L009-L011)\n"
      "  --check-inflationary  run the Theorem 5.2 decision procedure\n"
      "  --analyze             run the chronolog_flow analyses (A001-A008)\n"
      "  --degree-budget=N     degree budget for A005 warnings (default 8)\n"
      "  --root=PRED           query root for reachability and adornments\n"
      "  --disable=PASS        skip a pass by name (repeatable)\n"
      "  --list-passes         print the pass registry and exit\n");
}

void ListPasses() {
  for (const chronolog::LintPassInfo& pass : chronolog::LintPassRegistry()) {
    std::printf("%-16s %-16s %s\n",
                std::string(pass.name).c_str(),
                std::string(pass.codes).c_str(),
                std::string(pass.description).c_str());
  }
  // The flow analyses run under --analyze; listed here so one invocation
  // shows the full diagnostic surface (L-codes and A-codes).
  for (const chronolog::LintPassInfo& pass : chronolog::FlowPassRegistry()) {
    std::printf("%-16s %-16s %s\n",
                std::string(pass.name).c_str(),
                std::string(pass.codes).c_str(),
                std::string(pass.description).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  chronolog::LintOptions options;
  chronolog::FlowOptions flow_options;
  bool json = false;
  bool strict = false;
  bool analyze = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(arg, "--no-classify") == 0) {
      options.classify = false;
    } else if (std::strcmp(arg, "--check-inflationary") == 0) {
      options.check_inflationary = true;
    } else if (std::strcmp(arg, "--analyze") == 0) {
      analyze = true;
    } else if (std::strncmp(arg, "--degree-budget=", 16) == 0) {
      char* end = nullptr;
      const long budget = std::strtol(arg + 16, &end, 10);
      if (end == arg + 16 || *end != '\0' || budget < 0) {
        chronolog::LogError("lint.bad_flag_value").Str("flag", arg);
        PrintUsage();
        return kExitUsage;
      }
      flow_options.degree_budget = static_cast<int>(budget);
    } else if (std::strncmp(arg, "--root=", 7) == 0) {
      options.roots.push_back(arg + 7);
      flow_options.roots.push_back(arg + 7);
    } else if (std::strncmp(arg, "--disable=", 10) == 0) {
      options.disabled_passes.push_back(arg + 10);
    } else if (std::strcmp(arg, "--list-passes") == 0) {
      ListPasses();
      return kExitClean;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage();
      return kExitClean;
    } else if (arg[0] == '-' && arg[1] != '\0') {
      chronolog::LogError("lint.unknown_flag").Str("flag", arg);
      PrintUsage();
      return kExitUsage;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    PrintUsage();
    return kExitUsage;
  }

  // Parse every file through one Parser so the program shares a vocabulary
  // but each file keeps its own name in the source-unit table.
  chronolog::Parser parser;
  for (const std::string& path : inputs) {
    std::ifstream file(path);
    if (!file) {
      chronolog::LogError("lint.open_failed").Str("path", path);
      return kExitUsage;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    chronolog::Status status = parser.AddSource(buffer.str(), path);
    if (!status.ok()) {
      chronolog::Diagnostic diag = chronolog::MakeProgramDiagnostic(
          chronolog::Severity::kError, chronolog::lint_code::kParseError,
          status.message());
      diag.span.file = path;
      if (json) {
        std::printf("{\"diagnostics\":[%s],\"errors\":1,\"warnings\":0,"
                    "\"notes\":0}\n", diag.ToJson().c_str());
      } else {
        std::fprintf(stderr, "%s\n", diag.ToString().c_str());
      }
      return kExitParseError;
    }
  }
  auto unit = parser.Finish();
  if (!unit.ok()) {
    chronolog::Diagnostic diag = chronolog::MakeProgramDiagnostic(
        chronolog::Severity::kError, chronolog::lint_code::kParseError,
        unit.status().message());
    if (inputs.size() == 1) diag.span.file = inputs[0];
    if (json) {
      std::printf("{\"diagnostics\":[%s],\"errors\":1,\"warnings\":0,"
                  "\"notes\":0}\n", diag.ToJson().c_str());
    } else {
      std::fprintf(stderr, "%s\n", diag.ToString().c_str());
    }
    return kExitParseError;
  }

  chronolog::LintResult result =
      chronolog::LintProgram(unit->program, unit->database, options);
  std::string analysis_json;
  std::string analysis_summary;
  if (analyze) {
    const chronolog::FlowAnalysis flow = chronolog::AnalyzeProgram(
        unit->program, unit->database, flow_options);
    // The A-series findings join the lint diagnostics (one sorted stream,
    // one exit-code policy); the structural results travel separately as a
    // summary block / "analysis" JSON object.
    for (chronolog::Diagnostic diag : flow.diagnostics) {
      if (inputs.size() == 1) diag.span.file = inputs[0];
      result.diagnostics.push_back(std::move(diag));
    }
    chronolog::SortDiagnostics(&result.diagnostics);
    analysis_json = flow.ToJson(unit->program);
    analysis_summary = flow.Summary(unit->program);
  }
  if (json) {
    std::string out = result.ToJson();
    if (analyze) {
      // Splice the analysis object into the lint report:
      // {"analysis":{...},"diagnostics":[...],...}
      out.insert(1, "\"analysis\":" + analysis_json + ",");
    }
    std::printf("%s\n", out.c_str());
  } else {
    if (result.diagnostics.empty()) {
      std::printf("clean: %zu rule(s), %zu fact(s), no diagnostics\n",
                  unit->program.rules().size(),
                  unit->database.facts().size());
    } else {
      std::printf("%s", result.ToString().c_str());
    }
    if (analyze) {
      std::printf("%s", analysis_summary.c_str());
    }
  }

  const std::size_t errors =
      result.CountSeverity(chronolog::Severity::kError) +
      (strict ? result.CountSeverity(chronolog::Severity::kWarning) : 0);
  return errors > 0 ? kExitLintError : kExitClean;
}
