#include "analysis/depgraph.h"

#include <algorithm>

namespace chronolog {

namespace {

/// Iterative Tarjan SCC. Components are emitted callees-first, which is the
/// reverse topological order we expose.
struct TarjanState {
  const std::vector<std::vector<PredicateId>>& adj;
  std::vector<int> index;
  std::vector<int> lowlink;
  std::vector<bool> on_stack;
  std::vector<PredicateId> stack;
  std::vector<int>* component;
  std::vector<std::vector<PredicateId>>* members;
  int next_index = 0;
  int next_component = 0;

  explicit TarjanState(const std::vector<std::vector<PredicateId>>& a,
                       std::vector<int>* comp,
                       std::vector<std::vector<PredicateId>>* mem)
      : adj(a),
        index(a.size(), -1),
        lowlink(a.size(), 0),
        on_stack(a.size(), false),
        component(comp),
        members(mem) {}

  void Run(PredicateId root) {
    // Explicit DFS stack: (node, next child position).
    std::vector<std::pair<PredicateId, std::size_t>> dfs;
    dfs.emplace_back(root, 0);
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      auto& [v, child] = dfs.back();
      if (child < adj[v].size()) {
        PredicateId w = adj[v][child++];
        if (index[w] == -1) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          dfs.emplace_back(w, 0);
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
        continue;
      }
      // All children explored.
      if (lowlink[v] == index[v]) {
        members->emplace_back();
        while (true) {
          PredicateId w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          (*component)[w] = next_component;
          members->back().push_back(w);
          if (w == v) break;
        }
        ++next_component;
      }
      PredicateId finished = v;
      dfs.pop_back();
      if (!dfs.empty()) {
        PredicateId parent = dfs.back().first;
        lowlink[parent] = std::min(lowlink[parent], lowlink[finished]);
      }
    }
  }
};

}  // namespace

DependencyGraph::DependencyGraph(const Program& program) {
  const std::size_t n = program.vocab().num_predicates();
  adj_.resize(n);
  component_.assign(n, -1);
  recursive_.assign(n, false);

  for (const Rule& rule : program.rules()) {
    for (const Atom& atom : rule.body) {
      adj_[rule.head.pred].push_back(atom.pred);
      if (atom.pred == rule.head.pred) recursive_[rule.head.pred] = true;
    }
  }
  for (auto& neighbors : adj_) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }

  TarjanState tarjan(adj_, &component_, &members_);
  for (std::size_t v = 0; v < n; ++v) {
    if (tarjan.index[v] == -1) tarjan.Run(static_cast<PredicateId>(v));
  }
  num_components_ = tarjan.next_component;

  for (const auto& comp : members_) {
    if (comp.size() > 1) {
      has_mutual_recursion_ = true;
      for (PredicateId p : comp) recursive_[p] = true;
    }
  }
}

std::vector<PredicateId> DependencyGraph::TopologicalOrder() const {
  std::vector<PredicateId> order;
  order.reserve(component_.size());
  for (const auto& comp : members_) {
    for (PredicateId p : comp) order.push_back(p);
  }
  return order;
}

}  // namespace chronolog
