#ifndef CHRONOLOG_ANALYSIS_IPERIOD_H_
#define CHRONOLOG_ANALYSIS_IPERIOD_H_

#include <cstdint>

#include "analysis/classify.h"
#include "ast/program.h"
#include "eval/forward.h"
#include "util/result.h"

namespace chronolog {

/// Options for the exact (enumerative) I-period computation.
struct IPeriodOptions {
  /// Enumerate at most `2^max_bits` initial conditions. One bit per
  /// (temporal predicate, look-back slot) pair; the computation refuses
  /// larger instances rather than running forever.
  int max_bits = 18;
  /// Per-simulation step budget.
  int64_t max_horizon = 1 << 16;
};

/// Result of the exact I-period computation.
struct IPeriodResult {
  /// A database-independent period `(b0, p0)`: for EVERY temporal database
  /// `D`, `M[t] = M[t+p0]` for all `t >= b0 + c(D)`. `p0` is the lcm of the
  /// cycle lengths over all enumerated initial conditions (hence every
  /// minimal period of every least model divides it).
  Period period;
  /// Number of initial conditions simulated (`2^bits`).
  uint64_t simulations = 0;
};

/// Computes an I-period of a multi-separable program by the skeleton-
/// database construction of Theorem 6.3: for time-only reduced rules the
/// trajectory of one constant vector is independent of all others, so it
/// suffices to enumerate every truth assignment of the (temporal predicate,
/// look-back slot) grid for a single generic constant, simulate each
/// forward, and combine tails by max and cycle lengths by lcm.
///
/// Preconditions (checked; kFailedPrecondition otherwise):
///  * multi-separable and progressive;
///  * every temporal predicate has non-temporal arity <= 1;
///  * every rule is *entity-local*: its body's non-temporal variables all
///    appear in its head (so distinct constants never interact) and rules
///    contain no non-temporal constants;
///  * `(#temporal predicates) * max(1, g) <= max_bits`.
///
/// These cover the paper's canonical I-periodic workloads (counters,
/// schedules over one entity column, temporalised bounded Datalog). The
/// general case is intentionally out of budget — the paper's own
/// construction enumerates 2^(2^s) skeleton databases.
Result<IPeriodResult> ComputeIPeriod(const Program& program,
                                     const IPeriodOptions& options = {});

/// A static, database-independent upper bound on the I-period of a
/// multi-separable program, computed stratum by stratum along the induction
/// of Theorem 6.5 with saturating arithmetic:
///
///  * non-temporal / EDB strata contribute period 1;
///  * data-only strata pass their inputs through (lcm / max);
///  * an *autonomous single-delay* time-only stratum `P(T+k,...) :- P(T,...)`
///    (plus non-temporal gates) has cycle lengths dividing `k`;
///  * a general time-only stratum with look-back `g` driven by inputs of
///    period `P` has cycle lengths at most `2^g * P`, hence its period
///    divides `lcm(1 ... 2^g * P)` — astronomically large but finite, which
///    is exactly the content of Theorem 6.5. Values beyond the uint64 range
///    are reported as `saturated`.
struct IPeriodBound {
  uint64_t b = 0;
  uint64_t p = 1;
  bool saturated = false;
};

Result<IPeriodBound> IPeriodUpperBound(const Program& program);

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_IPERIOD_H_
