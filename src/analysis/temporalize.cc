#include "analysis/temporalize.h"

#include <memory>

namespace chronolog {

Result<ParsedUnit> TemporalizeDatalog(const Program& program,
                                      const Database& database) {
  const Vocabulary& old_vocab = program.vocab();
  for (PredicateId p : old_vocab.AllPredicates()) {
    if (old_vocab.predicate(p).is_temporal) {
      return InvalidArgumentError(
          "TemporalizeDatalog requires a function-free program; predicate '" +
          old_vocab.predicate(p).name + "' is already temporal");
    }
  }

  auto vocab = std::make_shared<Vocabulary>();
  // Same predicate names, one extra (temporal) argument.
  std::vector<PredicateId> pred_map(old_vocab.num_predicates());
  for (PredicateId p : old_vocab.AllPredicates()) {
    const PredicateInfo& info = old_vocab.predicate(p);
    CHRONOLOG_ASSIGN_OR_RETURN(
        PredicateId np, vocab->DeclarePredicate(info.name, info.arity + 1));
    vocab->SetTemporal(np);
    pred_map[p] = np;
  }
  std::vector<SymbolId> const_map(old_vocab.num_constants());
  for (std::size_t c = 0; c < old_vocab.num_constants(); ++c) {
    const_map[c] =
        vocab->InternConstant(old_vocab.ConstantName(static_cast<SymbolId>(c)));
  }

  ParsedUnit unit{Program(vocab), Database(vocab)};

  // Iteration-counting rules: head at T+1, body at T.
  for (const Rule& rule : program.rules()) {
    Rule out;
    out.var_names = rule.var_names;
    out.temporal_vars.assign(rule.var_names.size(), false);
    VarId time_var = static_cast<VarId>(out.var_names.size());
    out.var_names.push_back("T");
    out.temporal_vars.push_back(true);

    auto lift = [&](const Atom& atom, int64_t offset) {
      Atom out_atom;
      out_atom.pred = pred_map[atom.pred];
      out_atom.time = TemporalTerm::Var(time_var, offset);
      out_atom.args.reserve(atom.args.size());
      for (const NtTerm& t : atom.args) {
        out_atom.args.push_back(t.is_constant()
                                    ? NtTerm::Constant(const_map[t.id])
                                    : t);
      }
      return out_atom;
    };

    out.head = lift(rule.head, 1);
    for (const Atom& atom : rule.body) out.body.push_back(lift(atom, 0));
    unit.program.AddRule(std::move(out));
  }

  // Copying rules `P(T+1, X...) :- P(T, X...)` for every predicate.
  for (PredicateId p : old_vocab.AllPredicates()) {
    const PredicateInfo& info = old_vocab.predicate(p);
    Rule copy;
    copy.var_names.push_back("T");
    copy.temporal_vars.push_back(true);
    Atom head;
    head.pred = pred_map[p];
    head.time = TemporalTerm::Var(0, 1);
    Atom body = head;
    body.time = TemporalTerm::Var(0, 0);
    for (uint32_t j = 0; j < info.arity; ++j) {
      VarId v = static_cast<VarId>(copy.var_names.size());
      copy.var_names.push_back("X" + std::to_string(j));
      copy.temporal_vars.push_back(false);
      head.args.push_back(NtTerm::Variable(v));
      body.args.push_back(NtTerm::Variable(v));
    }
    copy.head = std::move(head);
    copy.body.push_back(std::move(body));
    unit.program.AddRule(std::move(copy));
  }

  // Database tuples gain temporal argument 0.
  for (const GroundAtom& f : database.facts()) {
    GroundAtom out;
    out.pred = pred_map[f.pred];
    out.time = 0;
    out.args.reserve(f.args.size());
    for (SymbolId c : f.args) out.args.push_back(const_map[c]);
    unit.database.AddFact(std::move(out));
  }
  return unit;
}

}  // namespace chronolog
