#include "analysis/lint.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "analysis/classify.h"
#include "analysis/inflationary.h"
#include "ast/printer.h"
#include "eval/forward.h"
#include "util/string_util.h"

namespace chronolog {

namespace {

struct LintContext {
  const Program& program;
  const Database& database;
  const LintOptions& options;
  const DependencyGraph& graph;
};

/// Atom-located diagnostic (falls back to the file-only span for
/// synthesised atoms).
Diagnostic AtomDiagnostic(const LintContext& ctx, int rule_index,
                          const Atom& atom, Severity severity,
                          const char* code, std::string message) {
  Diagnostic diag;
  diag.severity = severity;
  diag.code = code;
  diag.message = std::move(message);
  diag.rule_index = rule_index;
  diag.span = ResolveSpan(ctx.program, atom.loc);
  return diag;
}

std::string RuleLabel(std::size_t i) { return "rule " + std::to_string(i); }

// --------------------------------------------------------------------------
// safety (L001): range-restriction violations, naming the unbound variable.
// --------------------------------------------------------------------------

void SafetyPass(const LintContext& ctx, std::vector<Diagnostic>* out) {
  const std::vector<Rule>& rules = ctx.program.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Rule& rule = rules[i];
    for (VarId v : rule.UnsafeHeadVars()) {
      const std::string name = v < rule.var_names.size()
                                   ? rule.var_names[v]
                                   : "#" + std::to_string(v);
      out->push_back(MakeRuleDiagnostic(
          ctx.program, static_cast<int>(i), Severity::kError,
          lint_code::kUnsafeVariable,
          RuleLabel(i) + " for '" +
              ctx.program.vocab().predicate(rule.head.pred).name +
              "' is not range-restricted: head variable '" + name +
              "' does not occur in the body, so the rule has no "
              "domain-independent meaning (Section 3.3)"));
    }
  }
}

// --------------------------------------------------------------------------
// sorts (L002): temporal-argument misuse on the typed AST. Parsed programs
// cannot violate these (sort inference rejects them), but programmatically
// built rules — generators, transformations, FromParsedUnit callers — can.
// --------------------------------------------------------------------------

void SortsPass(const LintContext& ctx, std::vector<Diagnostic>* out) {
  const Vocabulary& vocab = ctx.program.vocab();
  const std::vector<Rule>& rules = ctx.program.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Rule& rule = rules[i];
    auto var_name = [&rule](VarId v) {
      return v < rule.var_names.size() ? rule.var_names[v]
                                       : "#" + std::to_string(v);
    };
    auto check_atom = [&](const Atom& atom, const char* where) {
      if (atom.pred == kInvalidPredicate ||
          atom.pred >= vocab.num_predicates()) {
        out->push_back(AtomDiagnostic(
            ctx, static_cast<int>(i), atom, Severity::kError,
            lint_code::kSortMisuse,
            RuleLabel(i) + " " + where + " references an undeclared "
            "predicate id"));
        return;
      }
      const PredicateInfo& info = vocab.predicate(atom.pred);
      if (atom.temporal() && !info.is_temporal) {
        out->push_back(AtomDiagnostic(
            ctx, static_cast<int>(i), atom, Severity::kError,
            lint_code::kSortMisuse,
            RuleLabel(i) + ": non-temporal predicate '" + info.name +
                "' is given a temporal term in its " + where +
                " occurrence; the '+1' successor applies only to the "
                "distinguished temporal argument (Section 3.1)"));
      } else if (!atom.temporal() && info.is_temporal) {
        out->push_back(AtomDiagnostic(
            ctx, static_cast<int>(i), atom, Severity::kError,
            lint_code::kSortMisuse,
            RuleLabel(i) + ": temporal predicate '" + info.name +
                "' is used without its distinguished temporal argument in "
                "its " + where + " occurrence"));
      }
      if (atom.args.size() != info.arity) {
        out->push_back(AtomDiagnostic(
            ctx, static_cast<int>(i), atom, Severity::kError,
            lint_code::kSortMisuse,
            RuleLabel(i) + ": '" + info.name + "' is used with " +
                std::to_string(atom.args.size()) +
                " non-temporal arguments but is declared with " +
                std::to_string(info.arity)));
      }
      if (atom.temporal()) {
        if (atom.time->depth() < 0) {
          out->push_back(AtomDiagnostic(
              ctx, static_cast<int>(i), atom, Severity::kError,
              lint_code::kSortMisuse,
              RuleLabel(i) + ": temporal term of '" + info.name +
                  "' has negative depth " +
                  std::to_string(atom.time->depth()) +
                  "; temporal terms are built from 0 by '+1' only"));
        }
        if (!atom.time->ground()) {
          VarId v = atom.time->var;
          if (v >= rule.num_vars() || !rule.temporal_vars[v]) {
            out->push_back(AtomDiagnostic(
                ctx, static_cast<int>(i), atom, Severity::kError,
                lint_code::kSortMisuse,
                RuleLabel(i) + ": variable '" + var_name(v) +
                    "' in the distinguished temporal position of '" +
                    info.name + "' is not of temporal sort"));
          }
        }
      }
      for (const NtTerm& t : atom.args) {
        if (!t.is_variable()) continue;
        if (t.id >= rule.num_vars()) {
          out->push_back(AtomDiagnostic(
              ctx, static_cast<int>(i), atom, Severity::kError,
              lint_code::kSortMisuse,
              RuleLabel(i) + ": '" + info.name +
                  "' references variable id " + std::to_string(t.id) +
                  " outside the rule's variable table"));
        } else if (rule.temporal_vars[t.id]) {
          out->push_back(AtomDiagnostic(
              ctx, static_cast<int>(i), atom, Severity::kError,
              lint_code::kSortMisuse,
              RuleLabel(i) + ": temporal variable '" + var_name(t.id) +
                  "' is used in a non-temporal argument position of '" +
                  info.name + "' (temporal terms may appear only in the "
                  "distinguished first position)"));
        }
      }
    };
    check_atom(rule.head, "head");
    for (const Atom& atom : rule.body) check_atom(atom, "body");
  }

  // Database tuples: arity and non-negative time.
  for (const GroundAtom& fact : ctx.database.facts()) {
    if (fact.pred == kInvalidPredicate || fact.pred >= vocab.num_predicates())
      continue;  // unrepresentable in diagnostics; Interpretation rejects it
    const PredicateInfo& info = vocab.predicate(fact.pred);
    if (fact.args.size() != info.arity) {
      out->push_back(MakeProgramDiagnostic(
          Severity::kError, lint_code::kSortMisuse,
          "database tuple " + GroundAtomToString(fact, vocab) + " has " +
              std::to_string(fact.args.size()) +
              " non-temporal arguments but '" + info.name +
              "' is declared with " + std::to_string(info.arity)));
    }
    if (info.is_temporal && fact.time < 0) {
      out->push_back(MakeProgramDiagnostic(
          Severity::kError, lint_code::kSortMisuse,
          "database tuple " + GroundAtomToString(fact, vocab) +
              " has negative time " + std::to_string(fact.time)));
    }
  }
}

// --------------------------------------------------------------------------
// singleton (L003): variables occurring exactly once.
// --------------------------------------------------------------------------

void SingletonPass(const LintContext& ctx, std::vector<Diagnostic>* out) {
  const std::vector<Rule>& rules = ctx.program.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Rule& rule = rules[i];
    std::unordered_map<VarId, int> counts;
    auto count_atom = [&counts](const Atom& atom) {
      if (atom.temporal() && !atom.time->ground()) ++counts[atom.time->var];
      for (const NtTerm& t : atom.args) {
        if (t.is_variable()) ++counts[t.id];
      }
    };
    count_atom(rule.head);
    for (const Atom& atom : rule.body) count_atom(atom);
    std::vector<VarId> singles;
    for (const auto& [v, n] : counts) {
      if (n == 1) singles.push_back(v);
    }
    std::sort(singles.begin(), singles.end());
    for (VarId v : singles) {
      const std::string name = v < rule.var_names.size()
                                   ? rule.var_names[v]
                                   : "#" + std::to_string(v);
      if (!name.empty() && name[0] == '_') continue;  // declared intentional
      out->push_back(MakeRuleDiagnostic(
          ctx.program, static_cast<int>(i), Severity::kWarning,
          lint_code::kSingletonVariable,
          RuleLabel(i) + ": variable '" + name +
              "' occurs only once; prefix it with '_' if the join is "
              "intentionally unconstrained"));
    }
  }
}

// --------------------------------------------------------------------------
// duplicate / subsumed (L004, L005): canonical-form comparison. Variables
// are renumbered by first occurrence (head first, body in written order),
// so the check is syntactic — alpha-equivalent rules are caught, reordered
// bodies are not ("trivially" duplicate/subsumed).
// --------------------------------------------------------------------------

std::string CanonicalAtomKey(const Atom& atom,
                             std::unordered_map<VarId, int>* renumber) {
  auto canon = [renumber](VarId v) {
    auto [it, inserted] = renumber->try_emplace(
        v, static_cast<int>(renumber->size()));
    (void)inserted;
    return it->second;
  };
  std::string key = "p" + std::to_string(atom.pred);
  if (atom.temporal()) {
    key += atom.time->ground()
               ? "@" + std::to_string(atom.time->offset)
               : "@V" + std::to_string(canon(atom.time->var)) + "+" +
                     std::to_string(atom.time->offset);
  }
  for (const NtTerm& t : atom.args) {
    key += t.is_constant() ? ",c" + std::to_string(t.id)
                           : ",V" + std::to_string(canon(t.id));
  }
  return key;
}

struct CanonicalRule {
  std::string head;
  std::vector<std::string> body;         // written order
  std::vector<std::string> body_sorted;  // for subset tests
  std::string full;                      // head | body in written order
};

CanonicalRule Canonicalize(const Rule& rule) {
  CanonicalRule out;
  std::unordered_map<VarId, int> renumber;
  out.head = CanonicalAtomKey(rule.head, &renumber);
  for (const Atom& atom : rule.body) {
    out.body.push_back(CanonicalAtomKey(atom, &renumber));
  }
  out.body_sorted = out.body;
  std::sort(out.body_sorted.begin(), out.body_sorted.end());
  out.full = out.head + " | " + Join(out.body, ", ");
  return out;
}

void DuplicatePass(const LintContext& ctx, std::vector<Diagnostic>* out) {
  const std::vector<Rule>& rules = ctx.program.rules();
  std::unordered_map<std::string, std::size_t> first_seen;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    CanonicalRule canon = Canonicalize(rules[i]);
    auto [it, inserted] = first_seen.try_emplace(canon.full, i);
    if (inserted) continue;
    Diagnostic diag = MakeRuleDiagnostic(
        ctx.program, static_cast<int>(i), Severity::kWarning,
        lint_code::kDuplicateRule,
        RuleLabel(i) + " '" + RuleToString(rules[i], ctx.program.vocab()) +
            "' duplicates " + RuleLabel(it->second) + " (at " +
            ResolveSpan(ctx.program, rules[it->second].loc).ToString() +
            ") up to variable renaming");
    out->push_back(std::move(diag));
  }
}

void SubsumedPass(const LintContext& ctx, std::vector<Diagnostic>* out) {
  const std::vector<Rule>& rules = ctx.program.rules();
  std::vector<CanonicalRule> canon;
  canon.reserve(rules.size());
  for (const Rule& rule : rules) canon.push_back(Canonicalize(rule));
  for (std::size_t i = 0; i < rules.size(); ++i) {
    for (std::size_t j = 0; j < rules.size(); ++j) {
      if (i == j || canon[i].head != canon[j].head) continue;
      // Rule j's body is a proper subset of rule i's: everything rule i
      // derives, rule j derives with fewer constraints — rule i is
      // redundant. Exact duplicates are L004's business.
      if (canon[i].body_sorted.size() <= canon[j].body_sorted.size()) continue;
      if (!std::includes(canon[i].body_sorted.begin(),
                         canon[i].body_sorted.end(),
                         canon[j].body_sorted.begin(),
                         canon[j].body_sorted.end())) {
        continue;
      }
      out->push_back(MakeRuleDiagnostic(
          ctx.program, static_cast<int>(i), Severity::kWarning,
          lint_code::kSubsumedRule,
          RuleLabel(i) + " '" + RuleToString(rules[i], ctx.program.vocab()) +
              "' is subsumed by the less constrained " + RuleLabel(j) +
              " (at " + ResolveSpan(ctx.program, rules[j].loc).ToString() +
              "): same head, and every body literal of " + RuleLabel(j) +
              " also occurs here"));
      break;  // one witness per rule is enough
    }
  }
}

// --------------------------------------------------------------------------
// reachability (L006, L007, L008): dead rules and underivable predicates
// from EDB roots (facts) bottom-up; optional top-down relevance from query
// roots over the dependency graph.
// --------------------------------------------------------------------------

void ReachabilityPass(const LintContext& ctx, std::vector<Diagnostic>* out) {
  const Vocabulary& vocab = ctx.program.vocab();
  const std::vector<Rule>& rules = ctx.program.rules();
  const std::size_t num_preds = vocab.num_predicates();

  // Bottom-up: a predicate is *supported* when it has a database fact or
  // some rule for it whose body predicates are all supported.
  std::vector<bool> supported(num_preds, false);
  for (const GroundAtom& fact : ctx.database.facts()) {
    if (fact.pred < num_preds) supported[fact.pred] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : rules) {
      if (rule.head.pred >= num_preds || supported[rule.head.pred]) continue;
      bool fires = true;
      for (const Atom& atom : rule.body) {
        if (atom.pred >= num_preds || !supported[atom.pred]) {
          fires = false;
          break;
        }
      }
      if (fires) {
        supported[rule.head.pred] = true;
        changed = true;
      }
    }
  }

  std::vector<bool> in_head(num_preds, false);
  for (const Rule& rule : rules) {
    if (rule.head.pred < num_preds) in_head[rule.head.pred] = true;
  }

  // L006: rules that can never fire, naming the first empty body predicate.
  for (std::size_t i = 0; i < rules.size(); ++i) {
    for (const Atom& atom : rules[i].body) {
      if (atom.pred >= num_preds || supported[atom.pred]) continue;
      const std::string& name = vocab.predicate(atom.pred).name;
      out->push_back(AtomDiagnostic(
          ctx, static_cast<int>(i), atom, Severity::kWarning,
          lint_code::kDeadRule,
          RuleLabel(i) + " can never fire: predicate '" + name + "' has " +
              (in_head[atom.pred]
                   ? "rules but no derivable tuples"
                   : "no facts and no rules") +
              ", so the body is unsatisfiable in every least model"));
      break;  // one witness per rule
    }
  }

  // L007: underivable predicates — empty, yet used or defined.
  std::vector<bool> reported(num_preds, false);
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Rule& rule = rules[i];
    PredicateId head = rule.head.pred;
    if (head < num_preds && !supported[head] && !reported[head]) {
      reported[head] = true;
      out->push_back(MakeRuleDiagnostic(
          ctx.program, static_cast<int>(i), Severity::kWarning,
          lint_code::kUnderivablePredicate,
          "predicate '" + vocab.predicate(head).name +
              "' is underivable: it has no facts and every rule deriving "
              "it is dead"));
    }
    for (const Atom& atom : rule.body) {
      PredicateId p = atom.pred;
      if (p >= num_preds || supported[p] || in_head[p] || reported[p]) {
        continue;
      }
      reported[p] = true;
      out->push_back(AtomDiagnostic(
          ctx, static_cast<int>(i), atom, Severity::kWarning,
          lint_code::kUnderivablePredicate,
          "predicate '" + vocab.predicate(p).name +
              "' has no facts and no rules (possible typo in the "
              "predicate name)"));
    }
  }

  // L008: top-down relevance from explicit query roots.
  if (ctx.options.roots.empty()) return;
  std::vector<bool> relevant(num_preds, false);
  std::vector<PredicateId> stack;
  std::string root_list;
  for (const std::string& name : ctx.options.roots) {
    PredicateId p = vocab.FindPredicate(name);
    if (p == kInvalidPredicate || p >= num_preds) {
      // L013: a root that names no predicate is almost always a typo, and
      // silently dropping it would hide rules from the L008 relevance set.
      out->push_back(MakeProgramDiagnostic(
          Severity::kNote, lint_code::kUnknownRoot,
          "query root '" + name +
              "' does not name a predicate of the program and is ignored"));
      continue;
    }
    if (!root_list.empty()) root_list += ", ";
    root_list += "'" + name + "'";
    if (!relevant[p]) {
      relevant[p] = true;
      stack.push_back(p);
    }
  }
  while (!stack.empty()) {
    PredicateId p = stack.back();
    stack.pop_back();
    for (PredicateId q : ctx.graph.DependsOn(p)) {
      if (q < num_preds && !relevant[q]) {
        relevant[q] = true;
        stack.push_back(q);
      }
    }
  }
  for (std::size_t i = 0; i < rules.size(); ++i) {
    PredicateId head = rules[i].head.pred;
    if (head >= num_preds || relevant[head]) continue;
    out->push_back(MakeRuleDiagnostic(
        ctx.program, static_cast<int>(i), Severity::kNote,
        lint_code::kUnreachableFromRoots,
        RuleLabel(i) + " for '" + vocab.predicate(head).name +
            "' is unreachable from the query roots " + root_list +
            " and cannot contribute to an answer"));
  }
}

// --------------------------------------------------------------------------
// classification (L009, L010, L011): explained tractability verdicts.
// --------------------------------------------------------------------------

void ClassificationPass(const LintContext& ctx, std::vector<Diagnostic>* out) {
  SeparabilityReport separability =
      CheckSeparability(ctx.program, ctx.graph);
  for (Diagnostic& diag : separability.diagnostics) {
    out->push_back(std::move(diag));
  }
  ProgressivityReport progressive = CheckProgressive(ctx.program);
  if (!progressive.progressive) {
    out->push_back(MakeProgramDiagnostic(
        Severity::kNote, lint_code::kNotProgressive,
        "program is not progressive: " + progressive.reason +
            "; period detection falls back to verified doubling"));
  }
}

// --------------------------------------------------------------------------
// inflationary (L012): the Theorem 5.2 decision procedure (opt-in).
// --------------------------------------------------------------------------

void InflationaryPass(const LintContext& ctx, std::vector<Diagnostic>* out) {
  Result<InflationaryReport> report =
      CheckInflationary(ctx.program, ctx.options.inflationary_budget);
  if (!report.ok()) {
    out->push_back(MakeProgramDiagnostic(
        Severity::kNote, lint_code::kNotInflationary,
        "inflationary check (Theorem 5.2) is inconclusive: " +
            report.status().ToString()));
    return;
  }
  for (Diagnostic& diag : report->diagnostics) {
    out->push_back(std::move(diag));
  }
}

using PassFn = void (*)(const LintContext&, std::vector<Diagnostic>*);

struct RegisteredPass {
  LintPassInfo info;
  PassFn fn;
};

const std::vector<RegisteredPass>& Registry() {
  static const std::vector<RegisteredPass> kPasses = {
      {{"safety", "L001",
        "range-restriction violations (unbound head variables)"},
       SafetyPass},
      {{"sorts", "L002",
        "temporal-argument misuse and signature mismatches on the typed AST"},
       SortsPass},
      {{"singleton", "L003", "variables occurring exactly once in a rule"},
       SingletonPass},
      {{"duplicate", "L004", "rules identical up to variable renaming"},
       DuplicatePass},
      {{"subsumed", "L005",
        "rules whose body strictly contains another rule's body (same head)"},
       SubsumedPass},
      {{"reachability", "L006,L007,L008,L013",
        "dead rules and underivable predicates from EDB/query roots"},
       ReachabilityPass},
      {{"classification", "L009,L010,L011",
        "explained multi-separability / progressivity failures"},
       ClassificationPass},
      {{"inflationary", "L012",
        "Theorem 5.2 inflationary decision procedure (opt-in, builds models)"},
       InflationaryPass},
  };
  return kPasses;
}

}  // namespace

const std::vector<LintPassInfo>& LintPassRegistry() {
  static const std::vector<LintPassInfo> kInfos = [] {
    std::vector<LintPassInfo> infos;
    for (const RegisteredPass& pass : Registry()) infos.push_back(pass.info);
    return infos;
  }();
  return kInfos;
}

std::size_t LintResult::CountSeverity(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& diag : diagnostics) {
    if (diag.severity == severity) ++n;
  }
  return n;
}

std::string LintResult::ToString() const {
  std::string out;
  for (const Diagnostic& diag : diagnostics) {
    out += diag.ToString() + "\n";
  }
  std::size_t errors = CountSeverity(Severity::kError);
  std::size_t warnings = CountSeverity(Severity::kWarning);
  if (errors + warnings > 0) {
    out += std::to_string(errors) + " error(s), " +
           std::to_string(warnings) + " warning(s)\n";
  }
  return out;
}

std::string LintResult::ToJson() const {
  std::string out = "{\"diagnostics\":" + DiagnosticsToJson(diagnostics);
  out += ",\"errors\":" + std::to_string(CountSeverity(Severity::kError));
  out += ",\"warnings\":" + std::to_string(CountSeverity(Severity::kWarning));
  out += ",\"notes\":" + std::to_string(CountSeverity(Severity::kNote));
  out += "}";
  return out;
}

LintResult LintProgram(const Program& program, const Database& database,
                       const LintOptions& options) {
  DependencyGraph graph(program);
  LintContext ctx{program, database, options, graph};
  LintResult result;
  auto disabled = [&options](std::string_view name) {
    for (const std::string& d : options.disabled_passes) {
      if (d == name) return true;
    }
    return false;
  };
  for (const RegisteredPass& pass : Registry()) {
    if (disabled(pass.info.name)) continue;
    if (pass.info.name == "classification" && !options.classify) continue;
    if (pass.info.name == "inflationary" && !options.check_inflationary) {
      continue;
    }
    pass.fn(ctx, &result.diagnostics);
  }
  SortDiagnostics(&result.diagnostics);
  return result;
}

}  // namespace chronolog
