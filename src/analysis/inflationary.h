#ifndef CHRONOLOG_ANALYSIS_INFLATIONARY_H_
#define CHRONOLOG_ANALYSIS_INFLATIONARY_H_

#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "ast/program.h"
#include "spec/period.h"
#include "util/result.h"

namespace chronolog {

/// Verdict of the inflationary test, with the predicates that failed the
/// criterion (empty iff inflationary).
struct InflationaryReport {
  bool inflationary = true;
  std::vector<PredicateId> failing_predicates;
  /// One kNotInflationary (L012) diagnostic per failing predicate, located
  /// at the first rule deriving it, spelling out the Theorem 5.2 witness
  /// (`P(1, a)` not derivable from `{P(0, a)}`).
  std::vector<Diagnostic> diagnostics;
  /// Per-predicate detail: predicate name and whether `P(1, a)` was derivable
  /// from `{P(0, a)}`.
  std::string ToString(const Vocabulary& vocab) const;
};

/// Decides whether a (domain-independent) set of temporal rules is
/// *inflationary* (Section 5): for every temporal database `D`, every
/// derived temporal predicate `P` and all `t`, `x`:
/// `M_{Z∧D} |= P(t, x)  =>  M_{Z∧D} |= P(t+1, x)`.
///
/// Implements the decision procedure of Theorem 5.2: `Z` is inflationary iff
/// for every derived temporal predicate `P_i` (with fresh pairwise-distinct
/// constants `a`), `P_i(1, a)` belongs to the least model of
/// `Z ∧ {P_i(0, a)}`. Each check runs over a one-tuple database, so the
/// procedure is polynomial in the size of `Z`.
///
/// Inflationary programs have periods `(poly(n)+1, 1)` (Theorem 5.1) and are
/// therefore tractable.
Result<InflationaryReport> CheckInflationary(
    const Program& program, const PeriodDetectionOptions& options = {});

/// Bound on `range(Z ∧ D)` for an inflationary program, derived from the
/// proof of Theorem 5.1: states grow monotonically past the database
/// horizon, so the number of distinct states is at most the maximal state
/// size + 2. The state size is bounded by the number of derived-predicate
/// tuples over the active domain: `sum_P |adom|^{arity(P)}`.
/// Saturates at INT64_MAX for astronomically wide schemas.
int64_t InflationaryRangeBound(const Program& program, const Database& db);

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_INFLATIONARY_H_
