#ifndef CHRONOLOG_ANALYSIS_DATAFLOW_H_
#define CHRONOLOG_ANALYSIS_DATAFLOW_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/depgraph.h"
#include "analysis/diagnostics.h"
#include "analysis/lint.h"
#include "ast/program.h"
#include "eval/rule_eval.h"
#include "spec/period.h"

namespace chronolog {

// ---------------------------------------------------------------------------
// chronolog_flow: SCC-ordered lattice-fixpoint dataflow over the predicate
// dependency graph (the induction on level numbers behind Theorem 6.5, run
// as a static analysis). Three concrete analyses ride on one framework:
//
//   * temporal-offset analysis — per-rule head/body time deltas propagated
//     as difference constraints per SCC; yields a sound upper bound on the
//     stabilization horizon of bounded programs and a static divisor of the
//     model's minimal period (A001-A004);
//   * polynomial degree analysis — a worst-case exponent k per predicate
//     such that the per-timestep relation holds O(n^k) tuples in the
//     database size measure n (A005, A006);
//   * binding-pattern (adornment) analysis — bound/free propagation from
//     query roots, exporting static join-order priors that seed the
//     RuleEvaluator plan cache before runtime sampling (A007, A008).
//
// Every result is advisory: hints feed PeriodDetectionOptions and the join
// planner, but correctness of evaluation never depends on them.
// ---------------------------------------------------------------------------

/// Rules of a program grouped by the dependency-graph component of their
/// head predicate — the iteration skeleton every SCC-ordered analysis
/// shares. Component ids follow DependencyGraph: increasing index visits
/// callees (lower strata) first.
class SccRulePartition {
 public:
  SccRulePartition(const Program& program, const DependencyGraph& graph);

  /// Indices into Program::rules() whose head lies in `component`.
  const std::vector<int>& RulesOfComponent(int component) const {
    return rules_of_component_[component];
  }
  int num_components() const {
    return static_cast<int>(rules_of_component_.size());
  }

 private:
  std::vector<std::vector<int>> rules_of_component_;
};

/// Outcome counters of one SCC fixpoint solve (test/observability surface).
struct SccFixpointStats {
  int rounds = 0;        // total transfer rounds across all components
  int widened_sccs = 0;  // components that hit the round bound and widened
};

/// Generic SCC-ordered lattice-fixpoint driver. For each component in
/// callee-first order it iterates `apply_rule` (a monotone transfer; returns
/// true when the head value rose) over the component's rules until stable.
/// A component still changing after `2·(|rules| + |preds|) + 4` rounds is
/// widened: `widen(pred)` jumps every predicate of the component that rose
/// in the last round to the lattice top (return true when the value
/// changed), after which iteration resumes — the top is absorbing, so the
/// loop terminates. When `narrow_rule` is non-null, widened components get
/// up to three narrowing passes: `narrow_rule` recomputes a head value from
/// scratch (a plain `F(x)` application, allowed to *lower* the value);
/// starting above the least fixpoint, every such pass stays above it, so
/// accepting any prefix of the descent is sound.
SccFixpointStats SolveSccFixpoint(
    const Program& program, const DependencyGraph& graph,
    const SccRulePartition& partition,
    const std::function<bool(int rule_index)>& apply_rule,
    const std::function<bool(PredicateId)>& widen,
    const std::function<void(int component)>& narrow_component = nullptr);

// ---------------------------------------------------------------------------
// Analysis 1: temporal offsets.
// ---------------------------------------------------------------------------

/// Lattice of the temporal-offset analysis: the largest time point at which
/// a predicate can hold a fact. kTimeBottom = derivably empty (no facts, no
/// firing rule); kTimeUnbounded = facts at arbitrarily large times.
inline constexpr int64_t kTimeBottom = std::numeric_limits<int64_t>::min();
inline constexpr int64_t kTimeUnbounded = std::numeric_limits<int64_t>::max();

/// Per-component facts of the temporal-offset analysis, kept for the
/// A-series explanations and the JSON export.
struct SccOffsetInfo {
  int component = 0;
  std::vector<PredicateId> predicates;
  /// gcd of the net temporal offsets around every directed cycle of the
  /// component (0 when the component has no within-SCC temporal edge, or
  /// when some edge relates head and body through distinct temporal
  /// variables and no uniform shift exists).
  int64_t cycle_gcd = 0;
  bool has_nonuniform_edge = false;
  /// True when every predicate of the component stabilises (finite or
  /// bottom last-time).
  bool bounded = true;
  /// Exact eventual period of this component's pattern, when the component
  /// qualifies as an EDB-seeded pure self-delay SCC (see dataflow.cc);
  /// 0 = no claim.
  int64_t self_delay_period = 0;
};

struct TemporalOffsetResult {
  /// Per predicate: kTimeBottom, a finite bound, or kTimeUnbounded.
  std::vector<int64_t> last_time;
  std::vector<SccOffsetInfo> sccs;  // one entry per component with rules
  /// True when every predicate's last_time is finite or bottom. Then the
  /// model's minimal period is 1 and b + c <= static_horizon + 1.
  bool bounded = false;
  /// Max finite last_time over all predicates (0 when none) — a sound upper
  /// bound on the stabilization time of a bounded program.
  int64_t static_horizon = 0;
  /// A proven divisor of the model's minimal period p (p % divisor == 0);
  /// 1 when nothing stronger is known. The lcm of the exact eventual
  /// periods of all qualifying self-delay components.
  int64_t period_divisor = 1;
};

// ---------------------------------------------------------------------------
// Analysis 2: polynomial degree.
// ---------------------------------------------------------------------------

struct DegreeResult {
  /// Per predicate: smallest proven k with |P at any one time| = O(n^k) in
  /// the database size measure n (max of facts and constants).
  std::vector<int> degree;
  /// Max degree over derived predicates — the program is O(n^k) per
  /// timestep.
  int program_degree = 0;
};

// ---------------------------------------------------------------------------
// Analysis 3: binding patterns (adornments).
// ---------------------------------------------------------------------------

struct AdornmentResult {
  /// Per predicate, the distinct binding patterns ('b'/'f' per non-temporal
  /// argument, most-bound first) reachable from the roots. Predicates never
  /// reached carry no patterns.
  std::vector<std::vector<std::string>> patterns;
  /// Per rule (indexed like Program::rules()), the statically preferred
  /// body-atom evaluation order; empty = source order / no preference.
  /// Consumed by FixpointOptions::plan_priors.
  JoinOrderPriors priors;
};

// ---------------------------------------------------------------------------
// The combined run.
// ---------------------------------------------------------------------------

/// Detection seeds derived from the offset analysis. `initial_horizon == 0`
/// means no prediction. Seeding is result-invariant: the doubling detector
/// converges to the model's minimal period from any starting window, and
/// progressive programs use the exact forward detector, which ignores the
/// hint entirely.
struct FlowHints {
  int64_t initial_horizon = 0;
  int64_t period_divisor = 1;
  bool bounded = false;
  int64_t static_horizon = 0;
};

struct FlowOptions {
  /// Adornment roots (predicate names). Unknown names are ignored here (the
  /// lint reachability pass reports them as L013); empty = every derived
  /// predicate with an all-free pattern, so join-order priors exist even
  /// without an explicit query.
  std::vector<std::string> roots;
  /// Degree budget: predicates whose proven degree exceeds it get an A005
  /// warning.
  int degree_budget = 8;
  /// Cap applied to the exported initial-horizon hint (seeding beyond the
  /// detector's own max_horizon would be useless work).
  int64_t max_horizon_hint = 1 << 20;
};

/// The combined chronolog_flow result over one program + database.
struct FlowAnalysis {
  TemporalOffsetResult offsets;
  DegreeResult degrees;
  AdornmentResult adornments;
  FlowHints hints;
  /// A-series diagnostics (sorted, same contract as lint diagnostics).
  std::vector<Diagnostic> diagnostics;
  SccFixpointStats stats;

  /// Human-readable analysis report (one block per analysis).
  std::string Summary(const Program& program) const;
  /// {"bounded":...,"static_horizon":...,"period_divisor":...,
  ///  "initial_horizon_hint":...,"program_degree":...,"predicates":[...],
  ///  "sccs":[...],"priors":[...],"diagnostics":[...]}
  std::string ToJson(const Program& program) const;
};

/// Runs all three analyses. Purely static (no model construction); linear
/// in the program size up to the bounded SCC fixpoints.
FlowAnalysis AnalyzeProgram(const Program& program, const Database& database,
                            const FlowOptions& options = {});

/// Applies `hints` to detection options: raises `initial_horizon` to the
/// predicted stabilization window when the prediction exceeds the
/// configured start. Never lowers anything; results are unchanged by
/// construction (see FlowHints).
void SeedPeriodOptions(const FlowHints& hints, PeriodDetectionOptions* options);

/// The registered flow passes (same shape as LintPassRegistry; surfaced by
/// `chronolog-lint --list-passes`).
const std::vector<LintPassInfo>& FlowPassRegistry();

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_DATAFLOW_H_
