#ifndef CHRONOLOG_ANALYSIS_CLASSIFY_H_
#define CHRONOLOG_ANALYSIS_CLASSIFY_H_

#include <string>
#include <vector>

#include "analysis/depgraph.h"
#include "analysis/diagnostics.h"
#include "ast/program.h"

namespace chronolog {

/// True when `rule` is recursive in the direct sense used by Section 6:
/// its head predicate also occurs in its body.
bool IsRecursiveRule(const Rule& rule);

/// A recursive rule is *time-only* when the non-temporal arguments in all
/// occurrences of the recursive predicate are identical (Section 6), e.g.
/// `near(T+1,X,Y) :- near(T,X,Y), idle(T,X), idle(T,Y).`
bool IsTimeOnlyRule(const Rule& rule);

/// A time-only rule is *reduced* when every non-temporal variable appearing
/// in its body also appears in its head. Any time-only rule can be brought
/// into this form by introducing auxiliary predicates (Section 6).
bool IsReducedTimeOnlyRule(const Rule& rule);

/// A recursive rule is *data-only* when the temporal argument of all its
/// temporal literals is the identical term, e.g.
/// `happy(T,X) :- happy(T,Y), friend(X,Y).`
bool IsDataOnlyRule(const Rule& rule);

/// Verdict of the multi-separability test with source-located explanations
/// on failure.
struct SeparabilityReport {
  bool multi_separable = false;
  /// Separable rules additionally restrict recursive time-only rules to at
  /// most one temporal literal in the body (Section 7 / reference [7]).
  bool separable = false;
  /// First failure in one line (kept for quick printing); empty when
  /// multi-separable.
  std::string reason;
  /// Every violation, located at the offending rule: kNotSeparable (L009)
  /// failures plus kUnreducedTimeOnly (L010) notes for time-only rules
  /// that would need the Section 6 auxiliary-predicate reduction before
  /// the Theorem 6.3 I-period construction applies.
  std::vector<Diagnostic> diagnostics;
};

/// Decides multi-separability (Section 6): the program must be free of
/// mutual recursion and every *recursive* rule defining a recursive
/// predicate must be time-only or data-only. Multi-separable programs are
/// I-periodic (Theorem 6.5) and therefore tractable.
SeparabilityReport CheckSeparability(const Program& program,
                                     const DependencyGraph& graph);

/// Aggregate syntactic classification of a program; the entry point used by
/// the engine facade.
struct ProgramClassification {
  bool range_restricted = false;
  bool semi_normal = false;
  bool normal = false;
  bool progressive = false;
  bool mutual_recursion_free = false;
  bool multi_separable = false;
  bool separable = false;
  int64_t max_temporal_depth = 0;  // the paper's g
  std::string separability_reason;
  std::string progressivity_reason;

  std::string ToString() const;
};

ProgramClassification ClassifyProgram(const Program& program);

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_CLASSIFY_H_
