#ifndef CHRONOLOG_ANALYSIS_DEPGRAPH_H_
#define CHRONOLOG_ANALYSIS_DEPGRAPH_H_

#include <cstdint>
#include <vector>

#include "ast/program.h"

namespace chronolog {

/// Predicate dependency graph of a set of temporal rules: an edge
/// `head -> body_pred` for every rule. Strongly connected components
/// detect mutual recursion (forbidden by multi-separability, Section 6) and
/// provide the stratum order used by the I-period computation (Theorem 6.5
/// proceeds by induction on level numbers).
class DependencyGraph {
 public:
  explicit DependencyGraph(const Program& program);

  std::size_t num_predicates() const { return adj_.size(); }

  /// Predicates `head` depends on (deduplicated).
  const std::vector<PredicateId>& DependsOn(PredicateId head) const {
    return adj_[head];
  }

  /// Component index of `pred`; components are numbered in reverse
  /// topological order (callees before callers), so iterating components in
  /// increasing index order visits lower strata first.
  int ComponentOf(PredicateId pred) const { return component_[pred]; }
  int num_components() const { return num_components_; }

  /// Members of each component, indexed by component id.
  const std::vector<std::vector<PredicateId>>& components() const {
    return members_;
  }

  /// True when some component contains two or more predicates — i.e. two
  /// distinct predicates are mutually recursive.
  bool HasMutualRecursion() const { return has_mutual_recursion_; }

  /// True when `pred` is recursive: it belongs to a multi-predicate
  /// component or some rule for `pred` mentions `pred` in its body.
  bool IsRecursive(PredicateId pred) const { return recursive_[pred]; }

  /// Predicates sorted by component index (lower strata first); the order
  /// within a component is arbitrary.
  std::vector<PredicateId> TopologicalOrder() const;

 private:
  std::vector<std::vector<PredicateId>> adj_;
  std::vector<int> component_;
  std::vector<std::vector<PredicateId>> members_;
  std::vector<bool> recursive_;
  int num_components_ = 0;
  bool has_mutual_recursion_ = false;
};

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_DEPGRAPH_H_
