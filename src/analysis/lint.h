#ifndef CHRONOLOG_ANALYSIS_LINT_H_
#define CHRONOLOG_ANALYSIS_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/depgraph.h"
#include "analysis/diagnostics.h"
#include "ast/program.h"
#include "spec/period.h"

namespace chronolog {

/// Configuration of one chronolog_lint run.
struct LintOptions {
  /// Run the tractability-classification passes (separability /
  /// progressivity explanations). Purely syntactic, cheap.
  bool classify = true;
  /// Run the Theorem 5.2 inflationary decision procedure. It materialises
  /// one least model per derived temporal predicate (budgeted by
  /// `inflationary_budget`), so it is opt-in.
  bool check_inflationary = false;
  PeriodDetectionOptions inflationary_budget;
  /// Optional query roots (predicate names). When non-empty, rules whose
  /// head cannot be reached from any root along the dependency graph are
  /// flagged kUnreachableFromRoots (L008). Names that do not resolve to a
  /// predicate get a kUnknownRoot (L013) note and are otherwise ignored.
  std::vector<std::string> roots;
  /// Pass names (see LintPassRegistry) to skip; empty = run everything
  /// enabled by the flags above.
  std::vector<std::string> disabled_passes;
};

/// Static description of one registered lint pass.
struct LintPassInfo {
  std::string_view name;         // stable pass name, e.g. "safety"
  std::string_view codes;        // diagnostic codes it can emit, e.g. "L001"
  std::string_view description;  // one line for --list-passes
};

/// The registered passes, in execution order.
const std::vector<LintPassInfo>& LintPassRegistry();

/// Outcome of a lint run: every diagnostic, sorted by source position.
struct LintResult {
  std::vector<Diagnostic> diagnostics;

  std::size_t CountSeverity(Severity severity) const;
  bool has_errors() const { return CountSeverity(Severity::kError) > 0; }

  /// One diagnostic per line plus a trailing "N errors, M warnings" summary
  /// line (omitted when clean).
  std::string ToString() const;
  /// {"diagnostics":[...],"errors":N,"warnings":N,"notes":N}
  std::string ToJson() const;
};

/// Runs every registered (and enabled) pass over `Z ∧ D`. Never fails: an
/// analysis that cannot complete within budget reports a note diagnostic
/// instead. Results are deterministic and independent of pass order.
LintResult LintProgram(const Program& program, const Database& database,
                       const LintOptions& options = {});

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_LINT_H_
