#include "analysis/normalize.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace chronolog {

namespace {

/// Collects the temporal variables of a rule in first-occurrence order.
std::vector<VarId> TemporalVarsOf(const Rule& rule) {
  std::vector<VarId> out;
  auto consider = [&out](const Atom& atom) {
    if (atom.temporal() && !atom.time->ground()) {
      VarId v = atom.time->var;
      if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
    }
  };
  consider(rule.head);
  for (const Atom& atom : rule.body) consider(atom);
  return out;
}

}  // namespace

Result<Program> SemiNormalize(const Program& program) {
  auto vocab = program.vocab_ptr();
  Program out(vocab);
  int fresh = 0;

  for (const Rule& rule : program.rules()) {
    std::vector<VarId> tvars = TemporalVarsOf(rule);
    if (tvars.size() <= 1) {
      out.AddRule(rule);
      continue;
    }
    // Keep the head's temporal variable (it cannot be factored away);
    // otherwise keep the first one.
    VarId kept = tvars[0];
    if (rule.head.temporal() && !rule.head.time->ground()) {
      kept = rule.head.time->var;
    }

    Rule rewritten = rule;
    for (VarId victim : tvars) {
      if (victim == kept) continue;
      // Cluster: body atoms whose temporal term uses `victim`.
      std::vector<Atom> cluster;
      std::vector<Atom> rest;
      for (Atom& atom : rewritten.body) {
        bool uses = atom.temporal() && !atom.time->ground() &&
                    atom.time->var == victim;
        (uses ? cluster : rest).push_back(std::move(atom));
      }
      // Non-temporal variables of the cluster, in order.
      std::vector<VarId> nt_vars;
      for (const Atom& atom : cluster) {
        for (const NtTerm& t : atom.args) {
          if (t.is_variable() &&
              std::find(nt_vars.begin(), nt_vars.end(), t.id) ==
                  nt_vars.end()) {
            nt_vars.push_back(t.id);
          }
        }
      }
      // Fresh non-temporal predicate over the cluster's variables.
      std::string name = "$sn" + std::to_string(fresh++) + "_" +
                         vocab->predicate(rule.head.pred).name;
      CHRONOLOG_ASSIGN_OR_RETURN(
          PredicateId aux,
          vocab->DeclarePredicate(name,
                                  static_cast<uint32_t>(nt_vars.size())));

      // Definition rule: aux(x...) :- cluster. Variables are renumbered
      // into a fresh rule-local table.
      Rule def;
      std::map<VarId, VarId> remap;
      auto map_var = [&](VarId v) {
        auto it = remap.find(v);
        if (it != remap.end()) return it->second;
        VarId nv = static_cast<VarId>(def.var_names.size());
        def.var_names.push_back(rule.var_names[v]);
        def.temporal_vars.push_back(rule.temporal_vars[v]);
        remap.emplace(v, nv);
        return nv;
      };
      def.head.pred = aux;
      for (VarId v : nt_vars) {
        def.head.args.push_back(NtTerm::Variable(map_var(v)));
      }
      for (const Atom& atom : cluster) {
        Atom mapped = atom;
        if (mapped.temporal() && !mapped.time->ground()) {
          mapped.time = TemporalTerm::Var(map_var(mapped.time->var),
                                          mapped.time->offset);
        }
        for (NtTerm& t : mapped.args) {
          if (t.is_variable()) t = NtTerm::Variable(map_var(t.id));
        }
        def.body.push_back(std::move(mapped));
      }
      out.AddRule(std::move(def));

      // Replace the cluster by one aux atom in the original rule.
      Atom replacement;
      replacement.pred = aux;
      for (VarId v : nt_vars) replacement.args.push_back(NtTerm::Variable(v));
      rest.push_back(std::move(replacement));
      rewritten.body = std::move(rest);
    }
    out.AddRule(std::move(rewritten));
  }
  return out;
}

Result<Program> Normalize(const Program& program) {
  CHRONOLOG_ASSIGN_OR_RETURN(Program semi, SemiNormalize(program));
  auto vocab = semi.vocab_ptr();
  Program out(vocab);
  int fresh = 0;
  // Shared forward-shift predicates, keyed by (pred, lag).
  std::map<std::pair<PredicateId, int64_t>, PredicateId> fwd;

  // Returns $fwdj_Q with Q(T+j, y) <=> $fwdj_Q(T, y), creating the defining
  // chain on first use.
  auto fwd_pred = [&](PredicateId q, int64_t j) -> Result<PredicateId> {
    auto it = fwd.find({q, j});
    if (it != fwd.end()) return it->second;
    // Copy: DeclarePredicate below may reallocate the predicate table.
    const PredicateInfo info = vocab->predicate(q);
    PredicateId prev = q;
    for (int64_t l = 1; l <= j; ++l) {
      auto lit = fwd.find({q, l});
      if (lit != fwd.end()) {
        prev = lit->second;
        continue;
      }
      std::string name = "$fwd" + std::to_string(l) + "_" + info.name;
      CHRONOLOG_ASSIGN_OR_RETURN(
          PredicateId shifted, vocab->DeclarePredicate(name, info.arity + 1));
      vocab->SetTemporal(shifted);
      // $fwdl_Q(T, y) :- prev(T+1, y).
      Rule def;
      def.var_names.push_back("T");
      def.temporal_vars.push_back(true);
      def.head.pred = shifted;
      def.head.time = TemporalTerm::Var(0, 0);
      Atom body;
      body.pred = prev;
      body.time = TemporalTerm::Var(0, 1);
      for (uint32_t a = 0; a < info.arity; ++a) {
        VarId v = static_cast<VarId>(def.var_names.size());
        def.var_names.push_back("Y" + std::to_string(a));
        def.temporal_vars.push_back(false);
        def.head.args.push_back(NtTerm::Variable(v));
        body.args.push_back(NtTerm::Variable(v));
      }
      def.body.push_back(std::move(body));
      out.AddRule(std::move(def));
      fwd.emplace(std::make_pair(q, l), shifted);
      prev = shifted;
    }
    return prev;
  };

  for (const Rule& rule : semi.rules()) {
    if (rule.MaxTemporalDepth() <= 1) {
      out.AddRule(rule);
      continue;
    }
    Rule rewritten = rule;
    // Deep body atoms become forward-shift atoms at offset 0.
    for (Atom& atom : rewritten.body) {
      if (atom.temporal() && !atom.time->ground() && atom.time->offset >= 2) {
        CHRONOLOG_ASSIGN_OR_RETURN(PredicateId shifted,
                                   fwd_pred(atom.pred, atom.time->offset));
        atom.pred = shifted;
        atom.time = TemporalTerm::Var(atom.time->var, 0);
      }
    }
    // Deep heads are staged through a copy chain.
    if (rewritten.head.temporal() && !rewritten.head.time->ground() &&
        rewritten.head.time->offset >= 2) {
      const int64_t a = rewritten.head.time->offset;
      const VarId tvar = rewritten.head.time->var;
      // Distinct head variables, in order (constants are reattached at the
      // final step).
      std::vector<VarId> xs;
      for (const NtTerm& t : rewritten.head.args) {
        if (t.is_variable() &&
            std::find(xs.begin(), xs.end(), t.id) == xs.end()) {
          xs.push_back(t.id);
        }
      }
      const std::string base = "$nf" + std::to_string(fresh++) + "_" +
                               vocab->predicate(rewritten.head.pred).name;
      std::vector<PredicateId> stage(static_cast<std::size_t>(a));
      for (int64_t i = 0; i < a; ++i) {
        CHRONOLOG_ASSIGN_OR_RETURN(
            stage[i],
            vocab->DeclarePredicate(
                base + "_" + std::to_string(i),
                static_cast<uint32_t>(xs.size()) + 1));
        vocab->SetTemporal(stage[i]);
      }
      // stage0(T, xs) :- body'.
      Rule start;
      start.var_names = rewritten.var_names;
      start.temporal_vars = rewritten.temporal_vars;
      start.head.pred = stage[0];
      start.head.time = TemporalTerm::Var(tvar, 0);
      for (VarId v : xs) start.head.args.push_back(NtTerm::Variable(v));
      start.body = std::move(rewritten.body);
      out.AddRule(std::move(start));
      // stage_i(T+1, xs) :- stage_{i-1}(T, xs); the final link re-derives
      // the original head pattern.
      for (int64_t i = 1; i <= a; ++i) {
        Rule link;
        link.var_names.push_back(rule.var_names[tvar]);
        link.temporal_vars.push_back(true);
        Atom body;
        body.pred = stage[i - 1];
        body.time = TemporalTerm::Var(0, 0);
        std::map<VarId, VarId> remap;
        for (VarId v : xs) {
          VarId nv = static_cast<VarId>(link.var_names.size());
          link.var_names.push_back(rule.var_names[v]);
          link.temporal_vars.push_back(false);
          remap.emplace(v, nv);
          body.args.push_back(NtTerm::Variable(nv));
        }
        if (i < a) {
          link.head.pred = stage[i];
          link.head.time = TemporalTerm::Var(0, 1);
          for (VarId v : xs) {
            link.head.args.push_back(NtTerm::Variable(remap[v]));
          }
        } else {
          link.head.pred = rule.head.pred;
          link.head.time = TemporalTerm::Var(0, 1);
          for (const NtTerm& t : rule.head.args) {
            link.head.args.push_back(
                t.is_variable() ? NtTerm::Variable(remap[t.id]) : t);
          }
        }
        link.body.push_back(std::move(body));
        out.AddRule(std::move(link));
      }
    } else {
      out.AddRule(std::move(rewritten));
    }
  }
  return out;
}

}  // namespace chronolog
