#include "analysis/boundedness.h"

#include <algorithm>
#include <string>

#include "eval/fixpoint.h"

namespace chronolog {

namespace {

Status RequireFunctionFree(const Program& program) {
  for (PredicateId p : program.vocab().AllPredicates()) {
    if (program.vocab().predicate(p).is_temporal) {
      return InvalidArgumentError(
          "boundedness analysis requires a function-free program; "
          "predicate '" + program.vocab().predicate(p).name +
          "' is temporal");
    }
  }
  return Status::Ok();
}

}  // namespace

Result<int64_t> FixpointIterations(const Program& program,
                                   const Database& db, uint64_t max_facts) {
  CHRONOLOG_RETURN_IF_ERROR(RequireFunctionFree(program));
  FixpointOptions options;
  options.max_time = 0;
  options.max_facts = max_facts;

  Interpretation current(program.vocab_ptr());
  current.InsertDatabase(db);
  int64_t iterations = 0;
  while (true) {
    CHRONOLOG_ASSIGN_OR_RETURN(Interpretation next,
                               ApplyTp(program, db, current, options));
    if (next.SegmentEquals(current, 0, /*and_non_temporal=*/true)) {
      return iterations;
    }
    current = std::move(next);
    ++iterations;
  }
}

Result<BoundednessProbe> ProbeBoundedness(const Program& program,
                                          int max_chain) {
  CHRONOLOG_RETURN_IF_ERROR(RequireFunctionFree(program));
  const Vocabulary& vocab = program.vocab();
  auto vocab_ptr = program.vocab_ptr();

  BoundednessProbe probe;
  int64_t previous = -1;
  bool grew_at_tail = false;
  for (int n = 2; n <= max_chain; n *= 2) {
    // Canonical chain database: every EDB predicate seeded along
    // c_0 -> c_1 -> ... -> c_{n-1} (unary predicates get every element).
    Database db(vocab_ptr);
    std::vector<SymbolId> chain;
    chain.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      chain.push_back(
          vocab_ptr->InternConstant("$bp" + std::to_string(i)));
    }
    std::vector<PredicateId> derived = program.DerivedPredicates();
    for (PredicateId pred : vocab.AllPredicates()) {
      if (std::find(derived.begin(), derived.end(), pred) != derived.end()) {
        continue;  // only EDB predicates are seeded
      }
      const PredicateInfo& info = vocab.predicate(pred);
      if (info.arity == 0) {
        db.AddFact(GroundAtom(pred, 0, {}));
      } else if (info.arity == 1) {
        for (SymbolId c : chain) db.AddFact(GroundAtom(pred, 0, {c}));
      } else {
        // Chain links in the first two columns; further columns repeat the
        // source (enough to drive transitive-closure-style growth).
        for (int i = 0; i + 1 < n; ++i) {
          Tuple args;
          args.push_back(chain[i]);
          args.push_back(chain[i + 1]);
          for (uint32_t j = 2; j < info.arity; ++j) {
            args.push_back(chain[i]);
          }
          db.AddFact(GroundAtom(pred, 0, std::move(args)));
        }
      }
    }
    CHRONOLOG_ASSIGN_OR_RETURN(int64_t iterations,
                               FixpointIterations(program, db));
    grew_at_tail = iterations > probe.max_iterations && previous >= 0;
    previous = iterations;
    probe.max_iterations = std::max(probe.max_iterations, iterations);
  }
  // Growth at the largest probed sizes refutes every small bound.
  probe.refuted = grew_at_tail;
  return probe;
}

}  // namespace chronolog
