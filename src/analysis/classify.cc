#include "analysis/classify.h"

#include <algorithm>

#include "ast/printer.h"
#include "eval/forward.h"

namespace chronolog {

bool IsRecursiveRule(const Rule& rule) {
  for (const Atom& atom : rule.body) {
    if (atom.pred == rule.head.pred) return true;
  }
  return false;
}

bool IsTimeOnlyRule(const Rule& rule) {
  if (!IsRecursiveRule(rule)) return false;
  for (const Atom& atom : rule.body) {
    if (atom.pred == rule.head.pred && atom.args != rule.head.args) {
      return false;
    }
  }
  return true;
}

bool IsReducedTimeOnlyRule(const Rule& rule) {
  if (!IsTimeOnlyRule(rule)) return false;
  // Every non-temporal variable of the body must appear among the head's
  // non-temporal arguments.
  auto head_has = [&rule](VarId v) {
    for (const NtTerm& t : rule.head.args) {
      if (t.is_variable() && t.id == v) return true;
    }
    return false;
  };
  for (const Atom& atom : rule.body) {
    for (const NtTerm& t : atom.args) {
      if (t.is_variable() && !head_has(t.id)) return false;
    }
  }
  return true;
}

bool IsDataOnlyRule(const Rule& rule) {
  if (!IsRecursiveRule(rule)) return false;
  const TemporalTerm* common = nullptr;
  auto check = [&common](const Atom& atom) {
    if (!atom.temporal()) return true;
    if (common == nullptr) {
      common = &*atom.time;
      return true;
    }
    return *common == *atom.time;
  };
  if (!check(rule.head)) return false;
  for (const Atom& atom : rule.body) {
    if (!check(atom)) return false;
  }
  return true;
}

namespace {

/// Why a recursive rule is not time-only: names the recursive body literal
/// whose non-temporal arguments differ from the head's.
std::string ExplainNotTimeOnly(const Rule& rule, const Vocabulary& vocab) {
  for (const Atom& atom : rule.body) {
    if (atom.pred == rule.head.pred && atom.args != rule.head.args) {
      return "the recursive literal '" +
             AtomToString(atom, vocab, rule.var_names) +
             "' changes non-temporal arguments relative to the head '" +
             AtomToString(rule.head, vocab, rule.var_names) + "'";
    }
  }
  return "no recursive body literal matches the head's non-temporal "
         "arguments";
}

/// Why a recursive rule is not data-only: names two literals whose temporal
/// terms differ.
std::string ExplainNotDataOnly(const Rule& rule, const Vocabulary& vocab) {
  const Atom* first = nullptr;
  auto describe = [&](const Atom& atom) {
    return "'" + TemporalTermToString(*atom.time, rule.var_names) + "' in '" +
           AtomToString(atom, vocab, rule.var_names) + "'";
  };
  auto check = [&](const Atom& atom) -> std::string {
    if (!atom.temporal()) return "";
    if (first == nullptr) {
      first = &atom;
      return "";
    }
    if (*first->time == *atom.time) return "";
    return "temporal terms differ across literals (" + describe(*first) +
           " vs " + describe(atom) + ")";
  };
  std::string why = check(rule.head);
  for (const Atom& atom : rule.body) {
    if (!why.empty()) break;
    why = check(atom);
  }
  return why.empty() ? "temporal terms differ across literals" : why;
}

/// Body variables of a time-only rule missing from its head — the
/// witnesses that the rule is not *reduced* (Section 6).
std::vector<VarId> UnreducedBodyVars(const Rule& rule) {
  std::vector<VarId> out;
  auto head_has = [&rule](VarId v) {
    for (const NtTerm& t : rule.head.args) {
      if (t.is_variable() && t.id == v) return true;
    }
    return false;
  };
  for (const Atom& atom : rule.body) {
    for (const NtTerm& t : atom.args) {
      if (t.is_variable() && !head_has(t.id)) out.push_back(t.id);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

SeparabilityReport CheckSeparability(const Program& program,
                                     const DependencyGraph& graph) {
  SeparabilityReport report;
  const Vocabulary& vocab = program.vocab();

  if (graph.HasMutualRecursion()) {
    // Locate the violation at the first rule whose head predicate shares a
    // strongly connected component with another predicate.
    for (int c = 0; c < graph.num_components(); ++c) {
      const std::vector<PredicateId>& members = graph.components()[c];
      if (members.size() < 2) continue;
      std::string names;
      for (PredicateId p : members) {
        if (!names.empty()) names += ", ";
        names += "'" + vocab.predicate(p).name + "'";
      }
      int rule_index = -1;
      for (std::size_t i = 0; i < program.rules().size(); ++i) {
        if (graph.ComponentOf(program.rules()[i].head.pred) == c) {
          rule_index = static_cast<int>(i);
          break;
        }
      }
      report.diagnostics.push_back(MakeRuleDiagnostic(
          program, rule_index, Severity::kWarning, lint_code::kNotSeparable,
          "rule " + std::to_string(rule_index) + " for '" +
              vocab.predicate(program.rules()[rule_index].head.pred).name +
              "' participates in mutual recursion between " + names +
              "; multi-separability (Section 6) forbids mutually recursive "
              "predicates"));
    }
    report.reason = "program contains mutually recursive predicates";
    return report;
  }

  bool multi_separable = true;
  bool separable = true;
  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& rule = program.rules()[i];
    if (!graph.IsRecursive(rule.head.pred)) continue;
    if (!IsRecursiveRule(rule)) continue;  // base rules are unconstrained
    bool time_only = IsTimeOnlyRule(rule);
    bool data_only = IsDataOnlyRule(rule);
    if (!time_only && !data_only) {
      multi_separable = false;
      std::string message =
          "recursive rule " + std::to_string(i) + " '" +
          RuleToString(rule, vocab) +
          "' is neither time-only nor data-only: " +
          ExplainNotTimeOnly(rule, vocab) + "; " +
          ExplainNotDataOnly(rule, vocab);
      if (report.reason.empty()) report.reason = message;
      report.diagnostics.push_back(
          MakeRuleDiagnostic(program, static_cast<int>(i), Severity::kWarning,
                             lint_code::kNotSeparable, std::move(message)));
      continue;
    }
    if (time_only && !IsReducedTimeOnlyRule(rule)) {
      std::string vars;
      for (VarId v : UnreducedBodyVars(rule)) {
        if (!vars.empty()) vars += ", ";
        vars += "'" + rule.var_names[v] + "'";
      }
      report.diagnostics.push_back(MakeRuleDiagnostic(
          program, static_cast<int>(i), Severity::kNote,
          lint_code::kUnreducedTimeOnly,
          "rule " + std::to_string(i) +
              " is recursive time-only but not reduced: variable " + vars +
              " missing from the head (the Section 6 auxiliary-predicate "
              "reduction applies before the Theorem 6.3 construction)"));
    }
    if (time_only && !data_only) {
      // Separability further demands at most one temporal body literal.
      int temporal_literals = 0;
      for (const Atom& atom : rule.body) {
        if (atom.temporal()) ++temporal_literals;
      }
      if (temporal_literals > 1) separable = false;
    }
  }
  report.multi_separable = multi_separable;
  report.separable = multi_separable && separable;
  return report;
}

std::string ProgramClassification::ToString() const {
  auto flag = [](bool b) { return b ? "yes" : "no"; };
  std::string out;
  out += "range_restricted:      " + std::string(flag(range_restricted)) + "\n";
  out += "semi_normal:           " + std::string(flag(semi_normal)) + "\n";
  out += "normal:                " + std::string(flag(normal)) + "\n";
  out += "progressive:           " + std::string(flag(progressive));
  if (!progressive && !progressivity_reason.empty()) {
    out += "  (" + progressivity_reason + ")";
  }
  out += "\n";
  out += "mutual_recursion_free: " + std::string(flag(mutual_recursion_free)) +
         "\n";
  out += "multi_separable:       " + std::string(flag(multi_separable));
  if (!multi_separable && !separability_reason.empty()) {
    out += "  (" + separability_reason + ")";
  }
  out += "\n";
  out += "separable:             " + std::string(flag(separable)) + "\n";
  out += "max_temporal_depth:    " + std::to_string(max_temporal_depth) + "\n";
  return out;
}

ProgramClassification ClassifyProgram(const Program& program) {
  ProgramClassification result;
  result.range_restricted = program.IsRangeRestricted();
  result.semi_normal = program.IsSemiNormal();
  result.normal = program.IsNormal();
  result.max_temporal_depth = program.MaxTemporalDepth();

  ProgressivityReport progressive = CheckProgressive(program);
  result.progressive = progressive.progressive;
  result.progressivity_reason = progressive.reason;

  DependencyGraph graph(program);
  result.mutual_recursion_free = !graph.HasMutualRecursion();
  SeparabilityReport separability = CheckSeparability(program, graph);
  result.multi_separable = separability.multi_separable;
  result.separable = separability.separable;
  result.separability_reason = separability.reason;
  return result;
}

}  // namespace chronolog
