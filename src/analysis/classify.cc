#include "analysis/classify.h"

#include <algorithm>

#include "ast/printer.h"
#include "eval/forward.h"

namespace chronolog {

bool IsRecursiveRule(const Rule& rule) {
  for (const Atom& atom : rule.body) {
    if (atom.pred == rule.head.pred) return true;
  }
  return false;
}

bool IsTimeOnlyRule(const Rule& rule) {
  if (!IsRecursiveRule(rule)) return false;
  for (const Atom& atom : rule.body) {
    if (atom.pred == rule.head.pred && atom.args != rule.head.args) {
      return false;
    }
  }
  return true;
}

bool IsReducedTimeOnlyRule(const Rule& rule) {
  if (!IsTimeOnlyRule(rule)) return false;
  // Every non-temporal variable of the body must appear among the head's
  // non-temporal arguments.
  auto head_has = [&rule](VarId v) {
    for (const NtTerm& t : rule.head.args) {
      if (t.is_variable() && t.id == v) return true;
    }
    return false;
  };
  for (const Atom& atom : rule.body) {
    for (const NtTerm& t : atom.args) {
      if (t.is_variable() && !head_has(t.id)) return false;
    }
  }
  return true;
}

bool IsDataOnlyRule(const Rule& rule) {
  if (!IsRecursiveRule(rule)) return false;
  const TemporalTerm* common = nullptr;
  auto check = [&common](const Atom& atom) {
    if (!atom.temporal()) return true;
    if (common == nullptr) {
      common = &*atom.time;
      return true;
    }
    return *common == *atom.time;
  };
  if (!check(rule.head)) return false;
  for (const Atom& atom : rule.body) {
    if (!check(atom)) return false;
  }
  return true;
}

SeparabilityReport CheckSeparability(const Program& program,
                                     const DependencyGraph& graph) {
  SeparabilityReport report;
  if (graph.HasMutualRecursion()) {
    report.reason = "program contains mutually recursive predicates";
    return report;
  }
  bool separable = true;
  for (const Rule& rule : program.rules()) {
    if (!graph.IsRecursive(rule.head.pred)) continue;
    if (!IsRecursiveRule(rule)) continue;  // base rules are unconstrained
    bool time_only = IsTimeOnlyRule(rule);
    bool data_only = IsDataOnlyRule(rule);
    if (!time_only && !data_only) {
      report.reason = "recursive rule '" +
                      RuleToString(rule, program.vocab()) +
                      "' is neither time-only nor data-only";
      return report;
    }
    if (time_only && !data_only) {
      // Separability further demands at most one temporal body literal.
      int temporal_literals = 0;
      for (const Atom& atom : rule.body) {
        if (atom.temporal()) ++temporal_literals;
      }
      if (temporal_literals > 1) separable = false;
    }
  }
  report.multi_separable = true;
  report.separable = separable;
  return report;
}

std::string ProgramClassification::ToString() const {
  auto flag = [](bool b) { return b ? "yes" : "no"; };
  std::string out;
  out += "range_restricted:      " + std::string(flag(range_restricted)) + "\n";
  out += "semi_normal:           " + std::string(flag(semi_normal)) + "\n";
  out += "normal:                " + std::string(flag(normal)) + "\n";
  out += "progressive:           " + std::string(flag(progressive));
  if (!progressive && !progressivity_reason.empty()) {
    out += "  (" + progressivity_reason + ")";
  }
  out += "\n";
  out += "mutual_recursion_free: " + std::string(flag(mutual_recursion_free)) +
         "\n";
  out += "multi_separable:       " + std::string(flag(multi_separable));
  if (!multi_separable && !separability_reason.empty()) {
    out += "  (" + separability_reason + ")";
  }
  out += "\n";
  out += "separable:             " + std::string(flag(separable)) + "\n";
  out += "max_temporal_depth:    " + std::to_string(max_temporal_depth) + "\n";
  return out;
}

ProgramClassification ClassifyProgram(const Program& program) {
  ProgramClassification result;
  result.range_restricted = program.IsRangeRestricted();
  result.semi_normal = program.IsSemiNormal();
  result.normal = program.IsNormal();
  result.max_temporal_depth = program.MaxTemporalDepth();

  ProgressivityReport progressive = CheckProgressive(program);
  result.progressive = progressive.progressive;
  result.progressivity_reason = progressive.reason;

  DependencyGraph graph(program);
  result.mutual_recursion_free = !graph.HasMutualRecursion();
  SeparabilityReport separability = CheckSeparability(program, graph);
  result.multi_separable = separability.multi_separable;
  result.separable = separability.separable;
  result.separability_reason = separability.reason;
  return result;
}

}  // namespace chronolog
