#include "analysis/inflationary.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "spec/specification.h"

namespace chronolog {

std::string InflationaryReport::ToString(const Vocabulary& vocab) const {
  if (inflationary) return "inflationary";
  std::string out = "not inflationary; failing predicates:";
  for (PredicateId p : failing_predicates) {
    out += " " + vocab.predicate(p).name;
  }
  return out;
}

Result<InflationaryReport> CheckInflationary(
    const Program& program, const PeriodDetectionOptions& options) {
  InflationaryReport report;
  const auto vocab = program.vocab_ptr();

  for (PredicateId pred : program.DerivedPredicates()) {
    const PredicateInfo& info = vocab->predicate(pred);
    if (!info.is_temporal) continue;

    // D_i = {P_i(0, a_1, ..., a_l)} with fresh pairwise-different constants.
    // Names starting with '$' cannot clash with parser-interned constants.
    GroundAtom seed;
    seed.pred = pred;
    seed.time = 0;
    for (uint32_t j = 0; j < info.arity; ++j) {
      seed.args.push_back(
          vocab->InternConstant("$inflationary_a" + std::to_string(j)));
    }
    Database di(vocab);
    di.AddFact(seed);

    // Is P_i(1, a) in the least model of Z ∧ D_i? The least model is
    // materialised via period detection, which yields a segment provably
    // (for progressive programs) or verifiably (doubling) covering the
    // periodic structure; membership at depth 1 is then read off directly.
    CHRONOLOG_ASSIGN_OR_RETURN(PeriodDetection detection,
                               DetectPeriod(program, di, options));
    GroundAtom probe = seed;
    probe.time = 1;
    if (!detection.model.Contains(probe)) {
      report.inflationary = false;
      report.failing_predicates.push_back(pred);
      // Locate the failure at the first rule deriving the predicate.
      int rule_index = -1;
      for (std::size_t i = 0; i < program.rules().size(); ++i) {
        if (program.rules()[i].head.pred == pred) {
          rule_index = static_cast<int>(i);
          break;
        }
      }
      std::string witness = info.name + "(1";
      for (uint32_t j = 0; j < info.arity; ++j) witness += ", a" +
          std::to_string(j);
      witness += ")";
      report.diagnostics.push_back(MakeRuleDiagnostic(
          program, rule_index, Severity::kWarning,
          lint_code::kNotInflationary,
          "derived temporal predicate '" + info.name +
              "' is not inflationary: " + witness +
              " is not in the least model of Z with the one-tuple database {" +
              info.name + "(0, a...)} (Theorem 5.2), so facts may expire "
              "and the Theorem 5.1 polynomial period bound does not apply" +
              (rule_index >= 0
                   ? "; first rule deriving it is rule " +
                         std::to_string(rule_index)
                   : std::string())));
    }
  }
  return report;
}

int64_t InflationaryRangeBound(const Program& program, const Database& db) {
  // Active domain: constants in the database plus constants in rules.
  // (Conservatively use the vocabulary size: every interned constant.)
  const double adom = std::max<double>(1.0, static_cast<double>(
      program.vocab().num_constants()));
  double bound = 2.0;  // empty state + one step of slack
  for (PredicateId pred : program.DerivedPredicates()) {
    const PredicateInfo& info = program.vocab().predicate(pred);
    if (!info.is_temporal) continue;
    bound += std::pow(adom, static_cast<double>(info.arity));
    if (bound > static_cast<double>(std::numeric_limits<int64_t>::max() / 2)) {
      return std::numeric_limits<int64_t>::max();
    }
  }
  // States past the database horizon grow monotonically (proof of
  // Theorem 5.1), so at most `bound` distinct states occur after `c`;
  // the database prefix contributes at most `c + 1` more.
  const int64_t c = db.MaxTemporalDepth();
  return static_cast<int64_t>(bound) + c + 1;
}

}  // namespace chronolog
