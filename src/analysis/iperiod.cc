#include "analysis/iperiod.h"

#include <numeric>
#include <vector>

namespace chronolog {

namespace {

/// lcm with saturation to UINT64_MAX.
uint64_t SaturatingLcm(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  uint64_t g = std::gcd(a, b);
  uint64_t a_div = a / g;
  if (a_div > UINT64_MAX / b) return UINT64_MAX;
  return a_div * b;
}

/// lcm(1..n) with saturation (saturates for n >= 43).
uint64_t SaturatingLcmRange(uint64_t n) {
  uint64_t acc = 1;
  for (uint64_t i = 2; i <= n; ++i) {
    acc = SaturatingLcm(acc, i);
    if (acc == UINT64_MAX) return UINT64_MAX;
  }
  return acc;
}

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return (a > UINT64_MAX - b) ? UINT64_MAX : a + b;
}

uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > UINT64_MAX / b) return UINT64_MAX;
  return a * b;
}

/// 2^g with saturation.
uint64_t SaturatingPow2(uint64_t g) {
  return g >= 64 ? UINT64_MAX : (uint64_t{1} << g);
}

}  // namespace

Result<IPeriodResult> ComputeIPeriod(const Program& program,
                                     const IPeriodOptions& options) {
  const Vocabulary& vocab = program.vocab();
  DependencyGraph graph(program);
  SeparabilityReport separability = CheckSeparability(program, graph);
  if (!separability.multi_separable) {
    return FailedPreconditionError("ComputeIPeriod: program is not "
                                   "multi-separable: " + separability.reason);
  }
  ProgressivityReport progressive = CheckProgressive(program);
  if (!progressive.progressive) {
    return FailedPreconditionError("ComputeIPeriod: program is not "
                                   "progressive: " + progressive.reason);
  }

  // Entity-locality: single generic constant suffices.
  std::vector<PredicateId> temporal_preds;
  for (PredicateId p : vocab.AllPredicates()) {
    const PredicateInfo& info = vocab.predicate(p);
    if (!info.is_temporal) continue;
    if (info.arity > 1) {
      return FailedPreconditionError(
          "ComputeIPeriod: temporal predicate '" + info.name +
          "' has non-temporal arity > 1; the exact enumeration only covers "
          "single-entity schemas");
    }
    temporal_preds.push_back(p);
  }
  for (const Rule& rule : program.rules()) {
    std::vector<VarId> head_vars = rule.HeadVars();
    for (VarId v : rule.BodyVars()) {
      bool in_head = false;
      for (VarId h : head_vars) in_head |= (h == v);
      if (!in_head) {
        return FailedPreconditionError(
            "ComputeIPeriod: rule variables escape the head; entities would "
            "interact and the single-constant enumeration would be unsound");
      }
    }
    auto no_constants = [](const Atom& a) {
      for (const NtTerm& t : a.args) {
        if (t.is_constant()) return false;
      }
      return true;
    };
    if (!no_constants(rule.head)) {
      return FailedPreconditionError(
          "ComputeIPeriod: rules must not mention constants");
    }
    for (const Atom& a : rule.body) {
      if (!no_constants(a)) {
        return FailedPreconditionError(
            "ComputeIPeriod: rules must not mention constants");
      }
    }
  }

  const int64_t g = std::max<int64_t>(1, program.MaxTemporalDepth());
  const uint64_t bits =
      static_cast<uint64_t>(temporal_preds.size()) * static_cast<uint64_t>(g);
  if (bits > static_cast<uint64_t>(options.max_bits)) {
    return ResourceExhaustedError(
        "ComputeIPeriod: " + std::to_string(temporal_preds.size()) +
        " temporal predicates x look-back " + std::to_string(g) + " = " +
        std::to_string(bits) + " bits exceeds max_bits = " +
        std::to_string(options.max_bits));
  }

  // Enumerate every initial window: bit (i, tau) decides whether
  // temporal_preds[i] holds of the generic entity at time tau.
  IPeriodResult result;
  int64_t max_abs_start = 0;  // max over runs of (b_i + c_i)
  uint64_t p_lcm = 1;
  const uint64_t total = uint64_t{1} << bits;
  for (uint64_t mask = 0; mask < total; ++mask) {
    Database db(program.vocab_ptr());
    SymbolId entity = program.vocab_ptr()->InternConstant("$iperiod_entity");
    uint64_t bit = 0;
    for (PredicateId pred : temporal_preds) {
      for (int64_t tau = 0; tau < g; ++tau, ++bit) {
        if ((mask >> bit) & 1) {
          GroundAtom fact;
          fact.pred = pred;
          fact.time = tau;
          if (vocab.predicate(pred).arity == 1) fact.args.push_back(entity);
          db.AddFact(fact);
        }
      }
    }
    ForwardOptions fwd;
    fwd.max_steps = options.max_horizon;
    CHRONOLOG_ASSIGN_OR_RETURN(ForwardResult run,
                               ForwardSimulate(program, db, fwd));
    ++result.simulations;
    max_abs_start =
        std::max(max_abs_start, run.period.b + db.MaxTemporalDepth());
    p_lcm = SaturatingLcm(p_lcm, static_cast<uint64_t>(run.period.p));
  }
  if (p_lcm == UINT64_MAX) {
    return InternalError("ComputeIPeriod: lcm of cycle lengths overflowed");
  }

  // Sound I-period: every database's evolution past its own horizon c
  // enters (a closure of) one of the enumerated windows within g steps.
  result.period.b = max_abs_start + g + 1;
  result.period.p = static_cast<int64_t>(p_lcm);
  return result;
}

Result<IPeriodBound> IPeriodUpperBound(const Program& program) {
  const Vocabulary& vocab = program.vocab();
  DependencyGraph graph(program);
  SeparabilityReport separability = CheckSeparability(program, graph);
  if (!separability.multi_separable) {
    return FailedPreconditionError("IPeriodUpperBound: program is not "
                                   "multi-separable: " + separability.reason);
  }

  // Per-predicate bounds (b, p), computed in stratum order.
  std::vector<IPeriodBound> bound(vocab.num_predicates());
  std::vector<PredicateId> derived = program.DerivedPredicates();
  auto is_derived = [&derived](PredicateId p) {
    for (PredicateId d : derived) {
      if (d == p) return true;
    }
    return false;
  };

  // EDB temporal predicates: empty past the database horizon.
  for (PredicateId p : vocab.AllPredicates()) {
    bound[p] = IPeriodBound{vocab.predicate(p).is_temporal && !is_derived(p)
                                ? uint64_t{1}
                                : uint64_t{0},
                            1, false};
  }

  for (PredicateId pred : graph.TopologicalOrder()) {
    if (!is_derived(pred)) continue;
    uint64_t b_in = 0;
    uint64_t p_in = 1;
    uint64_t rule_depth = 0;
    bool time_only = false;
    bool autonomous_single_delay = true;
    uint64_t delay_lcm = 1;
    for (const Rule& rule : program.rules()) {
      if (rule.head.pred != pred) continue;
      rule_depth = std::max(rule_depth,
                            static_cast<uint64_t>(rule.MaxTemporalDepth()));
      bool recursive = IsRecursiveRule(rule);
      if (recursive && IsTimeOnlyRule(rule) && !IsDataOnlyRule(rule)) {
        time_only = true;
        int temporal_nonself = 0;
        for (const Atom& a : rule.body) {
          if (a.temporal() && a.pred != pred) ++temporal_nonself;
        }
        if (temporal_nonself > 0) autonomous_single_delay = false;
        delay_lcm = SaturatingLcm(
            delay_lcm, std::max<uint64_t>(
                           1, static_cast<uint64_t>(rule.head.temporal_depth())));
      }
      for (const Atom& a : rule.body) {
        if (a.pred == pred) continue;
        b_in = std::max(b_in, bound[a.pred].b);
        p_in = SaturatingLcm(p_in, bound[a.pred].p);
      }
    }
    IPeriodBound out;
    if (!time_only) {
      // Non-recursive or data-only stratum: inputs pass through, shifted by
      // the rule depth.
      out.b = SaturatingAdd(b_in, rule_depth);
      out.p = p_in;
    } else if (autonomous_single_delay && p_in == 1) {
      // Pure delay lines gated by eventually-constant inputs: every cycle
      // length divides one of the delays.
      out.b = SaturatingAdd(b_in, SaturatingMul(2, delay_lcm));
      out.p = delay_lcm;
    } else {
      // General driven stratum (Theorem 6.5): the per-entity automaton has
      // at most 2^g * P states, so cycle lengths are bounded by that and the
      // stratum period divides lcm(1 ... 2^g * P).
      uint64_t states = SaturatingMul(SaturatingPow2(rule_depth), p_in);
      out.b = SaturatingAdd(b_in, states);
      out.p = states == UINT64_MAX ? UINT64_MAX : SaturatingLcmRange(states);
    }
    out.saturated = (out.b == UINT64_MAX || out.p == UINT64_MAX);
    bound[pred] = out;
  }

  IPeriodBound total;
  for (PredicateId p : vocab.AllPredicates()) {
    total.b = std::max(total.b, bound[p].b);
    total.p = SaturatingLcm(total.p, bound[p].p);
  }
  total.saturated = (total.b == UINT64_MAX || total.p == UINT64_MAX);
  return total;
}

}  // namespace chronolog
