#include "analysis/dataflow.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>
#include <utility>

#include "util/string_util.h"

namespace chronolog {

namespace {

/// Saturating addition on the time lattice: bottom and top are absorbing,
/// finite overflow clamps toward the sign of the drift.
int64_t SatAdd(int64_t a, int64_t b) {
  if (a == kTimeBottom || b == kTimeBottom) return kTimeBottom;
  if (a == kTimeUnbounded || b == kTimeUnbounded) return kTimeUnbounded;
  int64_t sum = 0;
  if (__builtin_add_overflow(a, b, &sum)) {
    return (a > 0) == (b > 0) && a > 0 ? kTimeUnbounded : kTimeBottom;
  }
  return sum;
}

int64_t Gcd(int64_t a, int64_t b) { return std::gcd(a, b); }

std::string PredicateList(const Vocabulary& vocab,
                          const std::vector<PredicateId>& preds) {
  std::string out;
  for (PredicateId p : preds) {
    if (!out.empty()) out += ", ";
    out += "'" + vocab.predicate(p).name + "'";
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Framework
// ---------------------------------------------------------------------------

SccRulePartition::SccRulePartition(const Program& program,
                                   const DependencyGraph& graph)
    : rules_of_component_(graph.num_components()) {
  const auto& rules = program.rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const PredicateId head = rules[i].head.pred;
    if (head >= graph.num_predicates()) continue;
    rules_of_component_[graph.ComponentOf(head)].push_back(
        static_cast<int>(i));
  }
}

SccFixpointStats SolveSccFixpoint(
    const Program& program, const DependencyGraph& graph,
    const SccRulePartition& partition,
    const std::function<bool(int rule_index)>& apply_rule,
    const std::function<bool(PredicateId)>& widen,
    const std::function<void(int component)>& narrow_component) {
  (void)program;
  SccFixpointStats stats;
  const auto& members = graph.components();
  for (int comp = 0; comp < partition.num_components(); ++comp) {
    const std::vector<int>& rules = partition.RulesOfComponent(comp);
    if (rules.empty()) continue;
    // Structural round bound: values that keep rising past it are climbing
    // a cycle and will never converge on their own.
    const int bound =
        2 * static_cast<int>(rules.size() + members[comp].size()) + 4;
    bool widened = false;
    bool changed = true;
    int round = 0;
    while (changed) {
      changed = false;
      ++round;
      ++stats.rounds;
      for (int r : rules) {
        if (apply_rule(r)) changed = true;
      }
      if (changed && round % bound == 0) {
        // Widen the whole component; the top is absorbing, and re-widening
        // at every bound multiple catches members that only started rising
        // after the previous widening, so the loop terminates.
        if (!widened) ++stats.widened_sccs;
        widened = true;
        for (PredicateId p : members[comp]) widen(p);
      }
    }
    if (widened && narrow_component != nullptr) narrow_component(comp);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Temporal-offset analysis
// ---------------------------------------------------------------------------

namespace {

/// The head-time upper bound rule `r` can contribute under per-predicate
/// bounds `last`, or kTimeBottom when the rule provably cannot fire. Sound
/// over-approximation: a fact `Q(t, ...)` requires `t <= last[Q]`, so every
/// temporal variable `v` is bounded by `min_i (last[Q_i] - b_i)` over the
/// body atoms `Q_i(v + b_i, ...)` that use it, and temporal terms never go
/// negative.
int64_t RuleCandidate(const Rule& rule, const std::vector<int64_t>& last) {
  for (const Atom& atom : rule.body) {
    if (last[atom.pred] == kTimeBottom) return kTimeBottom;
    if (atom.temporal() && atom.time->ground() &&
        last[atom.pred] != kTimeUnbounded &&
        last[atom.pred] < atom.time->offset) {
      return kTimeBottom;  // needs a fact at a time the predicate never holds
    }
  }
  std::unordered_map<VarId, int64_t> ub;  // per temporal variable
  for (const Atom& atom : rule.body) {
    if (!atom.temporal() || atom.time->ground()) continue;
    const int64_t bound = last[atom.pred] == kTimeUnbounded
                              ? kTimeUnbounded
                              : SatAdd(last[atom.pred], -atom.time->offset);
    auto [it, inserted] = ub.emplace(atom.time->var, bound);
    if (!inserted) it->second = std::min(it->second, bound);
  }
  for (const auto& [v, b] : ub) {
    if (b != kTimeUnbounded && b < 0) return kTimeBottom;
  }
  if (!rule.head.temporal()) return 0;
  if (rule.head.time->ground()) return rule.head.time->offset;
  const auto it = ub.find(rule.head.time->var);
  // An unconstrained head variable (unsafe rule — lint rejects it, but the
  // analysis must stay total) is unbounded.
  if (it == ub.end() || it->second == kTimeUnbounded) return kTimeUnbounded;
  return SatAdd(it->second, rule.head.time->offset);
}

/// gcd of the net temporal offsets around every directed cycle of a
/// strongly connected component, by the potential method: any spanning
/// assignment `pot` over the undirected closure makes every edge residual
/// `|pot[u] + w - pot[v]|` a combination of cycle sums, and their gcd is
/// exactly the cycle gcd. `edges` are (head, body, head_off - body_off).
int64_t ComponentCycleGcd(
    const std::vector<PredicateId>& members,
    const std::vector<std::tuple<PredicateId, PredicateId, int64_t>>& edges) {
  if (edges.empty()) return 0;
  std::unordered_map<PredicateId, int> local;
  for (std::size_t i = 0; i < members.size(); ++i) {
    local[members[i]] = static_cast<int>(i);
  }
  // Undirected adjacency with signed weights.
  std::vector<std::vector<std::pair<int, int64_t>>> adj(members.size());
  for (const auto& [u, v, w] : edges) {
    const int lu = local.at(u);
    const int lv = local.at(v);
    adj[lu].push_back({lv, w});
    adj[lv].push_back({lu, -w});
  }
  std::vector<int64_t> pot(members.size(), 0);
  std::vector<char> visited(members.size(), 0);
  std::vector<int> stack;
  stack.push_back(0);
  visited[0] = 1;
  while (!stack.empty()) {
    const int u = stack.back();
    stack.pop_back();
    for (const auto& [v, w] : adj[u]) {
      if (visited[v]) continue;
      visited[v] = 1;
      pot[v] = pot[u] + w;
      stack.push_back(v);
    }
  }
  int64_t g = 0;
  for (const auto& [u, v, w] : edges) {
    g = Gcd(g, std::llabs(pot[local.at(u)] + w - pot[local.at(v)]));
  }
  return g;
}

/// Exact eventual period of an EDB-seeded pure self-delay component, or 0
/// when the component does not qualify. Qualifying shape: a single temporal
/// predicate `P` whose every rule is `P(T + a, args) :- P(T + b, args)`
/// (identical argument lists, one shared temporal variable, nothing else in
/// the body), with at least one forward delta `a - b > 0`. Then each entity
/// (argument tuple) evolves independently: for large `t` it holds at
/// exactly the times congruent to one of its seed residues mod the delta
/// gcd, so the eventual pattern's minimal period is the smallest divisor
/// `q` of the gcd that maps every entity's residue set to itself — and the
/// model's minimal period is a multiple of it.
int64_t SelfDelayPeriod(const Program& program, const Database& db,
                        const std::vector<PredicateId>& members,
                        const std::vector<int>& rule_indices) {
  if (members.size() != 1) return 0;
  const PredicateId pred = members[0];
  if (!program.vocab().predicate(pred).is_temporal) return 0;
  int64_t g = 0;
  bool forward = false;
  for (int r : rule_indices) {
    const Rule& rule = program.rules()[r];
    if (rule.body.size() != 1) return 0;
    const Atom& body = rule.body[0];
    if (body.pred != pred || rule.head.pred != pred) return 0;
    if (!rule.head.temporal() || !body.temporal()) return 0;
    if (rule.head.time->ground() || body.time->ground()) return 0;
    if (rule.head.time->var != body.time->var) return 0;
    if (body.args != rule.head.args) return 0;
    const int64_t delta = rule.head.time->offset - body.time->offset;
    if (delta == 0) continue;  // tautological step, derives nothing new
    if (delta > 0) forward = true;
    g = Gcd(g, std::llabs(delta));
  }
  if (g == 0 || !forward) return 0;
  // Seed residues per entity (argument tuple), straight from the database —
  // the component has no other incoming derivation by construction.
  std::map<std::vector<SymbolId>, std::set<int64_t>> residues;
  bool seeded = false;
  for (const GroundAtom& fact : db.facts()) {
    if (fact.pred != pred) continue;
    residues[fact.args].insert(fact.time % g);
    seeded = true;
  }
  if (!seeded) return 0;  // empty predicate: nothing to claim
  for (int64_t q = 1; q <= g; ++q) {
    if (g % q != 0) continue;
    bool invariant = true;
    for (const auto& [entity, set] : residues) {
      for (int64_t s : set) {
        if (set.count((s + q) % g) == 0) {
          invariant = false;
          break;
        }
      }
      if (!invariant) break;
    }
    if (invariant) return q;
  }
  return g;
}

TemporalOffsetResult RunOffsetAnalysis(const Program& program,
                                       const Database& db,
                                       const DependencyGraph& graph,
                                       const SccRulePartition& partition,
                                       SccFixpointStats* stats) {
  const Vocabulary& vocab = program.vocab();
  const std::size_t num_preds = vocab.num_predicates();
  TemporalOffsetResult result;

  std::vector<int64_t> seed(num_preds, kTimeBottom);
  for (const GroundAtom& fact : db.facts()) {
    if (fact.pred >= num_preds) continue;
    const int64_t t = vocab.predicate(fact.pred).is_temporal ? fact.time : 0;
    seed[fact.pred] = std::max(seed[fact.pred], t);
  }
  result.last_time = seed;
  std::vector<int64_t>& last = result.last_time;

  const auto apply = [&](int r) {
    const Rule& rule = program.rules()[r];
    const int64_t candidate = RuleCandidate(rule, last);
    if (candidate == kTimeBottom || candidate <= last[rule.head.pred]) {
      return false;
    }
    last[rule.head.pred] = candidate;
    return true;
  };
  const auto widen = [&](PredicateId p) {
    // Only temporal predicates can climb; a bottom stays bottom until a
    // rule actually fires for it (a later re-widening catches it then).
    if (!vocab.predicate(p).is_temporal) return false;
    if (last[p] == kTimeBottom || last[p] == kTimeUnbounded) return false;
    last[p] = kTimeUnbounded;
    return true;
  };
  // Narrowing: Jacobi descent from the widened solution. Starting above the
  // least fixpoint and applying the (monotone) transfer simultaneously to
  // the whole component keeps every intermediate above it, so stopping at
  // any pass is sound — and one pass typically recovers the finite bound a
  // component inherits from a lower stratum.
  const auto narrow = [&](int comp) {
    const std::vector<int>& rules = partition.RulesOfComponent(comp);
    const std::vector<PredicateId>& members = graph.components()[comp];
    for (int pass = 0; pass < 3; ++pass) {
      std::unordered_map<PredicateId, int64_t> fresh;
      for (PredicateId p : members) fresh[p] = seed[p];
      for (int r : rules) {
        const Rule& rule = program.rules()[r];
        const int64_t candidate = RuleCandidate(rule, last);
        auto& slot = fresh[rule.head.pred];
        slot = std::max(slot, candidate);
      }
      bool changed = false;
      for (const auto& [p, v] : fresh) {
        if (v != last[p]) changed = true;
        last[p] = v;
      }
      if (!changed) break;
    }
  };
  *stats = SolveSccFixpoint(program, graph, partition, apply, widen, narrow);

  // Per-component structure: cycle gcds and self-delay periods.
  result.period_divisor = 1;
  for (int comp = 0; comp < partition.num_components(); ++comp) {
    const std::vector<int>& rules = partition.RulesOfComponent(comp);
    if (rules.empty()) continue;
    SccOffsetInfo info;
    info.component = comp;
    info.predicates = graph.components()[comp];
    std::vector<std::tuple<PredicateId, PredicateId, int64_t>> edges;
    for (int r : rules) {
      const Rule& rule = program.rules()[r];
      for (const Atom& atom : rule.body) {
        if (atom.pred >= num_preds ||
            graph.ComponentOf(atom.pred) != comp) {
          continue;
        }
        const bool uniform = rule.head.temporal() && atom.temporal() &&
                             !rule.head.time->ground() &&
                             !atom.time->ground() &&
                             rule.head.time->var == atom.time->var;
        if (uniform) {
          edges.push_back({rule.head.pred, atom.pred,
                           rule.head.time->offset - atom.time->offset});
        } else {
          info.has_nonuniform_edge = true;
        }
      }
    }
    info.cycle_gcd =
        info.has_nonuniform_edge ? 0 : ComponentCycleGcd(info.predicates, edges);
    info.bounded = true;
    for (PredicateId p : info.predicates) {
      if (last[p] == kTimeUnbounded) info.bounded = false;
    }
    if (!info.bounded) {
      info.self_delay_period =
          SelfDelayPeriod(program, db, info.predicates, rules);
      if (info.self_delay_period > 1) {
        const int64_t lcm = std::lcm(result.period_divisor,
                                     info.self_delay_period);
        // Dropping a factor keeps a divisor of the true period, so the
        // claim stays sound if the lcm would grow absurd.
        if (lcm > 0 && lcm < (int64_t{1} << 40)) {
          result.period_divisor = lcm;
        }
      }
    }
    result.sccs.push_back(std::move(info));
  }

  result.bounded = true;
  result.static_horizon = 0;
  for (std::size_t p = 0; p < num_preds; ++p) {
    if (last[p] == kTimeUnbounded) result.bounded = false;
    if (last[p] != kTimeBottom && last[p] != kTimeUnbounded) {
      result.static_horizon = std::max(result.static_horizon, last[p]);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Polynomial degree analysis
// ---------------------------------------------------------------------------

DegreeResult RunDegreeAnalysis(const Program& program, const Database& db,
                               const DependencyGraph& graph,
                               const SccRulePartition& partition) {
  const Vocabulary& vocab = program.vocab();
  const std::size_t num_preds = vocab.num_predicates();
  DegreeResult result;
  result.degree.assign(num_preds, 0);
  std::vector<int>& deg = result.degree;

  // Base: a predicate with database facts holds at most n tuples per time
  // point (and at most n^arity always).
  for (const GroundAtom& fact : db.facts()) {
    if (fact.pred >= num_preds) continue;
    deg[fact.pred] = std::max(
        deg[fact.pred],
        static_cast<int>(std::min<uint32_t>(1, vocab.predicate(fact.pred).arity)));
  }

  const auto apply = [&](int r) {
    const Rule& rule = program.rules()[r];
    const uint32_t head_arity = vocab.predicate(rule.head.pred).arity;
    int sum = 0;
    for (const Atom& atom : rule.body) {
      int d = atom.pred < num_preds ? deg[atom.pred] : 0;
      // A body atom whose time is not pinned to the head's temporal
      // variable ranges over the whole timeline: one extra factor of n.
      if (atom.temporal() && !atom.time->ground()) {
        const bool pinned = rule.head.temporal() &&
                            !rule.head.time->ground() &&
                            rule.head.time->var == atom.time->var;
        if (!pinned) d += 1;
      }
      sum += d;
      if (sum > static_cast<int>(head_arity)) break;  // cap reached
    }
    const int capped = std::min(sum, static_cast<int>(head_arity));
    if (capped <= deg[rule.head.pred]) return false;
    deg[rule.head.pred] = capped;
    return true;
  };
  // Degrees are capped at the arity, so the lattice is finite and the
  // fixpoint converges without widening.
  SolveSccFixpoint(program, graph, partition, apply,
                   [](PredicateId) { return false; });

  for (const Rule& rule : program.rules()) {
    if (rule.head.pred < num_preds) {
      result.program_degree =
          std::max(result.program_degree, deg[rule.head.pred]);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Binding-pattern (adornment) analysis
// ---------------------------------------------------------------------------

/// Greedy SIPS linearization of one rule body under a set of pre-bound
/// variables: repeatedly pick the atom with the highest fraction of bound
/// argument positions (ties to source order), binding its variables for the
/// later picks. Returns body positions in evaluation order.
std::vector<uint32_t> SipsOrder(const Rule& rule, std::vector<char>* bound) {
  const std::size_t n = rule.body.size();
  std::vector<uint32_t> order;
  order.reserve(n);
  std::vector<char> used(n, 0);
  for (std::size_t step = 0; step < n; ++step) {
    int best = -1;
    double best_score = -1;
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (used[pos]) continue;
      const Atom& atom = rule.body[pos];
      int positions = 0;
      int bound_positions = 0;
      if (atom.temporal()) {
        ++positions;
        if (atom.time->ground() || (*bound)[atom.time->var]) ++bound_positions;
      }
      for (const NtTerm& t : atom.args) {
        ++positions;
        if (t.is_constant() || (*bound)[t.id]) ++bound_positions;
      }
      const double score =
          positions == 0
              ? 1.0
              : static_cast<double>(bound_positions) / positions;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(pos);
      }
    }
    used[best] = 1;
    order.push_back(static_cast<uint32_t>(best));
    const Atom& chosen = rule.body[static_cast<std::size_t>(best)];
    if (chosen.temporal() && !chosen.time->ground()) {
      (*bound)[chosen.time->var] = 1;
    }
    for (const NtTerm& t : chosen.args) {
      if (t.is_variable()) (*bound)[t.id] = 1;
    }
  }
  return order;
}

AdornmentResult RunAdornmentAnalysis(const Program& program,
                                     const FlowOptions& options) {
  const Vocabulary& vocab = program.vocab();
  const std::size_t num_preds = vocab.num_predicates();
  AdornmentResult result;

  // Join-order priors: the bottom-up fixpoint binds no head arguments, so
  // every rule's prior is the SIPS order under an all-free head. A prior is
  // only exported when it actually reorders a multi-atom body.
  result.priors.assign(program.rules().size(), {});
  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& rule = program.rules()[i];
    if (rule.body.size() < 2) continue;
    std::vector<char> bound(rule.num_vars(), 0);
    std::vector<uint32_t> order = SipsOrder(rule, &bound);
    bool identity = true;
    for (std::size_t k = 0; k < order.size(); ++k) {
      if (order[k] != k) identity = false;
    }
    if (!identity) result.priors[i] = std::move(order);
  }

  // Bound/free propagation from the roots. Worklist of (pred, pattern);
  // per rule, body adornments are taken at the moment the SIPS order
  // reaches each atom.
  std::vector<std::set<std::string>> patterns(num_preds);
  std::vector<std::pair<PredicateId, std::string>> work;
  const auto push = [&](PredicateId p, std::string pattern) {
    if (p >= num_preds) return;
    if (patterns[p].insert(pattern).second) {
      work.push_back({p, std::move(pattern)});
    }
  };

  std::vector<std::string> root_names = options.roots;
  if (root_names.empty()) {
    for (const Rule& rule : program.rules()) {
      if (rule.head.pred < num_preds) {
        const PredicateInfo& info = vocab.predicate(rule.head.pred);
        push(rule.head.pred, std::string(info.arity, 'f'));
      }
    }
  } else {
    for (const std::string& name : root_names) {
      const PredicateId p = vocab.FindPredicate(name);
      if (p == kInvalidPredicate || p >= num_preds) continue;  // lint L013
      push(p, std::string(vocab.predicate(p).arity, 'f'));
    }
  }

  std::vector<std::vector<int>> rules_of_head(num_preds);
  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    const PredicateId head = program.rules()[i].head.pred;
    if (head < num_preds) rules_of_head[head].push_back(static_cast<int>(i));
  }

  while (!work.empty()) {
    auto [pred, pattern] = std::move(work.back());
    work.pop_back();
    for (int r : rules_of_head[pred]) {
      const Rule& rule = program.rules()[r];
      std::vector<char> bound(rule.num_vars(), 0);
      for (std::size_t i = 0;
           i < rule.head.args.size() && i < pattern.size(); ++i) {
        const NtTerm& t = rule.head.args[i];
        if (pattern[i] == 'b' && t.is_variable()) bound[t.id] = 1;
      }
      // Re-run SIPS under this head adornment and record each body atom's
      // entry pattern before its own variables are bound.
      std::vector<char> running = bound;
      std::vector<char> used(rule.body.size(), 0);
      for (std::size_t step = 0; step < rule.body.size(); ++step) {
        // Inline pick identical to SipsOrder, but we need the entry
        // pattern per atom, so the loop is unrolled here.
        int best = -1;
        double best_score = -1;
        for (std::size_t pos = 0; pos < rule.body.size(); ++pos) {
          if (used[pos]) continue;
          const Atom& atom = rule.body[pos];
          int positions = 0;
          int bound_positions = 0;
          if (atom.temporal()) {
            ++positions;
            if (atom.time->ground() || running[atom.time->var]) {
              ++bound_positions;
            }
          }
          for (const NtTerm& t : atom.args) {
            ++positions;
            if (t.is_constant() || running[t.id]) ++bound_positions;
          }
          const double score =
              positions == 0
                  ? 1.0
                  : static_cast<double>(bound_positions) / positions;
          if (score > best_score) {
            best_score = score;
            best = static_cast<int>(pos);
          }
        }
        used[best] = 1;
        const Atom& chosen = rule.body[static_cast<std::size_t>(best)];
        std::string entry;
        entry.reserve(chosen.args.size());
        for (const NtTerm& t : chosen.args) {
          entry += (t.is_constant() || running[t.id]) ? 'b' : 'f';
        }
        if (!rules_of_head[chosen.pred].empty()) {
          push(chosen.pred, std::move(entry));
        }
        if (chosen.temporal() && !chosen.time->ground()) {
          running[chosen.time->var] = 1;
        }
        for (const NtTerm& t : chosen.args) {
          if (t.is_variable()) running[t.id] = 1;
        }
      }
    }
  }

  result.patterns.resize(num_preds);
  for (std::size_t p = 0; p < num_preds; ++p) {
    result.patterns[p].assign(patterns[p].begin(), patterns[p].end());
  }
  return result;
}

// ---------------------------------------------------------------------------
// Combined run, diagnostics and hints
// ---------------------------------------------------------------------------

std::string TimeBoundToString(int64_t v) {
  if (v == kTimeBottom) return "empty";
  if (v == kTimeUnbounded) return "unbounded";
  return std::to_string(v);
}

}  // namespace

FlowAnalysis AnalyzeProgram(const Program& program, const Database& database,
                            const FlowOptions& options) {
  FlowAnalysis analysis;
  DependencyGraph graph(program);
  SccRulePartition partition(program, graph);
  const Vocabulary& vocab = program.vocab();

  analysis.offsets =
      RunOffsetAnalysis(program, database, graph, partition, &analysis.stats);
  analysis.degrees = RunDegreeAnalysis(program, database, graph, partition);
  analysis.adornments = RunAdornmentAnalysis(program, options);

  // Hints for the period detector.
  const int64_t c = database.MaxTemporalDepth();
  analysis.hints.bounded = analysis.offsets.bounded;
  analysis.hints.static_horizon = analysis.offsets.static_horizon;
  analysis.hints.period_divisor = analysis.offsets.period_divisor;
  if (analysis.offsets.bounded) {
    // Window with several trailing period-1 cycles past the last fact.
    analysis.hints.initial_horizon = SatAdd(analysis.offsets.static_horizon, 8);
  } else if (analysis.offsets.period_divisor > 1) {
    // The pattern repeats in multiples of the divisor once the bounded part
    // has stabilised; budget the detector's min_cycles worth of slack.
    const int64_t base = std::max(c, analysis.offsets.static_horizon);
    analysis.hints.initial_horizon =
        SatAdd(base, 4 * analysis.offsets.period_divisor + 8);
  }
  if (analysis.hints.initial_horizon < 0 ||
      analysis.hints.initial_horizon > options.max_horizon_hint) {
    analysis.hints.initial_horizon =
        analysis.hints.initial_horizon < 0 ? 0 : options.max_horizon_hint;
  }

  // A-series diagnostics.
  std::vector<Diagnostic>& out = analysis.diagnostics;
  for (const SccOffsetInfo& scc : analysis.offsets.sccs) {
    const bool recursive =
        scc.predicates.size() > 1 ||
        (scc.predicates.size() == 1 && graph.IsRecursive(scc.predicates[0]));
    if (!recursive) continue;
    if (scc.cycle_gcd > 0) {
      out.push_back(MakeProgramDiagnostic(
          Severity::kNote, flow_code::kOffsetCycle,
          "SCC {" + PredicateList(vocab, scc.predicates) +
              "} advances time around its cycles in multiples of " +
              std::to_string(scc.cycle_gcd) +
              (scc.bounded ? " but stabilises (no net forward cycle fires "
                             "unboundedly)"
                           : "")));
    }
    if (!scc.bounded && scc.self_delay_period == 0) {
      out.push_back(MakeProgramDiagnostic(
          Severity::kWarning, flow_code::kUnboundedGrowth,
          "SCC {" + PredicateList(vocab, scc.predicates) +
              "} derives facts at unboundedly large times with no certified "
              "periodic structure; the minimal period may be exponential in "
              "the database (Theorem 3.1)"));
    }
  }
  if (analysis.offsets.bounded) {
    out.push_back(MakeProgramDiagnostic(
        Severity::kNote, flow_code::kStaticHorizon,
        "program is temporally bounded: no fact beyond time " +
            std::to_string(analysis.offsets.static_horizon) +
            "; the minimal period is 1 and stabilization ends by time " +
            std::to_string(SatAdd(analysis.offsets.static_horizon, 1))));
  }
  if (analysis.offsets.period_divisor > 1) {
    out.push_back(MakeProgramDiagnostic(
        Severity::kNote, flow_code::kPeriodDivisor,
        "the minimal period is a multiple of " +
            std::to_string(analysis.offsets.period_divisor) +
            " (lcm of the exact eventual periods of the EDB-seeded "
            "self-delay components)"));
  }
  for (std::size_t p = 0; p < vocab.num_predicates(); ++p) {
    if (analysis.degrees.degree[p] > options.degree_budget) {
      out.push_back(MakeProgramDiagnostic(
          Severity::kWarning, flow_code::kDegreeBudget,
          "predicate '" + vocab.predicate(p).name +
              "' has worst-case degree " +
              std::to_string(analysis.degrees.degree[p]) +
              ", above the budget of " +
              std::to_string(options.degree_budget)));
    }
  }
  out.push_back(MakeProgramDiagnostic(
      Severity::kNote, flow_code::kProgramDegree,
      "per-timestep least-model size is O(n^" +
          std::to_string(analysis.degrees.program_degree) +
          ") in the database size measure n"));
  for (const std::string& name : options.roots) {
    const PredicateId p = vocab.FindPredicate(name);
    if (p == kInvalidPredicate || p >= vocab.num_predicates()) continue;
    std::string pats;
    for (const std::string& pattern : analysis.adornments.patterns[p]) {
      if (!pats.empty()) pats += ", ";
      pats += pattern.empty() ? "()" : pattern;
    }
    out.push_back(MakeProgramDiagnostic(
        Severity::kNote, flow_code::kBindingPatterns,
        "query root '" + name + "' is evaluated under binding pattern(s) {" +
            pats + "}"));
  }
  for (std::size_t i = 0; i < analysis.adornments.priors.size(); ++i) {
    const std::vector<uint32_t>& order = analysis.adornments.priors[i];
    if (order.empty()) continue;
    std::string text;
    for (uint32_t pos : order) {
      if (!text.empty()) text += ", ";
      text += std::to_string(pos);
    }
    out.push_back(MakeRuleDiagnostic(
        program, static_cast<int>(i), Severity::kNote,
        flow_code::kJoinOrderPrior,
        "static join-order prior [" + text +
            "] differs from the source order; it seeds the plan cache "
            "before runtime sampling"));
  }
  SortDiagnostics(&out);
  return analysis;
}

void SeedPeriodOptions(const FlowHints& hints,
                       PeriodDetectionOptions* options) {
  if (hints.initial_horizon > options->initial_horizon) {
    options->initial_horizon = hints.initial_horizon;
  }
}

const std::vector<LintPassInfo>& FlowPassRegistry() {
  static const std::vector<LintPassInfo> kPasses = {
      {"flow-offsets", "A001,A002,A003,A004",
       "SCC temporal-offset dataflow: static horizon and period-divisor "
       "bounds"},
      {"flow-degree", "A005,A006",
       "worst-case polynomial degree per predicate (per-timestep O(n^k))"},
      {"flow-adorn", "A007,A008",
       "binding-pattern propagation from query roots; static join-order "
       "priors"},
  };
  return kPasses;
}

std::string FlowAnalysis::Summary(const Program& program) const {
  const Vocabulary& vocab = program.vocab();
  std::string out = "chronolog_flow analysis\n";
  out += "  bounded: ";
  out += offsets.bounded ? "yes" : "no";
  out += "\n  static horizon: " + std::to_string(offsets.static_horizon);
  out += "\n  period divisor: " + std::to_string(offsets.period_divisor);
  out += "\n  initial-horizon hint: " + std::to_string(hints.initial_horizon);
  out += "\n  program degree: O(n^" + std::to_string(degrees.program_degree) +
         ")\n  predicates:\n";
  for (std::size_t p = 0; p < vocab.num_predicates(); ++p) {
    const PredicateInfo& info = vocab.predicate(p);
    out += "    " + info.name + ": last_time=" +
           TimeBoundToString(offsets.last_time[p]) +
           " degree=" + std::to_string(degrees.degree[p]);
    if (!adornments.patterns[p].empty()) {
      out += " patterns=";
      bool first = true;
      for (const std::string& pattern : adornments.patterns[p]) {
        if (!first) out += "|";
        first = false;
        out += pattern.empty() ? "()" : pattern;
      }
    }
    out += "\n";
  }
  return out;
}

std::string FlowAnalysis::ToJson(const Program& program) const {
  const Vocabulary& vocab = program.vocab();
  std::string out = "{";
  out += "\"bounded\":";
  out += offsets.bounded ? "true" : "false";
  out += ",\"static_horizon\":" + std::to_string(offsets.static_horizon);
  out += ",\"period_divisor\":" + std::to_string(offsets.period_divisor);
  out +=
      ",\"initial_horizon_hint\":" + std::to_string(hints.initial_horizon);
  out += ",\"program_degree\":" + std::to_string(degrees.program_degree);
  out += ",\"predicates\":[";
  for (std::size_t p = 0; p < vocab.num_predicates(); ++p) {
    const PredicateInfo& info = vocab.predicate(p);
    if (p > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(info.name) + "\"";
    out += ",\"temporal\":";
    out += info.is_temporal ? "true" : "false";
    out += ",\"last_time\":";
    if (offsets.last_time[p] == kTimeBottom) {
      out += "null";
    } else if (offsets.last_time[p] == kTimeUnbounded) {
      out += "\"unbounded\"";
    } else {
      out += std::to_string(offsets.last_time[p]);
    }
    out += ",\"degree\":" + std::to_string(degrees.degree[p]);
    out += ",\"patterns\":[";
    for (std::size_t k = 0; k < adornments.patterns[p].size(); ++k) {
      if (k > 0) out += ",";
      out += '"';
      out += JsonEscape(adornments.patterns[p][k]);
      out += '"';
    }
    out += "]}";
  }
  out += "],\"sccs\":[";
  for (std::size_t i = 0; i < offsets.sccs.size(); ++i) {
    const SccOffsetInfo& scc = offsets.sccs[i];
    if (i > 0) out += ",";
    out += "{\"predicates\":[";
    for (std::size_t k = 0; k < scc.predicates.size(); ++k) {
      if (k > 0) out += ",";
      out += '"';
      out += JsonEscape(vocab.predicate(scc.predicates[k]).name);
      out += '"';
    }
    out += "],\"cycle_gcd\":" + std::to_string(scc.cycle_gcd);
    out += ",\"bounded\":";
    out += scc.bounded ? "true" : "false";
    out += ",\"self_delay_period\":" + std::to_string(scc.self_delay_period);
    out += "}";
  }
  out += "],\"priors\":[";
  bool first = true;
  for (std::size_t i = 0; i < adornments.priors.size(); ++i) {
    if (adornments.priors[i].empty()) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"rule\":" + std::to_string(i) + ",\"order\":[";
    for (std::size_t k = 0; k < adornments.priors[i].size(); ++k) {
      if (k > 0) out += ",";
      out += std::to_string(adornments.priors[i][k]);
    }
    out += "]}";
  }
  out += "],\"diagnostics\":" + DiagnosticsToJson(diagnostics) + "}";
  return out;
}

}  // namespace chronolog
