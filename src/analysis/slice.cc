#include "analysis/slice.h"

#include <algorithm>

namespace chronolog {

Result<ProgramSlice> SliceForGoals(const Program& program,
                                   const std::vector<PredicateId>& goals) {
  const std::size_t n = program.vocab().num_predicates();
  for (PredicateId g : goals) {
    if (g >= n) {
      return InvalidArgumentError("SliceForGoals: unknown goal predicate id " +
                                  std::to_string(g));
    }
  }
  std::vector<bool> relevant(n, false);
  for (PredicateId g : goals) relevant[g] = true;

  // Close under "body predicates of rules defining a relevant predicate".
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules()) {
      if (!relevant[rule.head.pred]) continue;
      for (const Atom& atom : rule.body) {
        if (!relevant[atom.pred]) {
          relevant[atom.pred] = true;
          changed = true;
        }
      }
    }
  }

  ProgramSlice slice{Program(program.vocab_ptr()), {}};
  for (const Rule& rule : program.rules()) {
    if (relevant[rule.head.pred]) slice.program.AddRule(rule);
  }
  for (PredicateId p = 0; p < n; ++p) {
    if (relevant[p]) slice.relevant.push_back(p);
  }
  return slice;
}

Database SliceDatabase(const Database& db,
                       const std::vector<PredicateId>& relevant) {
  Database out(db.vocab_ptr());
  for (const GroundAtom& fact : db.facts()) {
    if (std::binary_search(relevant.begin(), relevant.end(), fact.pred)) {
      out.AddFact(fact);
    }
  }
  return out;
}

}  // namespace chronolog
