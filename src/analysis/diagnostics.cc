#include "analysis/diagnostics.h"

#include <algorithm>
#include <tuple>

#include "util/string_util.h"

namespace chronolog {

std::string_view SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

std::string SourceSpan::ToString() const {
  if (!valid()) return file;
  return file + ":" + std::to_string(line) + ":" + std::to_string(column);
}

SourceSpan ResolveSpan(const Program& program, const SourceLoc& loc) {
  SourceSpan span;
  span.file = program.SourceUnitName(loc.unit);
  if (loc.valid()) {
    span.line = loc.line;
    span.column = loc.column;
  }
  return span;
}

std::string Diagnostic::ToString() const {
  std::string out = span.ToString();
  out += ": ";
  out += SeverityToString(severity);
  out += ": ";
  out += message;
  out += " [" + code + "]";
  return out;
}

std::string Diagnostic::ToJson() const {
  std::string out = "{\"code\":\"" + JsonEscape(code) + "\"";
  out += ",\"severity\":\"" + std::string(SeverityToString(severity)) + "\"";
  out += ",\"message\":\"" + JsonEscape(message) + "\"";
  out += ",\"file\":\"" + JsonEscape(span.file) + "\"";
  out += ",\"line\":" + std::to_string(span.line);
  out += ",\"column\":" + std::to_string(span.column);
  out += ",\"rule\":" + std::to_string(rule_index);
  out += "}";
  return out;
}

Diagnostic MakeRuleDiagnostic(const Program& program, int rule_index,
                              Severity severity, std::string code,
                              std::string message) {
  Diagnostic diag;
  diag.severity = severity;
  diag.code = std::move(code);
  diag.message = std::move(message);
  diag.rule_index = rule_index;
  if (rule_index >= 0 &&
      static_cast<std::size_t>(rule_index) < program.rules().size()) {
    diag.span = ResolveSpan(program, program.rules()[rule_index].loc);
  }
  return diag;
}

Diagnostic MakeProgramDiagnostic(Severity severity, std::string code,
                                 std::string message) {
  Diagnostic diag;
  diag.severity = severity;
  diag.code = std::move(code);
  diag.message = std::move(message);
  return diag;
}

void SortDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::stable_sort(diagnostics->begin(), diagnostics->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.span.file, a.span.line, a.span.column,
                                     a.code) <
                            std::tie(b.span.file, b.span.line, b.span.column,
                                     b.code);
                   });
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    if (i > 0) out += ",";
    out += diagnostics[i].ToJson();
  }
  out += "]";
  return out;
}

}  // namespace chronolog
