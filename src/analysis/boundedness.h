#ifndef CHRONOLOG_ANALYSIS_BOUNDEDNESS_H_
#define CHRONOLOG_ANALYSIS_BOUNDEDNESS_H_

#include <cstdint>
#include <optional>

#include "ast/program.h"
#include "util/result.h"

namespace chronolog {

/// Strong k-boundedness of function-free (plain Datalog) programs — the
/// notion Theorem 6.2 reduces from: `S` is strongly k-bounded when
/// `LFP(S, D) = T_{S∧D}^k(∅)` for EVERY function-free database `D`.
/// Deciding it is undecidable (Gaifman–Mairson–Sagiv–Vardi, the paper's
/// reference [8]), which is precisely how I-periodicity inherits
/// undecidability. This header offers the two decidable fragments an
/// engine actually needs:
///
///  * the exact per-database check (how many iterations did THIS database
///    take?), and
///  * a sound one-sided test over canonical databases that can refute
///    boundedness and certify a candidate k empirically.

/// Number of iterations of the immediate-consequence operator needed to
/// reach the least fixpoint of `program ∧ db` (0 when the database is
/// already closed). `program` must be function-free (no temporal
/// predicates).
Result<int64_t> FixpointIterations(const Program& program,
                                   const Database& db,
                                   uint64_t max_facts = 50'000'000);

/// Outcome of the empirical boundedness probe.
struct BoundednessProbe {
  /// Largest iteration count observed across the probed databases.
  int64_t max_iterations = 0;
  /// True when some probed database family shows iteration counts growing
  /// with the database size — a *refutation* of strong k-boundedness for
  /// every k below the observed maximum. False means "bounded as far as
  /// the probe can see" (no certificate: the problem is undecidable).
  bool refuted = false;
};

/// Probes strong boundedness by running FixpointIterations over a family of
/// canonical chain databases of growing size (every EDB predicate seeded
/// along a chain of `sizes` constants). Non-function-free programs are
/// rejected.
Result<BoundednessProbe> ProbeBoundedness(const Program& program,
                                          int max_chain = 32);

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_BOUNDEDNESS_H_
