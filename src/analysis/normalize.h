#ifndef CHRONOLOG_ANALYSIS_NORMALIZE_H_
#define CHRONOLOG_ANALYSIS_NORMALIZE_H_

#include "ast/program.h"
#include "util/result.h"

namespace chronolog {

/// Rewrites a set of temporal rules into an equivalent *semi-normal* set
/// (at most one temporal variable per rule, Section 3.1): for every
/// additional temporal variable `S` of a rule, the body atoms mentioning `S`
/// are factored into a fresh non-temporal predicate
/// `$snK_head(x...) :- cluster(S, x...)`, which existentially quantifies `S`
/// away. The least model restricted to the original vocabulary is preserved.
Result<Program> SemiNormalize(const Program& program);

/// Rewrites a (semi-normal) set of temporal rules into an equivalent
/// *normal* set (non-ground temporal terms of depth at most 1):
///
///  * a body atom `Q(T+j, y...)` with `j >= 2` becomes `$fwdj_Q(T, y...)`
///    where `$fwd1_Q(T,y) :- Q(T+1,y)` and
///    `$fwdj_Q(T,y) :- $fwd{j-1}_Q(T+1,y)`;
///  * a head `P(T+a, x...)` with `a >= 2` is staged through a chain
///    `$nfK_0(T,x) :- body`, `$nfK_i(T+1,x) :- $nfK_{i-1}(T,x)`,
///    `P(T+1,x) :- $nfK_{a-1}(T,x)`.
///
/// As the paper notes (Section 6), this can introduce mutual recursion, so a
/// multi-separable program may stop being multi-separable after
/// normalisation; periodicity of the least model is unaffected. Non-semi-
/// normal input is first passed through SemiNormalize.
Result<Program> Normalize(const Program& program);

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_NORMALIZE_H_
