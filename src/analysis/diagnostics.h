#ifndef CHRONOLOG_ANALYSIS_DIAGNOSTICS_H_
#define CHRONOLOG_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "ast/source_location.h"

namespace chronolog {

/// Severity of a program diagnostic. Errors make a program unfit for
/// evaluation (`EngineOptions::lint_level == kReject` refuses it); warnings
/// flag likely mistakes and lost tractability guarantees; notes carry
/// supplementary explanations.
enum class Severity { kNote = 0, kWarning = 1, kError = 2 };

std::string_view SeverityToString(Severity severity);

/// Stable diagnostic codes of the chronolog_lint front end. Codes are part
/// of the public contract (CI and editors match on them); never renumber.
namespace lint_code {
inline constexpr const char* kUnsafeVariable = "L001";       // error
inline constexpr const char* kSortMisuse = "L002";           // error
inline constexpr const char* kSingletonVariable = "L003";    // warning
inline constexpr const char* kDuplicateRule = "L004";        // warning
inline constexpr const char* kSubsumedRule = "L005";         // warning
inline constexpr const char* kDeadRule = "L006";             // warning
inline constexpr const char* kUnderivablePredicate = "L007"; // warning
inline constexpr const char* kUnreachableFromRoots = "L008"; // note
inline constexpr const char* kNotSeparable = "L009";         // warning
inline constexpr const char* kUnreducedTimeOnly = "L010";    // note
inline constexpr const char* kNotProgressive = "L011";       // note
inline constexpr const char* kNotInflationary = "L012";      // warning
inline constexpr const char* kUnknownRoot = "L013";          // note
inline constexpr const char* kParseError = "P001";           // error
}  // namespace lint_code

/// Stable diagnostic codes of the chronolog_flow static analyses
/// (analysis/dataflow.h). Same contract as the L-series: never renumber.
namespace flow_code {
inline constexpr const char* kOffsetCycle = "A001";      // note
inline constexpr const char* kUnboundedGrowth = "A002";  // warning
inline constexpr const char* kStaticHorizon = "A003";    // note
inline constexpr const char* kPeriodDivisor = "A004";    // note
inline constexpr const char* kDegreeBudget = "A005";     // warning
inline constexpr const char* kProgramDegree = "A006";    // note
inline constexpr const char* kBindingPatterns = "A007";  // note
inline constexpr const char* kJoinOrderPrior = "A008";   // note
}  // namespace flow_code

/// A source span resolved against the owning program's unit table:
/// file name plus 1-based line/column. `line == 0` means the node was
/// synthesised (normalisation, generators) and carries no position.
struct SourceSpan {
  std::string file = "<input>";
  int32_t line = 0;
  int32_t column = 0;

  bool valid() const { return line > 0; }
  /// "file:line:column", or just "file" for synthesised nodes.
  std::string ToString() const;

  friend bool operator==(const SourceSpan& a, const SourceSpan& b) {
    return a.file == b.file && a.line == b.line && a.column == b.column;
  }
};

/// Resolves an AST location against `program`'s source-unit table.
SourceSpan ResolveSpan(const Program& program, const SourceLoc& loc);

/// One structured finding of the chronolog_lint front end (or of the
/// classification analyses feeding it): a stable code, a severity, a
/// human-readable message and the source span of the offending construct.
struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;     // stable rule code, e.g. "L001"
  std::string message;  // free text; names the offending rule/variable
  SourceSpan span;
  int rule_index = -1;  // index into Program::rules(); -1 = whole program

  /// "file:line:column: severity: message [code]".
  std::string ToString() const;
  /// {"code":...,"severity":...,"message":...,"file":...,"line":...,
  ///  "column":...,"rule":...}
  std::string ToJson() const;
};

/// Diagnostic for `program.rules()[rule_index]`, located at the rule's span.
Diagnostic MakeRuleDiagnostic(const Program& program, int rule_index,
                              Severity severity, std::string code,
                              std::string message);

/// Program-level diagnostic with no particular rule.
Diagnostic MakeProgramDiagnostic(Severity severity, std::string code,
                                 std::string message);

/// Stable presentation order: by file, line, column, then code.
void SortDiagnostics(std::vector<Diagnostic>* diagnostics);

/// JSON array of Diagnostic::ToJson values.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_DIAGNOSTICS_H_
