#ifndef CHRONOLOG_ANALYSIS_TEMPORALIZE_H_
#define CHRONOLOG_ANALYSIS_TEMPORALIZE_H_

#include "ast/parser.h"
#include "ast/program.h"
#include "util/result.h"

namespace chronolog {

/// The reduction of Theorem 6.2: transforms a function-free (plain Datalog)
/// program `S` and database into a temporal program `S'` that *counts the
/// iterations* of `S`:
///
///  * every rule `a(X,Z) :- p(X,Y), a(Y,Z).` becomes
///    `a(T+1,X,Z) :- p(T,X,Y), a(T,Y,Z).`;
///  * every predicate gains a copying rule `a(T+1,X,Y) :- a(T,X,Y).`;
///  * every database tuple gains temporal argument 0.
///
/// `S` is strongly k-bounded iff `S'` is I-periodic with I-period `(k, 1)` —
/// which is how the paper proves I-periodicity undecidable, and which this
/// library uses as a workload generator (experiment E7): bounded Datalog
/// programs yield temporal programs whose detected period is independent of
/// the database, unbounded ones yield periods growing with (e.g.) graph
/// diameter.
///
/// The input must be purely non-temporal; the result lives in a fresh
/// vocabulary whose predicates have the same names but are temporal.
Result<ParsedUnit> TemporalizeDatalog(const Program& program,
                                      const Database& database);

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_TEMPORALIZE_H_
