#ifndef CHRONOLOG_ANALYSIS_SLICE_H_
#define CHRONOLOG_ANALYSIS_SLICE_H_

#include <vector>

#include "ast/program.h"
#include "util/result.h"

namespace chronolog {

/// Goal-directed program slicing — the simplest sound instance of the
/// rule-rewriting optimisations the paper's Section 8 leaves as future
/// work. Keeps exactly the rules whose head predicate can (transitively)
/// feed a goal predicate:
///
///   relevant := goals;  repeat: for every rule with head ∈ relevant,
///   add its body predicates to relevant;  until fixpoint.
///
/// The sliced program has the same least model as the original when both
/// are restricted to the relevant predicates, so any query mentioning only
/// goal predicates can be evaluated against the (often much smaller) slice.
struct ProgramSlice {
  Program program;
  /// Predicates retained by the slice (goals + everything they depend on).
  std::vector<PredicateId> relevant;
};

Result<ProgramSlice> SliceForGoals(const Program& program,
                                   const std::vector<PredicateId>& goals);

/// Drops database facts whose predicate is irrelevant to the slice (they
/// can never participate in a retained rule nor answer a goal query).
Database SliceDatabase(const Database& db,
                       const std::vector<PredicateId>& relevant);

}  // namespace chronolog

#endif  // CHRONOLOG_ANALYSIS_SLICE_H_
