#ifndef CHRONOLOG_SERVE_QUERY_ENDPOINTS_H_
#define CHRONOLOG_SERVE_QUERY_ENDPOINTS_H_

#include <chrono>
#include <cstdint>

#include "serve/http_server.h"
#include "serve/registry.h"

namespace chronolog {

class MetricsRegistry;

/// Serving-side query budgets and admission control (docs/SERVING.md).
struct QueryServiceOptions {
  /// Queries evaluating concurrently before new ones are refused with 429
  /// (+ the `query.rejected` counter). Admission is checked before any
  /// parsing, so a flood is shed at the price of an atomic increment.
  /// <= 0 disables admission control.
  int max_in_flight = 8;
  /// Per-query wall-clock budget when the request does not send
  /// `deadline_ms`; zero = unlimited by default.
  std::chrono::milliseconds default_timeout{1000};
  /// Upper bound on client-requested `deadline_ms` (clients can lower their
  /// budget below the default, never raise it past this).
  std::chrono::milliseconds max_timeout{10000};
  /// Row cap when the request does not send `max_rows`; 0 = unlimited.
  uint64_t default_max_rows = 1024;
  /// Upper bound on client-requested `max_rows`.
  uint64_t max_rows_cap = 65536;
  /// Serve-level instruments (`query.rejected`, `query.slow`); nullable.
  /// Typically the same registry the HttpServer and the default database
  /// export, so one `/metrics` scrape sees everything.
  MetricsRegistry* metrics = nullptr;
  /// Slow-query threshold (chronolog_qstats): a successful `POST /query`
  /// whose evaluation wall time reaches this many milliseconds emits one
  /// structured `query.slow` warn line (shape, request id, limits, phase
  /// breakdown) and bumps the `query.slow` counter. 0 logs every query
  /// (the ci.sh end-to-end gate runs this way); negative (the default)
  /// disables the log.
  int64_t slow_query_ms = -1;
  /// Per-database statement statistics (GET /statements). On by default;
  /// the bench harness turns it off to measure the store's overhead.
  bool track_statements = true;
};

/// Registers the query protocol on `server`:
///
///   POST /query      {"query": "...", "database": "...", "deadline_ms": N,
///                     "max_rows": N} → JSON answer (docs/SERVING.md).
///                    400 malformed body / unparseable query, 404 unknown
///                    database, 429 over `max_in_flight`.
///   GET /databases   registry contents with per-database spec sizes.
///   GET /analyze     chronolog_flow static analysis of one database
///                    (`?db=NAME`, default "default"): offset bounds,
///                    degrees, binding patterns, A-series diagnostics.
///                    404 unknown database.
///   GET /statements  per-shape statement statistics of one database
///                    (`?db=NAME`, default "default"; `&reset=1` starts a
///                    fresh generation after rendering). 404 unknown
///                    database.
///   POST /explain    {"query": "...", "database": "..."} → the plan that
///                    would answer the query, WITHOUT executing it: the
///                    normalized shape, the rewrite `W` rule and period,
///                    the static-analysis bounds, and per-rule join plans
///                    (order, estimated vs observed steps-per-emit) from
///                    the spec build's plan cache. Same 400/404 mapping as
///                    /query.
///
/// Request ids (chronolog_qstats): a client-supplied `X-Request-Id` (or a
/// generated `q-...` id) is echoed as `request_id` in /query and /explain
/// responses, attached to their log lines, and tags the evaluation's trace
/// spans for `GET /trace?request=ID`.
///
/// `registry` must outlive the server; entries registered after Start() are
/// served as soon as Add returns (Find is the only lookup on the hot path).
void RegisterQueryEndpoints(HttpServer& server,
                            const DatabaseRegistry* registry,
                            QueryServiceOptions options = {});

}  // namespace chronolog

#endif  // CHRONOLOG_SERVE_QUERY_ENDPOINTS_H_
