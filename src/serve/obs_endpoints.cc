#include "serve/obs_endpoints.h"

#include "util/log.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace chronolog {

void RegisterObservabilityEndpoints(HttpServer& server,
                                    const MetricsRegistry* metrics,
                                    const TraceBuffer* trace,
                                    std::string service) {
  // Every response here is Content-Length framed, never close-delimited:
  // Prometheus scrapers hold their scrape connection open between rounds,
  // and the keep-alive server (PR 8) reuses it — the exposition must not
  // rely on EOF to mark its end.
  server.Handle("/metrics", [metrics](const HttpRequest&) {
    HttpResponse response;
    // The content type Prometheus scrapers negotiate for text format.
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    if (metrics != nullptr) response.body = metrics->ToPrometheusText();
    return response;
  });
  server.Handle("/healthz", [&server, service](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = "{\"status\":\"ok\",\"service\":\"" +
                    JsonEscape(service) + "\",\"requests\":" +
                    std::to_string(server.requests_served()) + "}\n";
    return response;
  });
  server.Handle("/trace", [trace](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = trace != nullptr
                        ? trace->ToChromeTraceJson()
                        : "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
    return response;
  });
}

}  // namespace chronolog
