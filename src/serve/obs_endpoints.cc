#include "serve/obs_endpoints.h"

#include <cstddef>
#include <string>
#include <string_view>

#include "util/log.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace chronolog {

void RegisterObservabilityEndpoints(HttpServer& server,
                                    const MetricsRegistry* metrics,
                                    const TraceBuffer* trace,
                                    std::string service) {
  // Every response here is Content-Length framed, never close-delimited:
  // Prometheus scrapers hold their scrape connection open between rounds,
  // and the keep-alive server (PR 8) reuses it — the exposition must not
  // rely on EOF to mark its end.
  server.Handle("/metrics", [metrics](const HttpRequest&) {
    HttpResponse response;
    // The content type Prometheus scrapers negotiate for text format.
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    if (metrics != nullptr) response.body = metrics->ToPrometheusText();
    return response;
  });
  server.Handle("/healthz", [&server, service](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = "{\"status\":\"ok\",\"service\":\"" +
                    JsonEscape(service) + "\",\"requests\":" +
                    std::to_string(server.requests_served()) + "}\n";
    return response;
  });
  // `?request=ID` (chronolog_qstats) slices the buffer down to the spans
  // recorded under that request id's trace scope — one query's timeline
  // instead of everything the buffer holds.
  server.Handle("/trace", [trace](const HttpRequest& request) {
    std::string_view filter;
    const std::string& query = request.query;
    std::size_t pos = 0;
    while (pos < query.size()) {
      std::size_t amp = query.find('&', pos);
      if (amp == std::string::npos) amp = query.size();
      if (query.compare(pos, 8, "request=") == 0) {
        filter = std::string_view(query).substr(pos + 8, amp - pos - 8);
        break;
      }
      pos = amp + 1;
    }
    HttpResponse response;
    response.content_type = "application/json";
    response.body = trace != nullptr
                        ? trace->ToChromeTraceJson(filter)
                        : "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
    return response;
  });
}

}  // namespace chronolog
