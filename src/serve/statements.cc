#include "serve/statements.h"

#include <algorithm>
#include <functional>

#include "util/string_util.h"

namespace chronolog {

namespace {

std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

StatementStats::Shard& StatementStats::ShardFor(std::string_view shape) {
  return shards_[std::hash<std::string_view>{}(shape) % kNumShards];
}

StatementStats::Entry* StatementStats::GetOrCreate(std::string_view shape) {
  Shard& shard = ShardFor(shape);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.live.find(shape);
  if (it == shard.live.end()) {
    auto entry = std::make_unique<Entry>(std::string(shape));
    // The map key views the entry's own shape string, whose storage is
    // stable behind the unique_ptr.
    std::string_view key = entry->shape;
    it = shard.live.emplace(key, std::move(entry)).first;
  }
  return it->second.get();
}

void StatementStats::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto& [key, entry] : shard.live) {
      shard.retired.push_back(std::move(entry));
    }
    shard.live.clear();
  }
}

uint64_t StatementStats::TotalCalls() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.live) {
      total += entry->calls.load(std::memory_order_relaxed);
    }
  }
  return total;
}

std::string StatementStats::ToJson() const {
  // Snapshot the live entry pointers shard by shard; entries are stable, so
  // the render below runs without any lock held.
  std::vector<const Entry*> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, entry] : shard.live) {
      entries.push_back(entry.get());
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry* a, const Entry* b) {
              const uint64_t sa = a->eval_ns.sum();
              const uint64_t sb = b->eval_ns.sum();
              if (sa != sb) return sa > sb;
              return a->shape < b->shape;
            });
  std::string out = "{\"statements\":[";
  bool first = true;
  for (const Entry* e : entries) {
    if (!first) out += ",";
    first = false;
    out += "{\"shape\":\"" + JsonEscape(e->shape) + "\"";
    out += ",\"calls\":" +
           std::to_string(e->calls.load(std::memory_order_relaxed));
    out += ",\"rows\":" +
           std::to_string(e->rows.load(std::memory_order_relaxed));
    out += ",\"partial\":" +
           std::to_string(e->partial.load(std::memory_order_relaxed));
    out += ",\"truncated\":" +
           std::to_string(e->truncated.load(std::memory_order_relaxed));
    out += ",\"oracle_lookups\":" +
           std::to_string(e->oracle_lookups.load(std::memory_order_relaxed));
    out += ",\"rewrite_steps\":" +
           std::to_string(e->rewrite_steps.load(std::memory_order_relaxed));
    out += ",\"parse_ns\":" +
           std::to_string(e->parse_ns.load(std::memory_order_relaxed));
    out += ",\"eval_ns\":{\"count\":" + std::to_string(e->eval_ns.count()) +
           ",\"sum\":" + std::to_string(e->eval_ns.sum()) +
           ",\"min\":" + std::to_string(e->eval_ns.min()) +
           ",\"max\":" + std::to_string(e->eval_ns.max()) +
           ",\"mean\":" + JsonNumber(e->eval_ns.mean()) +
           ",\"p50\":" + JsonNumber(e->eval_ns.Quantile(0.50)) +
           ",\"p90\":" + JsonNumber(e->eval_ns.Quantile(0.90)) +
           ",\"p99\":" + JsonNumber(e->eval_ns.Quantile(0.99)) + "}}";
  }
  out += "]}";
  return out;
}

}  // namespace chronolog
