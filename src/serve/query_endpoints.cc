#include "serve/query_endpoints.h"

#include <atomic>
#include <memory>
#include <string>
#include <utility>

#include "analysis/dataflow.h"
#include "query/answers.h"
#include "query/query_eval.h"
#include "query/query_parser.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/string_util.h"

namespace chronolog {

namespace {

HttpResponse JsonError(int status, const std::string& message,
                       const std::string& extra = "") {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\":\"" + JsonEscape(message) + "\"" + extra + "}\n";
  return response;
}

/// ",\"databases\":[...]" — the known-names hint attached to 404 errors.
std::string KnownDatabasesJson(const DatabaseRegistry* registry) {
  std::string known = ",\"databases\":[";
  bool first = true;
  for (const std::string& name : registry->names()) {
    if (!first) known += ",";
    known += '"';
    known += JsonEscape(name);
    known += '"';
    first = false;
  }
  known += "]";
  return known;
}

/// Value of `key` in a raw query string ("a=1&b=2"); `fallback` when absent.
/// Values are not percent-decoded — database names are plain identifiers.
std::string QueryParam(const std::string& query, std::string_view key,
                       std::string fallback) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return fallback;
}

/// HTTP status for a failed evaluation: client-side errors (a query the
/// engine rejects by design, e.g. equality over a spec) map to 400,
/// engine-side budget exhaustion to 503, anything else is a 500.
int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnimplemented:
      return 400;
    case StatusCode::kResourceExhausted:
      return 503;
    default:
      return 500;
  }
}

}  // namespace

void RegisterQueryEndpoints(HttpServer& server,
                            const DatabaseRegistry* registry,
                            QueryServiceOptions options) {
  // Admission state shared by every request; the handler outlives this
  // function, so the counter lives on the heap behind a shared_ptr.
  auto in_flight = std::make_shared<std::atomic<int>>(0);

  server.HandlePost("/query", [registry, options,
                               in_flight](const HttpRequest& request) {
    // Admission control first: shedding load must stay O(1) even when the
    // pool is saturated with slow queries.
    if (options.max_in_flight > 0) {
      const int occupied =
          in_flight->fetch_add(1, std::memory_order_acq_rel);
      if (occupied >= options.max_in_flight) {
        in_flight->fetch_sub(1, std::memory_order_acq_rel);
        if (options.metrics != nullptr) {
          options.metrics->counter("query.rejected")->Add();
        }
        return JsonError(429, "too many queries in flight",
                         ",\"max_in_flight\":" +
                             std::to_string(options.max_in_flight));
      }
    }
    struct Release {
      std::atomic<int>* counter;
      bool armed;
      ~Release() {
        if (armed) counter->fetch_sub(1, std::memory_order_acq_rel);
      }
    } release{in_flight.get(), options.max_in_flight > 0};

    Result<JsonValue> body = ParseJson(request.body);
    if (!body.ok()) {
      return JsonError(400, body.status().message());
    }
    if (!body->is_object()) {
      return JsonError(400, "request body must be a JSON object");
    }
    const JsonValue* query_field = body->Find("query");
    if (query_field == nullptr || !query_field->is_string()) {
      return JsonError(400, "missing string field \"query\"");
    }
    std::string database = "default";
    if (const JsonValue* db = body->Find("database"); db != nullptr) {
      if (!db->is_string()) {
        return JsonError(400, "\"database\" must be a string");
      }
      database = db->string_value;
    }

    const DatabaseRegistry::Entry* entry = registry->Find(database);
    if (entry == nullptr) {
      return JsonError(404, "unknown database '" + database + "'",
                       KnownDatabasesJson(registry));
    }

    // Per-query limits: the client can tighten the service defaults but
    // never exceed the configured caps.
    std::chrono::milliseconds timeout = options.default_timeout;
    if (const JsonValue* v = body->Find("deadline_ms"); v != nullptr) {
      if (!v->is_number() || !v->is_integer || v->int_value <= 0) {
        return JsonError(400, "\"deadline_ms\" must be a positive integer");
      }
      timeout = std::chrono::milliseconds(v->int_value);
    }
    if (options.max_timeout.count() > 0 &&
        (timeout.count() <= 0 || timeout > options.max_timeout)) {
      timeout = options.max_timeout;
    }
    uint64_t max_rows = options.default_max_rows;
    if (const JsonValue* v = body->Find("max_rows"); v != nullptr) {
      if (!v->is_number() || !v->is_integer || v->int_value < 0) {
        return JsonError(400, "\"max_rows\" must be a non-negative integer");
      }
      max_rows = static_cast<uint64_t>(v->int_value);
    }
    if (options.max_rows_cap != 0 &&
        (max_rows == 0 || max_rows > options.max_rows_cap)) {
      max_rows = options.max_rows_cap;
    }

    const Vocabulary& vocab = entry->tdd.vocab();
    Result<Query> parsed = ParseQuery(query_field->string_value, vocab);
    if (!parsed.ok()) {
      return JsonError(400, parsed.status().ToString());
    }

    QueryEvalOptions eval_options;
    eval_options.metrics = entry->tdd.metrics();
    eval_options.trace = entry->tdd.trace();
    if (timeout.count() > 0) {
      // Clamp before adding: a huge client deadline_ms (e.g. 2^62, legal
      // when no max_timeout cap is configured) overflows `now + timeout`
      // once the milliseconds convert to the clock's nanosecond duration,
      // yielding a deadline in the past and a spuriously partial answer.
      const auto now = std::chrono::steady_clock::now();
      const auto headroom =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::time_point::max() - now) -
          std::chrono::milliseconds(1);
      eval_options.deadline =
          timeout < headroom ? now + timeout
                             : std::chrono::steady_clock::time_point::max();
    }
    eval_options.max_rows = max_rows;

    const auto start = std::chrono::steady_clock::now();
    Result<QueryAnswer> answer =
        EvaluateQueryOverSpec(parsed.value(), *entry->spec, eval_options);
    if (!answer.ok()) {
      return JsonError(StatusToHttp(answer.status()),
                       answer.status().ToString());
    }
    const double eval_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();

    HttpResponse response;
    response.content_type = "application/json";
    // Splice the request context into the answer document (the renderer
    // emits a complete object; drop its opening brace).
    std::string answer_json = QueryAnswerToJson(*answer, vocab);
    // FormatDouble, not std::to_string: the latter honors LC_NUMERIC, and a
    // comma decimal separator (e.g. under de_DE) breaks the JSON document.
    response.body = "{\"database\":\"" + JsonEscape(database) +
                    "\",\"eval_ms\":" + FormatDouble(eval_ms) + "," +
                    answer_json.substr(1) + "\n";
    return response;
  });

  server.Handle("/databases", [registry](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    std::string body = "{\"databases\":[";
    bool first = true;
    for (const std::string& name : registry->names()) {
      const DatabaseRegistry::Entry* entry = registry->Find(name);
      if (entry == nullptr) continue;
      if (!first) body += ",";
      first = false;
      body += "{\"name\":\"" + JsonEscape(name) + "\"";
      body += ",\"facts\":" + std::to_string(entry->spec->SizeInFacts());
      body += ",\"representatives\":" +
              std::to_string(entry->spec->num_representatives());
      body += ",\"period_b\":" + std::to_string(entry->spec->period().b);
      body += ",\"period_p\":" + std::to_string(entry->spec->period().p);
      body += ",\"rewrite_lhs\":" +
              std::to_string(entry->spec->rewrite_lhs()) + "}";
    }
    body += "]}\n";
    response.body = std::move(body);
    return response;
  });

  server.Handle("/analyze", [registry](const HttpRequest& request) {
    const std::string database = QueryParam(request.query, "db", "default");
    const DatabaseRegistry::Entry* entry = registry->Find(database);
    if (entry == nullptr) {
      return JsonError(404, "unknown database '" + database + "'",
                       KnownDatabasesJson(registry));
    }
    // AnalyzeProgram is purely static (no model construction), cheap enough
    // to recompute per request; going through the const registry entry
    // keeps the handler free of shared mutable state.
    const FlowAnalysis analysis =
        AnalyzeProgram(entry->tdd.program(), entry->tdd.database());
    HttpResponse response;
    response.content_type = "application/json";
    // Splice the database name into the analysis document (ToJson emits a
    // complete object; drop its opening brace).
    response.body = "{\"database\":\"";
    response.body += JsonEscape(database);
    response.body += "\",";
    response.body += analysis.ToJson(entry->tdd.program()).substr(1);
    response.body += "\n";
    return response;
  });
}

}  // namespace chronolog
