#include "serve/query_endpoints.h"

#include <atomic>
#include <cstdio>
#include <memory>
#include <random>
#include <string>
#include <utility>

#include "analysis/dataflow.h"
#include "ast/printer.h"
#include "query/answers.h"
#include "query/query_eval.h"
#include "query/query_parser.h"
#include "query/query_shape.h"
#include "util/json.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace chronolog {

namespace {

HttpResponse JsonError(int status, const std::string& message,
                       const std::string& extra = "") {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\":\"" + JsonEscape(message) + "\"" + extra + "}\n";
  return response;
}

/// ",\"databases\":[...]" — the known-names hint attached to 404 errors.
std::string KnownDatabasesJson(const DatabaseRegistry* registry) {
  std::string known = ",\"databases\":[";
  bool first = true;
  for (const std::string& name : registry->names()) {
    if (!first) known += ",";
    known += '"';
    known += JsonEscape(name);
    known += '"';
    first = false;
  }
  known += "]";
  return known;
}

/// Value of `key` in a raw query string ("a=1&b=2"); `fallback` when absent.
/// Values are not percent-decoded — database names are plain identifiers.
std::string QueryParam(const std::string& query, std::string_view key,
                       std::string fallback) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        query.compare(pos, eq - pos, key) == 0) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return fallback;
}

/// The effective request id (chronolog_qstats): the client's `X-Request-Id`
/// (capped — ids land verbatim in log lines and trace scopes, so an
/// adversarially long header must not balloon them), or a generated
/// `q-<instance>-<seq>` id unique within this process.
std::string EffectiveRequestId(const std::string& client_id) {
  constexpr std::size_t kMaxIdLength = 128;
  if (!client_id.empty()) {
    return client_id.size() <= kMaxIdLength
               ? client_id
               : client_id.substr(0, kMaxIdLength);
  }
  // Random instance prefix so ids from restarted servers don't collide in
  // aggregated logs; the sequence makes them unique within the process.
  static const uint32_t instance = std::random_device{}();
  static std::atomic<uint64_t> sequence{0};
  char buf[40];
  std::snprintf(buf, sizeof(buf), "q-%08x-%llu", instance,
                static_cast<unsigned long long>(
                    sequence.fetch_add(1, std::memory_order_relaxed) + 1));
  return buf;
}

/// ",\"request_id\":\"...\"" — spliced into response documents and 4xx/5xx
/// error objects so a client can correlate failures too.
std::string RequestIdJson(const std::string& request_id) {
  return ",\"request_id\":\"" + JsonEscape(request_id) + "\"";
}

/// HTTP status for a failed evaluation: client-side errors (a query the
/// engine rejects by design, e.g. equality over a spec) map to 400,
/// engine-side budget exhaustion to 503, anything else is a 500.
int StatusToHttp(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnimplemented:
      return 400;
    case StatusCode::kResourceExhausted:
      return 503;
    default:
      return 500;
  }
}

}  // namespace

void RegisterQueryEndpoints(HttpServer& server,
                            const DatabaseRegistry* registry,
                            QueryServiceOptions options) {
  // Admission state shared by every request; the handler outlives this
  // function, so the counter lives on the heap behind a shared_ptr.
  auto in_flight = std::make_shared<std::atomic<int>>(0);

  server.HandlePost("/query", [registry, options,
                               in_flight](const HttpRequest& request) {
    // Admission control first: shedding load must stay O(1) even when the
    // pool is saturated with slow queries.
    if (options.max_in_flight > 0) {
      const int occupied =
          in_flight->fetch_add(1, std::memory_order_acq_rel);
      if (occupied >= options.max_in_flight) {
        in_flight->fetch_sub(1, std::memory_order_acq_rel);
        if (options.metrics != nullptr) {
          options.metrics->counter("query.rejected")->Add();
        }
        return JsonError(429, "too many queries in flight",
                         ",\"max_in_flight\":" +
                             std::to_string(options.max_in_flight));
      }
    }
    struct Release {
      std::atomic<int>* counter;
      bool armed;
      ~Release() {
        if (armed) counter->fetch_sub(1, std::memory_order_acq_rel);
      }
    } release{in_flight.get(), options.max_in_flight > 0};

    const std::string request_id = EffectiveRequestId(request.request_id);
    const std::string id_json = RequestIdJson(request_id);

    Result<JsonValue> body = ParseJson(request.body);
    if (!body.ok()) {
      return JsonError(400, body.status().message(), id_json);
    }
    if (!body->is_object()) {
      return JsonError(400, "request body must be a JSON object");
    }
    const JsonValue* query_field = body->Find("query");
    if (query_field == nullptr || !query_field->is_string()) {
      return JsonError(400, "missing string field \"query\"");
    }
    std::string database = "default";
    if (const JsonValue* db = body->Find("database"); db != nullptr) {
      if (!db->is_string()) {
        return JsonError(400, "\"database\" must be a string");
      }
      database = db->string_value;
    }

    const DatabaseRegistry::Entry* entry = registry->Find(database);
    if (entry == nullptr) {
      return JsonError(404, "unknown database '" + database + "'",
                       KnownDatabasesJson(registry));
    }

    // Per-query limits: the client can tighten the service defaults but
    // never exceed the configured caps.
    std::chrono::milliseconds timeout = options.default_timeout;
    if (const JsonValue* v = body->Find("deadline_ms"); v != nullptr) {
      if (!v->is_number() || !v->is_integer || v->int_value <= 0) {
        return JsonError(400, "\"deadline_ms\" must be a positive integer");
      }
      timeout = std::chrono::milliseconds(v->int_value);
    }
    if (options.max_timeout.count() > 0 &&
        (timeout.count() <= 0 || timeout > options.max_timeout)) {
      timeout = options.max_timeout;
    }
    uint64_t max_rows = options.default_max_rows;
    if (const JsonValue* v = body->Find("max_rows"); v != nullptr) {
      if (!v->is_number() || !v->is_integer || v->int_value < 0) {
        return JsonError(400, "\"max_rows\" must be a non-negative integer");
      }
      max_rows = static_cast<uint64_t>(v->int_value);
    }
    if (options.max_rows_cap != 0 &&
        (max_rows == 0 || max_rows > options.max_rows_cap)) {
      max_rows = options.max_rows_cap;
    }

    const Vocabulary& vocab = entry->tdd.vocab();
    const auto parse_start = std::chrono::steady_clock::now();
    Result<Query> parsed = ParseQuery(query_field->string_value, vocab);
    const auto parse_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - parse_start)
            .count();
    if (!parsed.ok()) {
      return JsonError(400, parsed.status().ToString(), id_json);
    }

    QueryEvalOptions eval_options;
    eval_options.metrics = entry->tdd.metrics();
    eval_options.trace = entry->tdd.trace();
    eval_options.request_id = request_id;
    if (timeout.count() > 0) {
      // Clamp before adding: a huge client deadline_ms (e.g. 2^62, legal
      // when no max_timeout cap is configured) overflows `now + timeout`
      // once the milliseconds convert to the clock's nanosecond duration,
      // yielding a deadline in the past and a spuriously partial answer.
      const auto now = std::chrono::steady_clock::now();
      const auto headroom =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::time_point::max() - now) -
          std::chrono::milliseconds(1);
      eval_options.deadline =
          timeout < headroom ? now + timeout
                             : std::chrono::steady_clock::time_point::max();
    }
    eval_options.max_rows = max_rows;

    // Snapshot the trace drop counter around the evaluation: an admitted
    // query whose spans fell off the wrapped buffer deserves a warning (the
    // operator asked for `/trace?request=ID` observability and silently got
    // less; `--trace-capacity` is the remedy).
    TraceBuffer* trace = entry->tdd.trace();
    const uint64_t dropped_before = trace != nullptr ? trace->dropped() : 0;

    const auto start = std::chrono::steady_clock::now();
    Result<QueryAnswer> answer =
        EvaluateQueryOverSpec(parsed.value(), *entry->spec, eval_options);
    if (!answer.ok()) {
      return JsonError(StatusToHttp(answer.status()),
                       answer.status().ToString(), id_json);
    }
    const double eval_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();

    if (trace != nullptr) {
      const uint64_t dropped_after = trace->dropped();
      if (dropped_after > dropped_before) {
        // A saturated buffer drops spans on every query from then on, so
        // warning per request would put a stderr write on the hot path.
        // Warn on the first drop, then only when the total has doubled
        // since the last warn; the running total keeps the line useful.
        uint64_t warned =
            entry->trace_drop_warned.load(std::memory_order_relaxed);
        while (warned == 0 || dropped_after >= 2 * warned) {
          if (entry->trace_drop_warned.compare_exchange_weak(
                  warned, dropped_after, std::memory_order_relaxed)) {
            LogWarn("trace.dropped")
                .Str("request_id", request_id)
                .Str("database", database)
                .Uint("dropped", dropped_after - dropped_before)
                .Uint("dropped_total", dropped_after)
                .Uint("capacity", trace->capacity());
            break;
          }
        }
      }
    }

    const bool slow = options.slow_query_ms >= 0 &&
                      eval_ms >= static_cast<double>(options.slow_query_ms);
    if (options.track_statements || slow) {
      const std::string shape =
          NormalizeQueryShape(query_field->string_value);
      if (options.track_statements) {
        entry->statements->GetOrCreate(shape)->Record(
            answer->rows.size(), answer->partial, answer->truncated,
            answer->oracle_lookups, answer->rewrite_steps,
            static_cast<uint64_t>(parse_ns),
            static_cast<uint64_t>(eval_ms * 1e6));
      }
      if (slow) {
        if (options.metrics != nullptr) {
          options.metrics->counter("query.slow")->Add();
        }
        // One line per slow query: shape (not the raw text — constants can
        // be sensitive, and the shape is the aggregation key anyway),
        // request id, the limits it ran under, and the phase breakdown.
        LogWarn("query.slow")
            .Str("request_id", request_id)
            .Str("database", database)
            .Str("shape", shape)
            .Num("parse_ms", static_cast<double>(parse_ns) / 1e6)
            .Num("eval_ms", eval_ms)
            .Uint("oracle_lookups", answer->oracle_lookups)
            .Uint("rewrite_steps", answer->rewrite_steps)
            .Uint("rows", answer->rows.size())
            .Bool("partial", answer->partial)
            .Bool("truncated", answer->truncated)
            .Int("deadline_ms", timeout.count())
            .Uint("max_rows", max_rows);
      }
    }

    HttpResponse response;
    response.content_type = "application/json";
    // Splice the request context into the answer document (the renderer
    // emits a complete object; drop its opening brace).
    std::string answer_json = QueryAnswerToJson(*answer, vocab);
    // FormatDouble, not std::to_string: the latter honors LC_NUMERIC, and a
    // comma decimal separator (e.g. under de_DE) breaks the JSON document.
    response.body = "{\"database\":\"" + JsonEscape(database) + "\"" +
                    id_json + ",\"eval_ms\":" + FormatDouble(eval_ms) + "," +
                    answer_json.substr(1) + "\n";
    return response;
  });

  server.Handle("/databases", [registry](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    std::string body = "{\"databases\":[";
    bool first = true;
    for (const std::string& name : registry->names()) {
      const DatabaseRegistry::Entry* entry = registry->Find(name);
      if (entry == nullptr) continue;
      if (!first) body += ",";
      first = false;
      body += "{\"name\":\"" + JsonEscape(name) + "\"";
      body += ",\"facts\":" + std::to_string(entry->spec->SizeInFacts());
      body += ",\"representatives\":" +
              std::to_string(entry->spec->num_representatives());
      body += ",\"period_b\":" + std::to_string(entry->spec->period().b);
      body += ",\"period_p\":" + std::to_string(entry->spec->period().p);
      body += ",\"rewrite_lhs\":" +
              std::to_string(entry->spec->rewrite_lhs()) + "}";
    }
    body += "]}\n";
    response.body = std::move(body);
    return response;
  });

  server.Handle("/analyze", [registry](const HttpRequest& request) {
    const std::string database = QueryParam(request.query, "db", "default");
    const DatabaseRegistry::Entry* entry = registry->Find(database);
    if (entry == nullptr) {
      return JsonError(404, "unknown database '" + database + "'",
                       KnownDatabasesJson(registry));
    }
    // AnalyzeProgram is purely static (no model construction), cheap enough
    // to recompute per request; going through the const registry entry
    // keeps the handler free of shared mutable state.
    const FlowAnalysis analysis =
        AnalyzeProgram(entry->tdd.program(), entry->tdd.database());
    HttpResponse response;
    response.content_type = "application/json";
    // Splice the database name into the analysis document (ToJson emits a
    // complete object; drop its opening brace).
    response.body = "{\"database\":\"";
    response.body += JsonEscape(database);
    response.body += "\",";
    response.body += analysis.ToJson(entry->tdd.program()).substr(1);
    response.body += "\n";
    return response;
  });

  server.Handle("/statements", [registry](const HttpRequest& request) {
    const std::string database = QueryParam(request.query, "db", "default");
    const DatabaseRegistry::Entry* entry = registry->Find(database);
    if (entry == nullptr) {
      return JsonError(404, "unknown database '" + database + "'",
                       KnownDatabasesJson(registry));
    }
    StatementStats* stats = entry->statements.get();
    HttpResponse response;
    response.content_type = "application/json";
    // Render first, then reset: `?reset=1` returns the statistics it wiped,
    // so a scrape-and-reset loop never loses a window.
    response.body = "{\"database\":\"" + JsonEscape(database) + "\"," +
                    stats->ToJson().substr(1) + "\n";
    if (QueryParam(request.query, "reset", "0") == "1") stats->Reset();
    return response;
  });

  server.HandlePost("/explain", [registry](const HttpRequest& request) {
    const std::string request_id = EffectiveRequestId(request.request_id);
    const std::string id_json = RequestIdJson(request_id);
    Result<JsonValue> body = ParseJson(request.body);
    if (!body.ok()) {
      return JsonError(400, body.status().message(), id_json);
    }
    if (!body->is_object()) {
      return JsonError(400, "request body must be a JSON object", id_json);
    }
    const JsonValue* query_field = body->Find("query");
    if (query_field == nullptr || !query_field->is_string()) {
      return JsonError(400, "missing string field \"query\"", id_json);
    }
    std::string database = "default";
    if (const JsonValue* db = body->Find("database"); db != nullptr) {
      if (!db->is_string()) {
        return JsonError(400, "\"database\" must be a string", id_json);
      }
      database = db->string_value;
    }
    const DatabaseRegistry::Entry* entry = registry->Find(database);
    if (entry == nullptr) {
      return JsonError(404, "unknown database '" + database + "'",
                       KnownDatabasesJson(registry) + id_json);
    }
    const Vocabulary& vocab = entry->tdd.vocab();
    // Parse to validate (same 400 contract as /query) — but never evaluate:
    // EXPLAIN answers from compiled artefacts only.
    Result<Query> parsed = ParseQuery(query_field->string_value, vocab);
    if (!parsed.ok()) {
      return JsonError(400, parsed.status().ToString(), id_json);
    }

    const RelationalSpecification* spec = entry->spec;
    const FlowAnalysis analysis =
        AnalyzeProgram(entry->tdd.program(), entry->tdd.database());

    HttpResponse response;
    response.content_type = "application/json";
    std::string out = "{\"database\":\"" + JsonEscape(database) + "\"";
    out += id_json;
    out += ",\"query\":\"" + JsonEscape(query_field->string_value) + "\"";
    out += ",\"shape\":\"" +
           JsonEscape(NormalizeQueryShape(query_field->string_value)) + "\"";
    out += ",\"executed\":false";
    // The rewrite rule W that answers any temporal term in this query:
    // lhs -> lhs - p applied to exhaustion (Prop. 3.1).
    out += ",\"rewrite\":{\"lhs\":" + std::to_string(spec->rewrite_lhs()) +
           ",\"rhs\":" + std::to_string(spec->rewrite_lhs() -
                                        spec->period().p) +
           ",\"p\":" + std::to_string(spec->period().p) + "}";
    out += ",\"period\":{\"b\":" + std::to_string(spec->period().b) +
           ",\"p\":" + std::to_string(spec->period().p) +
           ",\"c\":" + std::to_string(spec->c()) + ",\"representatives\":" +
           std::to_string(spec->num_representatives()) + "}";
    out += ",\"analysis\":{\"bounded\":";
    out += analysis.hints.bounded ? "true" : "false";
    out += ",\"static_horizon\":" +
           std::to_string(analysis.hints.static_horizon) +
           ",\"period_divisor\":" +
           std::to_string(analysis.hints.period_divisor) +
           ",\"program_degree\":" +
           std::to_string(analysis.degrees.program_degree) + "}";
    // Join plans the spec build actually executed (exported from the
    // RuleEvaluator plan caches of its last fixpoint) — what a repeated
    // build of this database would run again.
    const RulePlanReport& plans = entry->tdd.spec_info().plans;
    out += ",\"plans\":[";
    const auto& rules = entry->tdd.program().rules();
    bool first_rule = true;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (!first_rule) out += ",";
      first_rule = false;
      out += "{\"rule\":\"" + JsonEscape(RuleToString(rules[i], vocab)) +
             "\",\"slots\":[";
      bool first_slot = true;
      if (i < plans.size()) {
        for (const PlanSlotReport& slot : plans[i]) {
          if (!first_slot) out += ",";
          first_slot = false;
          out += "{\"delta_pos\":" + std::to_string(slot.delta_pos) +
                 ",\"time_bound\":";
          out += slot.time_bound ? "true" : "false";
          out += ",\"order\":[";
          for (std::size_t k = 0; k < slot.order.size(); ++k) {
            if (k > 0) out += ",";
            out += std::to_string(slot.order[k]);
          }
          out += "],\"probe_cols\":[";
          for (std::size_t k = 0; k < slot.probe_cols.size(); ++k) {
            if (k > 0) out += ",";
            out += std::to_string(slot.probe_cols[k]);
          }
          out += "],\"est_steps_per_emit\":" +
                 FormatDouble(slot.est_steps_per_emit) +
                 ",\"observed_steps\":" +
                 std::to_string(slot.observed_steps) +
                 ",\"observed_emits\":" +
                 std::to_string(slot.observed_emits) + "}";
        }
      }
      out += "]}";
    }
    out += "]}\n";
    response.body = std::move(out);
    return response;
  });
}

}  // namespace chronolog
