#ifndef CHRONOLOG_SERVE_OBS_ENDPOINTS_H_
#define CHRONOLOG_SERVE_OBS_ENDPOINTS_H_

#include <string>

#include "serve/http_server.h"

namespace chronolog {

class MetricsRegistry;
class TraceBuffer;

/// Registers the chronolog_serve observability routes on `server`:
///
///   GET /metrics — Prometheus text exposition of `metrics`
///                  (`MetricsRegistry::ToPrometheusText`); 404-styled empty
///                  exposition when metrics is null.
///   GET /healthz — `{"status":"ok","requests":N,...}` JSON; always 200
///                  while the server is running (liveness, not readiness).
///   GET /trace   — Chrome trace-event JSON of `trace`
///                  (`TraceBuffer::ToChromeTraceJson`), loadable in
///                  Perfetto / chrome://tracing.
///
/// `metrics` and `trace` may be null (the corresponding endpoint then
/// serves an empty document) but must outlive the server when set —
/// typically both are owned by a `TemporalDatabase` built with
/// `EngineOptions::collect_metrics`. `service` labels the health document.
void RegisterObservabilityEndpoints(HttpServer& server,
                                    const MetricsRegistry* metrics,
                                    const TraceBuffer* trace,
                                    std::string service = "chronolog");

}  // namespace chronolog

#endif  // CHRONOLOG_SERVE_OBS_ENDPOINTS_H_
