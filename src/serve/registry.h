#ifndef CHRONOLOG_SERVE_REGISTRY_H_
#define CHRONOLOG_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/engine.h"
#include "serve/statements.h"
#include "util/status.h"

namespace chronolog {

/// A named collection of engines behind one server — the multi-session side
/// of chronolog_serve. Every entry is registered with its relational
/// specification `(T, B, W)` already compiled, so the serving hot path
/// (`POST /query` → parse → EvaluateQueryOverSpec) touches only const,
/// concurrently-readable state; the compiled spec is shared by every
/// request against that database.
///
/// Thread-safety: Add*/Find/names may be called concurrently. Entries are
/// never removed or replaced, so the `Entry*` returned by Find stays valid
/// (and its spec immutable) for the registry's lifetime — handlers hold it
/// across a request without further locking.
class DatabaseRegistry {
 public:
  struct Entry {
    std::string name;
    TemporalDatabase tdd;
    /// The compiled specification, owned by `tdd` (cached there); never
    /// null for a registered entry.
    const RelationalSpecification* spec = nullptr;
    /// Per-database statement statistics (chronolog_qstats), fed by the
    /// `POST /query` handler and served as `GET /statements?db=NAME`.
    /// Heap-allocated and never replaced, so `statements.get()` is a stable,
    /// internally synchronised handle even through the registry's const
    /// Find (unique_ptr does not propagate const — deliberate: `?reset=1`
    /// mutates through it).
    std::unique_ptr<StatementStats> statements =
        std::make_unique<StatementStats>();
    /// Throttle state for the `trace.dropped` warning: the buffer's total
    /// drop count as of the last warn. A saturated trace buffer drops spans
    /// on every subsequent query; warning each time would put a stderr
    /// write on the serving hot path, so the handler only warns when the
    /// total has doubled since this mark. Mutable because handlers reach it
    /// through the registry's const Find.
    mutable std::atomic<uint64_t> trace_drop_warned{0};

    Entry(std::string n, TemporalDatabase db)
        : name(std::move(n)), tdd(std::move(db)) {}
  };

  /// Registers `tdd` under `name`, compiling its specification eagerly (the
  /// expensive part of registration; can fail with kResourceExhausted like
  /// any spec build). Fails with kFailedPrecondition on a duplicate name.
  Status Add(std::string name, TemporalDatabase tdd);

  /// Parses `source` into an engine (metrics collection on, so the per-
  /// database `query.*` family is live) and registers it.
  Status AddFromSource(std::string name, std::string_view source,
                       EngineOptions options = {});

  /// Loads `path` (a `.tdl` program) and registers it.
  Status AddFromFile(std::string name, const std::string& path,
                     EngineOptions options = {});

  /// Looks up a database; nullptr when `name` is not registered.
  const Entry* Find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_SERVE_REGISTRY_H_
