#ifndef CHRONOLOG_SERVE_HTTP_SERVER_H_
#define CHRONOLOG_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "util/status.h"

namespace chronolog {

class MetricsRegistry;
class ThreadPool;

/// chronolog_serve — a minimal blocking HTTP/1.1 server for the
/// observability endpoints (`/metrics`, `/healthz`, `/trace`) and the query
/// protocol (`POST /query`, see docs/SERVING.md). Scope is deliberately
/// narrow: GET/HEAD plus explicitly registered POST routes, loopback by
/// default, no TLS, no third-party dependencies — enough for a Prometheus
/// scraper, `curl`, or a query client, and nothing an internet-facing proxy
/// should be pointed at directly.
///
/// Connection semantics: HTTP/1.1 requests default to persistent
/// connections — one socket carries many requests (including pipelined
/// back-to-back requests; responses always go back in request order because
/// a connection is owned by one worker). A connection closes when the
/// client asks (`Connection: close`), speaks HTTP/1.0, sits idle past
/// `idle_timeout_ms`, exceeds `max_requests_per_connection`, or commits any
/// protocol error (the 400/408/411/413/431 family below) — an error leaves
/// the request framing untrustworthy, so the server never reuses after one.
/// Route-level errors (404/405) keep the connection: the framing is intact,
/// only the routing failed, and any declared request body is drained before
/// the next request is read.
///
/// Concurrency model: `Start()` binds and listens, then hands a bounded
/// worker pool (`src/util/thread_pool.*`) one long-running accept loop per
/// worker — `accept(2)` on a shared listening socket is thread-safe, so the
/// workers form a classic pre-threaded server. Each worker polls the
/// listening fd with a short timeout between accepts, and idle keep-alive
/// waits poll in the same short slices, which is what lets `Stop()`
/// terminate the loops (and shed idle connections) without relying on
/// platform-specific `shutdown(2)`-on-listener semantics.
///
/// Error responses the connection layer produces itself (all of them close
/// the connection):
///   400  malformed request line / header block / body shorter than
///        Content-Length / duplicate or conflicting Content-Length /
///        any Transfer-Encoding (not supported, and a smuggling vector on
///        reused connections)
///   408  the client stalled past the receive timeout mid-request
///   411  POST without a Content-Length header
///   413  request body larger than `max_body_bytes`
///   431  header block larger than the request read cap
struct HttpRequest {
  std::string method;  // "GET", "HEAD", "POST"
  std::string path;    // decoded-enough: the raw path, query string split off
  std::string query;   // text after '?', if any (not parsed further)
  std::string body;    // POST payload (exactly Content-Length bytes)
  /// Client-supplied `X-Request-Id` header value (trimmed), empty when the
  /// client sent none. The query endpoints echo it into the response JSON,
  /// log lines and the per-request trace scope (chronolog_qstats); handlers
  /// that ignore it lose nothing.
  std::string request_id;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Handler for one route. Invoked concurrently from worker threads — must
/// be thread-safe.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  /// Port to bind; 0 picks an ephemeral port (read it back via `port()`).
  int port = 0;
  /// Bind address. The default stays on loopback; pass "0.0.0.0" to expose
  /// the endpoints beyond the host.
  std::string bind_address = "127.0.0.1";
  /// Concurrent request workers (each runs one blocking accept loop).
  int num_workers = 2;
  /// Per-connection socket receive timeout while reading one request.
  int read_timeout_ms = 5000;
  /// How long a kept-alive connection may sit idle between requests before
  /// the server closes it (serve.connections_idle_closed).
  int idle_timeout_ms = 5000;
  /// Requests served over one connection before the server forces a close
  /// (the final allowed response carries `Connection: close`); 0 = no cap.
  int max_requests_per_connection = 0;
  /// Cap on a POST body; larger payloads are refused with 413.
  std::size_t max_body_bytes = 1 << 20;
  /// Serve-level instruments (nullable, must outlive the server when set):
  ///   serve.responses_2xx/4xx/5xx     counters  responses by status class
  ///   serve.connections_opened        counter   accepted connections
  ///   serve.connections_reused        counter   requests parsed on a
  ///                                             connection past its first —
  ///                                             reused/opened is the
  ///                                             keep-alive hit rate
  ///   serve.connections_idle_closed   counter   idle-timeout closes
  /// Response counters count actual responses written back, not accepted
  /// connections — a client that connects and sends nothing parseable
  /// counts nowhere.
  MetricsRegistry* metrics = nullptr;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path` under GET (and HEAD, which
  /// reuses the GET handler minus the body). Must be called before Start();
  /// routes are immutable while serving.
  void Handle(std::string path, HttpHandler handler);

  /// Registers `handler` for exact-match `path` under POST. The request
  /// body (up to `max_body_bytes`) is read before the handler runs.
  void HandlePost(std::string path, HttpHandler handler);

  /// Binds, listens and spawns the worker pool. Fails with
  /// kUnavailable when the socket cannot be bound.
  Status Start();

  /// Stops the accept loops, joins the workers and closes the socket.
  /// Idempotent; also invoked by the destructor.
  void Stop();

  /// The bound port (the chosen one when options.port == 0); 0 before
  /// Start().
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Responses actually written since Start (200s and error responses
  /// alike). Connections that closed without producing a parseable request
  /// line are not counted.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  /// Serves requests off `client_fd` until the connection is done: client
  /// close, protocol error, idle timeout, request cap, or server shutdown.
  void ServeConnection(int client_fd);
  /// Reads, dispatches and answers one request. `carry` holds over-read
  /// bytes belonging to the next pipelined request (in and out);
  /// `allow_reuse` is false when the per-connection request cap makes this
  /// the final allowed request; `reused` marks a request past the first on
  /// its connection (for serve.connections_reused). Returns true when the
  /// connection may carry another request.
  bool ServeOneRequest(int client_fd, std::string* carry, bool allow_reuse,
                       bool reused);
  /// Writes `response` and maintains requests_served_ plus the per-class
  /// serve.responses_* counters. All responses funnel through here.
  /// `keep_alive` picks the Connection response header and must match what
  /// the caller then does with the socket.
  void Respond(int client_fd, const HttpResponse& response, bool keep_alive,
               bool head_only = false);
  /// Bumps a serve-level counter when a metrics registry is attached.
  void Count(const char* name);

  HttpServerOptions options_;
  std::map<std::string, HttpHandler> routes_;       // GET/HEAD
  std::map<std::string, HttpHandler> post_routes_;  // POST
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::unique_ptr<ThreadPool> pool_;
  std::thread serve_thread_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_SERVE_HTTP_SERVER_H_
