#ifndef CHRONOLOG_SERVE_HTTP_SERVER_H_
#define CHRONOLOG_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "util/status.h"

namespace chronolog {

class MetricsRegistry;
class ThreadPool;

/// chronolog_serve — a minimal blocking HTTP/1.1 server for the
/// observability endpoints (`/metrics`, `/healthz`, `/trace`) and the query
/// protocol (`POST /query`, see docs/SERVING.md). Scope is deliberately
/// narrow: GET/HEAD plus explicitly registered POST routes,
/// `Connection: close` per request, loopback by default, no TLS, no
/// third-party dependencies — enough for a Prometheus scraper, `curl`, or a
/// query client, and nothing an internet-facing proxy should be pointed at
/// directly.
///
/// Concurrency model: `Start()` binds and listens, then hands a bounded
/// worker pool (`src/util/thread_pool.*`) one long-running accept loop per
/// worker — `accept(2)` on a shared listening socket is thread-safe, so the
/// workers form a classic pre-threaded server. Each worker polls the
/// listening fd with a short timeout between accepts, which is what lets
/// `Stop()` terminate the loops without relying on platform-specific
/// `shutdown(2)`-on-listener semantics.
///
/// Error responses the connection layer produces itself:
///   400  malformed request line / header block
///   404  no route for the path (the body lists the registered routes)
///   405  method not supported by the route (or at all)
///   408  the client stalled past the receive timeout mid-request
///   411  POST without a Content-Length header
///   413  POST body larger than `max_body_bytes`
///   431  header block larger than the request read cap
struct HttpRequest {
  std::string method;  // "GET", "HEAD", "POST"
  std::string path;    // decoded-enough: the raw path, query string split off
  std::string query;   // text after '?', if any (not parsed further)
  std::string body;    // POST payload (exactly Content-Length bytes)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Handler for one route. Invoked concurrently from worker threads — must
/// be thread-safe.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  /// Port to bind; 0 picks an ephemeral port (read it back via `port()`).
  int port = 0;
  /// Bind address. The default stays on loopback; pass "0.0.0.0" to expose
  /// the endpoints beyond the host.
  std::string bind_address = "127.0.0.1";
  /// Concurrent request workers (each runs one blocking accept loop).
  int num_workers = 2;
  /// Per-connection socket receive timeout while reading the request.
  int read_timeout_ms = 5000;
  /// Cap on a POST body; larger payloads are refused with 413.
  std::size_t max_body_bytes = 1 << 20;
  /// Serve-level instruments (nullable, must outlive the server when set):
  ///   serve.responses_2xx/4xx/5xx  counters  responses by status class
  /// These count actual responses written back, not accepted connections —
  /// a client that connects and sends nothing parseable counts nowhere.
  MetricsRegistry* metrics = nullptr;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path` under GET (and HEAD, which
  /// reuses the GET handler minus the body). Must be called before Start();
  /// routes are immutable while serving.
  void Handle(std::string path, HttpHandler handler);

  /// Registers `handler` for exact-match `path` under POST. The request
  /// body (up to `max_body_bytes`) is read before the handler runs.
  void HandlePost(std::string path, HttpHandler handler);

  /// Binds, listens and spawns the worker pool. Fails with
  /// kUnavailable when the socket cannot be bound.
  Status Start();

  /// Stops the accept loops, joins the workers and closes the socket.
  /// Idempotent; also invoked by the destructor.
  void Stop();

  /// The bound port (the chosen one when options.port == 0); 0 before
  /// Start().
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Responses actually written since Start (200s and error responses
  /// alike). Connections that closed without producing a parseable request
  /// line are not counted.
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int client_fd);
  /// Writes `response` and maintains requests_served_ plus the per-class
  /// serve.responses_* counters. All responses funnel through here.
  void Respond(int client_fd, const HttpResponse& response,
               bool head_only = false);

  HttpServerOptions options_;
  std::map<std::string, HttpHandler> routes_;       // GET/HEAD
  std::map<std::string, HttpHandler> post_routes_;  // POST
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::unique_ptr<ThreadPool> pool_;
  std::thread serve_thread_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_SERVE_HTTP_SERVER_H_
