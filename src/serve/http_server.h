#ifndef CHRONOLOG_SERVE_HTTP_SERVER_H_
#define CHRONOLOG_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "util/status.h"

namespace chronolog {

class ThreadPool;

/// chronolog_serve — a minimal blocking HTTP/1.1 server for the
/// observability endpoints (`/metrics`, `/healthz`, `/trace`). Scope is
/// deliberately narrow: GET-only, `Connection: close` per request, loopback
/// by default, no TLS, no third-party dependencies — enough for a
/// Prometheus scraper, `curl`, or a health-checking supervisor, and nothing
/// an internet-facing proxy should be pointed at directly.
///
/// Concurrency model: `Start()` binds and listens, then hands a bounded
/// worker pool (`src/util/thread_pool.*`) one long-running accept loop per
/// worker — `accept(2)` on a shared listening socket is thread-safe, so the
/// workers form a classic pre-threaded server. Each worker polls the
/// listening fd with a short timeout between accepts, which is what lets
/// `Stop()` terminate the loops without relying on platform-specific
/// `shutdown(2)`-on-listener semantics.

struct HttpRequest {
  std::string method;  // "GET", "HEAD", ...
  std::string path;    // decoded-enough: the raw path, query string split off
  std::string query;   // text after '?', if any (not parsed further)
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Handler for one route. Invoked concurrently from worker threads — must
/// be thread-safe.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerOptions {
  /// Port to bind; 0 picks an ephemeral port (read it back via `port()`).
  int port = 0;
  /// Bind address. The default stays on loopback; pass "0.0.0.0" to expose
  /// the endpoints beyond the host.
  std::string bind_address = "127.0.0.1";
  /// Concurrent request workers (each runs one blocking accept loop).
  int num_workers = 2;
  /// Per-connection socket receive timeout while reading the request.
  int read_timeout_ms = 5000;
};

class HttpServer {
 public:
  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path`. Must be called before
  /// Start(); routes are immutable while serving.
  void Handle(std::string path, HttpHandler handler);

  /// Binds, listens and spawns the worker pool. Fails with
  /// kUnavailable when the socket cannot be bound.
  Status Start();

  /// Stops the accept loops, joins the workers and closes the socket.
  /// Idempotent; also invoked by the destructor.
  void Stop();

  /// The bound port (the chosen one when options.port == 0); 0 before
  /// Start().
  int port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Requests served since Start (200s and error responses alike).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int client_fd);

  HttpServerOptions options_;
  std::map<std::string, HttpHandler> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> shutdown_{false};
  std::atomic<uint64_t> requests_served_{0};
  std::unique_ptr<ThreadPool> pool_;
  std::thread serve_thread_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_SERVE_HTTP_SERVER_H_
