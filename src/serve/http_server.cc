#include "serve/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <string_view>

#include "util/log.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace chronolog {

namespace {

/// Poll interval of the accept loops: the latency bound on Stop().
constexpr int kAcceptPollMs = 100;

/// Header-block read cap. Request lines plus headers larger than this are
/// abuse, not a request to buffer; the body has its own configurable cap.
constexpr std::size_t kMaxRequestBytes = 64 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 411:
      return "Length Required";
    case 413:
      return "Payload Too Large";
    case 422:
      return "Unprocessable Entity";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

void WriteAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

void WriteResponse(int fd, const HttpResponse& response,
                   bool head_only = false) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  WriteAll(fd, head);
  if (!head_only) WriteAll(fd, response.body);
}

HttpResponse TextResponse(int status, std::string body) {
  return HttpResponse{status, "text/plain; charset=utf-8", std::move(body)};
}

/// Scans the header block (the lines after the request line, exclusive of
/// the terminating blank line) for Content-Length. Returns false when the
/// header is absent or unparseable.
bool FindContentLength(std::string_view headers, uint64_t* out) {
  std::size_t pos = 0;
  while (pos < headers.size()) {
    std::size_t eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = headers.size();
    const std::string_view line = headers.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    std::string name(line.substr(0, colon));
    for (char& c : name) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    if (name != "content-length") continue;
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    while (!value.empty() && (value.back() == ' ' || value.back() == '\t' ||
                              value.back() == '\r')) {
      value.remove_suffix(1);
    }
    return ParseUint64(value, out);
  }
  return false;
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, HttpHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

void HttpServer::HandlePost(std::string path, HttpHandler handler) {
  post_routes_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("HttpServer::Start: already running");
  }
  shutdown_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError("invalid bind address: " +
                                options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string message = std::string("bind ") + options_.bind_address +
                                ":" + std::to_string(options_.port) + ": " +
                                std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(message);
  }
  if (::listen(listen_fd_, /*backlog=*/64) < 0) {
    const std::string message = std::string("listen: ") +
                                std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(message);
  }
  // Non-blocking listener: several workers poll the same fd, and when a
  // connection wakes more than one of them only the first accept() wins —
  // the losers must get EAGAIN back instead of blocking (and going blind to
  // shutdown_) until the next connection.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  // The pool runs one accept loop per worker index; ParallelFor's barrier
  // only releases once every loop has observed shutdown_, so joining the
  // serve thread is all Stop() needs to wait for.
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  serve_thread_ = std::thread([this] {
    pool_->ParallelFor(static_cast<std::size_t>(options_.num_workers),
                       [this](std::size_t) { AcceptLoop(); });
  });
  LogInfo("serve.start")
      .Str("bind", options_.bind_address)
      .Int("port", port_)
      .Int("workers", options_.num_workers);
  return Status();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  shutdown_.store(true, std::memory_order_release);
  if (serve_thread_.joinable()) serve_thread_.join();
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  LogInfo("serve.stop")
      .Int("port", port_)
      .Uint("requests", requests_served());
}

void HttpServer::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check shutdown
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;  // racing worker won the connection
    ServeConnection(client_fd);
    ::close(client_fd);
  }
}

void HttpServer::Respond(int client_fd, const HttpResponse& response,
                         bool head_only) {
  WriteResponse(client_fd, response, head_only);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    const char* family = response.status >= 500   ? "serve.responses_5xx"
                         : response.status >= 400 ? "serve.responses_4xx"
                         : response.status >= 300 ? "serve.responses_3xx"
                                                  : "serve.responses_2xx";
    options_.metrics->counter(family)->Add();
  }
}

void HttpServer::ServeConnection(int client_fd) {
  timeval timeout{};
  timeout.tv_sec = options_.read_timeout_ms / 1000;
  timeout.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // Read until the end of the header block; a POST body (if any) is read
  // separately below, once Content-Length is known.
  std::string request;
  char buf[4096];
  bool timed_out = false;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      timed_out = true;  // SO_RCVTIMEO expired: the client stalled
      break;
    }
    if (n <= 0) break;  // closed or hard error
    request.append(buf, static_cast<std::size_t>(n));
  }

  const std::size_t header_end = request.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    // The three truncation causes get distinct codes: a header block that
    // hit the read cap is 431 (even if the peer would have sent more), a
    // stalled client is 408, and a closed/garbled connection is 400. A
    // connection that closed without sending anything gets no response at
    // all — and is deliberately not counted as a request.
    if (request.size() >= kMaxRequestBytes) {
      Respond(client_fd,
              TextResponse(431, "request header block exceeds " +
                                    std::to_string(kMaxRequestBytes) +
                                    " bytes\n"));
      return;
    }
    if (timed_out) {
      Respond(client_fd,
              TextResponse(408, "timed out reading the request\n"));
      return;
    }
    if (request.empty()) return;
    Respond(client_fd, TextResponse(400, "incomplete request\n"));
    return;
  }

  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    Respond(client_fd, TextResponse(400, "malformed request line\n"));
    return;
  }
  HttpRequest parsed;
  parsed.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    parsed.path = std::move(target);
  } else {
    parsed.path = target.substr(0, qmark);
    parsed.query = target.substr(qmark + 1);
  }

  if (parsed.method == "GET" || parsed.method == "HEAD") {
    const auto it = routes_.find(parsed.path);
    if (it == routes_.end()) {
      if (post_routes_.count(parsed.path) != 0) {
        Respond(client_fd,
                TextResponse(405, "this route only accepts POST\n"));
        return;
      }
      std::string known = "not found; routes:";
      for (const auto& [path, handler] : routes_) known += " " + path;
      for (const auto& [path, handler] : post_routes_) {
        known += " POST:" + path;
      }
      Respond(client_fd, TextResponse(404, known + "\n"));
      return;
    }
    Respond(client_fd, it->second(parsed),
            /*head_only=*/parsed.method == "HEAD");
    return;
  }

  if (parsed.method != "POST") {
    Respond(client_fd,
            TextResponse(405, "only GET, HEAD and POST are supported\n"));
    return;
  }

  const auto it = post_routes_.find(parsed.path);
  if (it == post_routes_.end()) {
    if (routes_.count(parsed.path) != 0) {
      Respond(client_fd, TextResponse(405, "this route only accepts GET\n"));
      return;
    }
    std::string known = "not found; POST routes:";
    for (const auto& [path, handler] : post_routes_) known += " " + path;
    Respond(client_fd, TextResponse(404, known + "\n"));
    return;
  }

  uint64_t content_length = 0;
  if (!FindContentLength(
          std::string_view(request).substr(line_end + 2,
                                           header_end - line_end - 2),
          &content_length)) {
    Respond(client_fd,
            TextResponse(411, "POST requires a Content-Length header\n"));
    return;
  }
  if (content_length > options_.max_body_bytes) {
    Respond(client_fd,
            TextResponse(413, "request body exceeds " +
                                  std::to_string(options_.max_body_bytes) +
                                  " bytes\n"));
    return;
  }
  // The header read loop may have pulled in a body prefix; keep exactly
  // Content-Length bytes (anything beyond it on the wire is ignored — this
  // server never pipelines, every response closes the connection).
  parsed.body = request.substr(header_end + 4);
  if (parsed.body.size() > content_length) parsed.body.resize(content_length);
  while (parsed.body.size() < content_length) {
    const std::size_t want = std::min(
        sizeof(buf), static_cast<std::size_t>(content_length) -
                         parsed.body.size());
    const ssize_t n = ::recv(client_fd, buf, want, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Respond(client_fd,
              TextResponse(408, "timed out reading the request body\n"));
      return;
    }
    if (n <= 0) {
      Respond(client_fd,
              TextResponse(400, "request body shorter than Content-Length\n"));
      return;
    }
    parsed.body.append(buf, static_cast<std::size_t>(n));
  }
  Respond(client_fd, it->second(parsed));
}

}  // namespace chronolog
