#include "serve/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <string_view>

#include "util/log.h"
#include "util/metrics.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace chronolog {

namespace {

/// Poll interval of the accept loops: the latency bound on Stop().
constexpr int kAcceptPollMs = 100;

/// Header-block read cap. Request lines plus headers larger than this are
/// abuse, not a request to buffer; the body has its own configurable cap.
constexpr std::size_t kMaxRequestBytes = 64 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 411:
      return "Length Required";
    case 413:
      return "Payload Too Large";
    case 422:
      return "Unprocessable Entity";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

void WriteAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

void WriteResponse(int fd, const HttpResponse& response, bool keep_alive,
                   bool head_only = false) {
  std::string wire = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  wire += "Content-Type: " + response.content_type + "\r\n";
  wire += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  wire += keep_alive ? "Connection: keep-alive\r\n\r\n"
                     : "Connection: close\r\n\r\n";
  // One send for head + body: separate writes would leave the body runt
  // packet parked behind Nagle until the client's delayed ACK (~40ms) on a
  // kept-alive connection, where no close() flushes it.
  if (!head_only) wire += response.body;
  WriteAll(fd, wire);
}

HttpResponse TextResponse(int status, std::string body) {
  return HttpResponse{status, "text/plain; charset=utf-8", std::move(body)};
}

std::string_view TrimOws(std::string_view value) {
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.remove_prefix(1);
  }
  while (!value.empty() && (value.back() == ' ' || value.back() == '\t' ||
                            value.back() == '\r')) {
    value.remove_suffix(1);
  }
  return value;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// The request headers the connection layer itself acts on. Everything is
/// gathered in one scan of the header block (the lines after the request
/// line, exclusive of the terminating blank line).
struct RequestHeaders {
  bool has_content_length = false;
  uint64_t content_length = 0;
  /// Duplicate, conflicting or unparseable Content-Length. With connection
  /// reuse, guessing at an ambiguous body length is a request-smuggling
  /// vector (the "second" interpretation executes as a new request), so any
  /// ambiguity is rejected outright with 400.
  bool bad_content_length = false;
  /// Any Transfer-Encoding at all: chunked is unimplemented, and every
  /// other value conflicts with Content-Length framing — same smuggling
  /// reasoning, same 400.
  bool has_transfer_encoding = false;
  bool connection_close = false;
  /// Trimmed X-Request-Id value (chronolog_qstats); empty when absent.
  std::string request_id;
};

RequestHeaders ParseRequestHeaders(std::string_view headers) {
  RequestHeaders out;
  std::size_t pos = 0;
  while (pos < headers.size()) {
    std::size_t eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = headers.size();
    const std::string_view line = headers.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;
    const std::string_view name = line.substr(0, colon);
    const std::string_view value = TrimOws(line.substr(colon + 1));
    if (EqualsIgnoreCase(name, "content-length")) {
      uint64_t parsed = 0;
      if (out.has_content_length || !ParseUint64(value, &parsed)) {
        out.bad_content_length = true;  // duplicates rejected even if equal
      } else {
        out.has_content_length = true;
        out.content_length = parsed;
      }
    } else if (EqualsIgnoreCase(name, "transfer-encoding")) {
      out.has_transfer_encoding = true;
    } else if (EqualsIgnoreCase(name, "x-request-id")) {
      out.request_id.assign(value);
    } else if (EqualsIgnoreCase(name, "connection")) {
      // Comma-separated option list; "close" anywhere in it wins.
      std::size_t start = 0;
      while (start <= value.size()) {
        std::size_t comma = value.find(',', start);
        if (comma == std::string_view::npos) comma = value.size();
        if (EqualsIgnoreCase(TrimOws(value.substr(start, comma - start)),
                             "close")) {
          out.connection_close = true;
        }
        start = comma + 1;
      }
    }
  }
  return out;
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, HttpHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

void HttpServer::HandlePost(std::string path, HttpHandler handler) {
  post_routes_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("HttpServer::Start: already running");
  }
  shutdown_.store(false, std::memory_order_release);

  if (options_.metrics != nullptr) {
    // Pre-register the connection and response-class families: a scrape
    // must see an explicit zero (so dashboards and the CI no-5xx assertion
    // can distinguish "none happened" from "not instrumented"), not a
    // missing series until the first event.
    for (const char* name :
         {"serve.connections_opened", "serve.connections_reused",
          "serve.connections_idle_closed", "serve.responses_2xx",
          "serve.responses_3xx", "serve.responses_4xx",
          "serve.responses_5xx"}) {
      options_.metrics->counter(name);
    }
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError("invalid bind address: " +
                                options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string message = std::string("bind ") + options_.bind_address +
                                ":" + std::to_string(options_.port) + ": " +
                                std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(message);
  }
  if (::listen(listen_fd_, /*backlog=*/64) < 0) {
    const std::string message = std::string("listen: ") +
                                std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(message);
  }
  // Non-blocking listener: several workers poll the same fd, and when a
  // connection wakes more than one of them only the first accept() wins —
  // the losers must get EAGAIN back instead of blocking (and going blind to
  // shutdown_) until the next connection.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  // The pool runs one accept loop per worker index; ParallelFor's barrier
  // only releases once every loop has observed shutdown_, so joining the
  // serve thread is all Stop() needs to wait for.
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  serve_thread_ = std::thread([this] {
    pool_->ParallelFor(static_cast<std::size_t>(options_.num_workers),
                       [this](std::size_t) { AcceptLoop(); });
  });
  LogInfo("serve.start")
      .Str("bind", options_.bind_address)
      .Int("port", port_)
      .Int("workers", options_.num_workers);
  return Status();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  shutdown_.store(true, std::memory_order_release);
  if (serve_thread_.joinable()) serve_thread_.join();
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  LogInfo("serve.stop")
      .Int("port", port_)
      .Uint("requests", requests_served());
}

void HttpServer::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check shutdown
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;  // racing worker won the connection
    ServeConnection(client_fd);
    ::close(client_fd);
  }
}

void HttpServer::Respond(int client_fd, const HttpResponse& response,
                         bool keep_alive, bool head_only) {
  WriteResponse(client_fd, response, keep_alive, head_only);
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (options_.metrics != nullptr) {
    const char* family = response.status >= 500   ? "serve.responses_5xx"
                         : response.status >= 400 ? "serve.responses_4xx"
                         : response.status >= 300 ? "serve.responses_3xx"
                                                  : "serve.responses_2xx";
    options_.metrics->counter(family)->Add();
  }
}

void HttpServer::Count(const char* name) {
  if (options_.metrics != nullptr) options_.metrics->counter(name)->Add();
}

void HttpServer::ServeConnection(int client_fd) {
  timeval timeout{};
  timeout.tv_sec = options_.read_timeout_ms / 1000;
  timeout.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  // Responses must hit the wire as soon as they are written: with reuse the
  // socket stays open, so Nagle would otherwise hold the final segment of
  // each response hostage to the client's delayed ACK.
  const int one = 1;
  ::setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Count("serve.connections_opened");

  std::string carry;  // over-read bytes belonging to the next request
  for (int served = 0; !shutdown_.load(std::memory_order_acquire); ++served) {
    if (served > 0 && carry.empty()) {
      // Idle keep-alive wait, in short slices so shutdown_ stays visible:
      // a parked connection must never pin a worker past Stop().
      int waited_ms = 0;
      bool readable = false;
      while (waited_ms < options_.idle_timeout_ms &&
             !shutdown_.load(std::memory_order_acquire)) {
        const int slice =
            std::min(kAcceptPollMs, options_.idle_timeout_ms - waited_ms);
        pollfd pfd{client_fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, slice);
        if (ready > 0) {
          readable = true;
          break;
        }
        if (ready == 0) waited_ms += slice;
        // EINTR: retry the slice without crediting the wait.
      }
      if (!readable) {
        if (!shutdown_.load(std::memory_order_acquire)) {
          Count("serve.connections_idle_closed");
        }
        return;
      }
    }
    const bool allow_reuse =
        options_.max_requests_per_connection <= 0 ||
        served + 1 < options_.max_requests_per_connection;
    if (!ServeOneRequest(client_fd, &carry, allow_reuse,
                         /*reused=*/served > 0)) {
      return;
    }
  }
}

bool HttpServer::ServeOneRequest(int client_fd, std::string* carry,
                                 bool allow_reuse, bool reused) {
  // Read until the end of the header block, starting from whatever the
  // previous request over-read; the body (if any) is read separately below,
  // once Content-Length is known.
  std::string request = std::move(*carry);
  carry->clear();
  char buf[4096];
  bool timed_out = false;
  // Resume-offset scan: the terminator can only straddle the last 3 bytes
  // of what was already searched plus the new chunk, so each recv re-scans
  // O(chunk) bytes instead of the whole buffer (large header blocks used to
  // make this loop quadratic).
  std::size_t header_end = request.find("\r\n\r\n");
  while (header_end == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      timed_out = true;  // SO_RCVTIMEO expired: the client stalled
      break;
    }
    if (n <= 0) break;  // closed or hard error
    const std::size_t scan_from = request.size() < 3 ? 0 : request.size() - 3;
    request.append(buf, static_cast<std::size_t>(n));
    header_end = request.find("\r\n\r\n", scan_from);
  }

  if (header_end == std::string::npos) {
    // The three truncation causes get distinct codes: a header block that
    // hit the read cap is 431 (even if the peer would have sent more), a
    // stalled client is 408, and a closed/garbled connection is 400. A
    // connection that closed without sending anything gets no response at
    // all — and is deliberately not counted as a request. All of them end
    // the connection: the stream is not at a request boundary.
    if (request.size() >= kMaxRequestBytes) {
      Respond(client_fd,
              TextResponse(431, "request header block exceeds " +
                                    std::to_string(kMaxRequestBytes) +
                                    " bytes\n"),
              /*keep_alive=*/false);
      return false;
    }
    if (timed_out) {
      Respond(client_fd, TextResponse(408, "timed out reading the request\n"),
              /*keep_alive=*/false);
      return false;
    }
    if (request.empty()) return false;
    Respond(client_fd, TextResponse(400, "incomplete request\n"),
            /*keep_alive=*/false);
    return false;
  }
  if (reused) Count("serve.connections_reused");

  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    Respond(client_fd, TextResponse(400, "malformed request line\n"),
            /*keep_alive=*/false);
    return false;
  }
  HttpRequest parsed;
  parsed.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    parsed.path = std::move(target);
  } else {
    parsed.path = target.substr(0, qmark);
    parsed.query = target.substr(qmark + 1);
  }

  RequestHeaders headers = ParseRequestHeaders(
      std::string_view(request).substr(line_end + 2,
                                       header_end - line_end - 2));
  parsed.request_id = std::move(headers.request_id);
  if (headers.has_transfer_encoding) {
    Respond(client_fd,
            TextResponse(400, "Transfer-Encoding is not supported\n"),
            /*keep_alive=*/false);
    return false;
  }
  if (headers.bad_content_length) {
    Respond(client_fd,
            TextResponse(400, "duplicate, conflicting or malformed "
                              "Content-Length\n"),
            /*keep_alive=*/false);
    return false;
  }

  // Keep-alive decision: HTTP/1.1 defaults to persistent, HTTP/1.0 always
  // closes, an explicit `Connection: close` is honored, and the request cap
  // turns the final allowed response into a close.
  const bool http10 = line.compare(sp2 + 1, std::string::npos, "HTTP/1.0") == 0;
  const bool keep_alive = allow_reuse && !http10 && !headers.connection_close;

  // Bytes past the header block were over-read: the body prefix first, then
  // (pipelined clients) the start of the next request.
  std::string buffered = request.substr(header_end + 4);
  const uint64_t body_length =
      headers.has_content_length ? headers.content_length : 0;

  // Reads the declared body — over-read prefix first, then the wire — and
  // leaves anything beyond it in *carry for the next request. Returns the
  // HTTP status to fail the connection with, or 0 on success.
  const auto read_body = [&](std::string* body) -> int {
    if (buffered.size() >= body_length) {
      body->assign(buffered, 0, static_cast<std::size_t>(body_length));
      carry->assign(buffered, static_cast<std::size_t>(body_length),
                    std::string::npos);
      return 0;
    }
    *body = std::move(buffered);
    while (body->size() < body_length) {
      const std::size_t want =
          std::min(sizeof(buf),
                   static_cast<std::size_t>(body_length) - body->size());
      const ssize_t n = ::recv(client_fd, buf, want, 0);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return 408;
      if (n <= 0) return 400;
      body->append(buf, static_cast<std::size_t>(n));
    }
    return 0;
  };
  const auto fail_body = [&](int status) {
    Respond(client_fd,
            status == 408
                ? TextResponse(408, "timed out reading the request body\n")
                : TextResponse(400,
                               "request body shorter than Content-Length\n"),
            /*keep_alive=*/false);
  };
  // Answers a route-level miss (404/405). The framing is intact, so the
  // connection survives — but only once the declared body (which the
  // handler never read) is drained off the wire; an undrainable body (over
  // the cap, or a read failure) closes instead.
  const auto respond_after_drain = [&](const HttpResponse& response) -> bool {
    if (body_length > options_.max_body_bytes) {
      Respond(client_fd, response, /*keep_alive=*/false);
      return false;
    }
    std::string discarded;
    if (const int status = read_body(&discarded); status != 0) {
      fail_body(status);
      return false;
    }
    Respond(client_fd, response, keep_alive);
    return keep_alive;
  };

  if (parsed.method == "GET" || parsed.method == "HEAD") {
    const auto it = routes_.find(parsed.path);
    if (it == routes_.end()) {
      if (post_routes_.count(parsed.path) != 0) {
        return respond_after_drain(
            TextResponse(405, "this route only accepts POST\n"));
      }
      std::string known = "not found; routes:";
      for (const auto& [path, handler] : routes_) known += " " + path;
      for (const auto& [path, handler] : post_routes_) {
        known += " POST:" + path;
      }
      return respond_after_drain(TextResponse(404, known + "\n"));
    }
    // A GET/HEAD with a declared body is unusual but legal; consume it so
    // the connection stays at a request boundary.
    if (body_length > options_.max_body_bytes) {
      Respond(client_fd,
              TextResponse(413, "request body exceeds " +
                                    std::to_string(options_.max_body_bytes) +
                                    " bytes\n"),
              /*keep_alive=*/false);
      return false;
    }
    std::string discarded;
    if (const int status = read_body(&discarded); status != 0) {
      fail_body(status);
      return false;
    }
    Respond(client_fd, it->second(parsed), keep_alive,
            /*head_only=*/parsed.method == "HEAD");
    return keep_alive;
  }

  if (parsed.method != "POST") {
    return respond_after_drain(
        TextResponse(405, "only GET, HEAD and POST are supported\n"));
  }

  const auto it = post_routes_.find(parsed.path);
  if (it == post_routes_.end()) {
    if (routes_.count(parsed.path) != 0) {
      return respond_after_drain(
          TextResponse(405, "this route only accepts GET\n"));
    }
    std::string known = "not found; POST routes:";
    for (const auto& [path, handler] : post_routes_) known += " " + path;
    return respond_after_drain(TextResponse(404, known + "\n"));
  }

  if (!headers.has_content_length) {
    // Without Content-Length the request's extent is unknowable, so the
    // connection cannot be reused either.
    Respond(client_fd,
            TextResponse(411, "POST requires a Content-Length header\n"),
            /*keep_alive=*/false);
    return false;
  }
  if (body_length > options_.max_body_bytes) {
    // Refusing to buffer also means refusing to drain: close rather than
    // stream an over-cap body into the void.
    Respond(client_fd,
            TextResponse(413, "request body exceeds " +
                                  std::to_string(options_.max_body_bytes) +
                                  " bytes\n"),
            /*keep_alive=*/false);
    return false;
  }
  if (const int status = read_body(&parsed.body); status != 0) {
    fail_body(status);
    return false;
  }
  Respond(client_fd, it->second(parsed), keep_alive);
  return keep_alive;
}

}  // namespace chronolog
