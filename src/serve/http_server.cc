#include "serve/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/log.h"
#include "util/thread_pool.h"

namespace chronolog {

namespace {

/// Poll interval of the accept loops: the latency bound on Stop().
constexpr int kAcceptPollMs = 100;

/// Request read cap. The server only understands header-only GETs; anything
/// larger is a client error (or abuse), not a request to buffer.
constexpr std::size_t kMaxRequestBytes = 64 * 1024;

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    default:
      return "Error";
  }
}

void WriteAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    sent += static_cast<std::size_t>(n);
  }
}

void WriteResponse(int fd, const HttpResponse& response,
                   bool head_only = false) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     StatusText(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  WriteAll(fd, head);
  if (!head_only) WriteAll(fd, response.body);
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers < 1) options_.num_workers = 1;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, HttpHandler handler) {
  routes_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("HttpServer::Start: already running");
  }
  shutdown_.store(false, std::memory_order_release);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgumentError("invalid bind address: " +
                                options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string message = std::string("bind ") + options_.bind_address +
                                ":" + std::to_string(options_.port) + ": " +
                                std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(message);
  }
  if (::listen(listen_fd_, /*backlog=*/64) < 0) {
    const std::string message = std::string("listen: ") +
                                std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(message);
  }
  // Non-blocking listener: several workers poll the same fd, and when a
  // connection wakes more than one of them only the first accept() wins —
  // the losers must get EAGAIN back instead of blocking (and going blind to
  // shutdown_) until the next connection.
  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  if (flags >= 0) ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  // The pool runs one accept loop per worker index; ParallelFor's barrier
  // only releases once every loop has observed shutdown_, so joining the
  // serve thread is all Stop() needs to wait for.
  pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  serve_thread_ = std::thread([this] {
    pool_->ParallelFor(static_cast<std::size_t>(options_.num_workers),
                       [this](std::size_t) { AcceptLoop(); });
  });
  LogInfo("serve.start")
      .Str("bind", options_.bind_address)
      .Int("port", port_)
      .Int("workers", options_.num_workers);
  return Status();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  shutdown_.store(true, std::memory_order_release);
  if (serve_thread_.joinable()) serve_thread_.join();
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  LogInfo("serve.stop")
      .Int("port", port_)
      .Uint("requests", requests_served());
}

void HttpServer::AcceptLoop() {
  while (!shutdown_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check shutdown
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;  // racing worker won the connection
    ServeConnection(client_fd);
    ::close(client_fd);
  }
}

void HttpServer::ServeConnection(int client_fd) {
  timeval timeout{};
  timeout.tv_sec = options_.read_timeout_ms / 1000;
  timeout.tv_usec = (options_.read_timeout_ms % 1000) * 1000;
  ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // Read until the end of the header block; GETs have no body to consume.
  std::string request;
  char buf[4096];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);

  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    WriteResponse(client_fd, {408, "text/plain; charset=utf-8",
                              "request timeout or malformed request line\n"});
    return;
  }
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    WriteResponse(client_fd, {400, "text/plain; charset=utf-8",
                              "malformed request line\n"});
    return;
  }
  HttpRequest parsed;
  parsed.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = target.find('?');
  if (qmark == std::string::npos) {
    parsed.path = std::move(target);
  } else {
    parsed.path = target.substr(0, qmark);
    parsed.query = target.substr(qmark + 1);
  }

  if (parsed.method != "GET" && parsed.method != "HEAD") {
    WriteResponse(client_fd, {405, "text/plain; charset=utf-8",
                              "only GET is supported\n"});
    return;
  }
  const auto it = routes_.find(parsed.path);
  if (it == routes_.end()) {
    std::string known = "not found; routes:";
    for (const auto& [path, handler] : routes_) known += " " + path;
    WriteResponse(client_fd,
                  {404, "text/plain; charset=utf-8", known + "\n"});
    return;
  }
  const HttpResponse response = it->second(parsed);
  WriteResponse(client_fd, response, /*head_only=*/parsed.method == "HEAD");
}

}  // namespace chronolog
