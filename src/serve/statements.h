#ifndef CHRONOLOG_SERVE_STATEMENTS_H_
#define CHRONOLOG_SERVE_STATEMENTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/metrics.h"

namespace chronolog {

/// Statement-statistics store (chronolog_qstats) — the pg_stat_statements
/// of chronolog_serve. One store per registered database; queries are keyed
/// by their normalized *shape* (NormalizeQueryShape: constants stripped, so
/// `tok(3, a0)` and `tok(17, a5)` accumulate under one `tok(N, ?)` entry)
/// and served as `GET /statements?db=NAME`.
///
/// Concurrency: the store is sharded by shape hash. A worker resolves its
/// shape to a stable `Entry*` under one short shard lock (amortised away by
/// the serving layer only when it caches, which it currently does not — the
/// lock covers a single hash-map probe), then records entirely lock-free:
/// every Entry field is a relaxed atomic or a Histogram (itself lock-free).
/// Entries are never destroyed while the store lives — Reset() retires them
/// instead of freeing, so a pointer obtained before a concurrent Reset stays
/// valid (those straggler records land in the retired generation and are
/// simply no longer reported).
class StatementStats {
 public:
  /// Per-shape accumulators. All monotone; snapshot consistency across
  /// fields is best-effort (relaxed loads), which is the usual contract for
  /// statistics views.
  struct Entry {
    std::string shape;
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> rows{0};
    std::atomic<uint64_t> partial{0};    // evaluations cut by the deadline
    std::atomic<uint64_t> truncated{0};  // evaluations cut by max_rows
    std::atomic<uint64_t> oracle_lookups{0};
    std::atomic<uint64_t> rewrite_steps{0};
    std::atomic<uint64_t> parse_ns{0};  // total parse wall time
    Histogram eval_ns;                  // per-call evaluation wall time

    explicit Entry(std::string s) : shape(std::move(s)) {}

    /// Folds one completed query into the accumulators. Lock-free.
    void Record(uint64_t row_count, bool was_partial, bool was_truncated,
                uint64_t lookups, uint64_t rewrites, uint64_t parse_nanos,
                uint64_t eval_nanos) {
      calls.fetch_add(1, std::memory_order_relaxed);
      rows.fetch_add(row_count, std::memory_order_relaxed);
      if (was_partial) partial.fetch_add(1, std::memory_order_relaxed);
      if (was_truncated) truncated.fetch_add(1, std::memory_order_relaxed);
      oracle_lookups.fetch_add(lookups, std::memory_order_relaxed);
      rewrite_steps.fetch_add(rewrites, std::memory_order_relaxed);
      parse_ns.fetch_add(parse_nanos, std::memory_order_relaxed);
      eval_ns.RecordValue(eval_nanos);
    }
  };

  StatementStats() = default;
  StatementStats(const StatementStats&) = delete;
  StatementStats& operator=(const StatementStats&) = delete;

  /// Resolves `shape` to its entry, creating it on first sight. The pointer
  /// is stable for the store's lifetime (Reset retires, never frees).
  Entry* GetOrCreate(std::string_view shape);

  /// Starts a fresh generation: current entries stop being reported (and
  /// stop being returned by GetOrCreate) but stay allocated for stragglers
  /// mid-Record. A call racing the reset lands in whichever generation its
  /// GetOrCreate resolved — never lost, never double-counted.
  void Reset();

  /// Total calls across live entries (test/gate convenience).
  uint64_t TotalCalls() const;

  /// {"statements":[{shape, calls, rows, partial, truncated,
  ///   oracle_lookups, rewrite_steps, parse_ns, eval_ns:{count, sum, min,
  ///   max, mean, p50, p90, p99}}, ...]}
  /// sorted by total evaluation time (eval_ns.sum) descending, ties by
  /// shape, so the most expensive statement family is always first.
  std::string ToJson() const;

 private:
  static constexpr std::size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string_view, std::unique_ptr<Entry>> live;
    std::vector<std::unique_ptr<Entry>> retired;
  };

  Shard& ShardFor(std::string_view shape);

  Shard shards_[kNumShards];
};

}  // namespace chronolog

#endif  // CHRONOLOG_SERVE_STATEMENTS_H_
