#include "serve/registry.h"

#include <fstream>
#include <sstream>
#include <utility>

namespace chronolog {

Status DatabaseRegistry::Add(std::string name, TemporalDatabase tdd) {
  if (name.empty()) {
    return InvalidArgumentError("DatabaseRegistry: empty database name");
  }
  // Compile before taking the lock: spec builds can be seconds of work and
  // registration is the only writer path.
  Result<const RelationalSpecification*> spec = tdd.specification();
  if (!spec.ok()) return spec.status();
  auto entry = std::make_unique<Entry>(name, std::move(tdd));
  // The engine owns (and caches) the specification; moving the engine moves
  // the cache, so re-fetch the pointer from its final resting place.
  entry->spec = entry->tdd.specification().value();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.emplace(name, std::move(entry));
  if (!inserted) {
    return FailedPreconditionError("DatabaseRegistry: duplicate database '" +
                                   name + "'");
  }
  return Status();
}

Status DatabaseRegistry::AddFromSource(std::string name,
                                       std::string_view source,
                                       EngineOptions options) {
  // Serving without instruments would leave `POST /query` invisible to
  // `/metrics`; registration is the natural place to default them on.
  options.collect_metrics = true;
  Result<TemporalDatabase> tdd = TemporalDatabase::FromSource(source, options);
  if (!tdd.ok()) return tdd.status();
  return Add(std::move(name), std::move(tdd).value());
}

Status DatabaseRegistry::AddFromFile(std::string name, const std::string& path,
                                     EngineOptions options) {
  std::ifstream file(path);
  if (!file) {
    return NotFoundError("DatabaseRegistry: cannot open '" + path + "'");
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return AddFromSource(std::move(name), buffer.str(), options);
}

const DatabaseRegistry::Entry* DatabaseRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.get();
}

std::vector<std::string> DatabaseRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::size_t DatabaseRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace chronolog
