#ifndef CHRONOLOG_WORKLOAD_GENERATORS_H_
#define CHRONOLOG_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace chronolog::workload {

/// Generators for the workloads used by the test suite and the benchmark
/// harness (experiments E1-E9 of DESIGN.md). All generators emit chronolog
/// surface syntax, so they also exercise the parser end to end.

// ---------------------------------------------------------------------------
// Paper Section 2, Example 2: bounded-length paths (inflationary).
// ---------------------------------------------------------------------------

/// The three path rules:
///   path(K,X,X)   :- node(X), null(K).
///   path(K+1,X,Z) :- edge(X,Y), path(K,Y,Z).
///   path(K+1,X,Y) :- path(K,X,Y).
std::string PathProgramSource();

/// `node/edge` facts for a random directed graph with `nodes` vertices and
/// `edges` edges (duplicates possible), plus `null(0)`.
std::string RandomGraphFactsSource(int nodes, int edges, std::mt19937* rng);

/// A simple directed cycle over `nodes` vertices (diameter = nodes - 1).
std::string CycleGraphFactsSource(int nodes);

// ---------------------------------------------------------------------------
// Paper Section 2, Example 1: ski-resort flight schedule (multi-separable).
// ---------------------------------------------------------------------------

/// The scaled schedule: `resorts` resorts, a year of `year_len` days split
/// into winter `[0, winter_len)` and off-season `[winter_len, year_len)`,
/// with the first `holidays` days also holidays. Uses the paper's rules
/// with the year length as the season period.
std::string SkiScheduleSource(int resorts, int year_len, int winter_len,
                              int holidays);

// ---------------------------------------------------------------------------
// Exponential-period witnesses (Theorem 3.1).
// ---------------------------------------------------------------------------

/// Token rings: `tok(T+1,Y) :- tok(T,X), ring(X,Y).` with one directed ring
/// per entry of `ring_lengths` and one token on each ring. The least model
/// has minimal period lcm(ring_lengths) — exponential in the (unary)
/// database size for pairwise-coprime lengths. Not multi-separable, not
/// inflationary.
std::string TokenRingSource(const std::vector<int>& ring_lengths);

/// A ripple-carry binary counter over `bits` database-provided bit
/// positions; the fixed normal program increments the counter every step,
/// so the least model has minimal period `2^bits` — exponential in the
/// database size with a constant program.
std::string BinaryCounterSource(int bits);

/// Multi-separable contrast for E2: one self-delay predicate per entry,
/// `d_i(T+k_i) :- d_i(T).` seeded at 0. Database-independent I-period.
std::string DelayChainSource(const std::vector<int>& delays);

// ---------------------------------------------------------------------------
// Tiny classics.
// ---------------------------------------------------------------------------

/// `even(0). even(T+2) :- even(T).` — the paper's running example.
std::string EvenSource();

/// Selectivity-skew microbench: `hit(T+1,X) :- hit(T,X), wide(X,Y),
/// narrow(Y).` with `wide` holding `wide` rows of identical X and `narrow`
/// a single row. Source-order joins enumerate every `wide` row per
/// timestep; a selectivity-driven order probes `narrow` first and stays
/// O(1) per step — the workload behind BM_BtSkewedJoin and the join-planner
/// tests.
std::string SkewedJoinSource(int wide);

// ---------------------------------------------------------------------------
// Datalog inputs for the Theorem 6.2 temporalisation (experiment E7).
// ---------------------------------------------------------------------------

/// Strongly bounded Datalog: non-recursive two-hop reachability.
std::string BoundedDatalogSource();

/// Unbounded Datalog: transitive closure `tc`.
std::string TransitiveClosureDatalogSource();

// ---------------------------------------------------------------------------
// Random programs for property-based tests.
// ---------------------------------------------------------------------------

struct RandomProgramOptions {
  int num_temporal_preds = 3;
  int num_nontemporal_preds = 2;
  int num_constants = 4;
  int num_rules = 6;
  int num_facts = 10;
  int max_body_atoms = 3;
  int max_offset = 1;       // temporal offsets drawn from [0, max_offset]
  int max_fact_time = 3;
  /// When true, rule bodies never look past their head (progressive).
  bool progressive_only = true;
};

/// A random range-restricted temporal program plus database. With
/// `progressive_only` the result is progressive by construction (offsets of
/// body atoms <= head offset, no temporal-to-non-temporal feedback);
/// otherwise backward rules may occur, exercising the general evaluators.
std::string RandomProgramSource(const RandomProgramOptions& options,
                                std::mt19937* rng);

/// A random *time-only* program over nullary/unary temporal predicates with
/// entity-local rules — inside the exact I-period enumeration's scope.
std::string RandomTimeOnlySource(int num_preds, int num_rules, int max_delay,
                                 std::mt19937* rng);

}  // namespace chronolog::workload

#endif  // CHRONOLOG_WORKLOAD_GENERATORS_H_
