#include "workload/generators.h"

namespace chronolog::workload {

namespace {

std::string N(int i) { return std::to_string(i); }

}  // namespace

std::string PathProgramSource() {
  return R"(
% Paper, Section 2, Example 2: "there is a path of length at most K
% between X and Y". Inflationary thanks to the third (copy) rule.
path(K, X, X)     :- node(X), null(K).
path(K+1, X, Z)   :- edge(X, Y), path(K, Y, Z).
path(K+1, X, Y)   :- path(K, X, Y).
)";
}

std::string RandomGraphFactsSource(int nodes, int edges, std::mt19937* rng) {
  std::string out = "null(0).\n";
  for (int i = 0; i < nodes; ++i) {
    out += "node(n" + N(i) + ").\n";
  }
  std::uniform_int_distribution<int> pick(0, nodes - 1);
  for (int i = 0; i < edges; ++i) {
    out += "edge(n" + N(pick(*rng)) + ", n" + N(pick(*rng)) + ").\n";
  }
  return out;
}

std::string CycleGraphFactsSource(int nodes) {
  std::string out = "null(0).\n";
  for (int i = 0; i < nodes; ++i) {
    out += "node(n" + N(i) + ").\n";
    out += "edge(n" + N(i) + ", n" + N((i + 1) % nodes) + ").\n";
  }
  return out;
}

std::string SkiScheduleSource(int resorts, int year_len, int winter_len,
                              int holidays) {
  std::string out = R"(
% Paper, Section 2, Example 1 (scaled): flights to ski resorts run every
% 7th day off-season, every 2nd day in winter, daily during holidays.
plane(T+7, X) :- plane(T, X), resort(X), offseason(T).
plane(T+2, X) :- plane(T, X), resort(X), winter(T).
plane(T+1, X) :- plane(T, X), resort(X), holiday(T).
)";
  out += "offseason(T+" + N(year_len) + ") :- offseason(T).\n";
  out += "winter(T+" + N(year_len) + ") :- winter(T).\n";
  out += "holiday(T+" + N(year_len) + ") :- holiday(T).\n";
  for (int r = 0; r < resorts; ++r) {
    out += "resort(resort" + N(r) + ").\n";
    out += "plane(0, resort" + N(r) + ").\n";
  }
  // Interval abbreviations (paper, Section 2, footnote 1): one clause per
  // season instead of one per day.
  out += "winter(0.." + N(winter_len - 1) + ").\n";
  out += "offseason(" + N(winter_len) + ".." + N(year_len - 1) + ").\n";
  out += "holiday(0.." + N(holidays - 1) + ").\n";
  return out;
}

std::string TokenRingSource(const std::vector<int>& ring_lengths) {
  std::string out = "tok(T+1, Y) :- tok(T, X), ring(X, Y).\n";
  for (std::size_t r = 0; r < ring_lengths.size(); ++r) {
    const int len = ring_lengths[r];
    out += "tok(0, r" + N(static_cast<int>(r)) + "_0).\n";
    for (int i = 0; i < len; ++i) {
      out += "ring(r" + N(static_cast<int>(r)) + "_" + N(i) + ", r" +
             N(static_cast<int>(r)) + "_" + N((i + 1) % len) + ").\n";
    }
  }
  return out;
}

std::string BinaryCounterSource(int bits) {
  std::string out = R"(
% Ripple-carry binary counter: the fixed program increments a counter whose
% width is set by the database, so the minimal period is 2^bits — the
% exponential-period witness of Theorem 3.1. bit0/bit1 are mutually
% recursive, so the program is not multi-separable; bits fall back to 0, so
% it is not inflationary either.
time(0).
time(T+1)     :- time(T).
carry(T, X)   :- time(T), first(X).
carry(T, Y)   :- next(X, Y), carry(T, X), bit1(T, X).
nocarry(T, Y) :- next(X, Y), bit0(T, X).
nocarry(T, Y) :- next(X, Y), nocarry(T, X).
bit1(T+1, X)  :- bit0(T, X), carry(T, X).
bit1(T+1, X)  :- bit1(T, X), nocarry(T, X).
bit0(T+1, X)  :- bit1(T, X), carry(T, X).
bit0(T+1, X)  :- bit0(T, X), nocarry(T, X).
)";
  out += "first(b0).\n";
  for (int i = 0; i + 1 < bits; ++i) {
    out += "next(b" + N(i) + ", b" + N(i + 1) + ").\n";
  }
  for (int i = 0; i < bits; ++i) out += "bit0(0, b" + N(i) + ").\n";
  return out;
}

std::string DelayChainSource(const std::vector<int>& delays) {
  std::string out;
  for (std::size_t i = 0; i < delays.size(); ++i) {
    out += "d" + N(static_cast<int>(i)) + "(T+" + N(delays[i]) + ") :- d" +
           N(static_cast<int>(i)) + "(T).\n";
    out += "d" + N(static_cast<int>(i)) + "(0).\n";
  }
  return out;
}

std::string EvenSource() {
  return "even(0).\neven(T+2) :- even(T).\n";
}

std::string SkewedJoinSource(int wide) {
  // One marked entity steps forward each tick; `wide` is a high-fan-out
  // relation whose join with the single-row `narrow` filter keeps exactly
  // one binding alive. Source order (wide before narrow) enumerates all
  // `wide` rows per tick; a selectivity-aware order probes `narrow` first.
  std::string out = "hit(T+1, X) :- hit(T, X), wide(X, Y), narrow(Y).\n";
  out += "hit(0, a).\n";
  for (int i = 0; i < wide; ++i) out += "wide(a, y" + N(i) + ").\n";
  out += "narrow(y0).\n";
  return out;
}

std::string BoundedDatalogSource() {
  return R"(
% Non-recursive (hence strongly bounded) Datalog: two-hop reachability.
hop2(X, Z) :- edge(X, Y), edge(Y, Z).
reach12(X, Y) :- edge(X, Y).
reach12(X, Z) :- hop2(X, Z).
)";
}

std::string TransitiveClosureDatalogSource() {
  return R"(
% Unbounded Datalog: transitive closure (iterations grow with the diameter).
tc(X, Y) :- edge(X, Y).
tc(X, Z) :- edge(X, Y), tc(Y, Z).
)";
}

std::string RandomProgramSource(const RandomProgramOptions& options,
                                std::mt19937* rng) {
  std::uniform_int_distribution<int> coin(0, 1);
  auto rand_int = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(*rng);
  };

  // Vocabulary: temporal preds tp0..(arity 1), non-temporal preds np0..
  // (arity 2), constants c0...
  std::string out;
  // Declarations pin sorts even when inference would be ambiguous.
  for (int i = 0; i < options.num_temporal_preds; ++i) {
    out += "@temporal tp" + N(i) + "/2.\n";
  }

  for (int r = 0; r < options.num_rules; ++r) {
    // Head: a temporal predicate over (T + offset, X).
    int head_pred = rand_int(0, options.num_temporal_preds - 1);
    int head_offset = rand_int(0, options.max_offset);
    int body_atoms = rand_int(1, options.max_body_atoms);
    std::string body;
    bool head_var_bound = false;
    bool time_var_bound = false;
    for (int a = 0; a < body_atoms; ++a) {
      if (!body.empty()) body += ", ";
      bool temporal = coin(*rng) == 0 || a == 0;
      if (temporal) {
        int pred = rand_int(0, options.num_temporal_preds - 1);
        int offset = options.progressive_only
                         ? rand_int(0, head_offset)
                         : rand_int(0, options.max_offset);
        // Alternate between the head entity X and a join entity Y.
        bool use_x = coin(*rng) == 0 || a + 1 == body_atoms;
        std::string entity = use_x ? "X" : "Y";
        if (use_x) head_var_bound = true;
        time_var_bound = true;
        body += "tp" + N(pred) + "(T" +
                (offset > 0 ? "+" + N(offset) : "") + ", " + entity + ")";
      } else {
        int pred = rand_int(0, options.num_nontemporal_preds - 1);
        body += "np" + N(pred) + "(X, Y)";
        head_var_bound = true;
      }
    }
    if (!head_var_bound) body += ", np0(X, Y)";
    if (!time_var_bound) body += ", tp0(T, X)";
    out += "tp" + N(head_pred) + "(T" +
           (head_offset > 0 ? "+" + N(head_offset) : "") + ", X) :- " + body +
           ".\n";
  }

  for (int f = 0; f < options.num_facts; ++f) {
    if (coin(*rng) == 0) {
      out += "tp" + N(rand_int(0, options.num_temporal_preds - 1)) + "(" +
             N(rand_int(0, options.max_fact_time)) + ", c" +
             N(rand_int(0, options.num_constants - 1)) + ").\n";
    } else {
      out += "np" + N(rand_int(0, options.num_nontemporal_preds - 1)) + "(c" +
             N(rand_int(0, options.num_constants - 1)) + ", c" +
             N(rand_int(0, options.num_constants - 1)) + ").\n";
    }
  }
  return out;
}

std::string RandomTimeOnlySource(int num_preds, int num_rules, int max_delay,
                                 std::mt19937* rng) {
  auto rand_int = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(*rng);
  };
  std::string out;
  for (int i = 0; i < num_preds; ++i) out += "@temporal q" + N(i) + "/2.\n";
  // Mutual-recursion-free: predicate q_i may only read q_j with j < i (or
  // itself, time-only).
  for (int r = 0; r < num_rules; ++r) {
    int head = rand_int(0, num_preds - 1);
    int delay = rand_int(1, max_delay);
    std::string body =
        "q" + N(head) + "(T, X)";  // time-only self occurrence
    int extra = rand_int(0, std::min(head, 2));
    for (int e = 0; e < extra; ++e) {
      int dep = rand_int(0, head > 0 ? head - 1 : 0);
      if (dep == head) continue;
      int off = rand_int(0, delay);
      body += ", q" + N(dep) + "(T" + (off > 0 ? "+" + N(off) : "") + ", X)";
    }
    out += "q" + N(head) + "(T+" + N(delay) + ", X) :- " + body + ".\n";
  }
  // Seed facts for one entity at a few initial times.
  for (int i = 0; i < num_preds; ++i) {
    if (rand_int(0, 2) != 0) {
      out += "q" + N(i) + "(" + N(rand_int(0, max_delay - 1)) + ", e).\n";
    }
  }
  return out;
}

}  // namespace chronolog::workload
