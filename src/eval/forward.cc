#include "eval/forward.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "ast/printer.h"

namespace chronolog {

namespace {

/// Temporal offset of an atom's time term; requires a non-ground term.
int64_t VarOffset(const Atom& atom) { return atom.time->offset; }

}  // namespace

ProgressivityReport CheckProgressive(const Program& program) {
  const Vocabulary& vocab = program.vocab();
  for (const Rule& rule : program.rules()) {
    if (!rule.IsSemiNormal()) {
      return {false, "rule '" + RuleToString(rule, vocab) +
                         "' has more than one temporal variable"};
    }
    auto has_ground_time = [](const Atom& a) {
      return a.temporal() && a.time->ground();
    };
    if (has_ground_time(rule.head)) {
      return {false, "rule '" + RuleToString(rule, vocab) +
                         "' has a ground temporal term in the head"};
    }
    for (const Atom& a : rule.body) {
      if (has_ground_time(a)) {
        return {false, "rule '" + RuleToString(rule, vocab) +
                           "' has a ground temporal term in the body"};
      }
    }
    if (rule.head.temporal()) {
      int64_t a = VarOffset(rule.head);
      for (const Atom& atom : rule.body) {
        if (atom.temporal() && VarOffset(atom) > a) {
          return {false, "rule '" + RuleToString(rule, vocab) +
                             "' consumes facts from the future of its head"};
        }
      }
    } else {
      for (const Atom& atom : rule.body) {
        if (atom.temporal()) {
          return {false, "rule '" + RuleToString(rule, vocab) +
                             "' derives a non-temporal fact from temporal "
                             "ones"};
        }
      }
    }
  }
  return {true, ""};
}

Result<ForwardResult> ForwardSimulate(const Program& program,
                                      const Database& db,
                                      const ForwardOptions& options) {
  ProgressivityReport report = CheckProgressive(program);
  if (!report.progressive) {
    return FailedPreconditionError("ForwardSimulate: " + report.reason);
  }

  const Vocabulary& vocab = program.vocab();
  const int64_t c = db.MaxTemporalDepth();
  const int64_t g = std::max<int64_t>(1, program.MaxTemporalDepth());

  ForwardResult result{Interpretation(program.vocab_ptr()), Period{}, c, 0,
                       {}, {}};
  Interpretation& model = result.model;
  model.InsertDatabase(db);

  // Split rules: non-temporal heads close the non-temporal part once
  // (their bodies are non-temporal by progressivity); temporal-head rules
  // drive the per-timestep simulation.
  std::vector<const Rule*> nt_rules;
  std::vector<const Rule*> t_rules;
  for (const Rule& rule : program.rules()) {
    (rule.head.temporal() ? t_rules : nt_rules).push_back(&rule);
  }

  // Phase 0: non-temporal closure (plain Datalog fixpoint; buffered inserts
  // keep the evaluator's iterators valid).
  {
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<GroundAtom> buffer;
      for (const Rule* rule : nt_rules) {
        RuleEvaluator evaluator(*rule, vocab);
        evaluator.Evaluate(model, nullptr, -1, std::nullopt, &result.stats,
                           [&](GroundAtom&& fact) {
                             if (!model.Contains(fact)) {
                               buffer.push_back(std::move(fact));
                             }
                           });
      }
      for (GroundAtom& fact : buffer) {
        if (model.Insert(std::move(fact))) {
          ++result.stats.inserted;
          changed = true;
        }
      }
    }
  }

  // Temporal-head rule evaluators, with the head's temporal variable and
  // offset precomputed.
  struct TemporalRule {
    const Rule* rule;
    RuleEvaluator evaluator;
    VarId time_var;
    int64_t head_offset;
  };
  std::vector<TemporalRule> temporal_rules;
  temporal_rules.reserve(t_rules.size());
  for (const Rule* rule : t_rules) {
    temporal_rules.push_back(TemporalRule{rule, RuleEvaluator(*rule, vocab),
                                          rule->head.time->var,
                                          rule->head.time->offset});
  }

  // Window hash: start time of each previously seen window of g states.
  std::unordered_map<StateWindow, int64_t, StateWindowHash> seen_windows;

  auto too_large = [&]() {
    return ResourceExhaustedError(
        "ForwardSimulate exceeded its budget (max_steps = " +
        std::to_string(options.max_steps) +
        "); the period of this TDD may be exponentially large (Theorem 3.1)");
  };

  for (int64_t t = 0;; ++t) {
    if (t > options.max_steps) return too_large();
    // Within-timestep fixpoint: all rules whose head lands on `t`.
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<GroundAtom> buffer;
      for (TemporalRule& tr : temporal_rules) {
        int64_t v = t - tr.head_offset;
        if (v < 0) continue;
        tr.evaluator.Evaluate(model, nullptr, -1,
                              std::make_pair(tr.time_var, v), &result.stats,
                              [&](GroundAtom&& fact) {
                                if (!model.Contains(fact)) {
                                  buffer.push_back(std::move(fact));
                                }
                              });
      }
      for (GroundAtom& fact : buffer) {
        if (model.Insert(std::move(fact))) {
          ++result.stats.inserted;
          changed = true;
        }
      }
      if (model.size() > options.max_facts) return too_large();
    }

    result.states.push_back(State::FromInterpretation(model, t));
    result.horizon = t;

    // Period detection: windows of g consecutive states starting at
    // s >= c+1 evolve deterministically (no database injection past c).
    int64_t s = t - g + 1;  // start of the newest complete window
    if (s < c + 1) continue;
    StateWindow window = StateWindow::FromStates(
        result.states, static_cast<std::size_t>(s),
        static_cast<std::size_t>(g));
    auto [it, inserted] = seen_windows.try_emplace(std::move(window), s);
    if (inserted) continue;

    // First repeat: cycle entry s1, exact cycle length p.
    int64_t s1 = it->second;
    int64_t p = s - s1;
    // The periodicity may extend below the detection threshold; walk k down
    // to the minimal start for which M[k] = M[k+p] still holds.
    int64_t k = s1;
    while (k > 0 && result.states[k - 1] == result.states[k - 1 + p]) --k;
    result.period.b = std::max<int64_t>(0, k - c);
    result.period.p = p;
    return result;
  }
}

}  // namespace chronolog
