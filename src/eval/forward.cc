#include "eval/forward.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "ast/printer.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace chronolog {

namespace {

/// Temporal offset of an atom's time term; requires a non-ground term.
int64_t VarOffset(const Atom& atom) { return atom.time->offset; }

}  // namespace

ProgressivityReport CheckProgressive(const Program& program) {
  const Vocabulary& vocab = program.vocab();
  for (const Rule& rule : program.rules()) {
    if (!rule.IsSemiNormal()) {
      return {false, "rule '" + RuleToString(rule, vocab) +
                         "' has more than one temporal variable"};
    }
    auto has_ground_time = [](const Atom& a) {
      return a.temporal() && a.time->ground();
    };
    if (has_ground_time(rule.head)) {
      return {false, "rule '" + RuleToString(rule, vocab) +
                         "' has a ground temporal term in the head"};
    }
    for (const Atom& a : rule.body) {
      if (has_ground_time(a)) {
        return {false, "rule '" + RuleToString(rule, vocab) +
                           "' has a ground temporal term in the body"};
      }
    }
    if (rule.head.temporal()) {
      int64_t a = VarOffset(rule.head);
      for (const Atom& atom : rule.body) {
        if (atom.temporal() && VarOffset(atom) > a) {
          return {false, "rule '" + RuleToString(rule, vocab) +
                             "' consumes facts from the future of its head"};
        }
      }
    } else {
      for (const Atom& atom : rule.body) {
        if (atom.temporal()) {
          return {false, "rule '" + RuleToString(rule, vocab) +
                             "' derives a non-temporal fact from temporal "
                             "ones"};
        }
      }
    }
  }
  return {true, ""};
}

Result<ForwardResult> ForwardSimulate(const Program& program,
                                      const Database& db,
                                      const ForwardOptions& options) {
  ProgressivityReport report = CheckProgressive(program);
  if (!report.progressive) {
    return FailedPreconditionError("ForwardSimulate: " + report.reason);
  }
  TraceSpan span(options.trace, "forward.simulate");

  // chronolog_obs instruments, fetched up front (see RunSemiNaiveRounds);
  // null when no registry is attached.
  MetricsRegistry* const metrics = options.metrics;
  Counter* steps_counter = nullptr;
  Histogram* step_hist = nullptr;
  Histogram* detect_hist = nullptr;
  if (metrics != nullptr) {
    steps_counter = metrics->counter("forward.timesteps");
    step_hist = metrics->histogram("forward.timestep_ns");
    detect_hist = metrics->histogram("forward.detect_ns");
  }

  const Vocabulary& vocab = program.vocab();
  const int64_t c = db.MaxTemporalDepth();
  const int64_t g = std::max<int64_t>(1, program.MaxTemporalDepth());

  ForwardResult result{Interpretation(program.vocab_ptr()), Period{}, c, 0,
                       {}};
  Interpretation& model = result.model;
  model.InsertDatabase(db);

  // Split rules: non-temporal heads close the non-temporal part once
  // (their bodies are non-temporal by progressivity); temporal-head rules
  // drive the per-timestep simulation.
  std::vector<const Rule*> nt_rules;
  std::vector<const Rule*> t_rules;
  for (const Rule& rule : program.rules()) {
    (rule.head.temporal() ? t_rules : nt_rules).push_back(&rule);
  }

  // Phase 0: non-temporal closure (plain Datalog fixpoint; buffered inserts
  // keep the evaluator's iterators valid). Evaluators are built once, ahead
  // of the loop, so their join plans survive across passes. Kept alive to
  // the end of the function so plan_report can snapshot them.
  std::vector<RuleEvaluator> nt_evaluators;
  nt_evaluators.reserve(nt_rules.size());
  for (const Rule* rule : nt_rules) {
    nt_evaluators.emplace_back(*rule, vocab, /*use_index=*/true, metrics);
  }
  {
    bool changed = true;
    while (changed) {
      changed = false;
      std::vector<GroundAtom> buffer;
      for (RuleEvaluator& evaluator : nt_evaluators) {
        evaluator.Evaluate(model, nullptr, -1, std::nullopt, &result.stats,
                           [&](GroundAtom&& fact) {
                             if (!model.Contains(fact)) {
                               buffer.push_back(std::move(fact));
                             }
                           });
      }
      for (GroundAtom& fact : buffer) {
        if (model.Insert(std::move(fact))) {
          ++result.stats.inserted;
          changed = true;
        }
      }
    }
  }

  // Temporal-head rule evaluators, with the head's temporal variable and
  // offset precomputed.
  struct TemporalRule {
    const Rule* rule;
    RuleEvaluator evaluator;
    VarId time_var;
    int64_t head_offset;
  };
  std::vector<TemporalRule> temporal_rules;
  temporal_rules.reserve(t_rules.size());
  for (const Rule* rule : t_rules) {
    temporal_rules.push_back(
        TemporalRule{rule, RuleEvaluator(*rule, vocab, true, metrics),
                     rule->head.time->var, rule->head.time->offset});
  }

  // A rule can consume a fact derived at its own timestep only through a
  // body atom whose offset equals the head offset (progressivity excludes
  // larger body offsets, and every fact derived while simulating timestep
  // `t` lands exactly on `t`). Without such an atom each timestep closes in
  // a single evaluation pass — the re-verification round, which re-derives
  // every fact at `t` just to observe no change, is pure overhead.
  bool same_time_feedback = false;
  for (const TemporalRule& tr : temporal_rules) {
    for (const Atom& atom : tr.rule->body) {
      if (atom.temporal() && atom.time->offset == tr.head_offset) {
        same_time_feedback = true;
      }
    }
  }

  // Window detection: start times of previously seen windows of g states,
  // bucketed by window hash. Per-state hashes are read in O(1) from the
  // model's incrementally maintained snapshot hashes — no State is ever
  // extracted during simulation; candidates with equal window hashes are
  // verified against the live snapshots directly.
  std::vector<std::size_t> state_hashes;
  std::unordered_map<std::size_t, std::vector<int64_t>> seen_windows;
  auto window_hash = [&](int64_t s) {
    std::size_t seed = static_cast<std::size_t>(g);
    for (int64_t i = 0; i < g; ++i) {
      HashCombine(seed, state_hashes[static_cast<std::size_t>(s + i)]);
    }
    return seed;
  };
  auto windows_equal = [&](int64_t s1, int64_t s2) {
    for (int64_t i = 0; i < g; ++i) {
      // Per-state hash first (cheap refutation of window-hash collisions),
      // then the exact in-place snapshot comparison.
      if (state_hashes[static_cast<std::size_t>(s1 + i)] !=
          state_hashes[static_cast<std::size_t>(s2 + i)]) {
        return false;
      }
      if (!model.SnapshotEquals(s1 + i, s2 + i)) return false;
    }
    return true;
  };

  auto too_large = [&]() {
    return ResourceExhaustedError(
        "ForwardSimulate exceeded its budget (max_steps = " +
        std::to_string(options.max_steps) +
        "); the period of this TDD may be exponentially large (Theorem 3.1)");
  };

  std::vector<GroundAtom> buffer;
  for (int64_t t = 0;; ++t) {
    if (t > options.max_steps) return too_large();
    if (steps_counter != nullptr) steps_counter->Add();
    TraceSpan step_span(options.trace, "forward.timestep");
    PhaseTimer step_timer(metrics != nullptr, /*field=*/nullptr, step_hist);
    // Within-timestep fixpoint: all rules whose head lands on `t`.
    if (!same_time_feedback) {
      // Every body atom reads a strictly earlier timestep, so inserting the
      // derived facts (which all land on `t`) cannot touch any container the
      // evaluator is iterating — insert directly, no buffering, one pass.
      for (TemporalRule& tr : temporal_rules) {
        int64_t v = t - tr.head_offset;
        if (v < 0) continue;
        tr.evaluator.Evaluate(model, nullptr, -1,
                              std::make_pair(tr.time_var, v), &result.stats,
                              [&](GroundAtom&& fact) {
                                // Contains-first keeps the evaluator's
                                // scratch tuple alive on the (dominant)
                                // duplicate path — no allocation per dup.
                                if (model.Contains(fact)) return;
                                model.Insert(fact.pred, fact.time,
                                             std::move(fact.args));
                                ++result.stats.inserted;
                              });
      }
      if (model.size() > options.max_facts) return too_large();
    } else {
      bool changed = true;
      while (changed) {
        changed = false;
        buffer.clear();
        for (TemporalRule& tr : temporal_rules) {
          int64_t v = t - tr.head_offset;
          if (v < 0) continue;
          tr.evaluator.Evaluate(model, nullptr, -1,
                                std::make_pair(tr.time_var, v), &result.stats,
                                [&](GroundAtom&& fact) {
                                  if (!model.Contains(fact)) {
                                    buffer.push_back(std::move(fact));
                                  }
                                });
        }
        for (GroundAtom& fact : buffer) {
          if (model.Insert(std::move(fact))) {
            ++result.stats.inserted;
            changed = true;
          }
        }
        if (model.size() > options.max_facts) return too_large();
      }
    }

    step_timer.Stop();
    state_hashes.push_back(model.SnapshotHash(t));
    result.horizon = t;

    TraceSpan detect_span(options.trace, "forward.detection");
    PhaseTimer detect_timer(metrics != nullptr, /*field=*/nullptr,
                            detect_hist);
    // Period detection: windows of g consecutive states starting at
    // s >= c+1 evolve deterministically (no database injection past c).
    int64_t s = t - g + 1;  // start of the newest complete window
    if (s < c + 1) continue;
    std::vector<int64_t>& bucket = seen_windows[window_hash(s)];
    int64_t s1 = -1;
    for (int64_t candidate : bucket) {
      if (windows_equal(candidate, s)) {
        s1 = candidate;
        break;
      }
    }
    if (s1 < 0) {
      // Bound bucket growth. Distinct windows sharing one 64-bit window hash
      // are genuine collisions (equal windows end the loop), so a long
      // non-periodic prefix must not be allowed to grow one bucket into an
      // O(n) probe chain. Capping at a constant and evicting the oldest
      // start keeps probes O(1); if an evicted start ever was the true cycle
      // entry, the orbit is deterministic, so its successor windows (stored
      // in other buckets) still repeat and detection ends at most a few
      // steps later with the same exact cycle length p.
      constexpr std::size_t kMaxWindowBucket = 8;
      if (bucket.size() >= kMaxWindowBucket) bucket.erase(bucket.begin());
      bucket.push_back(s);
      continue;
    }

    // First repeat: cycle entry s1, exact cycle length p.
    int64_t p = s - s1;
    // The periodicity may extend below the detection threshold; walk k down
    // to the minimal start for which M[k] = M[k+p] still holds (hash
    // inequality refutes in O(1), hash equality is verified in place).
    int64_t k = s1;
    while (k > 0 && state_hashes[k - 1] == state_hashes[k - 1 + p] &&
           model.SnapshotEquals(k - 1, k - 1 + p)) {
      --k;
    }
    result.period.b = std::max<int64_t>(0, k - c);
    result.period.p = p;
    if (options.plan_report != nullptr) {
      // Snapshot executed join plans for EXPLAIN. Rule index = pointer
      // offset into program.rules(), which nt_rules/t_rules partitioned.
      options.plan_report->assign(program.rules().size(), {});
      const Rule* base = program.rules().data();
      for (std::size_t i = 0; i < nt_rules.size(); ++i) {
        nt_evaluators[i].ExportPlans(
            &(*options.plan_report)[static_cast<std::size_t>(nt_rules[i] -
                                                             base)]);
      }
      for (const TemporalRule& tr : temporal_rules) {
        tr.evaluator.ExportPlans(
            &(*options.plan_report)[static_cast<std::size_t>(tr.rule - base)]);
      }
    }
    return result;
  }
}

}  // namespace chronolog
