#ifndef CHRONOLOG_EVAL_FIXPOINT_H_
#define CHRONOLOG_EVAL_FIXPOINT_H_

#include <cstdint>
#include <limits>

#include "ast/program.h"
#include "eval/rule_eval.h"
#include "storage/interpretation.h"
#include "util/result.h"

namespace chronolog {

class MetricsRegistry;
class TraceBuffer;

/// Process-wide default for `FixpointOptions::num_threads` (and the
/// mirroring fields in PeriodDetectionOptions / BtOptions). 1 unless
/// overridden; lets a test harness or benchmark driver opt every evaluator
/// into a thread count without plumbing an option through each call site —
/// tests/chronolog_test_main.cc sets it from $CHRONOLOG_NUM_THREADS so the
/// whole suite can run against the parallel evaluator.
int DefaultFixpointThreads();
/// Values below 1 are clamped to 1. Thread-safe, but intended to be called
/// once at process start, before evaluators are constructed.
void SetDefaultFixpointThreads(int n);

/// Limits for bottom-up evaluation. `max_time` is the truncation bound `m` of
/// algorithm BT: derived temporal facts beyond it are discarded, which makes
/// every fixpoint below finite. `max_facts` guards against workloads that
/// are legitimately too large (kResourceExhausted).
struct FixpointOptions {
  int64_t max_time = 0;
  uint64_t max_facts = 50'000'000;
  /// Hash-join via lazily built column indexes; disable for the
  /// nested-loop baseline (experiment E8 ablation).
  bool use_index = true;
  /// Worker threads for the semi-naive evaluator (1 = sequential, the
  /// historical behaviour). Each round's (rule × delta-position) task list
  /// is sharded across a thread pool; per-task buffers are merged in task
  /// order after a barrier, so the result is identical to the sequential
  /// path for every thread count.
  int num_threads = DefaultFixpointThreads();
  /// Observability sinks (chronolog_obs, util/metrics.h + util/trace.h).
  /// Null disables collection at the cost of one branch per site; the
  /// engine wires these up when `EngineOptions::collect_metrics` is set.
  MetricsRegistry* metrics = nullptr;
  TraceBuffer* trace = nullptr;
  /// Static join-order priors from the chronolog_flow adornment analysis,
  /// indexed like Program::rules(); null or an empty inner vector leaves a
  /// rule on greedy selectivity planning. Must outlive the fixpoint call.
  /// Plans never affect results, only cost (see RuleEvaluator).
  const JoinOrderPriors* plan_priors = nullptr;
  /// When non-null, the semi-naive evaluator snapshots its cached join
  /// plans into `*plan_report` (overwriting it wholesale, indexed like
  /// Program::rules()) just before its evaluators are destroyed — the raw
  /// material of EXPLAIN. The naive reference path ignores this.
  RulePlanReport* plan_report = nullptr;
};

/// One application of the immediate-consequence operator:
/// `T_{Z∧D}(I) = {head θ : rule ∈ Z, body θ ⊆ I} ∪ D`, truncated to
/// `[0...max_time]` plus the non-temporal part (Section 3.2).
///
/// `stats->inserted` / `stats->min_new_time` report only the facts the
/// application adds over `interp` (database facts included), so repeated
/// applications sum to the same totals the semi-naive evaluator reports.
Result<Interpretation> ApplyTp(const Program& program, const Database& db,
                               const Interpretation& interp,
                               const FixpointOptions& options,
                               EvalStats* stats = nullptr);

/// Naive bottom-up least fixpoint of the truncated operator: iterates
/// `L := T_{Z∧D}(L)(0...m) ∪ nt` from `D` until stable. This is precisely
/// the loop of algorithm BT (Figure 1) for a caller-supplied bound `m`; see
/// bt.h for the complete algorithm including the choice of `m`.
/// Reports the same `inserted`/`min_new_time` totals as SemiNaiveFixpoint
/// on the same program (each fact counted once, in its first pass).
///
/// Test-only reference oracle: nothing in production reaches this path any
/// more (BtOptions defaults to semi-naive, and the engine never overrides
/// it). It is kept because it is a direct transcription of Figure 1 — small
/// enough to audit by eye — and the equivalence suites compare the
/// semi-naive evaluator's models, stats, and snapshot hashes against it.
Result<Interpretation> NaiveFixpoint(const Program& program,
                                     const Database& db,
                                     const FixpointOptions& options,
                                     EvalStats* stats = nullptr);

/// Semi-naive variant: each round matches one body atom against the facts
/// newly derived in the previous round. Produces the same fixpoint as
/// NaiveFixpoint while avoiding re-derivation (benchmarked as experiment E8).
Result<Interpretation> SemiNaiveFixpoint(const Program& program,
                                         const Database& db,
                                         const FixpointOptions& options,
                                         EvalStats* stats = nullptr);

/// Resumable fixpoint: extends an already-closed truncated least model to a
/// wider truncation bound without recomputing it. `prior` must be the least
/// model of `Z ∧ D` truncated to `[0...prior_max_time]` (the result of
/// {Naive,SemiNaive,Extend}Fixpoint with `max_time = prior_max_time`);
/// returns the least model truncated to `[0...options.max_time]`, identical
/// to a from-scratch fixpoint at that bound.
///
/// The semi-naive delta is seeded with exactly the facts that can feed a
/// derivation absent from `prior`:
///  * database facts beyond `prior_max_time` that the old bound truncated;
///  * the frontier — facts at times `> prior_max_time - g`, where `g` is the
///    program's maximal temporal depth: a rule instantiation whose head
///    lands past the old bound binds its temporal variable to
///    `v > prior_max_time - g`, so every (non-ground) body atom it reads
///    sits at time `v + offset >= v > prior_max_time - g`;
///  * heads of rules with ground temporal terms, which derive at fixed
///    times anywhere in the new segment and are re-fired once explicitly.
/// Everything else derivable in the wider segment needs a fact from one of
/// these groups, so standard delta propagation completes the model.
///
/// `stats->min_new_time` reports the smallest time point that gained a
/// temporal fact during the extension (INT64_MAX when the old segment is
/// untouched) — callers reuse per-time artefacts (extracted states) below it.
Result<Interpretation> ExtendFixpoint(const Program& program,
                                      const Database& db,
                                      Interpretation&& prior,
                                      int64_t prior_max_time,
                                      const FixpointOptions& options,
                                      EvalStats* stats = nullptr);

}  // namespace chronolog

#endif  // CHRONOLOG_EVAL_FIXPOINT_H_
