#ifndef CHRONOLOG_EVAL_FIXPOINT_H_
#define CHRONOLOG_EVAL_FIXPOINT_H_

#include <cstdint>
#include <limits>

#include "ast/program.h"
#include "eval/rule_eval.h"
#include "storage/interpretation.h"
#include "util/result.h"

namespace chronolog {

/// Limits for bottom-up evaluation. `max_time` is the truncation bound `m` of
/// algorithm BT: derived temporal facts beyond it are discarded, which makes
/// every fixpoint below finite. `max_facts` guards against workloads that
/// are legitimately too large (kResourceExhausted).
struct FixpointOptions {
  int64_t max_time = 0;
  uint64_t max_facts = 50'000'000;
  /// Hash-join via lazily built column indexes; disable for the
  /// nested-loop baseline (experiment E8 ablation).
  bool use_index = true;
};

/// One application of the immediate-consequence operator:
/// `T_{Z∧D}(I) = {head θ : rule ∈ Z, body θ ⊆ I} ∪ D`, truncated to
/// `[0...max_time]` plus the non-temporal part (Section 3.2).
Result<Interpretation> ApplyTp(const Program& program, const Database& db,
                               const Interpretation& interp,
                               const FixpointOptions& options,
                               EvalStats* stats = nullptr);

/// Naive bottom-up least fixpoint of the truncated operator: iterates
/// `L := T_{Z∧D}(L)(0...m) ∪ nt` from `D` until stable. This is precisely
/// the loop of algorithm BT (Figure 1) for a caller-supplied bound `m`; see
/// bt.h for the complete algorithm including the choice of `m`.
Result<Interpretation> NaiveFixpoint(const Program& program,
                                     const Database& db,
                                     const FixpointOptions& options,
                                     EvalStats* stats = nullptr);

/// Semi-naive variant: each round matches one body atom against the facts
/// newly derived in the previous round. Produces the same fixpoint as
/// NaiveFixpoint while avoiding re-derivation (benchmarked as experiment E8).
Result<Interpretation> SemiNaiveFixpoint(const Program& program,
                                         const Database& db,
                                         const FixpointOptions& options,
                                         EvalStats* stats = nullptr);

}  // namespace chronolog

#endif  // CHRONOLOG_EVAL_FIXPOINT_H_
