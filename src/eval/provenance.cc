#include "eval/provenance.h"

#include "ast/printer.h"

namespace chronolog {

std::size_t ProofForest::Find(const GroundAtom& fact) const {
  auto it = index_.find(fact);
  return it == index_.end() ? kNotFound : it->second;
}

bool ProofForest::Add(ProofNode node) {
  auto [it, inserted] = index_.try_emplace(node.fact, nodes_.size());
  if (!inserted) return false;
  nodes_.push_back(std::move(node));
  return true;
}

Result<std::string> ProofForest::Explain(const GroundAtom& fact,
                                         const Program& program,
                                         int max_depth) const {
  std::size_t root = Find(fact);
  if (root == kNotFound) {
    return NotFoundError("no proof: " + GroundAtomToString(fact, *vocab_) +
                         " is not in the least model");
  }
  std::string out;
  // Premises always have smaller ids, so recursion is well-founded.
  std::function<void(std::size_t, int)> render = [&](std::size_t id,
                                                     int depth) {
    const ProofNode& node = nodes_[id];
    std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
    out += indent + (depth == 0 ? "" : "- ") +
           GroundAtomToString(node.fact, *vocab_);
    if (node.rule_index < 0) {
      out += "   [database]\n";
      return;
    }
    out += "\n";
    if (depth >= max_depth) {
      out += indent + "  ...\n";
      return;
    }
    out += indent + "  by rule: " +
           RuleToString(program.rules()[static_cast<std::size_t>(
                            node.rule_index)],
                        program.vocab()) +
           "\n";
    for (std::size_t premise : node.premises) {
      render(premise, depth + 1);
    }
  };
  render(root, 0);
  return out;
}

Result<ProofForest> MaterializeWithProvenance(const Program& program,
                                              const Database& db,
                                              const FixpointOptions& options,
                                              EvalStats* stats) {
  const Vocabulary& vocab = program.vocab();
  ProofForest forest(program.vocab_ptr());
  Interpretation full(program.vocab_ptr());
  Interpretation delta(program.vocab_ptr());

  for (const GroundAtom& f : db.facts()) {
    if (vocab.predicate(f.pred).is_temporal && f.time > options.max_time) {
      continue;
    }
    if (full.Insert(f)) {
      delta.Insert(f);
      forest.Add(ProofNode{f, -1, {}});
    }
  }

  std::vector<RuleEvaluator> evaluators;
  evaluators.reserve(program.rules().size());
  for (const Rule& rule : program.rules()) {
    evaluators.emplace_back(rule, vocab, options.use_index, options.metrics);
  }

  while (!delta.empty()) {
    if (stats != nullptr) ++stats->iterations;
    Interpretation next_delta(program.vocab_ptr());
    std::vector<ProofNode> pending;
    bool overflow = false;
    for (std::size_t ri = 0; ri < program.rules().size(); ++ri) {
      const Rule& rule = program.rules()[ri];
      for (int pos = 0; pos < static_cast<int>(rule.body.size()); ++pos) {
        evaluators[ri].EvaluateWithBody(
            full, &delta, pos, std::nullopt, stats,
            [&](GroundAtom&& head, std::vector<GroundAtom>&& body) {
              if (vocab.predicate(head.pred).is_temporal &&
                  head.time > options.max_time) {
                return;
              }
              if (full.Contains(head) || next_delta.Contains(head)) return;
              ProofNode node;
              node.rule_index = static_cast<int>(ri);
              node.premises.reserve(body.size());
              for (GroundAtom& premise : body) {
                // Premises were matched against `full` or `delta`; both
                // are subsets of the forest, so the lookup always succeeds.
                std::size_t id = forest.Find(premise);
                if (id == ProofForest::kNotFound) return;
                node.premises.push_back(id);
              }
              next_delta.Insert(head);
              node.fact = std::move(head);
              pending.push_back(std::move(node));
              if (full.size() + pending.size() > options.max_facts) {
                overflow = true;
              }
            });
        if (overflow) {
          return ResourceExhaustedError(
              "provenance fixpoint exceeded max_facts = " +
              std::to_string(options.max_facts));
        }
      }
    }
    for (ProofNode& node : pending) {
      GroundAtom fact = node.fact;
      if (forest.Add(std::move(node))) full.Insert(std::move(fact));
    }
    delta = std::move(next_delta);
  }
  return forest;
}

}  // namespace chronolog
