#ifndef CHRONOLOG_EVAL_PROVENANCE_H_
#define CHRONOLOG_EVAL_PROVENANCE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ast/program.h"
#include "eval/fixpoint.h"
#include "storage/interpretation.h"
#include "util/result.h"

namespace chronolog {

/// One step of a ground hyperresolution proof (the object algorithm BT
/// implicitly constructs — see the correctness argument of Theorem 4.1):
/// either a database fact (leaf) or an instance of a rule whose ground
/// premises are earlier nodes.
struct ProofNode {
  GroundAtom fact;
  /// Index into Program::rules(), or -1 for a database fact.
  int rule_index = -1;
  /// Node ids of the ground body atoms (empty for database facts). Always
  /// smaller than this node's own id: proofs are well-founded.
  std::vector<std::size_t> premises;
};

/// The proofs of every fact in a truncated least model, one (first-found)
/// proof per fact.
class ProofForest {
 public:
  explicit ProofForest(std::shared_ptr<Vocabulary> vocab)
      : vocab_(std::move(vocab)) {}

  const std::vector<ProofNode>& nodes() const { return nodes_; }
  const Vocabulary& vocab() const { return *vocab_; }

  /// Node id of `fact`, or npos when the fact is not in the model.
  static constexpr std::size_t kNotFound = static_cast<std::size_t>(-1);
  std::size_t Find(const GroundAtom& fact) const;

  bool Contains(const GroundAtom& fact) const {
    return Find(fact) != kNotFound;
  }

  /// Registers a fact with its proof; returns false if already present
  /// (keeping the existing, earlier proof).
  bool Add(ProofNode node);

  /// Renders the proof of `fact` as an indented tree:
  ///
  ///   even(4)
  ///     by rule: even(T+2) :- even(T).
  ///     - even(2)
  ///       by rule: even(T+2) :- even(T).
  ///       - even(0)   [database]
  ///
  /// `max_depth` truncates deep proofs ("..." marks the cut).
  Result<std::string> Explain(const GroundAtom& fact, const Program& program,
                              int max_depth = 32) const;

  std::size_t size() const { return nodes_.size(); }

 private:
  std::shared_ptr<Vocabulary> vocab_;
  std::vector<ProofNode> nodes_;
  std::unordered_map<GroundAtom, std::size_t, GroundAtomHash> index_;
};

/// Computes the truncated least model like SemiNaiveFixpoint while
/// recording one proof per derived fact. Costs extra memory proportional
/// to the proof premises; use for debugging, auditing and the engine's
/// `Explain`.
Result<ProofForest> MaterializeWithProvenance(const Program& program,
                                              const Database& db,
                                              const FixpointOptions& options,
                                              EvalStats* stats = nullptr);

}  // namespace chronolog

#endif  // CHRONOLOG_EVAL_PROVENANCE_H_
