#include "eval/bt.h"

#include <algorithm>

namespace chronolog {

Result<BtResult> RunBt(const Program& program, const Database& db,
                       const GroundAtom& query, const BtOptions& options) {
  if (options.range.has_value() == options.horizon.has_value()) {
    return FailedPreconditionError(
        "BtOptions: exactly one of `range` and `horizon` must be set "
        "(use the engine or a periodicity analysis to obtain range(Z∧D))");
  }
  if (query.pred >= program.vocab().num_predicates()) {
    return InvalidArgumentError("BT query references an unknown predicate");
  }

  const bool query_temporal =
      program.vocab().predicate(query.pred).is_temporal;
  const int64_t h = query_temporal ? query.time : 0;
  const int64_t c = db.MaxTemporalDepth();

  int64_t m;
  if (options.horizon.has_value()) {
    m = *options.horizon;
  } else {
    // m = max(c, h) + range(Z ∧ D), as in the proof of Theorem 4.1.
    m = std::max(c, h) + *options.range;
  }

  FixpointOptions fp;
  fp.max_time = m;
  fp.max_facts = options.max_facts;
  fp.num_threads = options.num_threads;
  fp.metrics = options.metrics;
  fp.trace = options.trace;

  BtResult result{false, m, Interpretation(program.vocab_ptr()), {}};
  if (options.semi_naive) {
    CHRONOLOG_ASSIGN_OR_RETURN(
        result.model, SemiNaiveFixpoint(program, db, fp, &result.stats));
  } else {
    CHRONOLOG_ASSIGN_OR_RETURN(
        result.model, NaiveFixpoint(program, db, fp, &result.stats));
  }
  result.answer = result.model.Contains(query);
  return result;
}

}  // namespace chronolog
