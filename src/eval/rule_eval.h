#ifndef CHRONOLOG_EVAL_RULE_EVAL_H_
#define CHRONOLOG_EVAL_RULE_EVAL_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "ast/program.h"
#include "storage/interpretation.h"

namespace chronolog {

class MetricsRegistry;

/// Static join-order priors, indexed like Program::rules(): for rule i,
/// priors[i] is the preferred body-atom evaluation order (source positions),
/// or empty for "no preference". Produced by the chronolog_flow adornment
/// analysis (analysis/dataflow.h) and threaded to the evaluators through
/// FixpointOptions::plan_priors.
using JoinOrderPriors = std::vector<std::vector<uint32_t>>;

/// Snapshot of one cached join plan, exported for EXPLAIN (serve's
/// `POST /explain`, tddsh `.explain ?-`). One report per built
/// (delta position, time-bound) slot: the executed atom order, the planned
/// probe columns (-1 = scan), and the estimated vs observed
/// steps-per-emission that drive drift re-planning.
struct PlanSlotReport {
  int delta_pos = -1;    // -1 = no delta restriction (naive / first round)
  bool time_bound = false;
  std::vector<uint32_t> order;      // body-atom indexes in execution order
  std::vector<int32_t> probe_cols;  // parallel to `order`
  double est_steps_per_emit = 0;
  uint64_t observed_steps = 0;
  uint64_t observed_emits = 0;
};

/// Plan reports for a whole program, indexed like Program::rules(): entry i
/// lists the built plan slots of rule i's evaluator (empty when the rule was
/// never planned — e.g. its predicate never gained facts).
using RulePlanReport = std::vector<std::vector<PlanSlotReport>>;

/// Counters accumulated by the evaluators. `derived` counts every emitted
/// head instantiation (before deduplication); `inserted` counts facts that
/// were new; `match_steps` counts tuple-match attempts (a machine-independent
/// work measure used by the benchmark harness).
///
/// The `*_ms` fields are per-phase wall-clock timers maintained by the
/// fixpoint drivers: `derive_ms` covers rule evaluation (all workers),
/// `merge_ms` covers folding per-task buffers / the round delta into the
/// full model, `extract_ms` covers per-time state extraction during period
/// detection. `min_new_time` is the smallest time point that gained a
/// temporal fact (INT64_MAX when none did) — the staleness bound consumed by
/// the incremental horizon-extension loop.
struct EvalStats {
  uint64_t derived = 0;
  uint64_t inserted = 0;
  uint64_t match_steps = 0;
  uint64_t iterations = 0;
  double derive_ms = 0;
  double merge_ms = 0;
  double extract_ms = 0;
  int64_t min_new_time = std::numeric_limits<int64_t>::max();

  void Add(const EvalStats& other) {
    derived += other.derived;
    inserted += other.inserted;
    match_steps += other.match_steps;
    iterations += other.iterations;
    derive_ms += other.derive_ms;
    merge_ms += other.merge_ms;
    extract_ms += other.extract_ms;
    min_new_time = std::min(min_new_time, other.min_new_time);
  }
};

/// Evaluates one temporal Horn rule against an interpretation: enumerates
/// every ground substitution `θ` with `body θ ⊆ I` and emits `head θ`
/// (the single-rule slice of the paper's `T_{Z∧D}` operator, Section 3.2).
///
/// Semi-naive evaluation restricts one body position to a delta
/// interpretation; a pre-bound temporal variable supports the per-timestep
/// forward simulator.
///
/// Join planning: instead of matching body atoms in source order, the
/// evaluator orders them by estimated selectivity (relation cardinalities
/// plus sampled bound-column fan-outs) the first time a (delta position,
/// time-bound) configuration is evaluated, and caches the resulting plan.
/// When the observed match-steps-per-emission of a cached plan drifts far
/// above its estimate, the plan is rebuilt against current statistics
/// (sequential evaluation only — see EnsurePlan). Plans only fix the atom
/// order and a suggested probe column; correctness never depends on the
/// estimates.
class RuleEvaluator {
 public:
  /// `rule` and `vocab` must outlive the evaluator. With `use_index` the
  /// evaluator probes the interpretation's lazily built column indexes when
  /// a body atom has a bound argument (hash join); without it every match
  /// scans the relation (the nested-loop baseline of experiment E8).
  /// `metrics` (nullable) receives the `join.*` instrument family: plan
  /// builds, cache hits, re-plans, order changes, and the estimated vs
  /// actual steps-per-emission histograms.
  RuleEvaluator(const Rule& rule, const Vocabulary& vocab,
                bool use_index = true, MetricsRegistry* metrics = nullptr);
  ~RuleEvaluator();
  RuleEvaluator(RuleEvaluator&&) noexcept;
  RuleEvaluator& operator=(RuleEvaluator&&) = delete;

  /// Enumerates instantiations. When `delta` is non-null, the body atom at
  /// `delta_pos` is matched against `delta` instead of `full` (all other
  /// atoms against `full`). When `time_binding` is set, the temporal
  /// variable `time_binding->first` is pre-bound to `time_binding->second`.
  /// Emitted ground atoms may repeat; the caller deduplicates on insert.
  ///
  /// `delta_shard` / `delta_num_shards` split the enumeration of candidate
  /// tuples for the delta-matched atom round-robin across shards: shard `s`
  /// only descends into candidates `i` with `i % delta_num_shards == s`.
  /// The union of all shards' emissions equals the unsharded emission set,
  /// and the assignment is deterministic — the parallel evaluator uses this
  /// to split one (rule, delta-position) task across workers.
  void Evaluate(
      const Interpretation& full, const Interpretation* delta, int delta_pos,
      std::optional<std::pair<VarId, int64_t>> time_binding,
      EvalStats* stats,
      const std::function<void(GroundAtom&&)>& emit,
      uint32_t delta_shard = 0, uint32_t delta_num_shards = 1) const;

  /// Like Evaluate, but also hands the instantiated ground body atoms (in
  /// source order) to the callback — the premises of the hyperresolution
  /// step, used by the provenance evaluator.
  void EvaluateWithBody(
      const Interpretation& full, const Interpretation* delta, int delta_pos,
      std::optional<std::pair<VarId, int64_t>> time_binding,
      EvalStats* stats,
      const std::function<void(GroundAtom&&, std::vector<GroundAtom>&&)>&
          emit) const;

  /// Builds (if absent) the join plan for the (delta_pos, time_bound)
  /// configuration against current statistics. The parallel fixpoint calls
  /// this sequentially for every task before fanning out, so that (a) all
  /// shards of one task run the same plan and (b) no worker ever builds a
  /// plan — plan construction samples column statistics, which mutates
  /// per-relation caches and must stay single-threaded.
  void EnsurePlan(const Interpretation& full, const Interpretation* delta,
                  int delta_pos, bool time_bound) const;

  /// Body-atom order (source positions) of the cached plan for the given
  /// configuration; empty when no plan has been built yet. Test-only
  /// introspection for determinism and planner-behaviour checks.
  std::vector<uint32_t> PlanOrderForTest(int delta_pos,
                                         bool time_bound) const;

  /// Appends one PlanSlotReport per built plan slot to `out` (built slots
  /// only; an evaluator that never ran appends nothing). Snapshots the
  /// *current* plan of each slot — the one the next evaluation would run —
  /// with its cumulative observation counters. Safe to call while
  /// evaluations are in flight (acquire loads, relaxed counter reads).
  void ExportPlans(std::vector<PlanSlotReport>* out) const;

  /// Installs a static join-order prior: the *first* plan built for each
  /// configuration follows `order` (a permutation of the body positions;
  /// probe columns and estimates are still derived from live statistics)
  /// instead of the greedy selectivity order. Drift-triggered re-plans
  /// ignore the prior and fall back to full greedy planning, so a bad prior
  /// self-corrects. `order` must outlive the evaluator; an order whose size
  /// does not match the body, or that is not a permutation, is ignored.
  /// Plans never affect results, only cost. Must be called before the first
  /// evaluation (no synchronisation with concurrent plan builds).
  void SetStaticOrderPrior(const std::vector<uint32_t>* order);

 private:
  struct JoinPlan;
  struct PlanCache;

  void EvaluateImpl(
      const Interpretation& full, const Interpretation* delta, int delta_pos,
      std::optional<std::pair<VarId, int64_t>> time_binding,
      EvalStats* stats, const std::function<void(GroundAtom&&)>* emit,
      const std::function<void(GroundAtom&&, std::vector<GroundAtom>&&)>*
          emit_with_body,
      uint32_t delta_shard, uint32_t delta_num_shards) const;

  std::unique_ptr<JoinPlan> BuildPlan(const Interpretation& full,
                                      const Interpretation* delta,
                                      int delta_pos, bool time_bound,
                                      bool use_prior) const;
  JoinPlan* GetOrBuildPlan(const Interpretation& full,
                           const Interpretation* delta, int delta_pos,
                           bool time_bound, bool allow_replan) const;
  std::size_t SlotKey(int delta_pos, bool time_bound) const;

  const Rule& rule_;
  const Vocabulary& vocab_;
  bool use_index_;
  // Static join-order prior (see SetStaticOrderPrior); null = greedy only.
  const std::vector<uint32_t>* static_prior_ = nullptr;
  // Cached join plans, one slot per (delta_pos, time_bound) configuration.
  // Mutable: planning is an internal optimisation of const evaluation.
  mutable std::unique_ptr<PlanCache> plans_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_EVAL_RULE_EVAL_H_
