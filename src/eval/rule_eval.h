#ifndef CHRONOLOG_EVAL_RULE_EVAL_H_
#define CHRONOLOG_EVAL_RULE_EVAL_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "ast/program.h"
#include "storage/interpretation.h"

namespace chronolog {

/// Counters accumulated by the evaluators. `derived` counts every emitted
/// head instantiation (before deduplication); `inserted` counts facts that
/// were new; `match_steps` counts tuple-match attempts (a machine-independent
/// work measure used by the benchmark harness).
struct EvalStats {
  uint64_t derived = 0;
  uint64_t inserted = 0;
  uint64_t match_steps = 0;
  uint64_t iterations = 0;

  void Add(const EvalStats& other) {
    derived += other.derived;
    inserted += other.inserted;
    match_steps += other.match_steps;
    iterations += other.iterations;
  }
};

/// Evaluates one temporal Horn rule against an interpretation: enumerates
/// every ground substitution `θ` with `body θ ⊆ I` and emits `head θ`
/// (the single-rule slice of the paper's `T_{Z∧D}` operator, Section 3.2).
///
/// Semi-naive evaluation restricts one body position to a delta
/// interpretation; a pre-bound temporal variable supports the per-timestep
/// forward simulator.
class RuleEvaluator {
 public:
  /// `rule` and `vocab` must outlive the evaluator. With `use_index` the
  /// evaluator probes the interpretation's lazily built column indexes when
  /// a body atom has a bound argument (hash join); without it every match
  /// scans the tuple set (the nested-loop baseline of experiment E8).
  RuleEvaluator(const Rule& rule, const Vocabulary& vocab,
                bool use_index = true)
      : rule_(rule), vocab_(vocab), use_index_(use_index) {}

  /// Enumerates instantiations. When `delta` is non-null, the body atom at
  /// `delta_pos` is matched against `delta` instead of `full` (all other
  /// atoms against `full`). When `time_binding` is set, the temporal
  /// variable `time_binding->first` is pre-bound to `time_binding->second`.
  /// Emitted ground atoms may repeat; the caller deduplicates on insert.
  void Evaluate(
      const Interpretation& full, const Interpretation* delta, int delta_pos,
      std::optional<std::pair<VarId, int64_t>> time_binding,
      EvalStats* stats,
      const std::function<void(GroundAtom&&)>& emit) const;

  /// Like Evaluate, but also hands the instantiated ground body atoms (in
  /// source order) to the callback — the premises of the hyperresolution
  /// step, used by the provenance evaluator.
  void EvaluateWithBody(
      const Interpretation& full, const Interpretation* delta, int delta_pos,
      std::optional<std::pair<VarId, int64_t>> time_binding,
      EvalStats* stats,
      const std::function<void(GroundAtom&&, std::vector<GroundAtom>&&)>&
          emit) const;

 private:
  void EvaluateImpl(
      const Interpretation& full, const Interpretation* delta, int delta_pos,
      std::optional<std::pair<VarId, int64_t>> time_binding,
      EvalStats* stats, const std::function<void(GroundAtom&&)>* emit,
      const std::function<void(GroundAtom&&, std::vector<GroundAtom>&&)>*
          emit_with_body) const;

  const Rule& rule_;
  const Vocabulary& vocab_;
  bool use_index_;
};

}  // namespace chronolog

#endif  // CHRONOLOG_EVAL_RULE_EVAL_H_
