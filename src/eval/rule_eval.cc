#include "eval/rule_eval.h"

#include <cassert>
#include <vector>

namespace chronolog {

namespace {

/// Mutable binding environment for one rule evaluation. VarIds index both
/// arrays; the rule's sort table decides which one is live for a variable.
struct Bindings {
  std::vector<int64_t> tval;
  std::vector<SymbolId> nval;
  std::vector<char> bound;

  explicit Bindings(std::size_t n) : tval(n, 0), nval(n, 0), bound(n, 0) {}
};

/// Undo log of variables bound while matching one atom.
using Trail = std::vector<VarId>;

/// Matches the non-temporal argument vector of `atom` against `tuple`,
/// binding fresh variables (recorded on `trail`). Returns false on mismatch
/// (trail entries added so far must still be undone by the caller).
bool MatchArgs(const Atom& atom, const Tuple& tuple, Bindings* b,
               Trail* trail) {
  assert(atom.args.size() == tuple.size());
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    const NtTerm& t = atom.args[i];
    if (t.is_constant()) {
      if (t.id != tuple[i]) return false;
      continue;
    }
    VarId v = t.id;
    if (b->bound[v]) {
      if (b->nval[v] != tuple[i]) return false;
    } else {
      b->bound[v] = 1;
      b->nval[v] = tuple[i];
      trail->push_back(v);
    }
  }
  return true;
}

void Unwind(const Trail& trail, std::size_t from, Bindings* b) {
  for (std::size_t i = from; i < trail.size(); ++i) b->bound[trail[i]] = 0;
}

}  // namespace

void RuleEvaluator::Evaluate(
    const Interpretation& full, const Interpretation* delta, int delta_pos,
    std::optional<std::pair<VarId, int64_t>> time_binding, EvalStats* stats,
    const std::function<void(GroundAtom&&)>& emit, uint32_t delta_shard,
    uint32_t delta_num_shards) const {
  EvaluateImpl(full, delta, delta_pos, time_binding, stats, &emit, nullptr,
               delta_shard, delta_num_shards);
}

void RuleEvaluator::EvaluateWithBody(
    const Interpretation& full, const Interpretation* delta, int delta_pos,
    std::optional<std::pair<VarId, int64_t>> time_binding, EvalStats* stats,
    const std::function<void(GroundAtom&&, std::vector<GroundAtom>&&)>& emit)
    const {
  EvaluateImpl(full, delta, delta_pos, time_binding, stats, nullptr, &emit,
               /*delta_shard=*/0, /*delta_num_shards=*/1);
}

void RuleEvaluator::EvaluateImpl(
    const Interpretation& full, const Interpretation* delta, int delta_pos,
    std::optional<std::pair<VarId, int64_t>> time_binding, EvalStats* stats,
    const std::function<void(GroundAtom&&)>* emit,
    const std::function<void(GroundAtom&&, std::vector<GroundAtom>&&)>*
        emit_with_body,
    uint32_t delta_shard, uint32_t delta_num_shards) const {
  Bindings bindings(rule_.num_vars());
  if (time_binding.has_value()) {
    bindings.bound[time_binding->first] = 1;
    bindings.tval[time_binding->first] = time_binding->second;
  }

  Trail trail;

  // Ground-instantiates `atom` under the current bindings (complete for
  // the head by range-restriction; complete for body atoms at emit time).
  auto instantiate = [&](const Atom& atom) {
    GroundAtom fact;
    fact.pred = atom.pred;
    if (atom.temporal()) {
      const TemporalTerm& tt = *atom.time;
      if (tt.ground()) {
        fact.time = tt.offset;
      } else {
        assert(bindings.bound[tt.var]);
        fact.time = bindings.tval[tt.var] + tt.offset;
      }
    }
    fact.args.reserve(atom.args.size());
    for (const NtTerm& t : atom.args) {
      if (t.is_constant()) {
        fact.args.push_back(t.id);
      } else {
        assert(bindings.bound[t.id]);
        fact.args.push_back(bindings.nval[t.id]);
      }
    }
    return fact;
  };

  // Scratch head atom for the plain-emit path. Sinks that drop duplicates
  // without moving the atom leave `scratch.args`'s capacity behind, so the
  // (dominant) duplicate-derivation case allocates nothing. Sinks never
  // retain a reference past the call, so reuse is safe.
  GroundAtom scratch;
  auto instantiate_head_into = [&](GroundAtom* fact) {
    const Atom& atom = rule_.head;
    fact->pred = atom.pred;
    if (atom.temporal()) {
      const TemporalTerm& tt = *atom.time;
      if (tt.ground()) {
        fact->time = tt.offset;
      } else {
        assert(bindings.bound[tt.var]);
        fact->time = bindings.tval[tt.var] + tt.offset;
      }
    }
    fact->args.clear();
    for (const NtTerm& t : atom.args) {
      if (t.is_constant()) {
        fact->args.push_back(t.id);
      } else {
        assert(bindings.bound[t.id]);
        fact->args.push_back(bindings.nval[t.id]);
      }
    }
  };

  auto emit_head = [&]() {
    if (stats != nullptr) ++stats->derived;
    if (emit_with_body != nullptr) {
      std::vector<GroundAtom> body;
      body.reserve(rule_.body.size());
      for (const Atom& atom : rule_.body) body.push_back(instantiate(atom));
      (*emit_with_body)(instantiate(rule_.head), std::move(body));
    } else {
      instantiate_head_into(&scratch);
      (*emit)(std::move(scratch));
    }
  };

  // Join order: source order, except that the delta-restricted atom (when
  // any) is matched first — it is the most selective and usually binds the
  // temporal variable, so the remaining atoms probe single snapshots
  // instead of scanning whole timelines.
  std::vector<std::size_t> order(rule_.body.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (delta != nullptr && delta_pos >= 0 &&
      delta_pos < static_cast<int>(order.size())) {
    std::swap(order[0], order[static_cast<std::size_t>(delta_pos)]);
  }

  // Round-robin counter over the delta atom's candidate tuples; shared
  // across timeline slices so the assignment is a deterministic function of
  // the enumeration order alone.
  uint64_t shard_counter = 0;

  std::function<void(std::size_t)> match = [&](std::size_t step) {
    if (step == rule_.body.size()) {
      emit_head();
      return;
    }
    const std::size_t pos = order[step];
    const Atom& atom = rule_.body[pos];
    const bool is_delta_atom =
        delta != nullptr && static_cast<int>(pos) == delta_pos;
    const Interpretation& source = is_delta_atom ? *delta : full;
    const bool sharded = is_delta_atom && delta_num_shards > 1;

    auto try_one = [&](const Tuple& tuple) {
      if (sharded && (shard_counter++ % delta_num_shards) != delta_shard) {
        return;
      }
      if (stats != nullptr) ++stats->match_steps;
      std::size_t mark = trail.size();
      if (MatchArgs(atom, tuple, &bindings, &trail)) {
        match(step + 1);
      }
      Unwind(trail, mark, &bindings);
      trail.resize(mark);
    };

    auto try_tuples = [&](const TupleSet& tuples) {
      for (const Tuple& tuple : tuples) try_one(tuple);
    };

    auto try_bucket = [&](const std::vector<const Tuple*>* bucket) {
      if (bucket == nullptr) return;
      for (const Tuple* tuple : *bucket) try_one(*tuple);
    };

    // Hash-join selector: the first argument position with a known value
    // (constant or already-bound variable), probing the column index.
    auto selective_col =
        [&]() -> std::optional<std::pair<uint32_t, SymbolId>> {
      if (!use_index_) return std::nullopt;
      for (std::size_t i = 0; i < atom.args.size(); ++i) {
        const NtTerm& t = atom.args[i];
        if (t.is_constant()) {
          return std::make_pair(static_cast<uint32_t>(i), t.id);
        }
        if (bindings.bound[t.id]) {
          return std::make_pair(static_cast<uint32_t>(i),
                                bindings.nval[t.id]);
        }
      }
      return std::nullopt;
    };

    if (!atom.temporal()) {
      if (auto sel = selective_col()) {
        try_bucket(source.ProbeNonTemporal(atom.pred, sel->first,
                                           sel->second));
      } else {
        try_tuples(source.NonTemporal(atom.pred));
      }
      return;
    }

    const TemporalTerm& tt = *atom.time;
    auto try_snapshot = [&](int64_t time) {
      if (auto sel = selective_col()) {
        try_bucket(
            source.ProbeSnapshot(atom.pred, time, sel->first, sel->second));
      } else {
        try_tuples(source.Snapshot(atom.pred, time));
      }
    };

    if (tt.ground()) {
      try_snapshot(tt.offset);
      return;
    }
    VarId v = tt.var;
    if (bindings.bound[v]) {
      try_snapshot(bindings.tval[v] + tt.offset);
      return;
    }
    // Unbound temporal variable: enumerate the predicate's timeline; the
    // variable's value is `time - offset` and must be a valid (>= 0) ground
    // temporal term.
    for (const auto& [time, tuples] : source.Timeline(atom.pred)) {
      int64_t value = time - tt.offset;
      if (value < 0) continue;
      bindings.bound[v] = 1;
      bindings.tval[v] = value;
      try_snapshot(time);
      bindings.bound[v] = 0;
    }
  };

  match(0);
}

}  // namespace chronolog
