#include "eval/rule_eval.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>
#include <mutex>
#include <vector>

#include "util/metrics.h"

namespace chronolog {

namespace {

/// Re-plan policy: a cached plan is rebuilt when its observed
/// match-steps-per-emission exceeds `kReplanFactor` times the estimate,
/// judged only after `replan_min_steps` observed steps (which doubles on
/// every re-plan, so a rule that keeps drifting re-plans with backoff
/// instead of thrashing).
constexpr uint64_t kReplanMinSteps = 256;
constexpr double kReplanFactor = 8.0;

/// Mutable binding environment for one rule evaluation. VarIds index both
/// arrays; the rule's sort table decides which one is live for a variable.
struct Bindings {
  std::vector<int64_t> tval;
  std::vector<SymbolId> nval;
  std::vector<char> bound;

  explicit Bindings(std::size_t n) : tval(n, 0), nval(n, 0), bound(n, 0) {}
};

/// Undo log of variables bound while matching one atom.
using Trail = std::vector<VarId>;

/// Matches the non-temporal argument vector of `atom` against row `row` of
/// `rel`, binding fresh variables (recorded on `trail`). Returns false on
/// mismatch (trail entries added so far must still be undone by the caller).
bool MatchRow(const Atom& atom, const Relation& rel, uint32_t row,
              Bindings* b, Trail* trail) {
  assert(atom.args.size() == rel.arity());
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    const NtTerm& t = atom.args[i];
    const SymbolId value = rel.at(row, i);
    if (t.is_constant()) {
      if (t.id != value) return false;
      continue;
    }
    VarId v = t.id;
    if (b->bound[v]) {
      if (b->nval[v] != value) return false;
    } else {
      b->bound[v] = 1;
      b->nval[v] = value;
      trail->push_back(v);
    }
  }
  return true;
}

void Unwind(const Trail& trail, std::size_t from, Bindings* b) {
  for (std::size_t i = from; i < trail.size(); ++i) b->bound[trail[i]] = 0;
}

}  // namespace

/// One cached join order for a (delta position, time-bound) configuration.
/// `steps` fixes the atom order and, per atom, the probe column the planner
/// expects to be bound when the atom is reached (-1 = scan). Estimates are
/// advisory: the matcher re-checks boundness at runtime, so a stale or wrong
/// plan can only cost time, never results.
struct RuleEvaluator::JoinPlan {
  struct Step {
    uint32_t pos;       // body-atom index in source order
    int32_t probe_col;  // planned probe column, -1 when scanning
    double est;         // estimated candidates enumerated per reach
  };
  std::vector<Step> steps;
  double est_steps_per_emit = 0;
  uint64_t replan_min_steps = kReplanMinSteps;
  // Cumulative observations across evaluations (all shards), feeding the
  // drift check in GetOrBuildPlan.
  std::atomic<uint64_t> observed_steps{0};
  std::atomic<uint64_t> observed_emits{0};
};

/// Per-evaluator plan store. Readers load the slot with one acquire;
/// builders serialise on `mu`. Retired plans stay in `owned` so concurrent
/// evaluations holding the old pointer remain valid for the evaluator's
/// lifetime.
struct RuleEvaluator::PlanCache {
  std::mutex mu;
  std::vector<std::atomic<JoinPlan*>> slots;
  std::vector<std::unique_ptr<JoinPlan>> owned;
  Counter* plans = nullptr;
  Counter* hits = nullptr;
  Counter* replans = nullptr;
  Counter* order_changed = nullptr;
  Histogram* est_hist = nullptr;
  Histogram* actual_hist = nullptr;

  PlanCache(std::size_t nslots, MetricsRegistry* metrics) : slots(nslots) {
    // std::atomic<T*> is default-uninitialised; store explicitly.
    for (auto& slot : slots) slot.store(nullptr, std::memory_order_relaxed);
    if (metrics != nullptr) {
      plans = metrics->counter("join.plans");
      hits = metrics->counter("join.plan_cache_hits");
      replans = metrics->counter("join.replans");
      order_changed = metrics->counter("join.order_changed");
      est_hist = metrics->histogram("join.est_steps_per_emit");
      actual_hist = metrics->histogram("join.actual_steps_per_emit");
    }
  }
};

RuleEvaluator::RuleEvaluator(const Rule& rule, const Vocabulary& vocab,
                             bool use_index, MetricsRegistry* metrics)
    : rule_(rule),
      vocab_(vocab),
      use_index_(use_index),
      plans_(std::make_unique<PlanCache>((rule.body.size() + 1) * 2,
                                         metrics)) {}

RuleEvaluator::~RuleEvaluator() = default;
RuleEvaluator::RuleEvaluator(RuleEvaluator&&) noexcept = default;

std::size_t RuleEvaluator::SlotKey(int delta_pos, bool time_bound) const {
  assert(delta_pos >= -1 &&
         delta_pos < static_cast<int>(rule_.body.size()) + 1);
  return static_cast<std::size_t>(delta_pos + 1) * 2 + (time_bound ? 1 : 0);
}

void RuleEvaluator::SetStaticOrderPrior(const std::vector<uint32_t>* order) {
  static_prior_ = nullptr;
  if (order == nullptr || order->size() != rule_.body.size()) return;
  std::vector<char> seen(rule_.body.size(), 0);
  for (uint32_t pos : *order) {
    if (pos >= rule_.body.size() || seen[pos]) return;  // not a permutation
    seen[pos] = 1;
  }
  static_prior_ = order;
}

std::unique_ptr<RuleEvaluator::JoinPlan> RuleEvaluator::BuildPlan(
    const Interpretation& full, const Interpretation* delta, int delta_pos,
    bool time_bound, bool use_prior) const {
  auto plan = std::make_unique<JoinPlan>();
  const std::size_t n = rule_.body.size();
  // A static prior pins the atom order of the first plan; probe columns and
  // estimates still come from live statistics below.
  const std::vector<uint32_t>* prior = use_prior ? static_prior_ : nullptr;
  plan->steps.reserve(n);
  std::vector<char> used(n, 0);
  // Variables known at each greedy step: pre-bound temporal variable first
  // (the forward simulator binds the head's temporal variable), then
  // whatever each chosen atom binds.
  std::vector<char> known(rule_.num_vars(), 0);
  if (time_bound && rule_.head.temporal() && !rule_.head.time->ground()) {
    known[rule_.head.time->var] = 1;
  }

  for (std::size_t step = 0; step < n; ++step) {
    double best_est = 0;
    int best_pos = -1;
    int best_col = -1;
    bool best_delta = false;
    for (std::size_t pos = 0; pos < n; ++pos) {
      if (used[pos]) continue;
      if (prior != nullptr && pos != (*prior)[step]) continue;
      const Atom& atom = rule_.body[pos];
      const bool is_delta =
          delta != nullptr && static_cast<int>(pos) == delta_pos;
      const Interpretation& source = is_delta ? *delta : full;
      // Base cardinality: how many candidate tuples reaching this atom
      // would enumerate without a probe.
      double rows = 0;
      const Relation* stats_rel = nullptr;
      if (!atom.temporal()) {
        const Relation& rel = source.NonTemporal(atom.pred);
        rows = static_cast<double>(rel.size());
        stats_rel = &rel;
      } else {
        const auto& timeline = source.Timeline(atom.pred);
        double total = 0;
        for (const auto& [time, cell] : timeline) {
          total += static_cast<double>(cell.size());
          if (stats_rel == nullptr || cell.size() > stats_rel->size()) {
            stats_rel = &cell;
          }
        }
        const TemporalTerm& tt = *atom.time;
        const bool t_known = tt.ground() || known[tt.var];
        // Known time: one snapshot (average cell). Unknown: the whole
        // timeline is enumerated, and matching binds the temporal variable.
        rows = t_known && !timeline.empty()
                   ? total / static_cast<double>(timeline.size())
                   : total;
      }
      // Probe-column choice: among columns whose value will be known when
      // the atom is reached, the one with the largest fan-out (sampled
      // distinct count) shrinks the candidate set the most.
      int col = -1;
      double est = rows;
      if (use_index_ && stats_rel != nullptr && !stats_rel->empty()) {
        for (std::size_t i = 0; i < atom.args.size(); ++i) {
          const NtTerm& t = atom.args[i];
          if (!t.is_constant() && !known[t.id]) continue;
          const double fan =
              rows / static_cast<double>(std::max<std::size_t>(
                         1, stats_rel->DistinctInColumn(i)));
          if (col < 0 || fan < est) {
            est = fan;
            col = static_cast<int>(i);
          }
        }
      }
      if (best_pos < 0 || est < best_est ||
          (est == best_est && is_delta && !best_delta)) {
        best_pos = static_cast<int>(pos);
        best_col = col;
        best_est = est;
        best_delta = is_delta;
      }
    }
    used[best_pos] = 1;
    const Atom& chosen = rule_.body[static_cast<std::size_t>(best_pos)];
    for (const NtTerm& t : chosen.args) {
      if (!t.is_constant()) known[t.id] = 1;
    }
    if (chosen.temporal() && !chosen.time->ground()) known[chosen.time->var] = 1;
    plan->steps.push_back(
        {static_cast<uint32_t>(best_pos), best_col, best_est});
  }

  // Frontier model: step k enumerates `est_k` candidates for each of the
  // `frontier` partial bindings that survived steps 0..k-1; emissions equal
  // the final frontier.
  double frontier = 1;
  double total_steps = 0;
  for (const JoinPlan::Step& s : plan->steps) {
    total_steps += frontier * std::max(0.0, s.est);
    frontier *= std::max(1.0, s.est);
  }
  plan->est_steps_per_emit = total_steps / std::max(1.0, frontier);
  return plan;
}

RuleEvaluator::JoinPlan* RuleEvaluator::GetOrBuildPlan(
    const Interpretation& full, const Interpretation* delta, int delta_pos,
    bool time_bound, bool allow_replan) const {
  PlanCache& cache = *plans_;
  const std::size_t slot = SlotKey(delta_pos, time_bound);
  JoinPlan* plan = cache.slots[slot].load(std::memory_order_acquire);
  if (plan == nullptr) {
    std::lock_guard<std::mutex> lock(cache.mu);
    plan = cache.slots[slot].load(std::memory_order_relaxed);
    if (plan != nullptr) return plan;
    std::unique_ptr<JoinPlan> fresh =
        BuildPlan(full, delta, delta_pos, time_bound, /*use_prior=*/true);
    plan = fresh.get();
    cache.owned.push_back(std::move(fresh));
    cache.slots[slot].store(plan, std::memory_order_release);
    if (cache.plans != nullptr) cache.plans->Add();
    if (cache.est_hist != nullptr) {
      cache.est_hist->RecordValue(
          static_cast<uint64_t>(plan->est_steps_per_emit));
    }
    return plan;
  }
  if (cache.hits != nullptr) cache.hits->Add();
  if (!allow_replan) return plan;

  // Drift check: enough observation, and actual steps-per-emit far above
  // the estimate, trigger a rebuild against current statistics.
  const uint64_t steps = plan->observed_steps.load(std::memory_order_relaxed);
  if (steps < plan->replan_min_steps) return plan;
  const uint64_t emits = plan->observed_emits.load(std::memory_order_relaxed);
  const double actual = static_cast<double>(steps) /
                        static_cast<double>(std::max<uint64_t>(1, emits));
  if (actual <= kReplanFactor * std::max(1.0, plan->est_steps_per_emit)) {
    return plan;
  }
  std::lock_guard<std::mutex> lock(cache.mu);
  JoinPlan* current = cache.slots[slot].load(std::memory_order_relaxed);
  if (current != plan) return current;  // someone else already re-planned
  // Re-plans always use full greedy planning: a prior that drifted this far
  // above its estimate has been refuted by observation.
  std::unique_ptr<JoinPlan> fresh =
      BuildPlan(full, delta, delta_pos, time_bound, /*use_prior=*/false);
  fresh->replan_min_steps = plan->replan_min_steps * 2;  // backoff
  JoinPlan* next = fresh.get();
  bool changed = fresh->steps.size() != plan->steps.size();
  for (std::size_t i = 0; !changed && i < fresh->steps.size(); ++i) {
    changed = fresh->steps[i].pos != plan->steps[i].pos;
  }
  // The retired plan stays in `owned`: evaluations started under it may
  // still be updating its observation counters.
  cache.owned.push_back(std::move(fresh));
  cache.slots[slot].store(next, std::memory_order_release);
  if (cache.replans != nullptr) cache.replans->Add();
  if (changed && cache.order_changed != nullptr) cache.order_changed->Add();
  if (cache.est_hist != nullptr) {
    cache.est_hist->RecordValue(
        static_cast<uint64_t>(next->est_steps_per_emit));
  }
  return next;
}

void RuleEvaluator::EnsurePlan(const Interpretation& full,
                               const Interpretation* delta, int delta_pos,
                               bool time_bound) const {
  GetOrBuildPlan(full, delta, delta == nullptr ? -1 : delta_pos, time_bound,
                 /*allow_replan=*/false);
}

std::vector<uint32_t> RuleEvaluator::PlanOrderForTest(int delta_pos,
                                                      bool time_bound) const {
  const JoinPlan* plan =
      plans_->slots[SlotKey(delta_pos, time_bound)].load(
          std::memory_order_acquire);
  std::vector<uint32_t> order;
  if (plan == nullptr) return order;
  order.reserve(plan->steps.size());
  for (const JoinPlan::Step& s : plan->steps) order.push_back(s.pos);
  return order;
}

void RuleEvaluator::ExportPlans(std::vector<PlanSlotReport>* out) const {
  for (std::size_t slot = 0; slot < plans_->slots.size(); ++slot) {
    const JoinPlan* plan =
        plans_->slots[slot].load(std::memory_order_acquire);
    if (plan == nullptr) continue;
    PlanSlotReport report;
    // Inverse of SlotKey: slot = (delta_pos + 1) * 2 + time_bound.
    report.delta_pos = static_cast<int>(slot / 2) - 1;
    report.time_bound = (slot % 2) != 0;
    report.order.reserve(plan->steps.size());
    report.probe_cols.reserve(plan->steps.size());
    for (const JoinPlan::Step& s : plan->steps) {
      report.order.push_back(s.pos);
      report.probe_cols.push_back(s.probe_col);
    }
    report.est_steps_per_emit = plan->est_steps_per_emit;
    report.observed_steps =
        plan->observed_steps.load(std::memory_order_relaxed);
    report.observed_emits =
        plan->observed_emits.load(std::memory_order_relaxed);
    out->push_back(std::move(report));
  }
}

void RuleEvaluator::Evaluate(
    const Interpretation& full, const Interpretation* delta, int delta_pos,
    std::optional<std::pair<VarId, int64_t>> time_binding, EvalStats* stats,
    const std::function<void(GroundAtom&&)>& emit, uint32_t delta_shard,
    uint32_t delta_num_shards) const {
  EvaluateImpl(full, delta, delta_pos, time_binding, stats, &emit, nullptr,
               delta_shard, delta_num_shards);
}

void RuleEvaluator::EvaluateWithBody(
    const Interpretation& full, const Interpretation* delta, int delta_pos,
    std::optional<std::pair<VarId, int64_t>> time_binding, EvalStats* stats,
    const std::function<void(GroundAtom&&, std::vector<GroundAtom>&&)>& emit)
    const {
  EvaluateImpl(full, delta, delta_pos, time_binding, stats, nullptr, &emit,
               /*delta_shard=*/0, /*delta_num_shards=*/1);
}

void RuleEvaluator::EvaluateImpl(
    const Interpretation& full, const Interpretation* delta, int delta_pos,
    std::optional<std::pair<VarId, int64_t>> time_binding, EvalStats* stats,
    const std::function<void(GroundAtom&&)>* emit,
    const std::function<void(GroundAtom&&, std::vector<GroundAtom>&&)>*
        emit_with_body,
    uint32_t delta_shard, uint32_t delta_num_shards) const {
  Bindings bindings(rule_.num_vars());
  if (time_binding.has_value()) {
    bindings.bound[time_binding->first] = 1;
    bindings.tval[time_binding->first] = time_binding->second;
  }

  Trail trail;

  // Ground-instantiates `atom` under the current bindings (complete for
  // the head by range-restriction; complete for body atoms at emit time).
  auto instantiate = [&](const Atom& atom) {
    GroundAtom fact;
    fact.pred = atom.pred;
    if (atom.temporal()) {
      const TemporalTerm& tt = *atom.time;
      if (tt.ground()) {
        fact.time = tt.offset;
      } else {
        assert(bindings.bound[tt.var]);
        fact.time = bindings.tval[tt.var] + tt.offset;
      }
    }
    fact.args.reserve(atom.args.size());
    for (const NtTerm& t : atom.args) {
      if (t.is_constant()) {
        fact.args.push_back(t.id);
      } else {
        assert(bindings.bound[t.id]);
        fact.args.push_back(bindings.nval[t.id]);
      }
    }
    return fact;
  };

  // Scratch head atom for the plain-emit path. Sinks that drop duplicates
  // without moving the atom leave `scratch.args`'s capacity behind, so the
  // (dominant) duplicate-derivation case allocates nothing. Sinks never
  // retain a reference past the call, so reuse is safe.
  GroundAtom scratch;
  auto instantiate_head_into = [&](GroundAtom* fact) {
    const Atom& atom = rule_.head;
    fact->pred = atom.pred;
    if (atom.temporal()) {
      const TemporalTerm& tt = *atom.time;
      if (tt.ground()) {
        fact->time = tt.offset;
      } else {
        assert(bindings.bound[tt.var]);
        fact->time = bindings.tval[tt.var] + tt.offset;
      }
    }
    fact->args.clear();
    for (const NtTerm& t : atom.args) {
      if (t.is_constant()) {
        fact->args.push_back(t.id);
      } else {
        assert(bindings.bound[t.id]);
        fact->args.push_back(bindings.nval[t.id]);
      }
    }
  };

  auto emit_head = [&]() {
    if (stats != nullptr) ++stats->derived;
    if (emit_with_body != nullptr) {
      std::vector<GroundAtom> body;
      body.reserve(rule_.body.size());
      for (const Atom& atom : rule_.body) body.push_back(instantiate(atom));
      (*emit_with_body)(instantiate(rule_.head), std::move(body));
    } else {
      instantiate_head_into(&scratch);
      (*emit)(std::move(scratch));
    }
  };

  const std::size_t nsteps = rule_.body.size();
  uint64_t local_steps = 0;
  uint64_t local_emits = 0;

  if (nsteps == 0) {
    emit_head();
    ++local_emits;
  }

  const int norm_pos = delta == nullptr ? -1 : delta_pos;
  JoinPlan* plan = nullptr;
  if (nsteps > 0) {
    // Re-planning swaps the cached plan in place, so it is only allowed
    // while evaluation is provably single-threaded: an unsharded call
    // outside a concurrent-probe (parallel) phase. (The column-statistics
    // sampling it triggers is itself thread-safe.)
    const bool allow_replan =
        delta_num_shards == 1 && !full.concurrent_probes();
    plan = GetOrBuildPlan(full, delta, norm_pos, time_binding.has_value(),
                          allow_replan);

    // Immutable per-step facts, gathered once outside the hot loop.
    struct StepInfo {
      const Atom* atom;
      std::size_t pos;
      bool is_delta;
      bool sharded;
      int probe_col;
    };
    std::vector<StepInfo> steps;
    steps.reserve(nsteps);
    for (const JoinPlan::Step& s : plan->steps) {
      const bool is_delta = static_cast<int>(s.pos) == norm_pos;
      steps.push_back({&rule_.body[s.pos], s.pos, is_delta,
                       is_delta && delta_num_shards > 1, s.probe_col});
    }

    // One frame per join step. A frame enumerates the candidate rows of its
    // atom: a bucket (index probe), a full relation scan, or — for an atom
    // whose temporal variable is still free — a walk over the predicate's
    // timeline, probing/scanning one snapshot cell at a time.
    struct Frame {
      const Relation* rel = nullptr;             // current cell, null = done
      const std::vector<uint32_t>* bucket = nullptr;  // probe rows, or null
      std::size_t idx = 0;                       // cursor into bucket/rel
      const std::map<int64_t, Relation>* timeline = nullptr;
      std::map<int64_t, Relation>::const_iterator tl_it;
      VarId tvar = kNoVar;  // temporal var this frame binds per cell
      std::size_t trail_mark = 0;
    };
    std::vector<Frame> frames(nsteps);

    // Points the frame at one concrete relation (a non-temporal predicate
    // or one snapshot cell), probing the planned column when its value is
    // known, falling back to the first bound column, else scanning. Leaves
    // `f->rel` null when the probe proves there are no candidates.
    auto setup_cell = [&](Frame* f, const Interpretation& source,
                          const Atom& atom, bool temporal, int64_t time,
                          int planned_col) {
      const Relation& rel = temporal ? source.Snapshot(atom.pred, time)
                                     : source.NonTemporal(atom.pred);
      if (rel.empty()) return;
      if (use_index_) {
        auto known = [&](const NtTerm& t, SymbolId* out) {
          if (t.is_constant()) {
            *out = t.id;
            return true;
          }
          if (bindings.bound[t.id]) {
            *out = bindings.nval[t.id];
            return true;
          }
          return false;
        };
        int col = -1;
        SymbolId value = 0;
        if (planned_col >= 0 && known(atom.args[planned_col], &value)) {
          col = planned_col;
        } else {
          for (std::size_t i = 0; i < atom.args.size(); ++i) {
            if (known(atom.args[i], &value)) {
              col = static_cast<int>(i);
              break;
            }
          }
        }
        if (col >= 0) {
          const std::vector<uint32_t>* bucket =
              temporal ? source.ProbeSnapshot(atom.pred, time,
                                              static_cast<uint32_t>(col),
                                              value)
                       : source.ProbeNonTemporal(
                             atom.pred, static_cast<uint32_t>(col), value);
          if (bucket != nullptr) {
            f->rel = &rel;
            f->bucket = bucket;
            f->idx = 0;
          }
          return;
        }
      }
      f->rel = &rel;
      f->bucket = nullptr;
      f->idx = 0;
    };

    auto enter = [&](std::size_t k) {
      Frame& f = frames[k];
      f.rel = nullptr;
      f.bucket = nullptr;
      f.idx = 0;
      f.timeline = nullptr;
      f.tvar = kNoVar;
      f.trail_mark = trail.size();
      const StepInfo& si = steps[k];
      const Atom& atom = *si.atom;
      const Interpretation& source = si.is_delta ? *delta : full;
      if (!atom.temporal()) {
        setup_cell(&f, source, atom, false, 0, si.probe_col);
        return;
      }
      const TemporalTerm& tt = *atom.time;
      if (tt.ground()) {
        setup_cell(&f, source, atom, true, tt.offset, si.probe_col);
        return;
      }
      if (bindings.bound[tt.var]) {
        setup_cell(&f, source, atom, true, bindings.tval[tt.var] + tt.offset,
                   si.probe_col);
        return;
      }
      // Unbound temporal variable: walk the timeline; each usable cell
      // binds it to `time - offset` (managed by the frame, outside the
      // trail, and cleared when the frame pops).
      f.timeline = &source.Timeline(atom.pred);
      f.tl_it = f.timeline->begin();
      f.tvar = tt.var;
    };

    // Yields the next candidate (row of *rel) of frame `f`, advancing
    // through timeline cells as the current one drains. The temporal
    // variable's value must be a valid (>= 0) ground term, so cells with
    // `time < offset` are skipped.
    auto next_candidate = [&](Frame* f, const StepInfo& si, uint32_t* row,
                              const Relation** rel) {
      while (true) {
        if (f->rel != nullptr) {
          if (f->bucket != nullptr) {
            if (f->idx < f->bucket->size()) {
              *row = (*f->bucket)[f->idx++];
              *rel = f->rel;
              return true;
            }
          } else if (f->idx < f->rel->size()) {
            *row = static_cast<uint32_t>(f->idx++);
            *rel = f->rel;
            return true;
          }
          f->rel = nullptr;
          f->bucket = nullptr;
        }
        if (f->timeline == nullptr) return false;
        const Atom& atom = *si.atom;
        const Interpretation& source = si.is_delta ? *delta : full;
        const int64_t offset = atom.time->offset;
        bool cell_found = false;
        while (f->tl_it != f->timeline->end()) {
          const int64_t time = f->tl_it->first;
          const bool cell_empty = f->tl_it->second.empty();
          ++f->tl_it;
          const int64_t value = time - offset;
          if (value < 0 || cell_empty) continue;
          bindings.bound[f->tvar] = 1;
          bindings.tval[f->tvar] = value;
          setup_cell(f, source, atom, true, time, si.probe_col);
          cell_found = true;
          break;
        }
        if (!cell_found) return false;
        // Loop: the fresh cell's probe may have yielded no bucket, in
        // which case the next iteration advances to the following cell.
      }
    };

    // Round-robin counter over the delta atom's candidate tuples; shared
    // across timeline cells so the assignment is a deterministic function
    // of the enumeration order alone.
    uint64_t shard_counter = 0;

    // Iterative backtracking join. Loop invariant: at the top, frame `k`'s
    // previous candidate (if any) is unwound — a fresh frame's mark equals
    // the trail size, making the unwind a no-op.
    int k = 0;
    enter(0);
    while (k >= 0) {
      Frame& f = frames[static_cast<std::size_t>(k)];
      Unwind(trail, f.trail_mark, &bindings);
      trail.resize(f.trail_mark);
      const StepInfo& si = steps[static_cast<std::size_t>(k)];
      uint32_t row = 0;
      const Relation* rel = nullptr;
      if (!next_candidate(&f, si, &row, &rel)) {
        if (f.tvar != kNoVar) bindings.bound[f.tvar] = 0;
        --k;
        continue;
      }
      if (si.sharded &&
          (shard_counter++ % delta_num_shards) != delta_shard) {
        continue;
      }
      ++local_steps;
      if (MatchRow(*si.atom, *rel, row, &bindings, &trail)) {
        if (static_cast<std::size_t>(k) + 1 == nsteps) {
          emit_head();
          ++local_emits;
          // Loop-top unwind discards this candidate's bindings.
        } else {
          ++k;
          enter(static_cast<std::size_t>(k));
        }
      }
      // Failed match: partial trail entries are removed by the loop-top
      // unwind on the next iteration.
    }
  }

  if (stats != nullptr) stats->match_steps += local_steps;
  if (plan != nullptr) {
    plan->observed_steps.fetch_add(local_steps, std::memory_order_relaxed);
    plan->observed_emits.fetch_add(local_emits, std::memory_order_relaxed);
  }
  if (plans_->actual_hist != nullptr) {
    plans_->actual_hist->RecordValue(local_steps /
                                     std::max<uint64_t>(1, local_emits));
  }
}

}  // namespace chronolog
