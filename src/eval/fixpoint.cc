#include "eval/fixpoint.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace chronolog {

namespace {

std::atomic<int> g_default_fixpoint_threads{1};

}  // namespace

int DefaultFixpointThreads() {
  return g_default_fixpoint_threads.load(std::memory_order_relaxed);
}

void SetDefaultFixpointThreads(int n) {
  g_default_fixpoint_threads.store(std::max(1, n), std::memory_order_relaxed);
}

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

Status TooLarge(uint64_t max_facts) {
  return ResourceExhaustedError(
      "fixpoint exceeded max_facts = " + std::to_string(max_facts) +
      "; raise FixpointOptions::max_facts if the workload is legitimate");
}

/// True when the fact survives truncation to `[0...max_time]`.
bool WithinBound(const Vocabulary& vocab, const GroundAtom& fact,
                 int64_t max_time) {
  return !vocab.predicate(fact.pred).is_temporal || fact.time <= max_time;
}

/// Rounds with a delta smaller than this stay sequential: waking the pool
/// costs more than deriving a handful of facts (e.g. the depth-scaling
/// workload inserts one fact per round for 10^5 rounds).
constexpr std::size_t kParallelDeltaThreshold = 32;

/// One (rule, delta-position) unit of semi-naive work.
struct TaskPair {
  std::size_t rule;
  int pos;
};

/// Folds `fact` into `full`, maintaining inserted/min_new_time stats.
void InsertIntoFull(const Vocabulary& vocab, Interpretation& full,
                    PredicateId pred, int64_t time, const Tuple& args,
                    EvalStats* stats) {
  if (full.Insert(pred, time, args)) {
    ++stats->inserted;
    if (vocab.predicate(pred).is_temporal) {
      stats->min_new_time = std::min(stats->min_new_time, time);
    }
  }
}

/// The shared semi-naive round loop: iterates `full`/`delta` to the least
/// fixpoint of the truncated operator. `delta` must be a subset of `full`
/// (the facts not yet consumed by any rule). The first round evaluates every
/// (rule, delta-position) pair — the initial delta may contain EDB facts —
/// while later rounds skip positions whose body atom has a predicate no rule
/// derives: after round one the delta only ever holds derived (IDB) facts.
///
/// With `options.num_threads > 1` each round's task list is sharded across a
/// thread pool. Workers only read `full`/`delta` (concurrent-probe mode
/// guards lazy index builds) and buffer derivations thread-locally; buffers
/// are merged in task order after the round barrier, which reproduces the
/// sequential insertion order exactly.
Status RunSemiNaiveRounds(const Program& program,
                          const FixpointOptions& options, EvalStats* stats,
                          Interpretation& full, Interpretation&& delta_in) {
  const Vocabulary& vocab = program.vocab();
  Interpretation delta = std::move(delta_in);

  // chronolog_obs instruments, fetched up front (before the first round) so
  // that an instrument still empty after a metered run flags dead
  // instrumentation (bench/ci.sh checks exactly this). All stay null when no
  // registry is attached.
  MetricsRegistry* const metrics = options.metrics;
  Counter* rounds_counter = nullptr;
  Histogram* delta_hist = nullptr;
  Histogram* derive_hist = nullptr;
  Histogram* merge_hist = nullptr;
  Counter* tasks_counter = nullptr;
  Histogram* round_tasks_hist = nullptr;
  Histogram* shard_hist = nullptr;
  Gauge* imbalance_gauge = nullptr;
  Counter* buffered_counter = nullptr;
  if (metrics != nullptr) {
    rounds_counter = metrics->counter("fixpoint.rounds");
    delta_hist = metrics->histogram("fixpoint.round.delta_facts");
    derive_hist = metrics->histogram("fixpoint.round.derive_ns");
    merge_hist = metrics->histogram("fixpoint.round.merge_ns");
  }

  std::vector<RuleEvaluator> evaluators;
  evaluators.reserve(program.rules().size());
  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    evaluators.emplace_back(program.rules()[i], vocab, options.use_index,
                            options.metrics);
    if (options.plan_priors != nullptr && i < options.plan_priors->size() &&
        !(*options.plan_priors)[i].empty()) {
      evaluators.back().SetStaticOrderPrior(&(*options.plan_priors)[i]);
    }
  }

  // Derivable (IDB) predicates: heads of some rule.
  std::vector<bool> derivable(vocab.num_predicates(), false);
  for (const Rule& rule : program.rules()) {
    if (rule.head.pred < derivable.size()) derivable[rule.head.pred] = true;
  }
  std::vector<TaskPair> all_pairs;
  std::vector<TaskPair> steady_pairs;
  for (std::size_t ri = 0; ri < program.rules().size(); ++ri) {
    const Rule& rule = program.rules()[ri];
    for (int pos = 0; pos < static_cast<int>(rule.body.size()); ++pos) {
      all_pairs.push_back({ri, pos});
      PredicateId pred = rule.body[static_cast<std::size_t>(pos)].pred;
      if (pred < derivable.size() && derivable[pred]) {
        steady_pairs.push_back({ri, pos});
      }
    }
  }

  const int num_threads = std::max(1, options.num_threads);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);
  if (metrics != nullptr && pool != nullptr) {
    tasks_counter = metrics->counter("fixpoint.parallel.tasks");
    round_tasks_hist = metrics->histogram("fixpoint.parallel.round_tasks");
    shard_hist = metrics->histogram("fixpoint.parallel.shard_derive_ns");
    imbalance_gauge = metrics->gauge("fixpoint.parallel.imbalance");
    buffered_counter = metrics->counter("fixpoint.parallel.buffered_facts");
  }

  bool first_round = true;
  while (!delta.empty()) {
    ++stats->iterations;
    if (rounds_counter != nullptr) rounds_counter->Add();
    if (delta_hist != nullptr) delta_hist->RecordValue(delta.size());
    TraceSpan round_span(options.trace, "fixpoint.round");
    const std::vector<TaskPair>& pairs =
        first_round ? all_pairs : steady_pairs;
    first_round = false;

    // Derivations are buffered into `next_delta` and merged into `full`
    // after the round: inserting into `full` mid-evaluation would invalidate
    // the tuple-set iterators the rule evaluator is walking. Scratch buffers
    // never serve SnapshotHash queries, so they skip hash maintenance; only
    // `full` — the interpretation callers keep — pays for it.
    Interpretation next_delta(program.vocab_ptr());
    next_delta.DisableSnapshotHashing();
    bool overflow = false;
    // Per-phase timers are sampled only on rounds with a non-trivial delta:
    // clock reads would otherwise dominate workloads with 10^5 one-fact
    // rounds (the depth-scaling benchmark). With a registry attached every
    // round is timed — metered runs want the small rounds in the histogram.
    const bool timed =
        metrics != nullptr || delta.size() >= kParallelDeltaThreshold;

    if (pool == nullptr || delta.size() < kParallelDeltaThreshold ||
        pairs.empty()) {
      TraceSpan derive_span(options.trace, "fixpoint.derive");
      PhaseTimer derive_timer(timed, &stats->derive_ms, derive_hist);
      for (const TaskPair& task : pairs) {
        evaluators[task.rule].Evaluate(
            full, &delta, task.pos, /*time_binding=*/std::nullopt, stats,
            [&](GroundAtom&& fact) {
              if (!WithinBound(vocab, fact, options.max_time)) return;
              if (full.Contains(fact)) return;
              next_delta.Insert(fact.pred, fact.time, std::move(fact.args));
              if (full.size() + next_delta.size() > options.max_facts) {
                overflow = true;
              }
            });
        if (overflow) return TooLarge(options.max_facts);
      }
    } else {
      // Shard every (rule, position) pair across the pool; shards of one
      // pair split the delta atom's candidate tuples round-robin.
      struct Task {
        TaskPair pair;
        uint32_t shard;
      };
      const uint32_t shards = static_cast<uint32_t>(num_threads);
      std::vector<Task> tasks;
      tasks.reserve(pairs.size() * shards);
      for (const TaskPair& pair : pairs) {
        for (uint32_t s = 0; s < shards; ++s) tasks.push_back({pair, s});
      }
      if (tasks_counter != nullptr) tasks_counter->Add(tasks.size());
      if (round_tasks_hist != nullptr) {
        round_tasks_hist->RecordValue(tasks.size());
      }

      Interpretation buffer_proto(program.vocab_ptr());
      buffer_proto.DisableSnapshotHashing();  // copies inherit the flag
      std::vector<Interpretation> buffers(tasks.size(), buffer_proto);
      std::vector<EvalStats> task_stats(tasks.size());
      std::vector<double> task_ms(tasks.size(), 0.0);
      std::atomic<bool> overflow_flag{false};
      // Shared running total of facts buffered this round. The per-worker
      // `full.size() + buffer.size()` check it replaces only tripped once a
      // single buffer crossed the cap, so N threads could each grow to just
      // under max_facts before the post-merge check fired (~N× max_facts
      // transient memory). Against the shared total the round stops within
      // ~num_threads emissions of the cap.
      std::atomic<uint64_t> buffered_total{0};
      // Build (or fetch) every task's join plan before fanning out: all
      // shards of one (rule, pos) pair must run the same plan, and plan
      // construction samples column statistics, which is single-threaded
      // work (see RuleEvaluator::EnsurePlan).
      for (const TaskPair& pair : pairs) {
        evaluators[pair.rule].EnsurePlan(full, &delta, pair.pos,
                                         /*time_bound=*/false);
      }
      full.SetConcurrentProbes(true);
      delta.SetConcurrentProbes(true);
      {
        TraceSpan derive_span(options.trace, "fixpoint.derive");
        PhaseTimer derive_timer(timed, &stats->derive_ms, derive_hist);
        pool->ParallelFor(tasks.size(), [&](std::size_t i) {
          const Clock::time_point task_start = Clock::now();
          const Task& task = tasks[i];
          Interpretation& buffer = buffers[i];
          evaluators[task.pair.rule].Evaluate(
              full, &delta, task.pair.pos, /*time_binding=*/std::nullopt,
              &task_stats[i],
              [&](GroundAtom&& fact) {
                if (!WithinBound(vocab, fact, options.max_time)) return;
                if (full.Contains(fact)) return;
                if (overflow_flag.load(std::memory_order_relaxed)) return;
                if (!buffer.Insert(fact.pred, fact.time,
                                   std::move(fact.args))) {
                  return;
                }
                const uint64_t buffered =
                    buffered_total.fetch_add(1, std::memory_order_relaxed) +
                    1;
                if (full.size() + buffered > options.max_facts) {
                  overflow_flag.store(true, std::memory_order_relaxed);
                }
              },
              task.shard, shards);
          task_ms[i] = MsSince(task_start);
        });
      }
      full.SetConcurrentProbes(false);
      delta.SetConcurrentProbes(false);
      for (const EvalStats& ts : task_stats) stats->Add(ts);
      if (buffered_counter != nullptr) {
        buffered_counter->Add(buffered_total.load(std::memory_order_relaxed));
      }
      if (shard_hist != nullptr) {
        double max_ms = 0;
        double sum_ms = 0;
        for (const double ms : task_ms) {
          shard_hist->RecordMs(ms);
          max_ms = std::max(max_ms, ms);
          sum_ms += ms;
        }
        const double mean_ms = sum_ms / static_cast<double>(task_ms.size());
        if (imbalance_gauge != nullptr && mean_ms > 0) {
          imbalance_gauge->Set(max_ms / mean_ms);
        }
      }
      if (overflow_flag.load()) return TooLarge(options.max_facts);

      // Deterministic merge: task order reproduces the sequential
      // insertion order (tasks are already ordered by (rule, pos, shard)).
      {
        TraceSpan merge_span(options.trace, "fixpoint.merge");
        PhaseTimer merge_timer(/*enabled=*/true, &stats->merge_ms,
                               merge_hist);
        for (const Interpretation& buffer : buffers) {
          buffer.ForEach(
              [&](PredicateId pred, int64_t time, const Tuple& args) {
                next_delta.Insert(pred, time, args);
                if (full.size() + next_delta.size() > options.max_facts) {
                  overflow = true;
                }
              });
        }
      }
      if (overflow) return TooLarge(options.max_facts);
    }

    {
      TraceSpan merge_span(options.trace, "fixpoint.merge");
      PhaseTimer merge_timer(timed, &stats->merge_ms, merge_hist);
      next_delta.ForEach(
          [&](PredicateId pred, int64_t time, const Tuple& args) {
            InsertIntoFull(vocab, full, pred, time, args, stats);
          });
    }
    delta = std::move(next_delta);
  }
  if (options.plan_report != nullptr) {
    // Snapshot the executed join plans before the evaluators die. Overwrites
    // wholesale: when the doubling detector runs several fixpoints, the last
    // (widest-horizon) one's plans are the ones EXPLAIN should show.
    options.plan_report->assign(program.rules().size(), {});
    for (std::size_t i = 0; i < evaluators.size(); ++i) {
      evaluators[i].ExportPlans(&(*options.plan_report)[i]);
    }
  }
  return Status();
}

}  // namespace

Result<Interpretation> ApplyTp(const Program& program, const Database& db,
                               const Interpretation& interp,
                               const FixpointOptions& options,
                               EvalStats* stats) {
  // chronolog_obs: the naive path shares the phase-span / insert-counter
  // sites of the semi-naive evaluator — one span per Tp application, one
  // histogram sample for its wall time, and a counter of the facts each
  // application adds over its input.
  Counter* applications = nullptr;
  Histogram* apply_hist = nullptr;
  Counter* inserted_counter = nullptr;
  if (options.metrics != nullptr) {
    applications = options.metrics->counter("fixpoint.naive.applications");
    apply_hist = options.metrics->histogram("fixpoint.naive.apply_ns");
    inserted_counter = options.metrics->counter("fixpoint.naive.inserted");
  }
  if (applications != nullptr) applications->Add();
  TraceSpan span(options.trace, "fixpoint.apply_tp");
  PhaseTimer apply_timer(apply_hist != nullptr, nullptr, apply_hist);
  uint64_t new_facts = 0;

  Interpretation out(program.vocab_ptr());
  const Vocabulary& vocab = program.vocab();
  bool overflow = false;
  // Only facts absent from the *input* count toward inserted/min_new_time:
  // one Tp application reports exactly what it adds over `interp`, so
  // NaiveFixpoint's per-pass contributions sum to the semi-naive totals
  // (the contract the incremental period tracker depends on).
  auto count_if_new = [&](PredicateId pred, int64_t time) {
    ++new_facts;
    if (stats == nullptr) return;
    ++stats->inserted;
    if (vocab.predicate(pred).is_temporal) {
      stats->min_new_time = std::min(stats->min_new_time, time);
    }
  };
  for (const GroundAtom& f : db.facts()) {
    if (!WithinBound(vocab, f, options.max_time)) continue;
    const bool is_new = !interp.Contains(f);
    if (out.Insert(f) && is_new) count_if_new(f.pred, f.time);
  }
  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& rule = program.rules()[i];
    RuleEvaluator evaluator(rule, vocab, options.use_index, options.metrics);
    if (options.plan_priors != nullptr && i < options.plan_priors->size() &&
        !(*options.plan_priors)[i].empty()) {
      evaluator.SetStaticOrderPrior(&(*options.plan_priors)[i]);
    }
    evaluator.Evaluate(interp, /*delta=*/nullptr, /*delta_pos=*/-1,
                       /*time_binding=*/std::nullopt, stats,
                       [&](GroundAtom&& fact) {
                         if (!WithinBound(vocab, fact, options.max_time)) {
                           return;
                         }
                         if (out.Contains(fact)) return;
                         const bool is_new = !interp.Contains(fact);
                         const PredicateId pred = fact.pred;
                         const int64_t time = fact.time;
                         out.Insert(pred, time, std::move(fact.args));
                         if (is_new) count_if_new(pred, time);
                         if (out.size() > options.max_facts) overflow = true;
                       });
    if (overflow) return TooLarge(options.max_facts);
  }
  if (inserted_counter != nullptr) inserted_counter->Add(new_facts);
  return out;
}

Result<Interpretation> NaiveFixpoint(const Program& program,
                                     const Database& db,
                                     const FixpointOptions& options,
                                     EvalStats* stats) {
  TraceSpan span(options.trace, "fixpoint.naive");
  // Pass counter of the naive loop — the analogue of `fixpoint.rounds` on
  // the semi-naive path (kept as a separate name so the two evaluators
  // stay distinguishable in one registry).
  Counter* passes = options.metrics != nullptr
                        ? options.metrics->counter("fixpoint.naive.passes")
                        : nullptr;
  const Vocabulary& vocab = program.vocab();
  Interpretation current(program.vocab_ptr());
  // Database seeds are counted here: from the first pass on, ApplyTp sees
  // them as already present in its input and reports only derived news.
  for (const GroundAtom& f : db.facts()) {
    if (!WithinBound(vocab, f, options.max_time)) continue;
    if (current.Insert(f) && stats != nullptr) {
      ++stats->inserted;
      if (vocab.predicate(f.pred).is_temporal) {
        stats->min_new_time = std::min(stats->min_new_time, f.time);
      }
    }
  }
  while (true) {
    if (stats != nullptr) ++stats->iterations;
    if (passes != nullptr) passes->Add();
    CHRONOLOG_ASSIGN_OR_RETURN(Interpretation next,
                               ApplyTp(program, db, current, options, stats));
    if (next.SegmentEquals(current, options.max_time,
                           /*and_non_temporal=*/true)) {
      return next;
    }
    current = std::move(next);
  }
}

Result<Interpretation> SemiNaiveFixpoint(const Program& program,
                                         const Database& db,
                                         const FixpointOptions& options,
                                         EvalStats* stats) {
  TraceSpan span(options.trace, "fixpoint.semi_naive");
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  const Vocabulary& vocab = program.vocab();
  Interpretation full(program.vocab_ptr());
  Interpretation delta(program.vocab_ptr());
  delta.DisableSnapshotHashing();
  for (const GroundAtom& f : db.facts()) {
    if (!WithinBound(vocab, f, options.max_time)) continue;
    if (full.Insert(f)) {
      ++stats->inserted;
      if (vocab.predicate(f.pred).is_temporal) {
        stats->min_new_time = std::min(stats->min_new_time, f.time);
      }
      delta.Insert(f);
    }
  }
  Status status =
      RunSemiNaiveRounds(program, options, stats, full, std::move(delta));
  if (!status.ok()) return status;
  return full;
}

Result<Interpretation> ExtendFixpoint(const Program& program,
                                      const Database& db,
                                      Interpretation&& prior,
                                      int64_t prior_max_time,
                                      const FixpointOptions& options,
                                      EvalStats* stats) {
  TraceSpan span(options.trace, "fixpoint.extend");
  if (options.max_time < prior_max_time) {
    return InvalidArgumentError(
        "ExtendFixpoint: max_time (" + std::to_string(options.max_time) +
        ") must not be below prior_max_time (" +
        std::to_string(prior_max_time) + ")");
  }
  EvalStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  const Vocabulary& vocab = program.vocab();
  const int64_t g = std::max<int64_t>(1, program.MaxTemporalDepth());

  Interpretation full = std::move(prior);
  Interpretation delta(program.vocab_ptr());
  delta.DisableSnapshotHashing();

  // (a) Database facts the old bound truncated away.
  for (const GroundAtom& f : db.facts()) {
    if (!WithinBound(vocab, f, options.max_time)) continue;
    if (full.Insert(f)) {
      ++stats->inserted;
      if (vocab.predicate(f.pred).is_temporal) {
        stats->min_new_time = std::min(stats->min_new_time, f.time);
      }
      delta.Insert(f);
    }
  }

  // (b) The frontier: every fact at time > prior_max_time - g (see the
  // header for why this window suffices). These facts are already in `full`;
  // re-listing them in the delta re-fires the rules they can feed.
  for (PredicateId pred : vocab.AllPredicates()) {
    if (!vocab.predicate(pred).is_temporal) continue;
    const auto& timeline = full.Timeline(pred);
    for (auto it = timeline.lower_bound(prior_max_time - g + 1);
         it != timeline.end(); ++it) {
      const Relation& cell = it->second;
      Tuple scratch;
      for (uint32_t row = 0; row < cell.size(); ++row) {
        cell.CopyRow(row, &scratch);
        delta.Insert(pred, it->first, scratch);
      }
    }
  }

  // (c) Rules with a ground temporal head derive at a fixed time that may
  // lie anywhere in the new segment; one explicit evaluation pass catches
  // instantiations whose body is entirely old. (Heads at or below the old
  // bound are already closed in `prior`.)
  std::vector<GroundAtom> ground_head_facts;
  for (std::size_t i = 0; i < program.rules().size(); ++i) {
    const Rule& rule = program.rules()[i];
    if (!rule.head.temporal() || !rule.head.time->ground()) continue;
    if (rule.head.time->offset <= prior_max_time) continue;
    RuleEvaluator evaluator(rule, vocab, options.use_index, options.metrics);
    if (options.plan_priors != nullptr && i < options.plan_priors->size() &&
        !(*options.plan_priors)[i].empty()) {
      evaluator.SetStaticOrderPrior(&(*options.plan_priors)[i]);
    }
    evaluator.Evaluate(full, /*delta=*/nullptr, /*delta_pos=*/-1,
                       /*time_binding=*/std::nullopt, stats,
                       [&](GroundAtom&& fact) {
                         if (!WithinBound(vocab, fact, options.max_time)) {
                           return;
                         }
                         if (full.Contains(fact)) return;
                         ground_head_facts.push_back(std::move(fact));
                       });
  }
  for (GroundAtom& fact : ground_head_facts) {
    if (full.Insert(fact)) {
      ++stats->inserted;
      if (vocab.predicate(fact.pred).is_temporal) {
        stats->min_new_time = std::min(stats->min_new_time, fact.time);
      }
      delta.Insert(std::move(fact));
    }
  }

  Status status =
      RunSemiNaiveRounds(program, options, stats, full, std::move(delta));
  if (!status.ok()) return status;
  return full;
}

}  // namespace chronolog
